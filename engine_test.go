package wolves_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"wolves"
)

// TestEngineQuickStart mirrors the package-doc quick start through the
// public surface.
func TestEngineQuickStart(t *testing.T) {
	wf, err := wolves.NewWorkflowBuilder("demo").
		AddTask("extract").AddTask("cleanA").AddTask("cleanB").AddTask("load").
		AddEdge("extract", "cleanA").AddEdge("extract", "cleanB").
		AddEdge("cleanA", "load").AddEdge("cleanB", "load").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := wolves.ViewFromAssignments(wf, "v", map[string][]string{
		"in": {"extract"}, "clean": {"cleanA", "cleanB"}, "out": {"load"},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := wolves.NewEngine()
	ctx := context.Background()
	report, err := eng.Validate(ctx, wf, v)
	if err != nil {
		t.Fatal(err)
	}
	if report.Sound {
		t.Fatal("clean composite must be unsound")
	}
	fixed, err := eng.Correct(ctx, wf, v, wolves.Strong)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := eng.Validate(ctx, wf, fixed.Corrected)
	if err != nil || !rep2.Sound {
		t.Fatalf("corrected view: rep=%+v err=%v", rep2, err)
	}
}

// TestEngineOracleCachePublic: repeated validation through the public
// Engine performs zero additional closure builds.
func TestEngineOracleCachePublic(t *testing.T) {
	eng := wolves.NewEngine(wolves.WithOracleCache(8))
	wf, v := wolves.Figure1()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := eng.Validate(ctx, wf, v); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.CacheStats()
	if s.Builds != 1 || s.Hits != 4 {
		t.Fatalf("cache stats after 5 validates: %+v", s)
	}
}

// TestEngineOptimalCancellationPublic: Engine.Correct under
// wolves.Optimal on a 20-member composite honors a short-deadline
// context with an ErrCanceled-coded *wolves.Error.
func TestEngineOptimalCancellationPublic(t *testing.T) {
	wf, members := wolves.GenUnsoundTask(20, 7)
	inComp := map[int]bool{}
	for _, m := range members {
		inComp[m] = true
	}
	// Build the view via assignments to embed exactly the unsound
	// composite, everything else singleton.
	assign := map[string][]string{}
	for i := 0; i < wf.N(); i++ {
		key := "t:" + wf.Task(i).ID
		if inComp[i] {
			key = "unsound"
		}
		assign[key] = append(assign[key], wf.Task(i).ID)
	}
	uv, err := wolves.ViewFromAssignments(wf, "uv", assign)
	if err != nil {
		t.Fatal(err)
	}

	eng := wolves.NewEngine()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	deadline, _ := ctx.Deadline()
	_, err = eng.Correct(ctx, wf, uv, wolves.Optimal)
	late := time.Since(deadline)
	if err == nil {
		t.Skip("optimal correction finished before the deadline")
	}
	var ee *wolves.Error
	if !errors.As(err, &ee) || ee.Code != wolves.ErrCanceled {
		t.Fatalf("err = %v, want *wolves.Error with Code ErrCanceled", err)
	}
	if late > 100*time.Millisecond {
		t.Fatalf("returned %v after the deadline, want < 100ms", late)
	}
}

// TestDeprecatedShimMatchesEngine: the free-function layer must produce
// the same results as the Engine it wraps.
func TestDeprecatedShimMatchesEngine(t *testing.T) {
	wf, v := wolves.Figure1()
	o := wolves.NewOracle(wf)
	shim := wolves.Validate(o, v)
	eng := wolves.NewEngine()
	direct, err := eng.Validate(context.Background(), wf, v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shim, direct) {
		t.Fatal("free-function Validate differs from Engine.Validate")
	}
	fixedShim, err := wolves.Correct(o, v, wolves.Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	fixedEng, err := eng.Correct(context.Background(), wf, v, wolves.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if fixedShim.CompositesAfter != fixedEng.CompositesAfter {
		t.Fatalf("shim corrected to %d composites, engine to %d",
			fixedShim.CompositesAfter, fixedEng.CompositesAfter)
	}
}
