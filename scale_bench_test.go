// Large-n benchmarks for the performance substrate: closure
// construction, view validation throughput at E6/E7 scale, and the
// allocation profile of the SetSound oracle. These complement the
// experiment-index benchmarks in bench_test.go.
package wolves_test

import (
	"fmt"
	"testing"

	"wolves"
	"wolves/internal/bitset"
	"wolves/internal/soundness"
)

func largeWorkflow(n int) *wolves.Workflow {
	return wolves.GenLayered(wolves.LayeredConfig{
		Name: "large", Tasks: n, Layers: n / 32, EdgeProb: 0.1, SkipProb: 0.005, Seed: 7,
	})
}

// BenchmarkClosureLarge measures the oracle-construction path (dominated
// by the workflow reachability closure) at production scales.
func BenchmarkClosureLarge(b *testing.B) {
	for _, n := range []int{512, 2048} {
		wf := largeWorkflow(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wolves.NewOracle(wf)
			}
		})
	}
}

// BenchmarkValidateLarge measures sequential view-validation throughput
// on E6/E7-scale inputs (the parallel variant rides the same workload in
// BenchmarkValidateLargeParallel once available).
func BenchmarkValidateLarge(b *testing.B) {
	for _, n := range []int{512, 2048} {
		wf := largeWorkflow(n)
		o := wolves.NewOracle(wf)
		v := wolves.GenIntervalView(wf, n/16, "bands")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wolves.Validate(o, v)
			}
		})
	}
}

// BenchmarkValidateLargeParallel runs the same workload as
// BenchmarkValidateLarge through the worker-pool validator (GOMAXPROCS
// workers; on a single-core host it degrades gracefully to the
// sequential path for small views and one worker otherwise).
func BenchmarkValidateLargeParallel(b *testing.B) {
	for _, n := range []int{512, 2048} {
		wf := largeWorkflow(n)
		o := wolves.NewOracle(wf)
		v := wolves.GenIntervalView(wf, n/16, "bands")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wolves.ValidateParallel(o, v, 0)
			}
		})
	}
}

// BenchmarkSetSound pins the per-call allocation profile of the
// soundness oracle (the acceptance bar is zero allocations per call).
//
// The sound case uses a dense layered workflow (EdgeProb 1) where a band
// of full layers is always sound with non-empty in/out interfaces, so
// the whole oracle path — member scan, out-mask build, reach-row scans —
// runs without short-circuiting. SetSound allocates only the user-facing
// *Violation witness when the set is unsound; SetSoundQuick is the
// witness-free variant correctors use and stays allocation-free on both
// outcomes.
func BenchmarkSetSound(b *testing.B) {
	for _, n := range []int{256, 2048} {
		dense := wolves.GenLayered(wolves.LayeredConfig{
			Name: "dense", Tasks: n, Layers: n / 32, EdgeProb: 1.0, Seed: 7,
		})
		o := soundness.NewOracle(dense)
		sound := bitset.New(n)
		for t := n / 4; t < n/2; t++ {
			sound.Set(t) // full layers: every in-node reaches every out-node
		}
		if ok, _ := o.SetSound(sound); !ok {
			b.Fatal("full-layer band of a dense layered workflow must be sound")
		}
		b.Run(fmt.Sprintf("sound/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o.SetSound(sound)
			}
		})

		wf := largeWorkflow(n)
		ou := soundness.NewOracle(wf)
		unsound := bitset.New(n)
		for t := n / 4; t < n/2; t++ {
			unsound.Set(t)
		}
		b.Run(fmt.Sprintf("quick-unsound/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ou.SetSoundQuick(unsound)
			}
		})
	}
}
