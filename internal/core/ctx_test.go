package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"wolves/internal/gen"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// unsoundView wraps the generated unsound composite in a view: the
// members form one composite, everything else stays a singleton.
func unsoundView(t *testing.T, wf *workflow.Workflow, members []int) *view.View {
	t.Helper()
	part := make([]int, wf.N())
	inComp := make(map[int]bool, len(members))
	for _, m := range members {
		inComp[m] = true
	}
	next := 1
	for i := 0; i < wf.N(); i++ {
		if inComp[i] {
			part[i] = 0
		} else {
			part[i] = next
			next++
		}
	}
	v, err := view.FromPartition(wf, "unsound", part)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestOptimalCancellation pins the Engine-facing latency contract: a
// 20-member Optimal split (2^20 DP states) must notice a fired context
// and unwind well within 100ms.
func TestOptimalCancellation(t *testing.T) {
	wf, members := gen.UnsoundTask(20, 7)
	o := soundness.NewOracle(wf)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := SplitTaskCtx(ctx, o, members, Optimal, nil)
	elapsed := time.Since(start)
	if err == nil {
		// The box may be fast enough to finish inside the deadline; then
		// the result must be a valid partition and the test is vacuous.
		if res == nil || len(res.Blocks) == 0 {
			t.Fatalf("finished without error but no blocks: %+v", res)
		}
		t.Skip("optimal split finished before the deadline fired")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("canceled split returned a result: %+v", res)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms after the 5ms deadline", elapsed)
	}
}

// TestCorrectViewCancellation checks the pre-canceled fast path and the
// error shape of CorrectViewCtx.
func TestCorrectViewCancellation(t *testing.T) {
	wf, members := gen.UnsoundTask(12, 3)
	o := soundness.NewOracle(wf)
	v := unsoundView(t, wf, members)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CorrectViewCtx(ctx, o, v, Strong, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if _, err := CorrectViewCtx(ctx, o, v, Strong, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// A live context corrects normally.
	vc, err := CorrectViewCtx(context.Background(), o, v, Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep := soundness.ValidateView(o, vc.Corrected); !rep.Sound {
		t.Fatalf("corrected view unsound: %+v", rep)
	}
}

// TestStrongAuditedCancellation covers ctx firing inside the exhaustive
// auditor / fixpoint phases.
func TestStrongAuditedCancellation(t *testing.T) {
	wf, members := gen.UnsoundTask(18, 11)
	o := soundness.NewOracle(wf)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SplitTaskCtx(ctx, o, members, StrongAudited, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestOptionsExplicitLimits pins the withDefaults contract: zero means
// default, any explicit value — small or negative — sticks.
func TestOptionsExplicitLimits(t *testing.T) {
	eff := (&Options{OptimalLimit: 3}).withDefaults()
	if eff.OptimalLimit != 3 || eff.AuditLimit != 22 {
		t.Fatalf("withDefaults(OptimalLimit:3) = %+v", eff)
	}
	eff = (&Options{OptimalLimit: -1, AuditLimit: -1}).withDefaults()
	if eff.OptimalLimit != -1 || eff.AuditLimit != -1 {
		t.Fatalf("withDefaults(negative) = %+v, want explicit values kept", eff)
	}

	wf, members := gen.UnsoundTask(6, 1)
	o := soundness.NewOracle(wf)
	// A small explicit limit must be honored, not reset to 20 …
	_, err := SplitTask(o, members, Optimal, &Options{OptimalLimit: 3})
	if !errors.Is(err, ErrOptimalLimit) {
		t.Fatalf("err = %v, want ErrOptimalLimit for limit 3 < 6 members", err)
	}
	// … and a negative limit rejects every composite.
	_, err = SplitTask(o, members, Optimal, &Options{OptimalLimit: -1})
	if !errors.Is(err, ErrOptimalLimit) {
		t.Fatalf("err = %v, want ErrOptimalLimit for negative limit", err)
	}
	// The deprecated alias still matches.
	if !errors.Is(err, ErrOptimalTooLarge) {
		t.Fatalf("err = %v, want ErrOptimalTooLarge alias to match", err)
	}
	// Within the limit the split succeeds.
	res, err := SplitTask(o, members, Optimal, &Options{OptimalLimit: 6})
	if err != nil || len(res.Blocks) == 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}
