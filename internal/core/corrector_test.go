package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wolves/internal/gen"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/workflow"
)

func idsOf(wf *workflow.Workflow, blocks [][]int) [][]string {
	out := make([][]string, len(blocks))
	for i, blk := range blocks {
		for _, t := range blk {
			out[i] = append(out[i], wf.Task(t).ID)
		}
	}
	return out
}

// --- Figure 3: the paper's running example -------------------------------

func TestFigure3TaskIsUnsound(t *testing.T) {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	sound, viol := o.SoundSlice(f.T)
	if sound {
		t.Fatal("Figure 3(a) composite must be unsound")
	}
	if viol == nil {
		t.Fatal("missing violation witness")
	}
}

func TestFigure3WeakSplit(t *testing.T) {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	res, err := SplitTask(o, f.T, Weak, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSplit(o, f.T, res.Blocks); err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 8 {
		t.Fatalf("weak split has %d blocks, paper Figure 3(b) has 8:\n%v",
			len(res.Blocks), idsOf(f.Workflow, res.Blocks))
	}
	if got := idsOf(f.Workflow, res.Blocks); !reflect.DeepEqual(got, f.WeakBlocks) {
		t.Fatalf("weak blocks = %v, want %v", got, f.WeakBlocks)
	}
	if ok, pair := WeakOptimal(o, res.Blocks); !ok {
		t.Fatalf("weak output not weakly optimal: blocks %v combinable", pair)
	}
}

func TestFigure3StrongSplit(t *testing.T) {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	res, err := SplitTask(o, f.T, Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSplit(o, f.T, res.Blocks); err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 5 {
		t.Fatalf("strong split has %d blocks, paper Figure 3(c) has 5:\n%v",
			len(res.Blocks), idsOf(f.Workflow, res.Blocks))
	}
	if got := idsOf(f.Workflow, res.Blocks); !reflect.DeepEqual(got, f.StrongBlocks) {
		t.Fatalf("strong blocks = %v, want %v", got, f.StrongBlocks)
	}
	optimal, witness, complete := StrongOptimal(o, res.Blocks, 22)
	if !complete {
		t.Fatal("exhaustive audit should be feasible at 5 blocks")
	}
	if !optimal {
		t.Fatalf("strong output not strongly optimal: subset %v combinable", witness)
	}
}

func TestFigure3OptimalSplit(t *testing.T) {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	res, err := SplitTask(o, f.T, Optimal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSplit(o, f.T, res.Blocks); err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 5 {
		t.Fatalf("optimal split has %d blocks, want 5 (matching Figure 3(c)):\n%v",
			len(res.Blocks), idsOf(f.Workflow, res.Blocks))
	}
}

func TestFigure3PaperWitnesses(t *testing.T) {
	f := repo.Figure3()
	wf := f.Workflow
	o := soundness.NewOracle(wf)

	// "if we merge tasks c, d, f and g ... the resulting task is sound".
	cdfg := []int{wf.MustIndex("c"), wf.MustIndex("d"), wf.MustIndex("f"), wf.MustIndex("g")}
	if ok, viol := o.SoundSlice(cdfg); !ok {
		t.Fatalf("{c,d,f,g} must be sound, got violation %v", viol)
	}
	// "if we tentatively merge f and g ... T is unsound, since there is
	// no path from g ∈ T.in to f ∈ T.out".
	fg := []int{wf.MustIndex("f"), wf.MustIndex("g")}
	ok, viol := o.SoundSlice(fg)
	if ok {
		t.Fatal("{f,g} must be unsound")
	}
	gi, fi := wf.MustIndex("g"), wf.MustIndex("f")
	if !(viol.From == gi && viol.To == fi) && !(viol.From == fi && viol.To == gi) {
		t.Fatalf("violation = %v, want between f and g", viol)
	}
	// No pair within {c,d,f,g} is combinable (weak stalls there).
	names := []string{"c", "d", "f", "g"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if Combinable(o, []int{wf.MustIndex(names[i])}, []int{wf.MustIndex(names[j])}) {
				t.Fatalf("{%s,%s} must not be combinable", names[i], names[j])
			}
		}
	}
}

func TestFigure3StrongAudited(t *testing.T) {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	res, err := SplitTask(o, f.T, StrongAudited, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audited {
		t.Fatal("audit should complete at this size")
	}
	if len(res.Blocks) != 5 {
		t.Fatalf("audited strong split has %d blocks, want 5", len(res.Blocks))
	}
}

// --- Figure 1: the phylogenomics case study ------------------------------

func TestFigure1CorrectView(t *testing.T) {
	wf, v := repo.Figure1()
	o := soundness.NewOracle(wf)

	rep := soundness.ValidateView(o, v)
	if rep.Sound {
		t.Fatal("Figure 1(b) view must be unsound")
	}
	if len(rep.Unsound) != 1 || v.Composite(rep.Unsound[0]).ID != "16" {
		t.Fatalf("unsound composites = %v, want exactly composite 16", rep.Unsound)
	}
	viol := rep.Composites[rep.Unsound[0]].Violations[0]
	if wf.Task(viol.From).ID != "4" || wf.Task(viol.To).ID != "7" {
		t.Fatalf("witness = %s→%s, want 4→7",
			wf.Task(viol.From).ID, wf.Task(viol.To).ID)
	}

	for _, crit := range []Criterion{Weak, Strong, StrongAudited, Optimal} {
		vc, err := CorrectView(o, v, crit, nil)
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		if got := soundness.ValidateView(o, vc.Corrected); !got.Sound {
			t.Fatalf("%v: corrected view still unsound", crit)
		}
		// {4,7} are parallel: the only sound split is two singletons.
		if vc.CompositesAfter != 8 {
			t.Fatalf("%v: corrected view has %d composites, want 8", crit, vc.CompositesAfter)
		}
		if len(vc.Tasks) != 1 || vc.Tasks[0].CompositeID != "16" || vc.Tasks[0].After != 2 {
			t.Fatalf("%v: corrections = %+v", crit, vc.Tasks)
		}
	}
}

// --- generic behaviour ----------------------------------------------------

func TestSplitSoundTaskIsIdentity(t *testing.T) {
	wf, _ := repo.Figure1()
	o := soundness.NewOracle(wf)
	// {1,2} is sound (single entry chain).
	members := []int{wf.MustIndex("1"), wf.MustIndex("2")}
	for _, crit := range []Criterion{Weak, Strong, StrongAudited, Optimal} {
		res, err := SplitTask(o, members, crit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Blocks) != 1 || len(res.Blocks[0]) != 2 {
			t.Fatalf("%v: sound task must stay whole, got %v", crit, res.Blocks)
		}
	}
}

func TestSplitTaskErrors(t *testing.T) {
	wf, _ := repo.Figure1()
	o := soundness.NewOracle(wf)
	if _, err := SplitTask(o, nil, Weak, nil); err == nil {
		t.Fatal("empty member set must error")
	}
	f := repo.Figure3()
	o3 := soundness.NewOracle(f.Workflow)
	if _, err := SplitTask(o3, f.T, Optimal, &Options{OptimalLimit: 4}); err == nil {
		t.Fatal("optimal beyond limit must error")
	}
	if _, err := SplitTask(o3, f.T, Criterion(99), nil); err == nil {
		t.Fatal("unknown criterion must error")
	}
}

func TestParseCriterion(t *testing.T) {
	for s, want := range map[string]Criterion{
		"weak": Weak, "strong": Strong, "strong-audited": StrongAudited,
		"audited": StrongAudited, "optimal": Optimal,
	} {
		got, err := ParseCriterion(s)
		if err != nil || got != want {
			t.Fatalf("ParseCriterion(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCriterion("bogus"); err == nil {
		t.Fatal("bogus criterion must error")
	}
	if Weak.String() != "weak-local-optimal" || Optimal.String() != "optimal" {
		t.Fatal("String names wrong")
	}
	if Criterion(99).String() == "" {
		t.Fatal("unknown criterion must still render")
	}
}

// randomCase builds a random workflow plus a random contiguous composite.
func randomCase(rng *rand.Rand, maxN int) (*workflow.Workflow, []int) {
	n := 4 + rng.Intn(maxN-3)
	extra := 2 + rng.Intn(4) // external context tasks
	b := workflow.NewBuilder("rand")
	total := n + extra
	ids := make([]string, total)
	for i := 0; i < total; i++ {
		ids[i] = fmt.Sprintf("t%d", i)
		b.AddTask(ids[i])
	}
	// Random DAG on a random permutation (forward edges only).
	perm := rng.Perm(total)
	p := 0.08 + rng.Float64()*0.3
	for i := 0; i < total; i++ {
		for j := i + 1; j < total; j++ {
			if rng.Float64() < p {
				b.AddEdge(ids[perm[i]], ids[perm[j]])
			}
		}
	}
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	// Composite = a random subset of size n.
	chosen := rng.Perm(total)[:n]
	return wf, chosen
}

func TestRandomizedCorrectorAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(20090824)) // VLDB'09 dates
	cases := 150
	if testing.Short() {
		cases = 40
	}
	for c := 0; c < cases; c++ {
		wf, members := randomCase(rng, 11)
		o := soundness.NewOracle(wf)

		weak, err := SplitTask(o, members, Weak, nil)
		if err != nil {
			t.Fatal(err)
		}
		strong, err := SplitTask(o, members, Strong, nil)
		if err != nil {
			t.Fatal(err)
		}
		audited, err := SplitTask(o, members, StrongAudited, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SplitTask(o, members, Optimal, nil)
		if err != nil {
			t.Fatal(err)
		}

		for name, res := range map[string]*Result{
			"weak": weak, "strong": strong, "audited": audited, "optimal": opt,
		} {
			if err := CheckSplit(o, members, res.Blocks); err != nil {
				t.Fatalf("case %d: %s: invalid split: %v", c, name, err)
			}
		}
		if ok, pair := WeakOptimal(o, weak.Blocks); !ok {
			t.Fatalf("case %d: weak output has combinable pair %v", c, pair)
		}
		if ok, pair := WeakOptimal(o, strong.Blocks); !ok {
			t.Fatalf("case %d: strong output has combinable pair %v", c, pair)
		}
		if optimal, witness, complete := StrongOptimal(o, strong.Blocks, 20); complete && !optimal {
			t.Fatalf("case %d: strong output misses combinable subset %v (weak=%d strong=%d opt=%d)",
				c, witness, len(weak.Blocks), len(strong.Blocks), len(opt.Blocks))
		}
		if optimal, witness, complete := StrongOptimal(o, audited.Blocks, 20); complete && !optimal {
			t.Fatalf("case %d: audited output misses combinable subset %v", c, witness)
		}
		// Ordering: optimal ≤ audited ≤ strong ≤ weak (by block count).
		if len(opt.Blocks) > len(audited.Blocks) || len(audited.Blocks) > len(strong.Blocks) ||
			len(strong.Blocks) > len(weak.Blocks) {
			t.Fatalf("case %d: counts out of order: opt=%d audited=%d strong=%d weak=%d",
				c, len(opt.Blocks), len(audited.Blocks), len(strong.Blocks), len(weak.Blocks))
		}
	}
}

// TestBicliqueFamilyScalesFigure3 pins the Figure 3 gap at every
// biclique size: weak stalls at 2k+4 blocks, strong and optimal reach 5.
func TestBicliqueFamilyScalesFigure3(t *testing.T) {
	ks := []int{2, 3, 4, 5, 6}
	if testing.Short() {
		ks = ks[:3]
	}
	for _, k := range ks {
		wf, members := gen.BicliqueTask(k)
		o := soundness.NewOracle(wf)
		weak, err := SplitTask(o, members, Weak, nil)
		if err != nil {
			t.Fatal(err)
		}
		strong, err := SplitTask(o, members, Strong, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(weak.Blocks) != 2*k+4 {
			t.Fatalf("k=%d: weak blocks = %d, want %d", k, len(weak.Blocks), 2*k+4)
		}
		if len(strong.Blocks) != 5 {
			t.Fatalf("k=%d: strong blocks = %d, want 5", k, len(strong.Blocks))
		}
		if err := CheckSplit(o, members, strong.Blocks); err != nil {
			t.Fatal(err)
		}
		if ok, pair := WeakOptimal(o, weak.Blocks); !ok {
			t.Fatalf("k=%d: weak output has combinable pair %v", k, pair)
		}
		if 2*k+8 <= 18 { // the 3^n DP gets slow beyond this
			opt, err := SplitTask(o, members, Optimal, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(opt.Blocks) != 5 {
				t.Fatalf("k=%d: optimal blocks = %d, want 5", k, len(opt.Blocks))
			}
		}
		if optimal, witness, complete := StrongOptimal(o, strong.Blocks, 22); complete && !optimal {
			t.Fatalf("k=%d: strong output misses subset %v", k, witness)
		}
	}
}

func TestOptimalMatchesBruteForceSmall(t *testing.T) {
	// Independent brute force over all set partitions (n ≤ 7) to verify
	// the subset DP end to end.
	rng := rand.New(rand.NewSource(42))
	for c := 0; c < 40; c++ {
		wf, members := randomCase(rng, 7)
		o := soundness.NewOracle(wf)
		opt, err := SplitTask(o, members, Optimal, nil)
		if err != nil {
			t.Fatal(err)
		}
		best := bruteForceMin(o, members)
		if len(opt.Blocks) != best {
			t.Fatalf("case %d: DP found %d blocks, brute force %d", c, len(opt.Blocks), best)
		}
	}
}

// bruteForceMin enumerates all set partitions via restricted growth
// strings and returns the minimum number of sound blocks.
func bruteForceMin(o *soundness.Oracle, members []int) int {
	n := len(members)
	assign := make([]int, n)
	best := n + 1
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if maxUsed+1 >= best {
			return // cannot beat current best
		}
		if i == n {
			blocks := make([][]int, maxUsed+1)
			for j, a := range assign {
				blocks[a] = append(blocks[a], members[j])
			}
			for _, blk := range blocks {
				if ok, _ := o.SoundSlice(blk); !ok {
					return
				}
			}
			if maxUsed+1 < best {
				best = maxUsed + 1
			}
			return
		}
		for a := 0; a <= maxUsed+1; a++ {
			assign[i] = a
			nm := maxUsed
			if a > maxUsed {
				nm = a
			}
			rec(i+1, nm)
		}
	}
	rec(0, -1)
	return best
}

func TestQualityMetric(t *testing.T) {
	if Quality(5, 8) != 0.625 || Quality(5, 5) != 1.0 {
		t.Fatal("quality ratio wrong")
	}
	if Quality(3, 0) != 0 {
		t.Fatal("zero blocks must yield zero quality")
	}
}

func TestSortBlocks(t *testing.T) {
	blocks := [][]int{{9, 2}, {1, 5}, {3}}
	SortBlocks(blocks)
	if !reflect.DeepEqual(blocks, [][]int{{1, 5}, {2, 9}, {3}}) {
		t.Fatalf("SortBlocks = %v", blocks)
	}
}
