package core

import (
	"fmt"
	"time"

	"wolves/internal/soundness"
	"wolves/internal/view"
)

// The paper resolves unsound views by splitting because "merging tasks
// loses information", and names merge-based correction (and the
// interaction between splitting and merging) an open problem (§3).
// MergeUp implements the natural greedy merge-based corrector as an
// extension, so the A2 ablation can quantify exactly how much provenance
// resolution merging sacrifices relative to splitting.

// MergeUpResult reports a merge-based correction.
type MergeUpResult struct {
	Corrected        *view.View
	Merges           int
	CompositesBefore int
	CompositesAfter  int
	Elapsed          time.Duration
}

// MergeUp repairs an unsound view by repeatedly merging an unsound
// composite with neighbouring composites: a violation u∈T.in ↛ v∈T.out
// disappears once all external predecessors of u (or all external
// successors of v) are absorbed into T. The cheaper absorption (fewer
// new atomic tasks) is chosen each round. The loop terminates because
// every merge reduces the composite count, and the single-composite view
// is trivially sound.
func MergeUp(o *soundness.Oracle, v *view.View) (*MergeUpResult, error) {
	if v.Workflow() != o.Workflow() {
		return nil, fmt.Errorf("core: view %q belongs to a different workflow", v.Name())
	}
	start := time.Now()
	res := &MergeUpResult{CompositesBefore: v.N()}
	g := o.Workflow().Graph()
	cur := v
	for {
		rep := soundness.ValidateView(o, cur)
		if rep.Sound {
			break
		}
		ci := rep.Unsound[0]
		viol := rep.Composites[ci].Violations[0]

		// Composites feeding the in-node and fed by the out-node.
		absorbFor := func(task int, preds bool) map[int]bool {
			out := map[int]bool{}
			var neigh []int32
			if preds {
				neigh = g.Preds(task)
			} else {
				neigh = g.Succs(task)
			}
			for _, q := range neigh {
				if qc := cur.CompOf(int(q)); qc != ci {
					out[qc] = true
				}
			}
			return out
		}
		sizeOf := func(cs map[int]bool) int {
			total := 0
			for c := range cs {
				total += cur.Composite(c).Size()
			}
			return total
		}
		inSide := absorbFor(viol.From, true)
		outSide := absorbFor(viol.To, false)
		pick := inSide
		if len(inSide) == 0 || (len(outSide) > 0 && sizeOf(outSide) < sizeOf(inSide)) {
			pick = outSide
		}
		if len(pick) == 0 {
			// Cannot happen: a violation witness is an in-node with an
			// external predecessor and an out-node with an external
			// successor, and views partition the whole workflow.
			return nil, fmt.Errorf("core: internal error: violation without absorbable neighbours")
		}
		ids := []string{cur.Composite(ci).ID}
		for c := range pick {
			ids = append(ids, cur.Composite(c).ID)
		}
		merged, err := cur.MergeComposites(cur.Composite(ci).ID, ids...)
		if err != nil {
			return nil, fmt.Errorf("core: merge-up: %w", err)
		}
		cur = merged
		res.Merges++
	}
	res.Corrected = cur
	res.CompositesAfter = cur.N()
	res.Elapsed = time.Since(start)
	return res, nil
}
