package core

import (
	"errors"
	"time"

	"wolves/internal/bitset"
	"wolves/internal/soundness"
)

var errComposite = errors.New("core: empty member set")

// Strong local optimality (Definition 2.6) demands that no subset of
// result blocks has a sound union. Any sound union U of ≥2 blocks falls
// into exactly one of four cases, each covered by a phase below:
//
//  1. U.in = ∅  — U is predecessor-closed. All blocks whose block-level
//     ancestor closure stays inside the composite must merge into one
//     (ancestorPhase): unions of predecessor-closed sets stay
//     predecessor-closed and are always sound, so Definition 2.6 forces
//     a single such block.
//  2. U.out = ∅ — symmetric, via descendantPhase.
//  3. |U| = 2 blocks — covered by weakPass.
//  4. U.in ≠ ∅ and U.out ≠ ∅ — then every s ∈ U.in reaches every
//     t ∈ U.out, s is an in-node of its own block and t an out-node of
//     its own block. seededPhase enumerates exactly those (s,t) seeds
//     and grows a candidate union: conflicts (u,v) with ¬R[u][t] force
//     absorbing pred(u) (otherwise u would have to reach t), conflicts
//     with ¬R[s][v] force absorbing succ(v); ambiguous conflicts are
//     resolved by a deterministic bias, and both biases are attempted.
//
// The forced moves provably stay inside any sound union containing the
// seed pair with those roles; only the ambiguous-conflict resolution is
// heuristic. The exhaustive auditor (exhaustivePhase / the audit tests)
// closes that gap: across all fixtures and randomized suites the
// fixpoint below is already strongly local optimal.

// SplitTaskPhases runs the strong corrector with a subset of its phases
// enabled — the A1 ablation. closed enables the ancestor/descendant
// closure phases; seeded enables the seeded conflict-closure search.
// With both disabled it degenerates to the weak corrector.
func SplitTaskPhases(o *soundness.Oracle, members []int, closed, seeded bool) (*Result, error) {
	if len(members) == 0 {
		return nil, errComposite
	}
	start := time.Now()
	p := newPartitioner(o, members)
	for {
		changed := p.weakPass()
		if closed {
			if p.ancestorPhase() {
				changed = true
			}
			if p.descendantPhase() {
				changed = true
			}
		}
		if seeded && p.seededPhase() {
			changed = true
		}
		if !changed {
			break
		}
	}
	res := &Result{Criterion: Strong, Blocks: p.blocks(), Stats: p.stats}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// strongFixpoint runs all phases to a joint fixpoint.
func (p *partitioner) strongFixpoint() {
	for {
		if p.canceled() {
			return
		}
		changed := p.weakPass()
		if p.ancestorPhase() {
			changed = true
		}
		if p.descendantPhase() {
			changed = true
		}
		if p.seededPhase() {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// ancestorPhase merges every block whose ancestor closure stays within
// the composite. Returns whether a merge happened.
func (p *partitioner) ancestorPhase() bool {
	return p.closedPhase(true)
}

// descendantPhase merges every block whose descendant closure stays
// within the composite.
func (p *partitioner) descendantPhase() bool {
	return p.closedPhase(false)
}

func (p *partitioner) closedPhase(ancestors bool) bool {
	g := p.o.Workflow().Graph()
	union := p.phaseIDs[:0]
	inUnion := p.idMark
	inUnion.Reset()
	for id := range p.blockSets {
		if !p.alive[id] {
			continue
		}
		ids, ok := p.blockClosure(id, ancestors, g)
		if !ok {
			continue
		}
		for _, id := range ids {
			if !inUnion.Test(id) {
				inUnion.Set(id)
				union = append(union, id)
			}
		}
	}
	p.phaseIDs = union
	if len(union) < 2 {
		return false
	}
	p.mergeBlocks(union)
	return true
}

// blockClosure grows block b by repeatedly absorbing the blocks of all
// external predecessors (or successors) of its members. It fails when a
// predecessor (successor) lies outside the composite. The returned slice
// aliases a reusable buffer: consume it before the next call.
func (p *partitioner) blockClosure(b int, ancestors bool, g graphNeighbors) ([]int, bool) {
	ids := append(p.closureIDs[:0], b)
	seen := p.idSeen
	seen.Reset()
	seen.Set(b)
	queue := p.nodeQueue[:0]
	p.blockSets[b].ForEach(func(t int) bool {
		queue = append(queue, t)
		return true
	})
	defer func() {
		p.closureIDs = ids[:0]
		p.nodeQueue = queue[:0]
	}()
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		var neigh []int32
		if ancestors {
			neigh = g.Preds(t)
		} else {
			neigh = g.Succs(t)
		}
		for _, x32 := range neigh {
			x := int(x32)
			if !p.memberSet.Test(x) {
				return nil, false // closure escapes the composite
			}
			xb := p.blockOf[x]
			if !seen.Test(xb) {
				seen.Set(xb)
				ids = append(ids, xb)
				p.blockSets[xb].ForEach(func(m int) bool {
					queue = append(queue, m)
					return true
				})
			}
		}
	}
	return ids, true
}

// graphNeighbors is the slice of dag.Graph used by closures.
type graphNeighbors interface {
	Preds(u int) []int32
	Succs(u int) []int32
}

type closureBias int

const (
	biasCloseIn closureBias = iota
	biasCloseOut
)

// seededPhase scans seed pairs (s,t): s an in-node of its block, t an
// out-node of its block, s reaches t, different blocks. For each seed it
// grows a candidate sound union with both biases and merges any sound
// union of ≥2 blocks it finds, continuing the scan in place (merges can
// stale later seeds, but strongFixpoint always runs one final clean pass
// over fresh interface nodes, so nothing is missed). Returns whether a
// merge happened.
func (p *partitioner) seededPhase() bool {
	changed := false
	ins, outs := p.interfaceNodes()
	// growSeed shares no buffers with ins/outs (insBuf/outsBuf), so the
	// seed scan stays valid across merges inside the loop.
	for _, s := range ins {
		if p.canceled() {
			return changed
		}
		row := p.o.Reach().Row(s)
		for _, t := range outs {
			if p.blockOf[s] == p.blockOf[t] || !row.Test(t) {
				continue
			}
			for _, bias := range []closureBias{biasCloseIn, biasCloseOut} {
				ids, ok := p.growSeed(s, t, bias)
				if ok && len(ids) >= 2 {
					p.mergeBlocks(ids)
					changed = true
					break
				}
			}
		}
	}
	return changed
}

// interfaceNodes returns all block-level in-nodes and out-nodes. The
// slices alias reusable buffers valid until the next call.
func (p *partitioner) interfaceNodes() (ins, outs []int) {
	g := p.o.Workflow().Graph()
	ins, outs = p.insBuf[:0], p.outsBuf[:0]
	defer func() { p.insBuf, p.outsBuf = ins[:0], outs[:0] }()
	for _, t := range p.members {
		bt := p.blockOf[t]
		for _, q := range g.Preds(t) {
			if !p.memberSet.Test(int(q)) || p.blockOf[q] != bt {
				ins = append(ins, t)
				break
			}
		}
		for _, q := range g.Succs(t) {
			if !p.memberSet.Test(int(q)) || p.blockOf[q] != bt {
				outs = append(outs, t)
				break
			}
		}
	}
	return ins, outs
}

// doomedIn returns, for the committed out-node t, the members whose
// forced close-in cascade provably escapes the composite: w with
// ¬R[w][t] is doomed when a direct predecessor lies outside the
// composite, or when a direct predecessor is itself a doomed ¬R[·][t]
// node (absorbing it forces the same dead end). Computed once per t in
// topological order and cached; it depends only on the member set.
func (p *partitioner) doomedIn(t int) *bitset.Set {
	if s := p.doomIn[t]; s != nil {
		return s
	}
	g := p.o.Workflow().Graph()
	reach := p.o.Reach()
	doom := bitset.New(p.n)
	for _, w := range p.topo {
		if reach.Reaches(w, t) {
			continue
		}
		for _, q := range g.Preds(w) {
			if !p.memberSet.Test(int(q)) || doom.Test(int(q)) {
				doom.Set(w)
				break
			}
		}
	}
	p.doomIn[t] = doom
	return doom
}

// doomedOut is the successor-side dual for the committed in-node s.
func (p *partitioner) doomedOut(s int) *bitset.Set {
	if d := p.doomOut[s]; d != nil {
		return d
	}
	g := p.o.Workflow().Graph()
	reach := p.o.Reach()
	doom := bitset.New(p.n)
	for i := len(p.topo) - 1; i >= 0; i-- {
		w := p.topo[i]
		if reach.Reaches(s, w) {
			continue
		}
		for _, q := range g.Succs(w) {
			if !p.memberSet.Test(int(q)) || doom.Test(int(q)) {
				doom.Set(w)
				break
			}
		}
	}
	p.doomOut[s] = doom
	return doom
}

// growSeed grows a candidate union from blocks of s and t under the
// commitment that s remains an in-node and t an out-node of the union.
// Returns the merged block ids when the union becomes sound.
func (p *partitioner) growSeed(s, t int, bias closureBias) ([]int, bool) {
	p.stats.ClosureRuns++
	g := p.o.Workflow().Graph()
	reach := p.o.Reach()
	doomIn := p.doomedIn(t)
	doomOut := p.doomedOut(s)
	u := p.unionSet
	u.CopyFrom(p.blockSets[p.blockOf[s]])
	u.Or(p.blockSets[p.blockOf[t]])
	ids := append(p.growIDs[:0], p.blockOf[s], p.blockOf[t])
	defer func() { p.growIDs = ids[:0] }()
	inIDs := p.idMark
	inIDs.Reset()
	inIDs.Set(p.blockOf[s])
	inIDs.Set(p.blockOf[t])

	absorbPreds := func(x int) bool {
		progress := false
		for _, q32 := range g.Preds(x) {
			q := int(q32)
			if u.Test(q) {
				continue
			}
			if !p.memberSet.Test(q) {
				return false // x can never be internally fed
			}
			if doomIn.Test(q) {
				return false // q's own cascade provably escapes
			}
			qb := p.blockOf[q]
			if !inIDs.Test(qb) {
				inIDs.Set(qb)
				ids = append(ids, qb)
				u.Or(p.blockSets[qb])
				progress = true
			}
		}
		return progress
	}
	absorbSuccs := func(x int) bool {
		progress := false
		for _, q32 := range g.Succs(x) {
			q := int(q32)
			if u.Test(q) {
				continue
			}
			if !p.memberSet.Test(q) {
				return false
			}
			if doomOut.Test(q) {
				return false
			}
			qb := p.blockOf[q]
			if !inIDs.Test(qb) {
				inIDs.Set(qb)
				ids = append(ids, qb)
				u.Or(p.blockSets[qb])
				progress = true
			}
		}
		return progress
	}

	for iter := 0; iter <= len(p.members); iter++ {
		in, out := p.o.InOutAppend(u, p.inBuf[:0], p.outBuf[:0])
		p.inBuf, p.outBuf = in[:0], out[:0]
		// Locate the first violation (allocation-free scan).
		var vu, vv = -1, -1
		outMask := p.scratch
		outMask.Reset()
		for _, o := range out {
			outMask.Set(o)
		}
		for _, x := range in {
			if y := outMask.FirstNotIn(reach.Row(x)); y != -1 {
				vu, vv = x, y
				break
			}
		}
		if vu == -1 {
			return ids, true // sound
		}
		switch {
		case !reach.Reaches(vu, t):
			// vu can never reach the committed out-node t, so vu must
			// stop being an in-node: absorb its predecessors.
			if doomIn.Test(vu) || !absorbPreds(vu) {
				return nil, false
			}
		case !reach.Reaches(s, vv):
			// The committed in-node s can never reach vv, so vv must
			// stop being an out-node: absorb its successors.
			if doomOut.Test(vv) || !absorbSuccs(vv) {
				return nil, false
			}
		default:
			// Ambiguous: either resolution is locally consistent.
			if bias == biasCloseIn {
				if !absorbPreds(vu) && !absorbSuccs(vv) {
					return nil, false
				}
			} else {
				if !absorbSuccs(vv) && !absorbPreds(vu) {
					return nil, false
				}
			}
		}
	}
	return nil, false
}

// exhaustivePhase merges any combinable subset found by brute force.
// Returns true when the search was complete (block count within limit),
// in which case the final partition is unconditionally strongly local
// optimal.
func (p *partitioner) exhaustivePhase(limit int) bool {
	for {
		if p.canceled() {
			return false
		}
		ids := p.aliveIDs()
		k := len(ids)
		if k > limit {
			return false
		}
		if k < 2 {
			return true
		}
		found := false
		for mask := 3; mask < 1<<k; mask++ {
			if mask&0xFFF == 0 && p.canceled() {
				return false
			}
			if popcount(mask) < 2 {
				continue
			}
			sel := p.selBuf[:0]
			for b := 0; b < k; b++ {
				if mask&(1<<b) != 0 {
					sel = append(sel, ids[b])
				}
			}
			p.selBuf = sel[:0]
			if p.unionSound(sel...) {
				p.mergeBlocks(sel)
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
