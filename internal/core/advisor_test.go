package core

import (
	"math/rand"
	"testing"

	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
)

func TestAdvisorCanAddAndSafeAdditions(t *testing.T) {
	wf, _ := repo.Figure1()
	o := soundness.NewOracle(wf)
	a := NewAdvisor(o)

	t4, t5, t7 := wf.MustIndex("4"), wf.MustIndex("5"), wf.MustIndex("7")
	// {4} + 5 stays sound (4→5 chain); {4} + 7 becomes the Figure 1
	// unsound composite.
	if !a.CanAdd([]int{t4}, t5) {
		t.Fatal("adding 5 to {4} must be safe")
	}
	if a.CanAdd([]int{t4}, t7) {
		t.Fatal("adding 7 to {4} recreates composite 16: unsafe")
	}
	safe := a.SafeAdditions([]int{t4}, []int{t5, t7, t4})
	if len(safe) != 1 || safe[0] != t5 {
		t.Fatalf("SafeAdditions = %v, want [%d]", safe, t5)
	}
}

func TestAdvisorComplete(t *testing.T) {
	wf, _ := repo.Figure1()
	o := soundness.NewOracle(wf)
	a := NewAdvisor(o)

	// Already sound drafts come back unchanged.
	t1, t2 := wf.MustIndex("1"), wf.MustIndex("2")
	got, ok := a.Complete([]int{t1, t2})
	if !ok || len(got) != 2 {
		t.Fatalf("Complete(sound) = %v, %v", got, ok)
	}

	// The unsound {4,7} draft must be extended to a sound superset.
	t4, t7 := wf.MustIndex("4"), wf.MustIndex("7")
	got, ok = a.Complete([]int{t4, t7})
	if !ok {
		t.Fatal("completion must exist")
	}
	if len(got) <= 2 {
		t.Fatalf("completion must grow the draft, got %v", got)
	}
	if sound, viol := o.SoundSlice(got); !sound {
		t.Fatalf("completion unsound: %v", viol)
	}
	// The original draft survives inside the completion.
	has := map[int]bool{}
	for _, x := range got {
		has[x] = true
	}
	if !has[t4] || !has[t7] {
		t.Fatalf("completion %v lost the draft tasks", got)
	}
}

func TestAdvisorCompleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for c := 0; c < 60; c++ {
		wf, members := randomCase(rng, 12)
		o := soundness.NewOracle(wf)
		a := NewAdvisor(o)
		got, ok := a.Complete(members)
		if !ok {
			t.Fatalf("case %d: completion must always exist (whole workflow is sound)", c)
		}
		if sound, viol := o.SoundSlice(got); !sound {
			t.Fatalf("case %d: completion unsound: %v", c, viol)
		}
	}
}

func TestCompactShrinksSoundViews(t *testing.T) {
	wf, v := repo.Figure1()
	o := soundness.NewOracle(wf)
	// Correct first, then compact: the interaction the paper leaves open.
	vc, err := CorrectView(o, v, Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	compacted, merges, err := Compact(o, vc.Corrected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep := soundness.ValidateView(o, compacted); !rep.Sound {
		t.Fatal("compacted view must stay sound")
	}
	if compacted.N() > vc.Corrected.N() {
		t.Fatal("compaction must not grow the view")
	}
	if merges > 0 && compacted.N() != vc.Corrected.N()-merges {
		t.Fatalf("merges=%d but composites %d → %d", merges, vc.Corrected.N(), compacted.N())
	}
	// No remaining pair is combinable: the compacted view is weakly
	// locally optimal at the view level.
	var blocks [][]int
	for ci := 0; ci < compacted.N(); ci++ {
		blocks = append(blocks, compacted.Composite(ci).Members())
	}
	if ok, pair := WeakOptimal(o, blocks); !ok {
		t.Fatalf("compacted view still has combinable pair %v", pair)
	}
}

func TestCompactRespectsMaxMerges(t *testing.T) {
	// An atomic view of a chain merges aggressively; cap it at 1.
	wf, _ := repo.Figure1()
	o := soundness.NewOracle(wf)
	atomic := view.Atomic(wf)
	compacted, merges, err := Compact(o, atomic, 1)
	if err != nil {
		t.Fatal(err)
	}
	if merges != 1 || compacted.N() != atomic.N()-1 {
		t.Fatalf("merges=%d composites=%d", merges, compacted.N())
	}
}
