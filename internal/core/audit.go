package core

import (
	"fmt"
	"sort"

	"wolves/internal/bitset"
	"wolves/internal/soundness"
)

// This file implements the optimality auditors: independent checkers for
// the guarantees each corrector claims. The test suite uses them to pin
// the correctors to Definitions 2.5 and 2.6; the experiment harness uses
// them to certify the E2/E3 tables.

// CheckSplit verifies that blocks exactly partition members and that
// every block is sound. It returns nil on success.
func CheckSplit(o *soundness.Oracle, members []int, blocks [][]int) error {
	n := o.Workflow().N()
	want := bitset.New(n)
	for _, t := range members {
		want.Set(t)
	}
	got := bitset.New(n)
	for bi, blk := range blocks {
		if len(blk) == 0 {
			return fmt.Errorf("core: block %d is empty", bi)
		}
		for _, t := range blk {
			if !want.Test(t) {
				return fmt.Errorf("core: block %d contains foreign task %d", bi, t)
			}
			if got.Test(t) {
				return fmt.Errorf("core: task %d appears in two blocks", t)
			}
			got.Set(t)
		}
		if ok, viol := o.SoundSlice(blk); !ok {
			return fmt.Errorf("core: block %d unsound: %d cannot reach %d", bi, viol.From, viol.To)
		}
	}
	if !got.Equal(want) {
		return fmt.Errorf("core: blocks cover %d of %d members", got.Count(), want.Count())
	}
	return nil
}

// Combinable reports whether the union of the given task sets is sound
// (Definition 2.4).
func Combinable(o *soundness.Oracle, sets ...[]int) bool {
	u := bitset.New(o.Workflow().N())
	for _, s := range sets {
		for _, t := range s {
			u.Set(t)
		}
	}
	return o.SetSoundQuick(u)
}

// WeakOptimal checks Definition 2.5: no two blocks are combinable. On
// failure it returns the indices of a combinable pair.
func WeakOptimal(o *soundness.Oracle, blocks [][]int) (bool, [2]int) {
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			if Combinable(o, blocks[i], blocks[j]) {
				return false, [2]int{i, j}
			}
		}
	}
	return true, [2]int{}
}

// StrongOptimal checks Definition 2.6 exhaustively: no subset of ≥2
// blocks is combinable. complete is false when len(blocks) exceeds limit
// and the check was skipped. On failure it returns a witness subset of
// block indices.
func StrongOptimal(o *soundness.Oracle, blocks [][]int, limit int) (optimal bool, witness []int, complete bool) {
	k := len(blocks)
	if k > limit {
		return false, nil, false
	}
	n := o.Workflow().N()
	sets := make([]*bitset.Set, k)
	for i, blk := range blocks {
		s := bitset.New(n)
		for _, t := range blk {
			s.Set(t)
		}
		sets[i] = s
	}
	u := bitset.New(n)
	for mask := 3; mask < 1<<k; mask++ {
		if popcount(mask) < 2 {
			continue
		}
		u.Reset()
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				u.Or(sets[b])
			}
		}
		if o.SetSoundQuick(u) {
			sel := make([]int, 0, popcount(mask))
			for b := 0; b < k; b++ {
				if mask&(1<<b) != 0 {
					sel = append(sel, b)
				}
			}
			return false, sel, true
		}
	}
	return true, nil, true
}

// Quality is the paper's quality metric (§3.2): the ratio of the number
// of blocks produced by the optimal corrector to the number produced by
// the chosen algorithm; 1.0 is best.
func Quality(optimalBlocks, algBlocks int) float64 {
	if algBlocks == 0 {
		return 0
	}
	return float64(optimalBlocks) / float64(algBlocks)
}

// SortBlocks normalizes a block list in place: members ascending within
// each block, blocks ordered by smallest member.
func SortBlocks(blocks [][]int) {
	for _, b := range blocks {
		sort.Ints(b)
	}
	sort.Slice(blocks, func(a, b int) bool {
		if len(blocks[a]) == 0 || len(blocks[b]) == 0 {
			return len(blocks[a]) > len(blocks[b])
		}
		return blocks[a][0] < blocks[b][0]
	})
}
