package core

import (
	"math/rand"
	"testing"

	"wolves/internal/gen"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
)

func TestMergeUpRepairsEveryRepositoryView(t *testing.T) {
	for _, e := range repo.Catalog() {
		o := soundness.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			res, err := MergeUp(o, vs.View)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Key, vs.View.Name(), err)
			}
			if rep := soundness.ValidateView(o, res.Corrected); !rep.Sound {
				t.Fatalf("%s/%s: merge-up result unsound", e.Key, vs.View.Name())
			}
			if vs.WantSound {
				if res.Merges != 0 || res.CompositesAfter != res.CompositesBefore {
					t.Fatalf("%s/%s: sound view must be untouched: %+v", e.Key, vs.View.Name(), res)
				}
			} else {
				if res.Merges == 0 || res.CompositesAfter >= res.CompositesBefore {
					t.Fatalf("%s/%s: unsound view must shrink: %+v", e.Key, vs.View.Name(), res)
				}
			}
		}
	}
}

func TestMergeUpForeignView(t *testing.T) {
	wf, _ := repo.Figure1()
	f3 := repo.Figure3()
	o := soundness.NewOracle(wf)
	if _, err := MergeUp(o, f3.View); err == nil {
		t.Fatal("foreign view must error")
	}
}

func TestMergeUpRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 40; c++ {
		wf, _ := randomCase(rng, 10)
		o := soundness.NewOracle(wf)
		k := 1 + rng.Intn(wf.N())
		part := make([]int, wf.N())
		for i := 0; i < k; i++ {
			part[i] = i
		}
		for i := k; i < wf.N(); i++ {
			part[i] = rng.Intn(k)
		}
		rng.Shuffle(len(part), func(i, j int) { part[i], part[j] = part[j], part[i] })
		v, err := view.FromPartition(wf, "rv", part)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MergeUp(o, v)
		if err != nil {
			t.Fatalf("case %d: %v", c, err)
		}
		if rep := soundness.ValidateView(o, res.Corrected); !rep.Sound {
			t.Fatalf("case %d: unsound after merge-up", c)
		}
	}
}

func TestSplitTaskPhasesDegenerateAndFull(t *testing.T) {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	// pairs-only equals the weak corrector.
	weak, err := SplitTask(o, f.T, Weak, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := SplitTaskPhases(o, f.T, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Blocks) != len(weak.Blocks) {
		t.Fatalf("pairs-only = %d blocks, weak = %d", len(p1.Blocks), len(weak.Blocks))
	}
	// full strong equals the strong corrector.
	strong, err := SplitTask(o, f.T, Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := SplitTaskPhases(o, f.T, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3.Blocks) != len(strong.Blocks) {
		t.Fatalf("full phases = %d blocks, strong = %d", len(p3.Blocks), len(strong.Blocks))
	}
	if err := CheckSplit(o, f.T, p3.Blocks); err != nil {
		t.Fatal(err)
	}
	if _, err := SplitTaskPhases(o, nil, true, true); err == nil {
		t.Fatal("empty members must error")
	}
}

func TestBicliquePhaseGap(t *testing.T) {
	// The seeded phase is what closes the biclique gap.
	wf, members := gen.BicliqueTask(3)
	o := soundness.NewOracle(wf)
	noSeed, err := SplitTaskPhases(o, members, true, false)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := SplitTaskPhases(o, members, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(noSeed.Blocks) != 10 || len(seeded.Blocks) != 5 {
		t.Fatalf("phase gap wrong: %d vs %d", len(noSeed.Blocks), len(seeded.Blocks))
	}
}

func TestCheckSplitRejectsBadSplits(t *testing.T) {
	wf, _ := repo.Figure1()
	o := soundness.NewOracle(wf)
	t4, t5, t7 := wf.MustIndex("4"), wf.MustIndex("5"), wf.MustIndex("7")
	members := []int{t4, t7}
	cases := map[string][][]int{
		"empty block":   {{t4}, {}, {t7}},
		"foreign task":  {{t4}, {t7}, {t5}},
		"duplicate":     {{t4}, {t4, t7}},
		"missing task":  {{t4}},
		"unsound block": {{t4, t7}},
	}
	for name, blocks := range cases {
		if err := CheckSplit(o, members, blocks); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if err := CheckSplit(o, members, [][]int{{t4}, {t7}}); err != nil {
		t.Errorf("valid split rejected: %v", err)
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions()
	if opts.OptimalLimit != 20 || opts.AuditLimit != 22 {
		t.Fatalf("defaults = %+v", opts)
	}
	// Zero values fall back to documented defaults.
	var zero *Options
	eff := zero.withDefaults()
	if eff.OptimalLimit != 20 || eff.AuditLimit != 22 {
		t.Fatalf("withDefaults(nil) = %+v", eff)
	}
	eff = (&Options{OptimalLimit: 5}).withDefaults()
	if eff.OptimalLimit != 5 || eff.AuditLimit != 22 {
		t.Fatalf("partial override = %+v", eff)
	}
}
