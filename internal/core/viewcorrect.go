package core

import (
	"context"
	"fmt"
	"time"

	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// TaskCorrection records how one unsound composite was repaired.
type TaskCorrection struct {
	CompositeID string
	Before      int // atomic tasks in the composite
	After       int // sound blocks it was split into
	Result      *Result
}

// ViewCorrection is the outcome of correcting a whole view.
type ViewCorrection struct {
	Criterion Criterion
	// Corrected is the repaired, provably sound view.
	Corrected *view.View
	// Tasks lists the per-composite corrections, in composite order.
	Tasks []TaskCorrection
	// CompositesBefore/After count view composites before and after.
	CompositesBefore int
	CompositesAfter  int
	Elapsed          time.Duration
}

// CorrectView splits every unsound composite of v under the chosen
// criterion and returns the repaired view. Because a block's soundness
// depends only on its member set, repairing one composite never breaks
// another, and the result is sound by construction (verified by the
// caller-facing report).
// Deprecated: use CorrectViewCtx so callers can cancel mid-repair.
func CorrectView(o *soundness.Oracle, v *view.View, crit Criterion, opts *Options) (*ViewCorrection, error) {
	return CorrectViewCtx(context.Background(), o, v, crit, opts) //lint:allow ctxpass compat wrapper anchors its own root
}

// CorrectViewCtx is CorrectView with cooperative cancellation: the
// initial validation and every per-composite split observe ctx, so a
// fired context aborts the repair promptly — even mid-way through an
// exponential Optimal split — returning an error that wraps ErrCanceled.
func CorrectViewCtx(ctx context.Context, o *soundness.Oracle, v *view.View, crit Criterion, opts *Options) (*ViewCorrection, error) {
	return CorrectViewWorkersCtx(ctx, o, v, crit, opts, 0)
}

// CorrectViewWorkersCtx is CorrectViewCtx with an explicit fan-out width
// for the initial validation (0 = GOMAXPROCS, 1 = sequential). Callers
// that already occupy a worker pool — the Engine's batch entry points —
// pass 1 so a configured fan-out cap is not multiplied per job.
func CorrectViewWorkersCtx(ctx context.Context, o *soundness.Oracle, v *view.View, crit Criterion, opts *Options, workers int) (*ViewCorrection, error) {
	if !workflow.Same(v.Workflow(), o.Workflow()) {
		return nil, fmt.Errorf("core: view %q belongs to a different workflow", v.Name())
	}
	start := time.Now()
	rep, err := soundness.ValidateViewParallelCtx(ctx, o, v, workers)
	if err != nil {
		return nil, canceledErr(ctx)
	}
	vc := &ViewCorrection{Criterion: crit, CompositesBefore: v.N()}
	cur := v
	for _, ci := range rep.Unsound {
		comp := v.Composite(ci)
		res, err := SplitTaskCtx(ctx, o, comp.Members(), crit, opts)
		if err != nil {
			return nil, fmt.Errorf("core: splitting composite %q: %w", comp.ID, err)
		}
		next, err := cur.ReplaceComposite(comp.ID, res.Blocks)
		if err != nil {
			return nil, fmt.Errorf("core: applying split of %q: %w", comp.ID, err)
		}
		cur = next
		vc.Tasks = append(vc.Tasks, TaskCorrection{
			CompositeID: comp.ID,
			Before:      comp.Size(),
			After:       len(res.Blocks),
			Result:      res,
		})
	}
	vc.Corrected = cur
	vc.CompositesAfter = cur.N()
	vc.Elapsed = time.Since(start)
	return vc, nil
}
