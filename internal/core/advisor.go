package core

import (
	"sort"

	"wolves/internal/bitset"
	"wolves/internal/soundness"
	"wolves/internal/view"
)

// The demo offers "soundness diagnosis and correction ... by making
// suggestions while users are creating a view" (§1). Advisor implements
// that interactive half: given a composite under construction it answers
// which tasks can join it without breaking soundness, and proposes the
// smallest forced completion when the current draft is already unsound.

// Advisor answers view-design-time soundness questions.
type Advisor struct {
	o *soundness.Oracle
}

// NewAdvisor wraps an oracle.
func NewAdvisor(o *soundness.Oracle) *Advisor { return &Advisor{o: o} }

// CanAdd reports whether composite ∪ {task} is sound.
func (a *Advisor) CanAdd(composite []int, task int) bool {
	s := bitset.New(a.o.Workflow().N())
	for _, t := range composite {
		s.Set(t)
	}
	s.Set(task)
	return a.o.SetSoundQuick(s)
}

// SafeAdditions returns the candidate tasks whose individual addition
// keeps the composite sound, ascending. Candidates already inside the
// composite are skipped.
func (a *Advisor) SafeAdditions(composite []int, candidates []int) []int {
	n := a.o.Workflow().N()
	base := bitset.New(n)
	for _, t := range composite {
		base.Set(t)
	}
	var out []int
	for _, c := range candidates {
		if base.Test(c) {
			continue
		}
		// c is outside the composite, so set-test-clear restores base
		// without cloning it per candidate.
		base.Set(c)
		if a.o.SetSoundQuick(base) {
			out = append(out, c)
		}
		base.Clear(c)
	}
	sort.Ints(out)
	return out
}

// Complete extends an unsound draft composite to a sound superset by
// repeatedly resolving the first violation: the in-node side absorbs its
// direct predecessors, the out-node side its direct successors,
// whichever adds fewer tasks. It returns the sound superset (equal to
// the input when already sound) and true, or nil and false when no
// sound superset exists short of absorbing a workflow source/sink chain
// that leaves nothing to distinguish (never happens on connected
// workflows: the full task set is always sound).
func (a *Advisor) Complete(composite []int) ([]int, bool) {
	wf := a.o.Workflow()
	g := wf.Graph()
	s := bitset.New(wf.N())
	for _, t := range composite {
		s.Set(t)
	}
	for {
		ok, viol := a.o.SetSound(s)
		if ok {
			return s.Members(), true
		}
		// Absorb the cheaper side of the violation.
		var preds, succs []int
		for _, p := range g.Preds(viol.From) {
			if !s.Test(int(p)) {
				preds = append(preds, int(p))
			}
		}
		for _, q := range g.Succs(viol.To) {
			if !s.Test(int(q)) {
				succs = append(succs, int(q))
			}
		}
		switch {
		case len(preds) == 0 && len(succs) == 0:
			// Cannot happen: a violation witness has an external
			// predecessor and an external successor by definition.
			return nil, false
		case len(succs) == 0 || (len(preds) > 0 && len(preds) <= len(succs)):
			for _, p := range preds {
				s.Set(p)
			}
		default:
			for _, q := range succs {
				s.Set(q)
			}
		}
	}
}

// Compact addresses the paper's open problem ("allowing view abstraction
// by task merging, and the interaction between splitting and merging"):
// after splitting has made a view sound, Compact greedily merges
// composite pairs whose union is still sound, shrinking the view without
// reintroducing unsoundness. maxMerges ≤ 0 means unbounded. The result
// view is sound whenever the input view is sound.
//
// Caution — and this is the A2 experiment's point: soundness alone does
// not bound information loss. On convergent workflows unbounded
// compaction degenerates to the trivial single-composite view (which is
// vacuously sound), so callers should pass a merge budget or a stopping
// policy of their own. The degeneration is precisely why the paper calls
// the splitting/merging interaction an open problem rather than a solved
// feature.
func Compact(o *soundness.Oracle, v *view.View, maxMerges int) (*view.View, int, error) {
	cur := v
	merges := 0
	for maxMerges <= 0 || merges < maxMerges {
		found := false
		k := cur.N()
		var sets []*bitset.Set
		n := o.Workflow().N()
		for ci := 0; ci < k; ci++ {
			s := bitset.New(n)
			for _, t := range cur.Composite(ci).Members() {
				s.Set(t)
			}
			sets = append(sets, s)
		}
		u := bitset.New(n)
	pairs:
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				u.CopyFrom(sets[i])
				u.Or(sets[j])
				if !o.SetSoundQuick(u) {
					continue
				}
				merged, err := cur.MergeComposites(
					cur.Composite(i).ID, cur.Composite(i).ID, cur.Composite(j).ID)
				if err != nil {
					return nil, merges, err
				}
				cur = merged
				merges++
				found = true
				break pairs
			}
		}
		if !found {
			break
		}
	}
	return cur, merges, nil
}
