package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"wolves/internal/soundness"
)

// optimalSplit computes the minimum number of sound blocks partitioning
// the member set, by dynamic programming over subsets:
//
//	dp[mask] = min blocks to partition mask
//	         = 1 + min over sound submasks s ∋ lowest(mask) of dp[mask^s]
//
// Fixing the lowest member in the chosen submask makes every partition
// counted exactly once. Soundness of all 2^n local subsets is
// precomputed; in/out sets of a local subset follow from per-member
// predecessor/successor masks plus "has an external neighbour outside
// the whole composite" flags, and reachability is the workflow-global
// closure restricted to the members (Definition 2.3 allows connecting
// paths to leave the composite).
// Cancellation: the precompute and DP loops poll ctx every
// cancelCheckMask+1 iterations, so a fired context aborts a 2^20-state
// run within milliseconds (well under the ~100ms budget the Engine
// promises) instead of finishing a multi-second enumeration.
func optimalSplit(ctx context.Context, o *soundness.Oracle, members []int, limit int) ([][]int, error) {
	n := len(members)
	if n > limit {
		return nil, fmt.Errorf("%w: %d tasks (limit %d)", ErrOptimalLimit, n, limit)
	}
	local := append([]int(nil), members...)
	sort.Ints(local)
	pos := make(map[int]int, n)
	for i, t := range local {
		pos[t] = i
	}
	g := o.Workflow().Graph()
	reach := o.Reach()

	predM := make([]uint32, n)  // predecessors within the composite
	succM := make([]uint32, n)  // successors within the composite
	reachM := make([]uint32, n) // global reachability restricted to members
	extIn := make([]bool, n)    // predecessor outside the composite
	extOut := make([]bool, n)   // successor outside the composite
	for i, t := range local {
		for _, q := range g.Preds(t) {
			if j, ok := pos[int(q)]; ok {
				predM[i] |= 1 << j
			} else {
				extIn[i] = true
			}
		}
		for _, q := range g.Succs(t) {
			if j, ok := pos[int(q)]; ok {
				succM[i] |= 1 << j
			} else {
				extOut[i] = true
			}
		}
		row := reach.Row(t)
		for j, u := range local {
			if row.Test(u) {
				reachM[i] |= 1 << j
			}
		}
	}

	// cancelCheckMask throttles ctx polling: one Err() call per 8192
	// loop iterations keeps the poll overhead unmeasurable while bounding
	// the post-cancellation latency to microseconds of extra work.
	const cancelCheckMask = 8191

	size := 1 << n
	sound := make([]bool, size)
	for mask := 1; mask < size; mask++ {
		if mask&cancelCheckMask == 0 && ctx.Err() != nil {
			return nil, canceledErr(ctx)
		}
		var inM, outM uint32
		m := uint32(mask)
		for w := m; w != 0; w &= w - 1 {
			i := bits.TrailingZeros32(w)
			if extIn[i] || predM[i]&^m != 0 {
				inM |= 1 << i
			}
			if extOut[i] || succM[i]&^m != 0 {
				outM |= 1 << i
			}
		}
		ok := true
		for w := inM; w != 0; w &= w - 1 {
			i := bits.TrailingZeros32(w)
			if outM&^reachM[i] != 0 {
				ok = false
				break
			}
		}
		sound[mask] = ok
	}

	const inf = int32(1) << 30
	dp := make([]int32, size)
	choice := make([]uint32, size)
	steps := 0 // submask-enumeration steps since the last ctx poll
	for mask := 1; mask < size; mask++ {
		dp[mask] = inf
		low := uint32(1) << uint(bits.TrailingZeros32(uint32(mask)))
		// Enumerate submasks of mask containing the lowest set bit. The
		// total submask work is 3^n, far above the 2^n outer loop, so the
		// cancellation poll counts inner steps.
		for s := uint32(mask); s != 0; s = (s - 1) & uint32(mask) {
			steps++
			if steps&cancelCheckMask == 0 && ctx.Err() != nil {
				return nil, canceledErr(ctx)
			}
			if s&low == 0 || !sound[s] {
				continue
			}
			if c := dp[uint32(mask)&^s] + 1; c < dp[mask] {
				dp[mask] = c
				choice[mask] = s
			}
		}
	}
	full := uint32(size - 1)
	if dp[full] >= inf {
		// Unreachable: singletons are always sound.
		return nil, fmt.Errorf("core: internal error: no sound partition found")
	}
	var blocks [][]int
	for m := full; m != 0; {
		s := choice[m]
		var blk []int
		for w := s; w != 0; w &= w - 1 {
			blk = append(blk, local[bits.TrailingZeros32(w)])
		}
		blocks = append(blocks, blk)
		m &^= s
	}
	sort.Slice(blocks, func(a, b int) bool { return blocks[a][0] < blocks[b][0] })
	return blocks, nil
}
