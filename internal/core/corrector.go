// Package core implements the Unsound View Corrector of WOLVES: the
// paper's primary contribution. An unsound composite task is resolved by
// splitting it into sound blocks under one of three criteria:
//
//   - Weak local optimality (Definition 2.5): no two result blocks are
//     combinable. Greedy pair merging; polynomial.
//   - Strong local optimality (Definition 2.6): no subset of result
//     blocks is combinable. Pair merging plus ancestor/descendant
//     closures plus a seeded conflict-closure search; polynomial. The
//     StrongAudited variant additionally runs the exhaustive
//     Definition-2.6 auditor and merges anything it finds, upgrading the
//     empirical guarantee to an unconditional one.
//   - Optimality: the minimum number of sound blocks (NP-hard, Theorem
//     2.2), via a subset dynamic program that is exact up to
//     Options.OptimalLimit tasks.
//
// Splitting one composite never affects the soundness of any other
// composite (a block's soundness depends only on its member set and the
// workflow), so CorrectView repairs a whole view by splitting each
// unsound composite independently.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"wolves/internal/bitset"
	"wolves/internal/soundness"
)

// Criterion selects a correction algorithm.
type Criterion int

const (
	// Weak is the weakly local optimal corrector (Definition 2.5).
	Weak Criterion = iota
	// Strong is the strongly local optimal corrector (Definition 2.6,
	// polynomial reconstruction; audited empirically).
	Strong
	// StrongAudited is Strong plus the exhaustive subset auditor; its
	// output is unconditionally strongly local optimal (and Audited is
	// set) whenever the block count is within Options.AuditLimit.
	StrongAudited
	// Optimal is the exact minimum split (exponential subset DP).
	Optimal
)

// String names the criterion as in the demo UI.
func (c Criterion) String() string {
	switch c {
	case Weak:
		return "weak-local-optimal"
	case Strong:
		return "strong-local-optimal"
	case StrongAudited:
		return "strong-local-optimal-audited"
	case Optimal:
		return "optimal"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// ParseCriterion maps CLI names to criteria.
func ParseCriterion(s string) (Criterion, error) {
	switch s {
	case "weak":
		return Weak, nil
	case "strong":
		return Strong, nil
	case "strong-audited", "audited":
		return StrongAudited, nil
	case "optimal":
		return Optimal, nil
	}
	return 0, fmt.Errorf("core: unknown criterion %q (want weak|strong|strong-audited|optimal)", s)
}

// Options tunes the correctors.
type Options struct {
	// OptimalLimit caps the composite size accepted by the Optimal
	// corrector (the DP allocates 2^n state). Zero means the default of
	// 20; a negative limit explicitly rejects every composite (the
	// Optimal corrector then always returns ErrOptimalLimit).
	OptimalLimit int
	// AuditLimit caps the block count for exhaustive Definition-2.6
	// audits. Zero means the default of 22; a negative limit explicitly
	// disables the audit (StrongAudited then never sets Audited).
	AuditLimit int
}

// DefaultOptions returns the documented defaults.
func DefaultOptions() *Options { return &Options{OptimalLimit: 20, AuditLimit: 22} }

// withDefaults substitutes defaults for unset (zero) fields only.
// Explicitly-set values — including small and negative limits — pass
// through untouched, so a caller who asks for a tight cap gets that cap
// instead of a silent reset to the default.
func (o *Options) withDefaults() Options {
	out := Options{OptimalLimit: 20, AuditLimit: 22}
	if o != nil {
		if o.OptimalLimit != 0 {
			out.OptimalLimit = o.OptimalLimit
		}
		if o.AuditLimit != 0 {
			out.AuditLimit = o.AuditLimit
		}
	}
	return out
}

// Stats instruments a correction run.
type Stats struct {
	SoundChecks int           // soundness-oracle queries
	Merges      int           // block merges performed
	ClosureRuns int           // seeded closure searches attempted
	Elapsed     time.Duration // wall-clock time of the split
}

// Result is the outcome of splitting one composite task.
type Result struct {
	Criterion Criterion
	// Blocks partition the input member set; each block is sound.
	// Blocks are sorted internally and ordered by smallest member.
	Blocks [][]int
	// Audited reports that strong local optimality was verified (or
	// enforced) exhaustively.
	Audited bool
	Stats   Stats
}

// ErrOptimalLimit is returned when the composite exceeds OptimalLimit.
var ErrOptimalLimit = errors.New("core: composite too large for the optimal corrector")

// ErrOptimalTooLarge is the historical name of ErrOptimalLimit.
//
// Deprecated: test against ErrOptimalLimit.
var ErrOptimalTooLarge = ErrOptimalLimit

// ErrCanceled wraps a context cancellation observed inside a corrector;
// errors.Is(err, context.Canceled) (or context.DeadlineExceeded) also
// matches, since the context's own error is wrapped alongside.
var ErrCanceled = errors.New("core: correction canceled")

// canceledErr builds the error returned when ctx fires mid-correction.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// SplitTask splits the given member set (the atomic tasks of one
// composite) into sound blocks under the chosen criterion. A member set
// that is already sound is returned as a single block under every
// criterion.
// Deprecated: use SplitTaskCtx so callers can cancel the exponential
// optimal phase.
func SplitTask(o *soundness.Oracle, members []int, crit Criterion, opts *Options) (*Result, error) {
	return SplitTaskCtx(context.Background(), o, members, crit, opts) //lint:allow ctxpass compat wrapper anchors its own root
}

// SplitTaskCtx is SplitTask with cooperative cancellation. The
// polynomial phases poll ctx between merge passes; the exponential
// phases (the Optimal subset DP and the StrongAudited exhaustive
// auditor) poll it inside their enumeration loops every few thousand
// states, so even a 2^20-state run aborts within milliseconds of ctx
// firing. A canceled run returns an error wrapping both ErrCanceled and
// the context's own error, and no partial result.
func SplitTaskCtx(ctx context.Context, o *soundness.Oracle, members []int, crit Criterion, opts *Options) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("core: empty member set")
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(ctx)
	}
	opt := opts.withDefaults()
	start := time.Now()
	checks0 := o.Checks()
	res := &Result{Criterion: crit}

	if sound, _ := o.SoundSlice(members); sound {
		blk := append([]int(nil), members...)
		sort.Ints(blk)
		res.Blocks = [][]int{blk}
		res.Audited = true
		res.Stats.SoundChecks = o.Checks() - checks0
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}

	switch crit {
	case Weak:
		p := newPartitioner(o, members)
		p.ctx = ctx
		p.weakPass()
		if err := p.err(); err != nil {
			return nil, err
		}
		res.Blocks = p.blocks()
		res.Stats = p.stats
	case Strong, StrongAudited:
		p := newPartitioner(o, members)
		p.ctx = ctx
		p.strongFixpoint()
		if crit == StrongAudited && p.err() == nil {
			complete := p.exhaustivePhase(opt.AuditLimit)
			res.Audited = complete
		}
		if err := p.err(); err != nil {
			return nil, err
		}
		res.Blocks = p.blocks()
		res.Stats = p.stats
	case Optimal:
		blocks, err := optimalSplit(ctx, o, members, opt.OptimalLimit)
		if err != nil {
			return nil, err
		}
		res.Blocks = blocks
		res.Audited = true
	default:
		return nil, fmt.Errorf("core: unknown criterion %v", crit)
	}
	res.Stats.SoundChecks = o.Checks() - checks0
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// partitioner maintains a partition of one composite's members into
// blocks (bitsets over workflow task indices) and implements the merge
// phases shared by the weak and strong correctors.
type partitioner struct {
	o *soundness.Oracle
	// ctx carries cooperative cancellation into the merge phases; nil
	// means "never canceled". stopped latches the first observation so
	// every later phase exits immediately.
	ctx       context.Context
	stopped   bool
	n         int // workflow size
	memberSet *bitset.Set
	members   []int // ascending
	blockSets []*bitset.Set
	blockOf   []int // workflow task index → block id (members only)
	alive     []bool
	aliveN    int
	stats     Stats
	scratch   *bitset.Set
	// Reusable scratch state for the merge phases (see strong.go). The
	// block-id space is fixed at len(members): merges only retire ids.
	idMark     *bitset.Set // block-id marks: closedPhase union, growSeed union ids
	idSeen     *bitset.Set // block-id marks: blockClosure visited set
	unionSet   *bitset.Set // growSeed candidate union over task indices
	nodeQueue  []int       // blockClosure work queue
	closureIDs []int       // blockClosure result buffer
	phaseIDs   []int       // closedPhase union buffer
	growIDs    []int       // growSeed merged-id buffer
	inBuf      []int       // InOutAppend buffers for growSeed
	outBuf     []int
	insBuf     []int // interfaceNodes buffers
	outsBuf    []int
	selBuf     []int // exhaustivePhase subset buffer
	// doomIn[t] marks members whose forced close-in cascade towards the
	// committed out-node t provably escapes the composite; doomOut[s] is
	// the successor-side dual. Both depend only on the member set, so
	// they are cached for the whole split (slice-indexed by task, lazily
	// filled). See strong.go.
	doomIn  []*bitset.Set
	doomOut []*bitset.Set
	topo    []int // members in workflow topological order
}

func newPartitioner(o *soundness.Oracle, members []int) *partitioner {
	n := o.Workflow().N()
	p := &partitioner{
		o:         o,
		n:         n,
		memberSet: bitset.New(n),
		blockOf:   make([]int, n),
		scratch:   bitset.New(n),
		unionSet:  bitset.New(n),
		idMark:    bitset.New(len(members)),
		idSeen:    bitset.New(len(members)),
		doomIn:    make([]*bitset.Set, n),
		doomOut:   make([]*bitset.Set, n),
	}
	for i := range p.blockOf {
		p.blockOf[i] = -1
	}
	p.members = append(p.members, members...)
	sort.Ints(p.members)
	for _, t := range p.members {
		p.memberSet.Set(t)
	}
	for _, t := range p.members {
		id := len(p.blockSets)
		s := bitset.New(n)
		s.Set(t)
		p.blockSets = append(p.blockSets, s)
		p.blockOf[t] = id
		p.alive = append(p.alive, true)
	}
	p.aliveN = len(p.blockSets)
	order, err := o.Workflow().Graph().TopoOrder()
	if err != nil {
		panic("core: built workflows are acyclic")
	}
	for _, t := range order {
		if p.memberSet.Test(t) {
			p.topo = append(p.topo, t)
		}
	}
	return p
}

// unionSound tests whether the union of the listed blocks is sound.
func (p *partitioner) unionSound(ids ...int) bool {
	p.scratch.Reset()
	for _, id := range ids {
		p.scratch.Or(p.blockSets[id])
	}
	return p.o.SetSoundQuick(p.scratch)
}

// pairSound is unionSound for exactly two blocks without the variadic
// slice allocation (the weak corrector probes O(k²) pairs).
func (p *partitioner) pairSound(i, j int) bool {
	p.scratch.CopyFrom(p.blockSets[i])
	p.scratch.Or(p.blockSets[j])
	return p.o.SetSoundQuick(p.scratch)
}

// mergeBlocks folds the listed blocks into the lowest id among them.
func (p *partitioner) mergeBlocks(ids []int) int {
	target := ids[0]
	for _, id := range ids[1:] {
		if id < target {
			target = id
		}
	}
	for _, id := range ids {
		if id == target || !p.alive[id] {
			continue
		}
		p.blockSets[id].ForEach(func(t int) bool {
			p.blockOf[t] = target
			return true
		})
		p.blockSets[target].Or(p.blockSets[id])
		p.alive[id] = false
		p.aliveN--
		p.stats.Merges++
	}
	return target
}

// canceled reports (and latches) whether the partitioner's context has
// fired. Phases poll it at loop boundaries and unwind without merging
// further.
func (p *partitioner) canceled() bool {
	if p.stopped {
		return true
	}
	if p.ctx != nil && p.ctx.Err() != nil {
		p.stopped = true
		return true
	}
	return false
}

// err returns the cancellation error once canceled() has latched.
func (p *partitioner) err() error {
	if !p.stopped {
		return nil
	}
	return canceledErr(p.ctx)
}

// weakPass greedily merges combinable pairs until none remain, yielding
// a weakly local optimal partition. Returns whether anything merged.
func (p *partitioner) weakPass() bool {
	changed := false
	for {
		if p.canceled() {
			return changed
		}
		merged := false
		for i := 0; i < len(p.blockSets); i++ {
			if !p.alive[i] {
				continue
			}
			for j := i + 1; j < len(p.blockSets); j++ {
				if !p.alive[j] {
					continue
				}
				if p.pairSound(i, j) {
					p.mergeBlocks([]int{i, j})
					merged = true
					changed = true
				}
			}
		}
		if !merged {
			return changed
		}
	}
}

// blocks returns the partition as sorted member slices, ordered by
// smallest member.
func (p *partitioner) blocks() [][]int {
	var out [][]int
	for id, s := range p.blockSets {
		if !p.alive[id] {
			continue
		}
		out = append(out, s.Members())
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// aliveIDs returns the ids of live blocks, ascending.
func (p *partitioner) aliveIDs() []int {
	out := make([]int, 0, p.aliveN)
	for id := range p.blockSets {
		if p.alive[id] {
			out = append(out, id)
		}
	}
	return out
}
