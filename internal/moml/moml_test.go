package moml

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"wolves/internal/repo"
	"wolves/internal/soundness"
)

const sample = `<?xml version="1.0"?>
<entity name="pipeline" class="ptolemy.actor.TypedCompositeActor">
  <entity name="stageA" class="ptolemy.actor.TypedCompositeActor">
    <entity name="select" class="wolves.actor.Task">
      <property name="displayName" value="Select entries"/>
      <property name="kind" value="source"/>
    </entity>
    <entity name="split" class="wolves.actor.Task"/>
  </entity>
  <entity name="display" class="wolves.actor.Task"/>
  <relation name="r0" class="ptolemy.actor.TypedIORelation"/>
  <link port="stageA.select.output" relation="r0"/>
  <link port="stageA.split.input" relation="r0"/>
  <relation name="r1" class="ptolemy.actor.TypedIORelation"/>
  <link port="stageA.split.output" relation="r1"/>
  <link port="display.input" relation="r1"/>
</entity>
`

func TestDecodeSample(t *testing.T) {
	doc, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.Workflow
	if wf.Name() != "pipeline" || wf.N() != 3 || wf.M() != 2 {
		t.Fatalf("workflow = %v", wf)
	}
	sel, _ := wf.Index("select")
	if wf.Task(sel).Name != "Select entries" || wf.Task(sel).Kind != "source" {
		t.Fatalf("task properties lost: %+v", wf.Task(sel))
	}
	if doc.View == nil {
		t.Fatal("expected a view from the composite entity")
	}
	if doc.View.N() != 2 {
		t.Fatalf("view composites = %d", doc.View.N())
	}
	c, ok := doc.View.CompositeByID("stageA")
	if !ok || c.Size() != 2 {
		t.Fatalf("stageA = %+v", c)
	}
	// Top-level atomic became a singleton composite.
	if _, ok := doc.View.CompositeByID("display"); !ok {
		t.Fatal("display must be a singleton composite")
	}
}

func TestDecodeNoView(t *testing.T) {
	const flat = `<entity name="w" class="ptolemy.actor.TypedCompositeActor">
  <entity name="a" class="wolves.actor.Task"/>
  <entity name="b" class="wolves.actor.Task"/>
  <relation name="r" class="ptolemy.actor.TypedIORelation"/>
  <link port="a.output" relation="r"/>
  <link port="b.input" relation="r"/>
</entity>`
	doc, err := Decode(strings.NewReader(flat))
	if err != nil {
		t.Fatal(err)
	}
	if doc.View != nil {
		t.Fatal("flat file must not produce a view")
	}
	if doc.Workflow.M() != 1 {
		t.Fatal("edge lost")
	}
}

func TestDecodeFanRelation(t *testing.T) {
	// One relation with two outputs and two inputs → 4 edges.
	const fan = `<entity name="w" class="ptolemy.actor.TypedCompositeActor">
  <entity name="a" class="wolves.actor.Task"/>
  <entity name="b" class="wolves.actor.Task"/>
  <entity name="c" class="wolves.actor.Task"/>
  <entity name="d" class="wolves.actor.Task"/>
  <relation name="r" class="ptolemy.actor.TypedIORelation"/>
  <link port="a.output" relation="r"/>
  <link port="b.output" relation="r"/>
  <link port="c.input" relation="r"/>
  <link port="d.input" relation="r"/>
</entity>`
	doc, err := Decode(strings.NewReader(fan))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Workflow.M() != 4 {
		t.Fatalf("M = %d, want 4", doc.Workflow.M())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		want error
	}{
		"garbage":  {"not xml", ErrBadInput},
		"no name":  {`<entity class="x"><entity name="a" class="t"/></entity>`, ErrBadInput},
		"no tasks": {`<entity name="w" class="c"/>`, ErrNoTasks},
		"nested": {`<entity name="w" class="c">
			<entity name="v1" class="ptolemy.actor.TypedCompositeActor">
			  <entity name="v2" class="ptolemy.actor.TypedCompositeActor">
			    <entity name="a" class="t"/>
			  </entity>
			</entity></entity>`, ErrNested},
		"bad relation": {`<entity name="w" class="c">
			<entity name="a" class="t"/>
			<link port="a.output" relation="ghost"/></entity>`, ErrBadLink},
		"bad port": {`<entity name="w" class="c">
			<entity name="a" class="t"/>
			<relation name="r" class="x"/>
			<link port="a.sideways" relation="r"/></entity>`, ErrBadPort},
		"bad path": {`<entity name="w" class="c">
			<entity name="a" class="t"/>
			<relation name="r" class="x"/>
			<link port="ghost.output" relation="r"/></entity>`, ErrBadLink},
		"portless": {`<entity name="w" class="c">
			<entity name="a" class="t"/>
			<relation name="r" class="x"/>
			<link port="output" relation="r"/></entity>`, ErrBadPort},
	}
	for name, tc := range cases {
		_, err := Decode(strings.NewReader(tc.in))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
	// Empty composite and cyclic workflow are rejected too.
	const emptyComp = `<entity name="w" class="c">
	  <entity name="v" class="ptolemy.actor.TypedCompositeActor"/>
	  <entity name="a" class="t"/></entity>`
	if _, err := Decode(strings.NewReader(emptyComp)); err == nil {
		t.Error("empty composite must error")
	}
	const cyclic = `<entity name="w" class="c">
	  <entity name="a" class="t"/><entity name="b" class="t"/>
	  <relation name="r1" class="x"/><relation name="r2" class="x"/>
	  <link port="a.output" relation="r1"/><link port="b.input" relation="r1"/>
	  <link port="b.output" relation="r2"/><link port="a.input" relation="r2"/>
	</entity>`
	if _, err := Decode(strings.NewReader(cyclic)); err == nil {
		t.Error("cyclic workflow must error")
	}
}

func TestRoundTripFigure1(t *testing.T) {
	wf, v := repo.Figure1()
	var buf bytes.Buffer
	if err := Encode(&buf, wf, v); err != nil {
		t.Fatal(err)
	}
	doc, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode of encoded MOML: %v\n%s", err, buf.String())
	}
	if doc.Workflow.N() != wf.N() || doc.Workflow.M() != wf.M() {
		t.Fatalf("workflow shape changed: %v vs %v", doc.Workflow, wf)
	}
	if doc.View == nil || doc.View.N() != v.N() {
		t.Fatalf("view shape changed: %v vs %v", doc.View, v)
	}
	// Same composite memberships.
	for ci := 0; ci < v.N(); ci++ {
		id := v.Composite(ci).ID
		c2, ok := doc.View.CompositeByID(id)
		if !ok {
			t.Fatalf("composite %q lost", id)
		}
		var want, got []string
		for _, m := range v.Composite(ci).Members() {
			want = append(want, wf.Task(m).ID)
		}
		for _, m := range c2.Members() {
			got = append(got, doc.Workflow.Task(m).ID)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("composite %q members: %v vs %v", id, want, got)
		}
	}
	// Unsoundness survives the round trip.
	o := soundness.NewOracle(doc.Workflow)
	rep := soundness.ValidateView(o, doc.View)
	if rep.Sound {
		t.Fatal("figure 1 view must stay unsound after round trip")
	}
}

func TestRoundTripNoView(t *testing.T) {
	wf, _ := repo.Figure1()
	var buf bytes.Buffer
	if err := Encode(&buf, wf, nil); err != nil {
		t.Fatal(err)
	}
	doc, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.View != nil {
		t.Fatal("flat encode must not create composites")
	}
	if doc.Workflow.M() != wf.M() {
		t.Fatal("edges changed")
	}
}

func TestEncodeForeignViewFails(t *testing.T) {
	wf, _ := repo.Figure1()
	f3 := repo.Figure3()
	var buf bytes.Buffer
	if err := Encode(&buf, wf, f3.View); err == nil {
		t.Fatal("foreign view must error")
	}
}
