// Package moml reads and writes a subset of the Modeling Markup Language
// (MOML), the Ptolemy II / Kepler XML dialect the WOLVES demo imports
// workflows from [4]. The subset covers what workflow views need:
//
//   - a root <entity> for the workflow;
//   - nested composite <entity> elements (class *CompositeActor) that
//     define the view: each one becomes a composite task, and top-level
//     atomic entities become singleton composites;
//   - atomic <entity> elements for tasks, with optional displayName and
//     kind <property> elements;
//   - <relation> elements and <link> elements wiring task ports; ports
//     are "path.output" / "path.input", and every output→input pair on
//     one relation becomes a data-dependency edge.
//
// Deeper nesting than one composite level is rejected: WOLVES views are
// flat partitions.
package moml

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"wolves/internal/view"
	"wolves/internal/workflow"
)

// CompositeClass marks composite (view-defining) entities.
const CompositeClass = "ptolemy.actor.TypedCompositeActor"

// AtomicClass is the class emitted for atomic tasks.
const AtomicClass = "wolves.actor.Task"

// RelationClass is the class emitted for relations.
const RelationClass = "ptolemy.actor.TypedIORelation"

// Errors returned by Decode.
var (
	ErrNested   = errors.New("moml: composite entities nested deeper than one level")
	ErrBadPort  = errors.New("moml: malformed port reference")
	ErrBadLink  = errors.New("moml: link references unknown relation or entity")
	ErrNoTasks  = errors.New("moml: no atomic entities")
	ErrBadInput = errors.New("moml: malformed document")
)

type xmlProperty struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlRelation struct {
	Name  string `xml:"name,attr"`
	Class string `xml:"class,attr"`
}

type xmlLink struct {
	Port     string `xml:"port,attr"`
	Relation string `xml:"relation,attr"`
}

type xmlEntity struct {
	XMLName   xml.Name      `xml:"entity"`
	Name      string        `xml:"name,attr"`
	Class     string        `xml:"class,attr"`
	Entities  []xmlEntity   `xml:"entity"`
	Props     []xmlProperty `xml:"property"`
	Relations []xmlRelation `xml:"relation"`
	Links     []xmlLink     `xml:"link"`
}

func isComposite(class string) bool {
	return strings.Contains(class, "CompositeActor")
}

// Document is a decoded MOML file.
type Document struct {
	Workflow *workflow.Workflow
	// View is nil when the file contains no composite entities.
	View *view.View
}

// Decode parses a MOML document.
func Decode(r io.Reader) (*Document, error) {
	var root xmlEntity
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if root.Name == "" {
		return nil, fmt.Errorf("%w: root entity has no name", ErrBadInput)
	}

	wb := workflow.NewBuilder(root.Name)
	// task path (for ports) → task id; composite id → member ids.
	taskByPath := map[string]string{}
	comps := map[string][]string{}
	var compOrder []string
	atomicCount := 0

	addAtomic := func(e *xmlEntity, pathPrefix string) {
		opts := []workflow.TaskOption{}
		for _, p := range e.Props {
			switch p.Name {
			case "displayName":
				opts = append(opts, workflow.WithName(p.Value))
			case "kind":
				opts = append(opts, workflow.WithKind(p.Value))
			}
		}
		wb.AddTask(e.Name, opts...)
		taskByPath[pathPrefix+e.Name] = e.Name
		// Port references may also use the bare task name.
		if pathPrefix != "" {
			taskByPath[e.Name] = e.Name
		}
		atomicCount++
	}

	for i := range root.Entities {
		e := &root.Entities[i]
		if !isComposite(e.Class) {
			addAtomic(e, "")
			comps[e.Name] = []string{e.Name}
			compOrder = append(compOrder, e.Name)
			continue
		}
		compOrder = append(compOrder, e.Name)
		for j := range e.Entities {
			inner := &e.Entities[j]
			if isComposite(inner.Class) {
				return nil, fmt.Errorf("%w: %q inside %q", ErrNested, inner.Name, e.Name)
			}
			addAtomic(inner, e.Name+".")
			comps[e.Name] = append(comps[e.Name], inner.Name)
		}
		if len(e.Entities) == 0 {
			return nil, fmt.Errorf("moml: composite %q is empty", e.Name)
		}
	}
	if atomicCount == 0 {
		return nil, ErrNoTasks
	}

	// Relations: collect outputs and inputs, then emit the product.
	relations := map[string]bool{}
	for _, rel := range root.Relations {
		relations[rel.Name] = true
	}
	type endpoints struct{ outs, ins []string }
	eps := map[string]*endpoints{}
	for _, l := range root.Links {
		if !relations[l.Relation] {
			return nil, fmt.Errorf("%w: relation %q", ErrBadLink, l.Relation)
		}
		dot := strings.LastIndex(l.Port, ".")
		if dot <= 0 || dot == len(l.Port)-1 {
			return nil, fmt.Errorf("%w: %q", ErrBadPort, l.Port)
		}
		path, port := l.Port[:dot], l.Port[dot+1:]
		task, ok := taskByPath[path]
		if !ok {
			return nil, fmt.Errorf("%w: entity path %q", ErrBadLink, path)
		}
		ep := eps[l.Relation]
		if ep == nil {
			ep = &endpoints{}
			eps[l.Relation] = ep
		}
		switch port {
		case "output":
			ep.outs = append(ep.outs, task)
		case "input":
			ep.ins = append(ep.ins, task)
		default:
			return nil, fmt.Errorf("%w: port %q (want input|output)", ErrBadPort, l.Port)
		}
	}
	relNames := make([]string, 0, len(eps))
	for name := range eps {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		ep := eps[name]
		for _, from := range ep.outs {
			for _, to := range ep.ins {
				wb.AddEdge(from, to)
			}
		}
	}

	wf, err := wb.Build()
	if err != nil {
		return nil, fmt.Errorf("moml: %w", err)
	}
	doc := &Document{Workflow: wf}

	hasComposite := false
	for i := range root.Entities {
		if isComposite(root.Entities[i].Class) {
			hasComposite = true
			break
		}
	}
	if hasComposite {
		vb := view.NewBuilder(wf, root.Name+"-view")
		for _, cid := range compOrder {
			vb.Assign(cid, comps[cid]...)
		}
		v, err := vb.Build()
		if err != nil {
			return nil, fmt.Errorf("moml: view: %w", err)
		}
		doc.View = v
	}
	return doc, nil
}

// Encode writes wf (and optionally a view v over it) as MOML. With a nil
// view every task is a top-level atomic entity.
func Encode(w io.Writer, wf *workflow.Workflow, v *view.View) error {
	if v != nil && v.Workflow() != wf {
		return errors.New("moml: view belongs to a different workflow")
	}
	var b strings.Builder
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, "<entity name=%q class=%q>\n", wf.Name(), CompositeClass)

	taskPath := make([]string, wf.N())
	writeTask := func(indent string, t workflow.Task) {
		fmt.Fprintf(&b, "%s<entity name=%q class=%q>\n", indent, t.ID, AtomicClass)
		if t.Name != t.ID {
			fmt.Fprintf(&b, "%s  <property name=\"displayName\" value=%q/>\n", indent, t.Name)
		}
		if t.Kind != "" {
			fmt.Fprintf(&b, "%s  <property name=\"kind\" value=%q/>\n", indent, t.Kind)
		}
		fmt.Fprintf(&b, "%s</entity>\n", indent)
	}

	if v == nil {
		for i := 0; i < wf.N(); i++ {
			t := wf.Task(i)
			taskPath[i] = t.ID
			writeTask("  ", t)
		}
	} else {
		for ci := 0; ci < v.N(); ci++ {
			comp := v.Composite(ci)
			if comp.Size() == 1 && comp.ID == wf.Task(comp.Members()[0]).ID {
				// Singleton whose id equals the task: emit flat.
				t := wf.Task(comp.Members()[0])
				taskPath[comp.Members()[0]] = t.ID
				writeTask("  ", t)
				continue
			}
			fmt.Fprintf(&b, "  <entity name=%q class=%q>\n", comp.ID, CompositeClass)
			for _, ti := range comp.Members() {
				t := wf.Task(ti)
				taskPath[ti] = comp.ID + "." + t.ID
				writeTask("    ", t)
			}
			b.WriteString("  </entity>\n")
		}
	}

	// One relation per edge keeps the format trivially round-trippable.
	i := 0
	wf.Graph().Edges(func(u, vv int) {
		fmt.Fprintf(&b, "  <relation name=\"r%d\" class=%q/>\n", i, RelationClass)
		fmt.Fprintf(&b, "  <link port=%q relation=\"r%d\"/>\n", taskPath[u]+".output", i)
		fmt.Fprintf(&b, "  <link port=%q relation=\"r%d\"/>\n", taskPath[vv]+".input", i)
		i++
	})
	b.WriteString("</entity>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
