package feedback

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"wolves/internal/core"
	"wolves/internal/repo"
)

func newFig1Session(t *testing.T) *Session {
	t.Helper()
	wf, v := repo.Figure1()
	s, err := NewSession(wf, v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	s := newFig1Session(t)
	rep := s.Validate()
	if rep.Sound {
		t.Fatal("fig1 view starts unsound")
	}
	vc, err := s.Correct(core.Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vc.CompositesAfter != 8 {
		t.Fatalf("composites = %d", vc.CompositesAfter)
	}
	if !s.Validate().Sound {
		t.Fatal("view must be sound after correction")
	}
	// User feedback: re-merge the split halves — recreates unsoundness.
	if err := s.MergeTasks("16", "16.1", "16.2"); err != nil {
		t.Fatal(err)
	}
	if s.Validate().Sound {
		t.Fatal("merged view must be unsound again (demo loop)")
	}
	// Undo the merge.
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if !s.Validate().Sound {
		t.Fatal("undo must restore the sound view")
	}
	s.Accept()
	if !s.Accepted() {
		t.Fatal("not accepted")
	}
	if _, err := s.Correct(core.Weak, nil); !errors.Is(err, ErrAccepted) {
		t.Fatalf("mutating accepted session: %v", err)
	}
	if err := s.MergeTasks("x", "13", "14"); !errors.Is(err, ErrAccepted) {
		t.Fatalf("merge after accept: %v", err)
	}
	if err := s.Undo(); !errors.Is(err, ErrAccepted) {
		t.Fatalf("undo after accept: %v", err)
	}
	log := s.Log()
	if len(log) < 6 || log[0].Op != "open" || log[len(log)-1].Op != "accept" {
		t.Fatalf("log = %+v", log)
	}
}

func TestSplitSingleTask(t *testing.T) {
	s := newFig1Session(t)
	res, err := s.SplitTask("16", core.Optimal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 2 {
		t.Fatalf("blocks = %v", res.Blocks)
	}
	if !s.Validate().Sound {
		t.Fatal("splitting the only unsound composite must make the view sound")
	}
	if _, err := s.SplitTask("ghost", core.Weak, nil); err == nil {
		t.Fatal("unknown composite must error")
	}
}

func TestUndoEmptyHistory(t *testing.T) {
	s := newFig1Session(t)
	if err := s.Undo(); err == nil {
		t.Fatal("undo with no history must error")
	}
}

func TestNewSessionForeignView(t *testing.T) {
	wf, _ := repo.Figure1()
	f3 := repo.Figure3()
	if _, err := NewSession(wf, f3.View); err == nil {
		t.Fatal("foreign view must error")
	}
}

func TestRunScript(t *testing.T) {
	s := newFig1Session(t)
	script := `
# the demo walkthrough
validate
correct strong
merge 16 16.1 16.2
validate
undo
accept
`
	var out bytes.Buffer
	if err := s.RunScript(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"validate: sound=false",
		"correct(strong-local-optimal): 7 → 8 composites",
		"merge(16): 7 composites",
		"validate: sound=false",
		"undo: 8 composites",
		"accept: sound=true",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("script output missing %q:\n%s", want, got)
		}
	}
}

func TestSessionCompact(t *testing.T) {
	s := newFig1Session(t)
	if _, err := s.Correct(core.Strong, nil); err != nil {
		t.Fatal(err)
	}
	before := s.Current().N()
	merges, err := s.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Current().N() != before-merges {
		t.Fatalf("merges=%d but composites %d → %d", merges, before, s.Current().N())
	}
	if !s.Validate().Sound {
		t.Fatal("compacted view must stay sound")
	}
	s.Accept()
	if _, err := s.Compact(0); !errors.Is(err, ErrAccepted) {
		t.Fatalf("compact after accept: %v", err)
	}
}

func TestRunScriptCompact(t *testing.T) {
	s := newFig1Session(t)
	var out bytes.Buffer
	if err := s.RunScript(strings.NewReader("correct strong\ncompact 1\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "compact: 1 merges") {
		t.Fatalf("output = %s", out.String())
	}
	if err := s.RunScript(strings.NewReader("compact zz\n"), &out); err == nil {
		t.Fatal("bad compact arg must error")
	}
}

func TestRunScriptErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"correct",
		"correct sideways",
		"split 16",
		"split ghost weak",
		"merge onlyone x",
		"undo",
	}
	for _, c := range cases {
		s := newFig1Session(t)
		var out bytes.Buffer
		if err := s.RunScript(strings.NewReader(c), &out); err == nil {
			t.Errorf("script %q must fail", c)
		}
	}
	// Errors carry the line number.
	s := newFig1Session(t)
	var out bytes.Buffer
	err := s.RunScript(strings.NewReader("validate\nbogus\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}
