// Package feedback implements the Workflow View Feedback module: the
// demo's iterate-until-satisfied loop in which WOLVES corrects a view,
// the user re-groups tasks ("Create Composite Task"), and the validator
// runs again — until the user accepts a sound view.
//
// The GUI loop of Figure 2 becomes a Session with explicit operations,
// plus a tiny script language so the CLI (and tests) can drive whole
// interactions deterministically.
package feedback

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"wolves/internal/core"
	"wolves/internal/engine"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Event records one session operation for the audit log.
type Event struct {
	At         time.Time
	Op         string
	Detail     string
	Sound      bool
	Composites int
}

// Session drives the validate → correct → feedback loop over one view.
// Every pipeline operation runs through a wolves Engine, so sessions
// sharing an Engine share its oracle cache — there is exactly one way to
// run the pipeline.
type Session struct {
	eng      *engine.Engine
	wf       *workflow.Workflow
	current  *view.View
	history  []*view.View
	log      []Event
	accepted bool
}

// ErrAccepted is returned when mutating an accepted session.
var ErrAccepted = errors.New("feedback: session already accepted")

// NewSession starts a session on view v with a private single-workflow
// Engine.
func NewSession(wf *workflow.Workflow, v *view.View) (*Session, error) {
	return NewSessionWith(engine.New(engine.WithOracleCache(1)), wf, v)
}

// NewSessionWith starts a session on view v backed by eng (shared
// engines amortize the oracle cache across sessions).
func NewSessionWith(eng *engine.Engine, wf *workflow.Workflow, v *view.View) (*Session, error) {
	if !workflow.Same(v.Workflow(), wf) {
		return nil, errors.New("feedback: view belongs to a different workflow")
	}
	s := &Session{eng: eng, wf: wf, current: v}
	s.record(bg(), "open", v.Name())
	return s, nil
}

// Current returns the session's current view.
func (s *Session) Current() *view.View { return s.current }

// Oracle exposes the session's soundness oracle (shared closure).
func (s *Session) Oracle() *soundness.Oracle { return s.eng.Oracle(s.wf) }

// Accepted reports whether the user has accepted the view.
func (s *Session) Accepted() bool { return s.accepted }

// Log returns the event log.
func (s *Session) Log() []Event { return append([]Event(nil), s.log...) }

// bg anchors the root context for the session's structural operations
// (merge, undo, accept, open): their validation is a lookup against the
// cached oracle closure, bounded and never worth canceling. The engine
// calls that do search (Validate, Correct, SplitTask) thread a caller
// ctx via their ...Ctx variants instead.
func bg() context.Context {
	return context.Background() //lint:allow ctxpass structural ops validate against the cached oracle; bounded work, nothing to cancel
}

// validate runs the engine validator on the current view. The session
// holds a validated (wf, view) pair, so the engine can only fail here
// by cancellation — which the panic message calls out.
func (s *Session) validate(ctx context.Context) *soundness.Report {
	rep, err := s.eng.Validate(ctx, s.wf, s.current)
	if err != nil {
		panic("feedback: validating a session view must not fail: " + err.Error())
	}
	return rep
}

func (s *Session) record(ctx context.Context, op, detail string) {
	rep := s.validate(ctx)
	s.log = append(s.log, Event{
		At: time.Now(), Op: op, Detail: detail,
		Sound: rep.Sound, Composites: s.current.N(),
	})
}

// Validate runs the validator on the current view.
//
// Deprecated: use ValidateCtx so an interactive caller can cancel.
func (s *Session) Validate() *soundness.Report {
	return s.ValidateCtx(context.Background()) //lint:allow ctxpass compat wrapper anchors its own root
}

// ValidateCtx is Validate with cooperative cancellation.
func (s *Session) ValidateCtx(ctx context.Context) *soundness.Report {
	rep := s.validate(ctx)
	s.log = append(s.log, Event{
		At: time.Now(), Op: "validate", Detail: s.current.Name(),
		Sound: rep.Sound, Composites: s.current.N(),
	})
	return rep
}

func (s *Session) push(ctx context.Context, v *view.View, op, detail string) {
	s.history = append(s.history, s.current)
	s.current = v
	s.record(ctx, op, detail)
}

// Correct repairs the whole view under the chosen criterion.
//
// Deprecated: use CorrectCtx so an interactive caller can cancel.
func (s *Session) Correct(crit core.Criterion, opts *core.Options) (*core.ViewCorrection, error) {
	return s.CorrectCtx(context.Background(), crit, opts) //lint:allow ctxpass compat wrapper anchors its own root
}

// CorrectCtx is Correct with cooperative cancellation (an interactive
// UI's cancel button maps straight onto ctx).
func (s *Session) CorrectCtx(ctx context.Context, crit core.Criterion, opts *core.Options) (*core.ViewCorrection, error) {
	if s.accepted {
		return nil, ErrAccepted
	}
	vc, err := s.eng.CorrectWithOracle(ctx, s.Oracle(), s.current, crit, opts)
	if err != nil {
		return nil, err
	}
	s.push(ctx, vc.Corrected, "correct", crit.String())
	return vc, nil
}

// SplitTask corrects a single composite (the demo's "Split Task" popup).
//
// Deprecated: use SplitTaskCtx so an interactive caller can cancel.
func (s *Session) SplitTask(compID string, crit core.Criterion, opts *core.Options) (*core.Result, error) {
	return s.SplitTaskCtx(context.Background(), compID, crit, opts) //lint:allow ctxpass compat wrapper anchors its own root
}

// SplitTaskCtx is SplitTask with cooperative cancellation.
func (s *Session) SplitTaskCtx(ctx context.Context, compID string, crit core.Criterion, opts *core.Options) (*core.Result, error) {
	if s.accepted {
		return nil, ErrAccepted
	}
	comp, ok := s.current.CompositeByID(compID)
	if !ok {
		return nil, fmt.Errorf("feedback: %w: %q", view.ErrUnknownComp, compID)
	}
	res, err := s.eng.SplitWithOracle(ctx, s.Oracle(), comp.Members(), crit, opts)
	if err != nil {
		return nil, err
	}
	next, err := s.current.ReplaceComposite(compID, res.Blocks)
	if err != nil {
		return nil, err
	}
	s.push(ctx, next, "split", fmt.Sprintf("%s via %s → %d blocks", compID, crit, len(res.Blocks)))
	return res, nil
}

// Compact greedily merges composite pairs whose union stays sound (the
// split/merge interaction extension). maxMerges ≤ 0 means unbounded.
func (s *Session) Compact(maxMerges int) (int, error) {
	if s.accepted {
		return 0, ErrAccepted
	}
	compacted, merges, err := core.Compact(s.Oracle(), s.current, maxMerges)
	if err != nil {
		return 0, err
	}
	if merges > 0 {
		s.push(bg(), compacted, "compact", fmt.Sprintf("%d merges", merges))
	}
	return merges, nil
}

// MergeTasks is the user's "Create Composite Task" feedback operation.
// The result may be unsound; the next Validate (or the corrector) will
// say so — exactly the demo's loop.
func (s *Session) MergeTasks(newID string, compIDs ...string) error {
	if s.accepted {
		return ErrAccepted
	}
	next, err := s.current.MergeComposites(newID, compIDs...)
	if err != nil {
		return err
	}
	s.push(bg(), next, "merge", fmt.Sprintf("%s = %s", newID, strings.Join(compIDs, "+")))
	return nil
}

// Undo restores the previous view.
func (s *Session) Undo() error {
	if s.accepted {
		return ErrAccepted
	}
	if len(s.history) == 0 {
		return errors.New("feedback: nothing to undo")
	}
	s.current = s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	s.record(bg(), "undo", s.current.Name())
	return nil
}

// Accept finalizes the session. Accepting an unsound view is allowed —
// the user owns the decision — but the event log records the verdict.
func (s *Session) Accept() {
	if !s.accepted {
		s.accepted = true
		s.record(bg(), "accept", s.current.Name())
	}
}

// RunScript executes a session script: one command per line, '#'
// comments. Commands:
//
//	validate
//	correct weak|strong|strong-audited|optimal
//	split <compositeID> weak|strong|strong-audited|optimal
//	merge <newID> <comp1> <comp2> [...]
//	compact [maxMerges]
//	undo
//	accept
//
// Output lines describing each step are written to out.
func (s *Session) RunScript(r io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if err := s.runCommand(fields, out); err != nil {
			return fmt.Errorf("feedback: line %d (%q): %w", line, text, err)
		}
	}
	return sc.Err()
}

func (s *Session) runCommand(fields []string, out io.Writer) error {
	switch fields[0] {
	case "validate":
		rep := s.Validate()
		fmt.Fprintf(out, "validate: sound=%v composites=%d unsound=%d\n",
			rep.Sound, s.current.N(), len(rep.Unsound))
	case "correct":
		if len(fields) != 2 {
			return errors.New("usage: correct <criterion>")
		}
		crit, err := core.ParseCriterion(fields[1])
		if err != nil {
			return err
		}
		vc, err := s.Correct(crit, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "correct(%s): %d → %d composites\n",
			crit, vc.CompositesBefore, vc.CompositesAfter)
	case "split":
		if len(fields) != 3 {
			return errors.New("usage: split <composite> <criterion>")
		}
		crit, err := core.ParseCriterion(fields[2])
		if err != nil {
			return err
		}
		res, err := s.SplitTask(fields[1], crit, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "split(%s, %s): %d blocks\n", fields[1], crit, len(res.Blocks))
	case "merge":
		if len(fields) < 4 {
			return errors.New("usage: merge <newID> <comp> <comp> [...]")
		}
		if err := s.MergeTasks(fields[1], fields[2:]...); err != nil {
			return err
		}
		fmt.Fprintf(out, "merge(%s): %d composites\n", fields[1], s.current.N())
	case "compact":
		max := 0
		if len(fields) == 2 {
			if _, err := fmt.Sscanf(fields[1], "%d", &max); err != nil {
				return fmt.Errorf("usage: compact [maxMerges]: %w", err)
			}
		}
		merges, err := s.Compact(max)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "compact: %d merges, %d composites\n", merges, s.current.N())
	case "undo":
		if err := s.Undo(); err != nil {
			return err
		}
		fmt.Fprintf(out, "undo: %d composites\n", s.current.N())
	case "accept":
		s.Accept()
		rep := s.validate(bg())
		fmt.Fprintf(out, "accept: sound=%v composites=%d\n", rep.Sound, s.current.N())
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}
