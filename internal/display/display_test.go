package display

import (
	"bytes"
	"strings"
	"testing"

	"wolves/internal/provenance"
	"wolves/internal/repo"
	"wolves/internal/soundness"
)

func TestWorkflowDOTFlat(t *testing.T) {
	wf, _ := repo.Figure1()
	var buf bytes.Buffer
	if err := WorkflowDOT(&buf, wf, nil, nil); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"digraph", `"1" -> "2"`, "Select entries"} {
		if !strings.Contains(got, want) {
			t.Fatalf("DOT missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "cluster") {
		t.Fatal("flat render must not emit clusters")
	}
}

func TestWorkflowDOTWithView(t *testing.T) {
	wf, v := repo.Figure1()
	o := soundness.NewOracle(wf)
	rep := soundness.ValidateView(o, v)
	var buf bytes.Buffer
	err := WorkflowDOT(&buf, wf, v, &Options{
		Report:   rep,
		Selected: map[string]bool{"19": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "cluster_16") {
		t.Fatal("missing composite cluster")
	}
	if !strings.Contains(got, colorUnsound) {
		t.Fatal("unsound composite must be red")
	}
	if !strings.Contains(got, colorSelected) {
		t.Fatal("selected composite must be grey")
	}
	if !strings.Contains(got, colorSound) {
		t.Fatal("sound composites must be green")
	}
}

func TestWorkflowDOTForeignView(t *testing.T) {
	wf, _ := repo.Figure1()
	f3 := repo.Figure3()
	var buf bytes.Buffer
	if err := WorkflowDOT(&buf, wf, f3.View, nil); err == nil {
		t.Fatal("foreign view must error")
	}
}

func TestViewDOT(t *testing.T) {
	wf, v := repo.Figure1()
	o := soundness.NewOracle(wf)
	rep := soundness.ValidateView(o, v)
	var buf bytes.Buffer
	if err := ViewDOT(&buf, v, &Options{Report: rep}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{`"16" [label="16 (2)"`, `"13" -> "14"`, colorUnsound} {
		if !strings.Contains(got, want) {
			t.Fatalf("view DOT missing %q:\n%s", want, got)
		}
	}
}

func TestSummary(t *testing.T) {
	wf, v := repo.Figure1()
	o := soundness.NewOracle(wf)
	var buf bytes.Buffer
	if err := Summary(&buf, o, v); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"UNSOUND", "[!!] 16", "cannot reach", "[ok] 13"} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestDependencies(t *testing.T) {
	wf, _ := repo.Figure1()
	e := provenance.NewEngine(wf)
	var buf bytes.Buffer
	if err := Dependencies(&buf, e, "8"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "depends on : {1, 2, 6, 7}") {
		t.Fatalf("dependencies wrong:\n%s", got)
	}
	if !strings.Contains(got, "feeds into : {11, 12}") {
		t.Fatalf("descendants wrong:\n%s", got)
	}
	if err := Dependencies(&buf, e, "ghost"); err == nil {
		t.Fatal("unknown task must error")
	}
}
