// Package display is the Workflow View Displayer: headless renderings of
// what the WOLVES GUI shows. Workflows and views export to Graphviz DOT
// (composite tasks as clusters, unsound ones red, sound ones green,
// selected ones grey) and to plain-text summaries; Dependencies renders
// the demo's "Show Dependency" answer for a selected task.
package display

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wolves/internal/provenance"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Colors used in DOT output, mirroring the demo's palette.
const (
	colorUnsound  = "#ffb3b3" // red: unsound composite
	colorSound    = "#b3ffb3" // green: sound composite
	colorSelected = "#d9d9d9" // grey: selected composite
)

// Options tunes rendering.
type Options struct {
	// Selected composite IDs render grey (the demo's Show Task).
	Selected map[string]bool
	// Report colours composites by soundness when non-nil.
	Report *soundness.Report
}

func dotEscape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

// WorkflowDOT renders the workflow, optionally clustered by a view.
func WorkflowDOT(w io.Writer, wf *workflow.Workflow, v *view.View, opts *Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=white];\n", wf.Name())
	if v == nil {
		for i := 0; i < wf.N(); i++ {
			fmt.Fprintf(&b, "  %q [label=%q];\n", wf.Task(i).ID, dotEscape(wf.Task(i).Name))
		}
	} else {
		if v.Workflow() != wf {
			return fmt.Errorf("display: view belongs to a different workflow")
		}
		unsound := map[int]bool{}
		if opts != nil && opts.Report != nil {
			for _, ci := range opts.Report.Unsound {
				unsound[ci] = true
			}
		}
		for ci := 0; ci < v.N(); ci++ {
			comp := v.Composite(ci)
			fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n", dotEscape(comp.ID))
			fmt.Fprintf(&b, "    label=%q;\n", dotEscape(comp.ID+": "+comp.Name))
			color := ""
			switch {
			case opts != nil && opts.Selected[comp.ID]:
				color = colorSelected
			case opts != nil && opts.Report != nil && unsound[ci]:
				color = colorUnsound
			case opts != nil && opts.Report != nil:
				color = colorSound
			}
			if color != "" {
				fmt.Fprintf(&b, "    style=filled;\n    color=%q;\n", color)
			}
			for _, t := range comp.Members() {
				fmt.Fprintf(&b, "    %q [label=%q];\n", wf.Task(t).ID, dotEscape(wf.Task(t).Name))
			}
			b.WriteString("  }\n")
		}
	}
	wf.Graph().Edges(func(u, t int) {
		fmt.Fprintf(&b, "  %q -> %q;\n", wf.Task(u).ID, wf.Task(t).ID)
	})
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ViewDOT renders the view (quotient) graph: one node per composite.
func ViewDOT(w io.Writer, v *view.View, opts *Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=component, style=filled, fillcolor=white];\n", v.Name())
	unsound := map[int]bool{}
	if opts != nil && opts.Report != nil {
		for _, ci := range opts.Report.Unsound {
			unsound[ci] = true
		}
	}
	for ci := 0; ci < v.N(); ci++ {
		comp := v.Composite(ci)
		color := "white"
		switch {
		case opts != nil && opts.Selected[comp.ID]:
			color = colorSelected
		case opts != nil && opts.Report != nil && unsound[ci]:
			color = colorUnsound
		case opts != nil && opts.Report != nil:
			color = colorSound
		}
		fmt.Fprintf(&b, "  %q [label=\"%s (%d)\", fillcolor=%q];\n",
			comp.ID, dotEscape(comp.ID), comp.Size(), color)
	}
	v.Graph().Edges(func(a, c int) {
		fmt.Fprintf(&b, "  %q -> %q;\n", v.Composite(a).ID, v.Composite(c).ID)
	})
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary writes the text panel: one line per composite with its
// members, interface sets and verdict.
func Summary(w io.Writer, o *soundness.Oracle, v *view.View) error {
	rep := soundness.ValidateView(o, v)
	wf := v.Workflow()
	fmt.Fprintf(w, "%s — %s\n", v.Name(), verdict(rep.Sound))
	for ci := 0; ci < v.N(); ci++ {
		cr := rep.Composites[ci]
		comp := v.Composite(ci)
		fmt.Fprintf(w, "  [%s] %s = {%s}\n", verdictMark(cr.Sound), comp.ID,
			strings.Join(v.MemberIDs(ci), ", "))
		if !cr.Sound {
			for _, viol := range cr.Violations {
				fmt.Fprintf(w, "        ✗ %s\n", soundness.DescribeViolation(wf, viol))
			}
		}
	}
	return nil
}

func verdict(sound bool) string {
	if sound {
		return "SOUND"
	}
	return "UNSOUND"
}

func verdictMark(sound bool) string {
	if sound {
		return "ok"
	}
	return "!!"
}

// Dependencies renders the demo's "Show Dependency" for a task: its
// provenance (ancestors) and its downstream impact (descendants).
func Dependencies(w io.Writer, e *provenance.Engine, taskID string) error {
	wf := e.Workflow()
	t, ok := wf.Index(taskID)
	if !ok {
		return fmt.Errorf("display: %w: %q", workflow.ErrUnknownTask, taskID)
	}
	names := func(idx []int) string {
		out := make([]string, len(idx))
		for i, x := range idx {
			out[i] = wf.Task(x).ID
		}
		sort.Strings(out)
		return strings.Join(out, ", ")
	}
	fmt.Fprintf(w, "task %s (%s)\n", taskID, wf.Task(t).Name)
	fmt.Fprintf(w, "  depends on : {%s}\n", names(e.Lineage(t)))
	fmt.Fprintf(w, "  feeds into : {%s}\n", names(e.Descendants(t)))
	return nil
}
