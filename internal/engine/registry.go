package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wolves/internal/bitset"
	"wolves/internal/core"
	"wolves/internal/dag"
	"wolves/internal/obs"
	"wolves/internal/provenance"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// This file implements the live workflow registry: the stateful
// counterpart of the Engine's stateless request pipeline. A client
// registers a workflow once, attaches views, and from then on pays only
// deltas — each mutation batch updates the reachability closure
// incrementally (dag.IncrementalClosure), dirty-marks exactly the
// composites whose member adjacency or reachability rows changed, and
// revalidates only those (soundness.Revalidate), keeping every attached
// view's report permanently current. This is the continuous-monitoring
// workload the WOLVES paper motivates: views drift out of soundness as
// workflows evolve, and the registry catches the drift at mutation time
// instead of re-deriving the world per request.
//
// # Versioning
//
// Every live workflow carries a version, starting at 1 on registration
// and bumped by exactly one for each mutation batch that changes
// structure (a batch adding only duplicate edges is a no-op and does not
// bump). Mutation.IfVersion makes a batch conditional — it is rejected
// with ErrVersionConflict unless the live workflow is at exactly that
// version — giving read-modify-write clients optimistic concurrency.
// The workflow's content fingerprint remains available (WorkflowInfo);
// it is recomputed lazily per generation, never on the mutation path.
//
// # Concurrency
//
// The Registry itself is guarded by one mutex (map operations only).
// Each LiveWorkflow has its own RWMutex: mutations and view attachment
// take the write lock; validation, correction, lineage and snapshots
// share the read lock. Corrections hold the read lock for their whole
// run, so a long Optimal correction delays mutations of that workflow
// (bound it with WithOptimalTimeout) but never blocks other workflows.
//
// # Eviction
//
// The registry holds at most WithRegistryCapacity live workflows
// (DefaultRegistryCapacity when unset). Registering beyond capacity
// evicts the least-recently-used workflow — recency is bumped by
// Register, Get and every operation reached through Get. Evicted (and
// deleted, and replaced) workflows are closed: operations through stale
// handles fail with ErrUnknownWorkflow rather than touching dead state.
//
// # Engine wiring
//
// The registry reuses the Engine's machinery rather than duplicating
// it: initial view validation fans composites over the Engine's worker
// pool, corrections run through CorrectWithOracle (inheriting corrector
// options and the Optimal timeout), and Snapshot seeds the Engine's
// fingerprint-keyed oracle cache with a copy of the live closure, so
// stateless Validate/Correct calls against a snapshot skip the closure
// build entirely.

// DefaultRegistryCapacity is the live-workflow capacity used when
// WithRegistryCapacity is not given.
const DefaultRegistryCapacity = 256

// Registry is a concurrency-safe store of named live workflows.
// Construct with NewRegistry.
type Registry struct {
	eng      *Engine
	capacity int
	// journal receives every committed state transition (journal.go);
	// nil means purely in-memory. Set at construction (WithJournal) or
	// during setup (SetJournal) — not synchronized with live traffic.
	journal Journal

	// probeMin/probeMax bound the degraded-mode probe loop's backoff
	// (WithProbeBackoff); health is the degraded-mode state machine
	// (health.go).
	probeMin time.Duration
	probeMax time.Duration
	health   health

	mu     sync.Mutex
	lws    map[string]*LiveWorkflow
	useSeq uint64 // LRU clock: bumped on every touch

	// viewLabelBuilds counts lifetime view-level (quotient) label-index
	// builds across epoch publications (see epoch.go).
	viewLabelBuilds atomic.Int64

	// restoring defers epoch publication during replay (BeginRestore /
	// EndRestore in journal.go). Read on every publication, written only
	// by the recovery driver around the replay.
	restoring atomic.Bool
}

// RegistryOption configures a Registry at construction time.
type RegistryOption func(*Registry)

// WithRegistryCapacity bounds the number of live workflows held at once;
// registering beyond it evicts the least recently used. n <= 0 means
// DefaultRegistryCapacity.
func WithRegistryCapacity(n int) RegistryOption {
	return func(r *Registry) {
		if n > 0 {
			r.capacity = n
		}
	}
}

// WithJournal installs a journal at construction time: every committed
// registry transition is handed to it (see Journal). The registry stays
// purely in-memory when no journal is given.
func WithJournal(j Journal) RegistryOption {
	return func(r *Registry) { r.journal = j }
}

// NewRegistry returns an empty registry backed by eng.
func NewRegistry(eng *Engine, opts ...RegistryOption) *Registry {
	r := &Registry{
		eng:      eng,
		capacity: DefaultRegistryCapacity,
		probeMin: DefaultProbeBackoffMin,
		probeMax: DefaultProbeBackoffMax,
		lws:      make(map[string]*LiveWorkflow),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// LiveWorkflow is one named, versioned, mutable workflow owned by a
// Registry, together with its incrementally maintained closure, oracle,
// lineage engine and attached views. Obtain one with Registry.Register
// or Registry.Get; all methods are safe for concurrent use.
type LiveWorkflow struct {
	reg *Registry
	id  string

	mu      sync.RWMutex
	closed  bool
	version uint64
	wf      *workflow.Workflow
	ic      *dag.IncrementalClosure
	oracle  *soundness.Oracle
	prov    *provenance.Engine

	viewOrder []string
	views     map[string]*liveView

	// seedMu guards seeded: the fingerprints this workflow's snapshots
	// seeded into the engine's oracle cache. Snapshots run under the read
	// lock, so concurrent seeds need their own mutex; close() purges
	// every seeded entry so a dead registration cannot keep serving
	// oracles through the cache.
	seedMu sync.Mutex
	seeded map[string]struct{}

	// epoch is the published lock-free read snapshot (epoch.go):
	// rebuilt under the write lock after every committed transition,
	// loaded by the run store's lineage path without any lock. nil
	// while the label index is unavailable or the workflow is closed.
	epoch atomic.Pointer[ReadEpoch]

	used uint64 // registry LRU stamp, guarded by reg.mu
}

// liveView pairs an attached view with its permanently current report
// and a lazily built, mutation-invalidated view-level lineage engine.
type liveView struct {
	v      *view.View
	report *soundness.Report

	// veMu guards ve and audit: lineage queries run under the workflow's
	// read lock, so concurrent first queries must not race the builds.
	// Writers (Mutate) hold the workflow's write lock and reset both to
	// nil without taking veMu — no reader can be inside it then.
	veMu  sync.Mutex
	ve    *provenance.ViewEngine
	audit *provenance.ViewAudit
}

// viewEngine returns the cached view-level lineage engine, building it
// on first use after each view change. The quotient graph and its
// closure are only recomputed when the view itself was replaced, not
// per query.
func (lv *liveView) viewEngine() *provenance.ViewEngine {
	lv.veMu.Lock()
	defer lv.veMu.Unlock()
	if lv.ve == nil {
		lv.ve = provenance.NewViewEngine(lv.v)
	}
	return lv.ve
}

// viewAudit returns the cached provenance audit of the view against the
// live lineage engine, built on first use after each mutation (Mutate
// resets it alongside ve). Audited run-store lineage queries read their
// spurious-composite delta from here, so the O(k·n) audit runs once per
// (view, version), not once per query.
func (lv *liveView) viewAudit(prov *provenance.Engine) *provenance.ViewAudit {
	lv.veMu.Lock()
	defer lv.veMu.Unlock()
	if lv.audit == nil {
		if lv.ve == nil {
			lv.ve = provenance.NewViewEngine(lv.v)
		}
		// Reuse the cached quotient-closure engine: the audit shares it
		// with the view-level lineage path instead of building a second.
		lv.audit = provenance.AuditViewUsing(prov, lv.ve)
	}
	return lv.audit
}

// Mutation is a batch of structural additions to a live workflow. The
// batch is atomic: either every task and edge is applied, or none are.
type Mutation struct {
	// Tasks are appended to the workflow; in every attached view each
	// new task becomes its own singleton composite (ID = task ID), so
	// views remain partitions.
	Tasks []workflow.Task `json:"tasks,omitempty"`
	// Edges are task-ID pairs, applied in order. Endpoints may name
	// tasks added by this same batch. Duplicates of existing edges are
	// ignored; an edge that would create a cycle rejects (and rolls
	// back) the whole batch with ErrCycleRejected.
	Edges [][2]string `json:"edges,omitempty"`
	// IfVersion, when non-zero, rejects the batch with
	// ErrVersionConflict unless the live workflow is at exactly this
	// version.
	IfVersion uint64 `json:"if_version,omitempty"`
}

// ViewDelta describes how one attached view absorbed a mutation batch.
type ViewDelta struct {
	View string `json:"view"`
	// Sound is the view's soundness after the mutation.
	Sound bool `json:"sound"`
	// Revalidated lists the composite IDs whose reports were recomputed
	// (the dirty set), ascending by composite index.
	Revalidated []string `json:"revalidated,omitempty"`
	// Flipped lists the composites whose soundness changed.
	Flipped []string `json:"flipped,omitempty"`
	// Unsound lists every unsound composite after the mutation.
	Unsound []string `json:"unsound,omitempty"`
}

// MutationResult summarizes one applied mutation batch.
type MutationResult struct {
	Version    uint64 `json:"version"`
	TasksAdded int    `json:"tasks_added"`
	EdgesAdded int    `json:"edges_added"`
	// EdgesIgnored counts batch edges that already existed.
	EdgesIgnored int `json:"edges_ignored"`
	// DirtyTasks counts workflow tasks whose adjacency or reachability
	// row changed — the size of the invalidation frontier.
	DirtyTasks int         `json:"dirty_tasks"`
	Views      []ViewDelta `json:"views,omitempty"`
}

// WorkflowInfo is a metadata snapshot of a live workflow.
type WorkflowInfo struct {
	ID          string   `json:"id"`
	Version     uint64   `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Tasks       int      `json:"tasks"`
	Edges       int      `json:"edges"`
	Views       []string `json:"views"`
}

// LineageResult answers a provenance query against a live workflow and
// one of its views, contrasting exact task-level lineage with what a
// user of the view would conclude — the paper's motivating comparison.
type LineageResult struct {
	Task    string `json:"task"`
	Version uint64 `json:"version"`
	// ViewSound is the current soundness of the queried view; when
	// false, ViewLineage may contain false positives.
	ViewSound bool `json:"view_sound"`
	// WorkflowLineage is the exact answer: every task with a path to
	// Task, ascending by index.
	WorkflowLineage []string `json:"workflow_lineage"`
	// ViewLineage is the view-level answer: all members of all
	// composites upstream of Task's composite.
	ViewLineage []string `json:"view_lineage"`
	// CompositeLineage lists the upstream composite IDs.
	CompositeLineage []string `json:"composite_lineage"`
	// FalsePositives = ViewLineage \ WorkflowLineage: tasks the view
	// wrongly charges to Task's provenance (non-empty only for unsound
	// views).
	FalsePositives []string `json:"false_positives,omitempty"`
}

// Register creates (or replaces) the live workflow named id, taking
// ownership of wf: the caller must not retain, mutate or concurrently
// read wf after registration. Views are attached separately
// (AttachView) so they can be decoded against the live object. The new
// workflow starts at version 1.
func (r *Registry) Register(id string, wf *workflow.Workflow) (*LiveWorkflow, error) {
	return r.RegisterCtx(context.Background(), id, wf) //lint:allow ctxpass compat wrapper anchors its own root
}

// RegisterCtx is Register with the request context threaded through to
// the journal (trace propagation; registration is never abandoned on
// cancellation).
func (r *Registry) RegisterCtx(ctx context.Context, id string, wf *workflow.Workflow) (*LiveWorkflow, error) {
	return r.register(ctx, id, wf, 1, true)
}

// register is Register with an explicit starting version and journal
// switch; Restore re-enters here with journaling off. The new workflow's
// write lock is held from before publication until after the journal
// call, so a concurrent Get+Mutate cannot journal ahead of the
// registration record.
func (r *Registry) register(ctx context.Context, id string, wf *workflow.Workflow, version uint64, journal bool) (*LiveWorkflow, error) {
	if id == "" {
		return nil, errf(ErrBadInput, "register", "empty workflow id")
	}
	if wf == nil {
		return nil, errf(ErrBadInput, "register", "nil workflow")
	}
	if journal {
		if ee := r.checkWritable("register"); ee != nil {
			return nil, ee
		}
	}
	ic, err := dag.NewIncrementalClosure(wf.Graph())
	if err != nil {
		return nil, wrapErr("register", err)
	}
	lw := &LiveWorkflow{
		reg:     r,
		id:      id,
		version: version,
		wf:      wf,
		ic:      ic,
		views:   make(map[string]*liveView),
	}
	lw.repoint()
	lw.publishEpochLocked()

	lw.mu.Lock()
	r.mu.Lock()
	var replaced, evicted *LiveWorkflow
	if old, ok := r.lws[id]; ok {
		replaced = old
	} else if len(r.lws) >= r.capacity {
		evicted = r.lru()
		if evicted != nil {
			delete(r.lws, evicted.id)
		}
	}
	r.lws[id] = lw
	r.useSeq++
	lw.used = r.useSeq
	r.mu.Unlock()

	// A replaced workflow needs no journal delete: the registration
	// record (and snapshot) for the same ID supersedes its state on
	// replay. An evicted one is a genuine deletion of a different ID;
	// retire drains its in-flight journal calls and orders the delete
	// record against any racing re-registration of that ID.
	if replaced != nil {
		replaced.close()
	}
	if evicted != nil {
		if err := r.retire(ctx, evicted, journal); err != nil {
			// The new workflow is published and consistent in memory;
			// only the store is failing (and it is sticky). Unpublish so
			// the caller's failed Register leaves no trace.
			lw.mu.Unlock()
			r.unpublish(lw)
			lw.close()
			return nil, wrapErr("register", err)
		}
	}
	if journal && r.journal != nil {
		if err := r.journal.Registered(ctx, lw.stateLocked()); err != nil {
			lw.mu.Unlock()
			r.unpublish(lw)
			lw.close()
			return nil, r.JournalFault("register", err)
		}
	}
	lw.mu.Unlock()
	return lw, nil
}

// retire closes an unpublished-but-dying workflow and journals its
// deletion. Ordering matters in both directions: close() waits out any
// in-flight journal call of the dying incarnation (it blocks on the
// workflow's write lock), and the Deleted append happens under r.mu so
// a racing Register of the same ID — which must hold r.mu to publish
// before it may journal — cannot get its registration record into the
// WAL ahead of this delete record. If the ID was already re-registered
// by the time we get here, the delete record is skipped entirely: the
// newer registration record (and its snapshot) supersedes the old
// incarnation on replay, exactly like an in-place replacement.
func (r *Registry) retire(ctx context.Context, lw *LiveWorkflow, journal bool) error {
	lw.close()
	if !journal || r.journal == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, reborn := r.lws[lw.id]; reborn {
		return nil
	}
	return r.JournalFault("delete", r.journal.Deleted(ctx, lw.id))
}

// unpublish removes lw from the map if it is still the published entry
// (journal-failure rollback of a registration).
func (r *Registry) unpublish(lw *LiveWorkflow) {
	r.mu.Lock()
	if r.lws[lw.id] == lw {
		delete(r.lws, lw.id)
	}
	r.mu.Unlock()
}

// lru returns the least-recently-used live workflow; callers hold r.mu.
func (r *Registry) lru() *LiveWorkflow {
	var oldest *LiveWorkflow
	for _, lw := range r.lws {
		if oldest == nil || lw.used < oldest.used {
			oldest = lw
		}
	}
	return oldest
}

// Get returns the live workflow named id, bumping its recency.
func (r *Registry) Get(id string) (*LiveWorkflow, error) {
	r.mu.Lock()
	lw, ok := r.lws[id]
	if ok {
		r.useSeq++
		lw.used = r.useSeq
	}
	r.mu.Unlock()
	if !ok {
		return nil, errf(ErrUnknownWorkflow, "get", "no live workflow %q", id)
	}
	return lw, nil
}

// Peek is Get without the recency bump: maintenance sweeps (listing,
// checkpointing) must not reorder the LRU eviction queue underneath the
// traffic that actually drives it.
func (r *Registry) Peek(id string) (*LiveWorkflow, error) {
	r.mu.Lock()
	lw, ok := r.lws[id]
	r.mu.Unlock()
	if !ok {
		return nil, errf(ErrUnknownWorkflow, "peek", "no live workflow %q", id)
	}
	return lw, nil
}

// Capacity returns the registry's live-workflow capacity.
func (r *Registry) Capacity() int { return r.capacity }

// Delete unregisters and closes the live workflow named id, removing
// its durable state when a journal is installed (see retire for the
// ordering guarantees against a racing re-registration).
func (r *Registry) Delete(id string) error {
	return r.DeleteCtx(context.Background(), id) //lint:allow ctxpass compat wrapper anchors its own root
}

// DeleteCtx is Delete with the request context threaded through to the
// journal.
func (r *Registry) DeleteCtx(ctx context.Context, id string) error {
	if r.journal != nil {
		if ee := r.checkWritable("delete"); ee != nil {
			return ee
		}
	}
	r.mu.Lock()
	lw, ok := r.lws[id]
	delete(r.lws, id)
	r.mu.Unlock()
	if !ok {
		return errf(ErrUnknownWorkflow, "delete", "no live workflow %q", id)
	}
	if err := r.retire(ctx, lw, true); err != nil {
		return wrapErr("delete", err)
	}
	return nil
}

// IDs returns the registered workflow IDs, sorted.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.lws))
	for id := range r.lws {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Len returns the number of live workflows.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.lws)
}

// Infos returns a metadata snapshot of every live workflow, sorted by
// ID. Listing does not bump LRU recency (an operator enumerating the
// registry should not reorder the eviction queue).
func (r *Registry) Infos() []WorkflowInfo {
	r.mu.Lock()
	lws := make([]*LiveWorkflow, 0, len(r.lws))
	for _, lw := range r.lws {
		lws = append(lws, lw)
	}
	r.mu.Unlock()
	infos := make([]WorkflowInfo, 0, len(lws))
	for _, lw := range lws {
		if info, err := lw.Info(); err == nil { // skip concurrently deleted
			infos = append(infos, info)
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// close marks lw dead and purges every oracle-cache entry its snapshots
// seeded; subsequent operations fail with ErrUnknownWorkflow, and a
// deleted-then-reregistered ID can never serve an oracle descended from
// the dead registration.
func (lw *LiveWorkflow) close() {
	lw.mu.Lock()
	lw.closed = true
	// Lock-free readers must stop serving a dead registration: with the
	// epoch cleared they fall back to the locked path, which sees closed.
	lw.epoch.Store(nil)
	lw.mu.Unlock()
	lw.seedMu.Lock()
	for fp := range lw.seeded {
		lw.reg.eng.cache.remove(fp)
	}
	lw.seeded = nil
	lw.seedMu.Unlock()
}

// repoint rebuilds the derived engines over the current closure objects.
// Called whenever ic's matrices are replaced (registration, task growth,
// rollback); edge-only mutations update the matrices in place and need
// no repoint. Callers hold the write lock (or own lw exclusively).
func (lw *LiveWorkflow) repoint() {
	lw.oracle = soundness.NewOracleWithClosure(lw.wf, lw.ic.Graph(), lw.ic.Fwd())
	lw.prov = provenance.NewEngineWithClosures(lw.wf, lw.ic.Fwd(), lw.ic.Rev())
}

// errClosed is the shared guard for operations on dead handles.
func (lw *LiveWorkflow) errClosed(op string) *Error {
	return errf(ErrUnknownWorkflow, op, "live workflow %q was deleted, replaced or evicted", lw.id)
}

// ID returns the registry key of the live workflow.
func (lw *LiveWorkflow) ID() string { return lw.id }

// Version returns the current version.
func (lw *LiveWorkflow) Version() uint64 {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	return lw.version
}

// Info returns a metadata snapshot.
func (lw *LiveWorkflow) Info() (WorkflowInfo, error) {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return WorkflowInfo{}, lw.errClosed("info")
	}
	return lw.infoLocked(), nil
}

// infoLocked builds the metadata under a held lock.
func (lw *LiveWorkflow) infoLocked() WorkflowInfo {
	return WorkflowInfo{
		ID:          lw.id,
		Version:     lw.version,
		Fingerprint: lw.wf.Fingerprint(),
		Tasks:       lw.wf.N(),
		Edges:       lw.wf.M(),
		Views:       append([]string(nil), lw.viewOrder...),
	}
}

// Snapshot returns an immutable deep copy of the live workflow at its
// current version. The snapshot's entry in the Engine's oracle cache is
// seeded with a copy of the live closure, so stateless Engine calls on
// the snapshot skip the closure rebuild.
func (lw *LiveWorkflow) Snapshot() (*workflow.Workflow, uint64, error) {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return nil, 0, lw.errClosed("snapshot")
	}
	return lw.snapshotLocked(), lw.version, nil
}

// snapshotLocked clones and cache-seeds under a held read lock. The
// closure matrix is copied only when the fingerprint's cache entry has
// no oracle yet (first snapshot per version); the seed callback runs
// synchronously, so the copy still happens under this lock.
func (lw *LiveWorkflow) snapshotLocked() *workflow.Workflow {
	snap := lw.wf.Clone()
	reach := lw.ic.Fwd()
	lw.reg.eng.cache.seed(snap, func() *soundness.Oracle {
		return soundness.NewOracleWithClosure(snap, snap.Graph(), reach.Clone())
	})
	// Remember the fingerprint so close() can purge the seeded entry.
	lw.seedMu.Lock()
	if lw.seeded == nil {
		lw.seeded = make(map[string]struct{})
	}
	lw.seeded[snap.Fingerprint()] = struct{}{}
	lw.seedMu.Unlock()
	return snap
}

// Resource returns the metadata and workflow snapshot as one consistent
// read (the GET resource body): both reflect the same version, which a
// torn Info-then-Snapshot pair would not guarantee under concurrent
// mutation.
func (lw *LiveWorkflow) Resource() (WorkflowInfo, *workflow.Workflow, error) {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return WorkflowInfo{}, nil, lw.errClosed("get")
	}
	return lw.infoLocked(), lw.snapshotLocked(), nil
}

// AttachView decodes/builds a view against the live workflow under its
// write lock and attaches it as vid, replacing any previous view with
// that ID. The build callback must construct the view over exactly the
// workflow it is handed (a view built elsewhere cannot be attached: its
// graph pointers would go stale on the first mutation). The view is
// fully validated on attach — composites fan out over the Engine's
// worker pool — and its report is then maintained incrementally by every
// subsequent Mutate. The returned version is the one the report was
// validated under, read within the same critical section.
func (lw *LiveWorkflow) AttachView(vid string, build func(wf *workflow.Workflow) (*view.View, error)) (*soundness.Report, uint64, error) {
	return lw.AttachViewCtx(context.Background(), vid, build) //lint:allow ctxpass compat wrapper anchors its own root
}

// AttachViewCtx is AttachView with the request context threaded through
// to the journal.
func (lw *LiveWorkflow) AttachViewCtx(ctx context.Context, vid string, build func(wf *workflow.Workflow) (*view.View, error)) (*soundness.Report, uint64, error) {
	return lw.attachView(ctx, vid, build, true)
}

// attachView is AttachView with a journal switch; Restore re-enters here
// with journaling off.
func (lw *LiveWorkflow) attachView(ctx context.Context, vid string, build func(wf *workflow.Workflow) (*view.View, error), journal bool) (*soundness.Report, uint64, error) {
	if vid == "" {
		return nil, 0, errf(ErrBadInput, "attach", "empty view id")
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.closed {
		return nil, 0, lw.errClosed("attach")
	}
	if journal && lw.reg.journal != nil {
		if ee := lw.reg.checkWritable("attach"); ee != nil {
			return nil, 0, ee
		}
	}
	v, err := build(lw.wf)
	if err != nil {
		// Build failures are the client's input (malformed JSON, broken
		// partition, wrong workflow name): classify through wrapErr for
		// the typed sentinels, but never let them surface as internal.
		ee := wrapErr("attach", err)
		if ee.Code == ErrInternal {
			ee = &Error{Code: ErrBadInput, Op: "attach", Message: ee.Message, Err: err}
		}
		return nil, 0, ee
	}
	if v == nil {
		return nil, 0, errf(ErrBadInput, "attach", "nil view")
	}
	if v.Workflow() != lw.wf {
		return nil, 0, errf(ErrWorkflowMismatch, "attach",
			"view %q was not built against the live workflow", v.Name())
	}
	rep, err := soundness.ValidateViewParallelCtx(ctx, lw.oracle, v, lw.reg.eng.Workers())
	if err != nil {
		return nil, 0, wrapErr("attach", err)
	}
	if _, exists := lw.views[vid]; !exists {
		lw.viewOrder = append(lw.viewOrder, vid)
	}
	lw.views[vid] = &liveView{v: v, report: rep}
	lw.publishEpochLocked()
	if journal && lw.reg.journal != nil {
		if err := lw.reg.journal.ViewAttached(ctx, lw.stateLocked(), vid, v); err != nil {
			return nil, 0, lw.reg.JournalFault("attach", err)
		}
	}
	return rep, lw.version, nil
}

// DetachView removes the view vid.
func (lw *LiveWorkflow) DetachView(vid string) error {
	return lw.DetachViewCtx(context.Background(), vid) //lint:allow ctxpass compat wrapper anchors its own root
}

// DetachViewCtx is DetachView with the request context threaded through
// to the journal.
func (lw *LiveWorkflow) DetachViewCtx(ctx context.Context, vid string) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.closed {
		return lw.errClosed("detach")
	}
	if lw.reg.journal != nil {
		if ee := lw.reg.checkWritable("detach"); ee != nil {
			return ee
		}
	}
	if _, ok := lw.views[vid]; !ok {
		return errf(ErrUnknownView, "detach", "no view %q on workflow %q", vid, lw.id)
	}
	delete(lw.views, vid)
	for i, id := range lw.viewOrder {
		if id == vid {
			lw.viewOrder = append(lw.viewOrder[:i], lw.viewOrder[i+1:]...)
			break
		}
	}
	lw.publishEpochLocked()
	if lw.reg.journal != nil {
		if err := lw.reg.journal.ViewDetached(ctx, lw.stateLocked(), vid); err != nil {
			return lw.reg.JournalFault("detach", err)
		}
	}
	return nil
}

// Report returns the incrementally maintained report of view vid and the
// workflow version it reflects. This is the registry's payoff: after the
// initial attach, reading a view's soundness is a map lookup, not a
// validation.
func (lw *LiveWorkflow) Report(vid string) (*soundness.Report, uint64, error) {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return nil, 0, lw.errClosed("report")
	}
	lv, ok := lw.views[vid]
	if !ok {
		return nil, 0, errf(ErrUnknownView, "report", "no view %q on workflow %q", vid, lw.id)
	}
	return lv.report, lw.version, nil
}

// Correct repairs every unsound composite of view vid under crit against
// the live oracle, returning the correction and a fresh report of the
// corrected view (always sound). The live view itself is not replaced —
// corrections are proposals; apply one by re-attaching the corrected
// view. The read lock is held for the whole run.
func (lw *LiveWorkflow) Correct(ctx context.Context, vid string, crit core.Criterion, opts *core.Options) (*core.ViewCorrection, *soundness.Report, uint64, error) {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return nil, nil, 0, lw.errClosed("correct")
	}
	lv, ok := lw.views[vid]
	if !ok {
		return nil, nil, 0, errf(ErrUnknownView, "correct", "no view %q on workflow %q", vid, lw.id)
	}
	vc, err := lw.reg.eng.CorrectWithOracle(ctx, lw.oracle, lv.v, crit, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	rep, err := lw.reg.eng.ValidateWithOracle(ctx, lw.oracle, vc.Corrected)
	if err != nil {
		return nil, nil, 0, err
	}
	return vc, rep, lw.version, nil
}

// Lineage answers a provenance query for taskID through view vid,
// contrasting the exact workflow-level answer with the view-level one.
func (lw *LiveWorkflow) Lineage(vid, taskID string) (*LineageResult, error) {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return nil, lw.errClosed("lineage")
	}
	lv, ok := lw.views[vid]
	if !ok {
		return nil, errf(ErrUnknownView, "lineage", "no view %q on workflow %q", vid, lw.id)
	}
	t, ok := lw.wf.Index(taskID)
	if !ok {
		return nil, errf(ErrUnknownTask, "lineage", "no task %q in workflow %q", taskID, lw.id)
	}
	ve := lv.viewEngine()
	exact := lw.prov.Lineage(t)
	viewed := ve.TaskLineage(t)
	res := &LineageResult{
		Task:            taskID,
		Version:         lw.version,
		ViewSound:       lv.report.Sound,
		WorkflowLineage: lw.taskIDs(exact),
		ViewLineage:     lw.taskIDs(viewed),
	}
	for _, ci := range ve.CompositeLineage(lv.v.CompOf(t)) {
		res.CompositeLineage = append(res.CompositeLineage, lv.v.Composite(ci).ID)
	}
	exactSet := bitset.New(lw.wf.N())
	for _, u := range exact {
		exactSet.Set(u)
	}
	for _, u := range viewed {
		if !exactSet.Test(u) {
			res.FalsePositives = append(res.FalsePositives, lw.wf.Task(u).ID)
		}
	}
	return res, nil
}

// taskIDs maps task indices to IDs; callers hold a lock.
func (lw *LiveWorkflow) taskIDs(idx []int) []string {
	out := make([]string, len(idx))
	for i, t := range idx {
		out[i] = lw.wf.Task(t).ID
	}
	return out
}

// Mutate applies a batch of task and edge additions atomically: the
// whole batch is validated up front (IDs, duplicates, composite-ID
// collisions), edges are inserted one at a time with an O(1) cycle check
// against the live closure, and a mid-batch cycle rolls every prior
// insertion back before returning ErrCycleRejected. On success the
// closure has been updated incrementally, every attached view has been
// extended (new tasks become singleton composites) and revalidated over
// exactly its dirty composites, and the version has been bumped — unless
// the batch turned out to be a structural no-op (only duplicate edges),
// which leaves the version unchanged.
func (lw *LiveWorkflow) Mutate(m Mutation) (*MutationResult, error) {
	return lw.MutateCtx(context.Background(), m) //lint:allow ctxpass compat wrapper anchors its own root
}

// MutateCtx is Mutate with the request context threaded through: the
// trace span it may carry covers the apply/revalidate/publish work, and
// a child span times the journal commit (the seam where group-commit
// stalls surface). Cancellation is observability-only — a batch that
// entered apply always commits or rolls back as one unit.
func (lw *LiveWorkflow) MutateCtx(ctx context.Context, m Mutation) (*MutationResult, error) {
	ctx, span := obs.StartSpan(ctx, "engine", "mutate")
	defer span.End()
	span.SetAttr("workflow", lw.id)
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.closed {
		return nil, lw.errClosed("mutate")
	}
	if m.IfVersion != 0 && m.IfVersion != lw.version {
		return nil, errf(ErrVersionConflict, "mutate",
			"workflow %q is at version %d, mutation requires %d", lw.id, lw.version, m.IfVersion)
	}
	// Degraded gate, checked before any state is touched: a mutation
	// rejected here leaves neither memory nor log changed. (A journal
	// failure below, by contrast, keeps the mutation in memory — see the
	// Journal failure contract in journal.go.)
	if lw.reg.journal != nil {
		if ee := lw.reg.checkWritable("mutate"); ee != nil {
			return nil, ee
		}
	}

	// --- preflight: reject everything rejectable before touching state.
	n0 := lw.wf.N()
	newIndex := make(map[string]int, len(m.Tasks))
	for i, t := range m.Tasks {
		if t.ID == "" {
			return nil, errf(ErrBadInput, "mutate", "task %d has an empty id", i)
		}
		if _, dup := lw.wf.Index(t.ID); dup {
			return nil, errf(ErrBadInput, "mutate", "task %q already exists", t.ID)
		}
		if _, dup := newIndex[t.ID]; dup {
			return nil, errf(ErrBadInput, "mutate", "task %q duplicated in batch", t.ID)
		}
		for _, vid := range lw.viewOrder {
			if _, clash := lw.views[vid].v.CompIndex(t.ID); clash {
				return nil, errf(ErrBadInput, "mutate",
					"task %q collides with a composite of view %q", t.ID, vid)
			}
		}
		newIndex[t.ID] = n0 + i
	}
	resolve := func(id string) (int, bool) {
		if i, ok := lw.wf.Index(id); ok {
			return i, true
		}
		i, ok := newIndex[id]
		return i, ok
	}
	edgeIdx := make([][2]int, len(m.Edges))
	for i, e := range m.Edges {
		u, ok := resolve(e[0])
		if !ok {
			return nil, errf(ErrUnknownTask, "mutate", "edge %q→%q: unknown task %q", e[0], e[1], e[0])
		}
		v, ok := resolve(e[1])
		if !ok {
			return nil, errf(ErrUnknownTask, "mutate", "edge %q→%q: unknown task %q", e[0], e[1], e[1])
		}
		if u == v {
			return nil, errf(ErrBadInput, "mutate", "edge %q→%q is a self-dependency", e[0], e[1])
		}
		edgeIdx[i] = [2]int{u, v}
	}

	// --- apply: tasks first (cannot fail past preflight), then edges
	// with live cycle checks.
	if len(m.Tasks) > 0 {
		if _, err := lw.wf.ExtendTasks(m.Tasks); err != nil {
			return nil, errf(ErrInternal, "mutate", "task extension failed past preflight: %v", err)
		}
		lw.ic.Grow(len(m.Tasks))
		lw.repoint()
	}
	dirty := bitset.New(lw.wf.N())
	applied := make([][2]int, 0, len(edgeIdx))
	added, ignored := 0, 0
	for i, e := range edgeIdx {
		ok, err := lw.ic.AddEdge(e[0], e[1], dirty)
		if err != nil {
			// Roll the whole batch back: pop applied edges, shrink the
			// graph and task list, rebuild the closures, repoint.
			lw.ic.Rollback(n0, applied)
			lw.wf.TruncateTasks(n0)
			lw.repoint()
			if errors.Is(err, dag.ErrCycle) {
				return nil, errf(ErrCycleRejected, "mutate",
					"edge %q→%q would create a dependency cycle; batch rolled back",
					m.Edges[i][0], m.Edges[i][1])
			}
			return nil, wrapErr("mutate", err)
		}
		if ok {
			applied = append(applied, e)
			added++
		} else {
			ignored++
		}
	}

	res := &MutationResult{
		TasksAdded:   len(m.Tasks),
		EdgesAdded:   added,
		EdgesIgnored: ignored,
		DirtyTasks:   dirty.Count(),
	}
	if len(m.Tasks) == 0 && added == 0 {
		// Structural no-op: nothing to revalidate, version unchanged.
		res.Version = lw.version
		return res, nil
	}
	if added > 0 {
		lw.wf.StructureChanged()
	}

	// --- revalidate attached views over their dirty composites only.
	for _, vid := range lw.viewOrder {
		lv := lw.views[vid]
		oldK := lv.v.N()
		prev := lv.report
		if len(m.Tasks) > 0 {
			nv, err := lv.v.ExtendSingletons()
			if err != nil {
				// Unreachable: collisions are prechecked above.
				panic(fmt.Sprintf("engine: view %q extension failed past preflight: %v", vid, err))
			}
			lv.v = nv
		}
		dirtyComps := soundness.DirtyComposites(lv.v, dirty, oldK)
		delta := soundness.Revalidate(lw.oracle, lv.v, dirtyComps)
		lv.report = soundness.Merge(prev, delta, lv.v)
		lv.ve = nil    // lineage engine rebuilt lazily over the new state
		lv.audit = nil // provenance audit likewise

		vd := ViewDelta{View: vid, Sound: lv.report.Sound}
		for _, ci := range dirtyComps {
			id := lv.v.Composite(ci).ID
			vd.Revalidated = append(vd.Revalidated, id)
			if ci < oldK && ci < len(prev.Composites) &&
				prev.Composites[ci].Sound != lv.report.Composites[ci].Sound {
				vd.Flipped = append(vd.Flipped, id)
			}
		}
		for _, ci := range lv.report.Unsound {
			vd.Unsound = append(vd.Unsound, lv.v.Composite(ci).ID)
		}
		res.Views = append(res.Views, vd)
	}

	lw.version++
	res.Version = lw.version
	lw.publishEpochLocked()

	// Journal the committed batch: the tasks appended plus the edges
	// actually inserted (duplicates dropped), so replay from the same
	// pre-state is deterministic. One buffered append on the hot path;
	// snapshot policy and fsync batching live behind the interface.
	if j := lw.reg.journal; j != nil {
		edges := make([][2]string, len(applied))
		for i, e := range applied {
			edges[i] = [2]string{lw.wf.Task(e[0]).ID, lw.wf.Task(e[1]).ID}
		}
		jctx, jspan := obs.StartSpan(ctx, "engine", "journal.commit")
		err := j.Committed(jctx, &AppliedBatch{Tasks: m.Tasks, Edges: edges}, lw.stateLocked())
		jspan.End()
		if err != nil {
			return nil, lw.reg.JournalFault("mutate", err)
		}
	}
	return res, nil
}

// ProvSession is a read-consistent provenance query session over a live
// workflow, handed to the callback of LiveWorkflow.Query. Every pointer
// it exposes references live registry state guarded by the read lock the
// session holds: use them inside the callback only, never retain them.
// The run store (internal/runs) answers all three lineage levels through
// one session — exact rows from the incrementally maintained closure,
// view-level rows from the cached quotient closure, and the audited
// delta from the cached provenance audit.
type ProvSession struct {
	lw *LiveWorkflow
}

// Query invokes fn with a provenance session while holding the live
// workflow's read lock, so everything fn reads — task space, version,
// closure rows, view engines, audits — reflects one consistent version.
func (lw *LiveWorkflow) Query(fn func(ps *ProvSession) error) error {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return lw.errClosed("query")
	}
	return fn(&ProvSession{lw: lw})
}

// Workflow returns the live workflow object (valid only inside the
// session callback).
func (ps *ProvSession) Workflow() *workflow.Workflow { return ps.lw.wf }

// Version returns the workflow version the session reads.
func (ps *ProvSession) Version() uint64 { return ps.lw.version }

// Lineage returns the task-level lineage engine backed by the live
// incrementally maintained closure — exact rows, zero rebuild cost.
func (ps *ProvSession) Lineage() *provenance.Engine { return ps.lw.prov }

// View returns the attached view vid with its cached quotient-closure
// engine and incrementally maintained soundness report.
func (ps *ProvSession) View(vid string) (*view.View, *provenance.ViewEngine, *soundness.Report, error) {
	lv, ok := ps.lw.views[vid]
	if !ok {
		return nil, nil, nil, errf(ErrUnknownView, "query", "no view %q on workflow %q", vid, ps.lw.id)
	}
	return lv.v, lv.viewEngine(), lv.report, nil
}

// Audit returns the cached provenance audit of view vid (spurious and
// missing composite pairs against ground truth), built on first use per
// workflow version.
func (ps *ProvSession) Audit(vid string) (*provenance.ViewAudit, error) {
	lv, ok := ps.lw.views[vid]
	if !ok {
		return nil, errf(ErrUnknownView, "query", "no view %q on workflow %q", vid, ps.lw.id)
	}
	return lv.viewAudit(ps.lw.prov), nil
}
