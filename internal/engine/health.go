package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wolves/internal/obs"
)

// healthLog narrates the degraded-mode state machine: every transition
// is one structured line, so an operator can line up a burst of 503s
// with the exact degrade/recover timestamps.
var healthLog = obs.NewLogger("engine")

// journalUnavailable is the marker interface a journal's errors implement
// to signal the backing store is unavailable as a whole (not just one
// operation). The storage package's sticky store failure implements it;
// the engine classifies through errors.As so it never has to import the
// storage package.
type journalUnavailable interface {
	JournalUnavailable() bool
}

// RecoverableJournal is a Journal whose backing store can be probed and
// brought back after a failure. Probe attempts to reopen the store's
// underlying resources; Resync, called only after a successful Probe and
// before the registry accepts writes again, makes the store's durable
// state equal to the registry's in-memory state (which is authoritative:
// operations that failed mid-journal stayed applied in memory).
type RecoverableJournal interface {
	Journal
	Probe() error
	Resync(*Registry) error
}

// Health status strings, as served by /readyz and /v1/stats.
const (
	HealthHealthy  = "healthy"
	HealthDegraded = "degraded"
)

// HealthInfo is a snapshot of the registry's degraded-mode state machine.
type HealthInfo struct {
	// Status is "healthy" or "degraded".
	Status string `json:"status"`
	// Degradations counts healthy→degraded transitions since boot;
	// Recoveries counts the reverse; Probes counts journal reopen
	// attempts (successful or not).
	Degradations int64 `json:"degradations"`
	Recoveries   int64 `json:"recoveries"`
	Probes       int64 `json:"probes"`
	// DegradedSeconds is how long the current degradation has lasted;
	// zero when healthy.
	DegradedSeconds float64 `json:"degraded_seconds,omitempty"`
	// LastError is the journal error that caused the most recent
	// degradation; kept after recovery for post-mortems.
	LastError string `json:"last_error,omitempty"`
}

// Probe backoff defaults; see WithProbeBackoff.
const (
	DefaultProbeBackoffMin = 250 * time.Millisecond
	DefaultProbeBackoffMax = 5 * time.Second
)

// health is the registry's degraded-mode state, embedded in Registry.
type health struct {
	degradedFlag atomic.Bool // fast-path gate read by every write op

	mu            sync.Mutex
	degraded      bool
	probing       bool
	degradedSince time.Time
	lastError     string
	degradations  int64
	recoveries    int64
	probes        int64
}

// WithProbeBackoff sets the degraded-mode probe loop's backoff window:
// the first reopen attempt runs after min, doubling (with jitter) up to
// max. Non-positive values keep the defaults.
func WithProbeBackoff(min, max time.Duration) RegistryOption {
	return func(r *Registry) {
		if min > 0 {
			r.probeMin = min
		}
		if max >= r.probeMin {
			r.probeMax = max
		} else {
			r.probeMax = r.probeMin
		}
	}
}

// Degraded reports whether the registry is in degraded read-only mode.
func (r *Registry) Degraded() bool { return r.health.degradedFlag.Load() }

// Health returns the registry's current health counters.
func (r *Registry) Health() HealthInfo {
	h := &r.health
	h.mu.Lock()
	defer h.mu.Unlock()
	info := HealthInfo{
		Status:       HealthHealthy,
		Degradations: h.degradations,
		Recoveries:   h.recoveries,
		Probes:       h.probes,
		LastError:    h.lastError,
	}
	if h.degraded {
		info.Status = HealthDegraded
		info.DegradedSeconds = time.Since(h.degradedSince).Seconds()
	}
	return info
}

// CheckWritable gates journaled write operations: it returns a typed
// degraded error while the registry is in degraded read-only mode, nil
// otherwise. The run store calls it before accepting an ingest; the
// registry's own write paths call checkWritable directly.
func (r *Registry) CheckWritable(op string) error {
	if ee := r.checkWritable(op); ee != nil {
		return ee
	}
	return nil
}

func (r *Registry) checkWritable(op string) *Error {
	if r.health.degradedFlag.Load() {
		return errf(ErrDegraded, op,
			"journal unavailable; registry is degraded read-only (queries keep serving, retry writes later)")
	}
	return nil
}

// JournalFault classifies an error returned by a journal call. A store
// that reports itself unavailable flips the registry into degraded
// read-only mode (starting the background reopen probe) and the caller
// gets a typed degraded error; any other journal error wraps as usual.
// The run store routes its journal errors through here too.
func (r *Registry) JournalFault(op string, err error) error {
	if err == nil {
		return nil
	}
	var ju journalUnavailable
	if errors.As(err, &ju) && ju.JournalUnavailable() {
		r.degrade(err)
		return &Error{Code: ErrDegraded, Op: op,
			Message: "journal unavailable; applied in memory only, registry is degraded read-only: " + err.Error(),
			Err:     err}
	}
	return wrapErr(op, err)
}

// degrade flips the registry into degraded mode (idempotently) and
// starts the probe loop when the journal is recoverable.
func (r *Registry) degrade(cause error) {
	h := &r.health
	h.mu.Lock()
	h.lastError = cause.Error()
	if h.degraded {
		h.mu.Unlock()
		return
	}
	h.degraded = true
	h.degradedSince = time.Now()
	h.degradations++
	start := false
	if _, ok := r.journal.(RecoverableJournal); ok && !h.probing {
		h.probing = true
		start = true
	}
	h.mu.Unlock()
	h.degradedFlag.Store(true)
	obs.MHealthTransitions.With("degraded").Inc()
	healthLog.Error("registry degraded read-only", "cause", cause)
	if start {
		go r.probeLoop(r.journal.(RecoverableJournal))
	}
}

// probeLoop attempts to reopen the journal under exponential backoff
// with jitter, then resyncs the store to the registry's in-memory state,
// and only then flips the registry back to healthy — so no write can
// reach the reopened store before its durable state again matches
// memory. Exits when recovery succeeds; a later degradation starts a
// fresh loop.
func (r *Registry) probeLoop(rj RecoverableJournal) {
	h := &r.health
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := r.probeMin
	for {
		// Full jitter over [backoff/2, backoff): herds of recovering
		// registries must not hammer a shared disk in lockstep.
		d := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		time.Sleep(d)
		h.mu.Lock()
		h.probes++
		h.mu.Unlock()
		obs.MHealthTransitions.With("probing").Inc()
		if err := rj.Probe(); err == nil {
			if err := rj.Resync(r); err == nil {
				h.mu.Lock()
				h.degraded = false
				h.probing = false
				h.recoveries++
				since := h.degradedSince
				h.mu.Unlock()
				h.degradedFlag.Store(false)
				obs.MHealthTransitions.With("healthy").Inc()
				healthLog.Info("registry recovered",
					"degraded_for", time.Since(since).Round(time.Millisecond))
				return
			}
		}
		if backoff *= 2; backoff > r.probeMax {
			backoff = r.probeMax
		}
	}
}
