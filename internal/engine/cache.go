package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"wolves/internal/provenance"
	"wolves/internal/soundness"
	"wolves/internal/workflow"
)

// CacheStats is a snapshot of the oracle cache's counters. Builds counts
// closure constructions (the expensive part a hit avoids): a cache-hit
// Validate leaves Builds untouched.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
	// Invalidations counts entries removed because the live workflow
	// whose snapshots seeded them was deleted, replaced or evicted.
	Invalidations int64 `json:"invalidations"`
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
}

// cacheEntry holds the per-workflow derived state. The oracle (and the
// lineage engine, built on demand) are constructed under the entry's own
// sync.Once, so concurrent requests for the same workflow build each at
// most once without serializing the whole cache.
type cacheEntry struct {
	fp string

	oracleOnce sync.Once
	oracle     *soundness.Oracle

	provOnce sync.Once
	prov     *provenance.Engine

	// wf is the workflow the entry was built from. Structurally identical
	// workflows (equal fingerprints) share the entry.
	wf *workflow.Workflow
}

// oracleCache is an LRU of cacheEntry keyed by workflow fingerprint.
type oracleCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // fp → element holding *cacheEntry
	order    *list.List               // front = most recently used

	hits, misses, builds, evictions, invalidations atomic.Int64
}

func newOracleCache(capacity int) *oracleCache {
	return &oracleCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// get returns the entry for wf, creating (and possibly evicting) as
// needed. The expensive closure build happens outside the cache lock,
// guarded by the entry's sync.Once.
func (c *oracleCache) get(wf *workflow.Workflow) *cacheEntry {
	fp := wf.Fingerprint()
	if c.capacity <= 0 {
		// Caching disabled: fresh entry per call.
		c.misses.Add(1)
		return &cacheEntry{fp: fp, wf: wf}
	}
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.order.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{fp: fp, wf: wf}
	el := c.order.PushFront(e)
	c.entries[fp] = el
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).fp)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return e
}

// oracleFor returns the (lazily built) soundness oracle of the entry.
func (c *oracleCache) oracleFor(e *cacheEntry) *soundness.Oracle {
	e.oracleOnce.Do(func() {
		c.builds.Add(1)
		e.oracle = soundness.NewOracle(e.wf)
	})
	return e.oracle
}

// seed pre-populates the oracle of wf's cache entry with build's result,
// unless one is already present. The registry seeds snapshots of live
// workflows this way: the snapshot's oracle is a copy of the live,
// incrementally maintained closure, so stateless Engine calls against
// the snapshot never pay a closure construction. Seeding does not count
// as a Build (no closure DP ran).
func (c *oracleCache) seed(wf *workflow.Workflow, build func() *soundness.Oracle) {
	if c.capacity <= 0 {
		// Caching disabled: the entry would be thrown away, so do not pay
		// for the closure copy either.
		return
	}
	e := c.get(wf)
	e.oracleOnce.Do(func() { e.oracle = build() })
}

// remove drops the entry keyed by fingerprint fp, if present. The
// registry calls this when a live workflow dies (delete, replace, LRU
// eviction) for every fingerprint its snapshots seeded: a later request
// for an equal workflow rebuilds from scratch instead of trusting state
// descended from the dead registration.
func (c *oracleCache) remove(fp string) {
	c.mu.Lock()
	el, ok := c.entries[fp]
	if ok {
		c.order.Remove(el)
		delete(c.entries, fp)
	}
	c.mu.Unlock()
	if ok {
		c.invalidations.Add(1)
	}
}

// provFor returns the (lazily built) lineage engine of the entry.
func (c *oracleCache) provFor(e *cacheEntry) *provenance.Engine {
	e.provOnce.Do(func() {
		e.prov = provenance.NewEngine(e.wf)
	})
	return e.prov
}

func (c *oracleCache) stats() CacheStats {
	c.mu.Lock()
	size := c.order.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Builds:        c.builds.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Size:          size,
		Capacity:      c.capacity,
	}
}
