package engine

import (
	"context"
	"errors"
	"fmt"

	"wolves/internal/core"
	"wolves/internal/dag"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Code classifies an Engine error for programmatic handling (and maps
// one-to-one onto wolvesd HTTP statuses).
type Code string

// Error codes. The names mirror the conditions they classify; use
// errors.As to recover the *Error and switch on Code.
const (
	// ErrBadInput: a nil or structurally invalid argument.
	ErrBadInput Code = "bad_input"
	// ErrUnknownTask: a task ID that does not exist in the workflow.
	ErrUnknownTask Code = "unknown_task"
	// ErrUnknownComposite: a composite ID that does not exist in the view.
	ErrUnknownComposite Code = "unknown_composite"
	// ErrWorkflowMismatch: the view belongs to a structurally different
	// workflow than the one given.
	ErrWorkflowMismatch Code = "workflow_mismatch"
	// ErrOptimalLimit: the composite exceeds Options.OptimalLimit.
	ErrOptimalLimit Code = "optimal_limit"
	// ErrCanceled: the context was canceled or its deadline expired.
	ErrCanceled Code = "canceled"
	// ErrUnknownWorkflow: a registry workflow ID that is not registered
	// (wolvesd maps it to 404).
	ErrUnknownWorkflow Code = "unknown_workflow"
	// ErrUnknownView: a view ID not attached to the live workflow
	// (wolvesd maps it to 404).
	ErrUnknownView Code = "unknown_view"
	// ErrVersionConflict: a conditional mutation named a version other
	// than the live workflow's current one (wolvesd maps it to 409).
	ErrVersionConflict Code = "version_conflict"
	// ErrCycleRejected: a mutation edge would create a dependency cycle;
	// the whole batch was rolled back (wolvesd maps it to 422).
	ErrCycleRejected Code = "cycle_rejected"
	// ErrInvalidTrace: an execution trace failed ingestion validation —
	// unknown task, duplicate artifact, dangling used edge, empty run,
	// torn NDJSON line (wolvesd maps it to 422).
	ErrInvalidTrace Code = "invalid_trace"
	// ErrUnknownRun: a run ID not ingested for the live workflow (wolvesd
	// maps it to 404).
	ErrUnknownRun Code = "unknown_run"
	// ErrUnknownArtifact: a lineage query named an artifact the run does
	// not contain (wolvesd maps it to 404).
	ErrUnknownArtifact Code = "unknown_artifact"
	// ErrDegraded: the registry's journal is unavailable and the registry
	// is serving in degraded read-only mode — queries keep working from
	// memory, mutations and ingests are rejected until the background
	// probe reopens the journal (wolvesd maps it to 503 + Retry-After).
	ErrDegraded Code = "degraded"
	// ErrOverloaded: the server shed this request under admission control
	// (wolvesd maps it to 503 + Retry-After).
	ErrOverloaded Code = "overloaded"
	// ErrInternal: everything else.
	ErrInternal Code = "internal"
)

// allCodes enumerates every declared Code. The list is machine-checked:
// wolveslint's errcode analyzer fails the build if a declared constant
// is missing here, so Codes() can never silently lag the const block.
//
//lint:exhaustive errcode
var allCodes = []Code{
	ErrBadInput,
	ErrUnknownTask,
	ErrUnknownComposite,
	ErrWorkflowMismatch,
	ErrOptimalLimit,
	ErrCanceled,
	ErrUnknownWorkflow,
	ErrUnknownView,
	ErrVersionConflict,
	ErrCycleRejected,
	ErrInvalidTrace,
	ErrUnknownRun,
	ErrUnknownArtifact,
	ErrDegraded,
	ErrOverloaded,
	ErrInternal,
}

// Codes returns every declared error code, in declaration order. Tests
// iterate it to pin down how each code surfaces (HTTP status, retry
// semantics) so new codes cannot ship unmapped.
func Codes() []Code { return append([]Code(nil), allCodes...) }

// Error is the structured error type of every Engine method. It always
// wraps the underlying cause, so errors.Is against sentinel errors
// (context.Canceled, core.ErrOptimalLimit, workflow.ErrUnknownTask, …)
// keeps working through it.
type Error struct {
	Code    Code   `json:"code"`
	Op      string `json:"op,omitempty"` // "validate", "correct", "split", "audit", …
	Message string `json:"message"`
	Err     error  `json:"-"`
}

// Error renders "wolves: <op>: <message> [<code>]".
func (e *Error) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("wolves: %s: %s [%s]", e.Op, e.Message, e.Code)
	}
	return fmt.Sprintf("wolves: %s [%s]", e.Message, e.Code)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// IsCode reports whether err is (or wraps) an *Error carrying code.
func IsCode(err error, code Code) bool {
	var ee *Error
	return errors.As(err, &ee) && ee.Code == code
}

// wrapErr classifies err into an *Error. nil stays nil.
func wrapErr(op string, err error) *Error {
	if err == nil {
		return nil
	}
	var ee *Error
	if errors.As(err, &ee) {
		return ee
	}
	code := ErrInternal
	switch {
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, core.ErrCanceled):
		code = ErrCanceled
	case errors.Is(err, core.ErrOptimalLimit):
		code = ErrOptimalLimit
	case errors.Is(err, dag.ErrCycle):
		code = ErrCycleRejected
	case errors.Is(err, workflow.ErrUnknownTask):
		code = ErrUnknownTask
	case errors.Is(err, view.ErrUnknownComp):
		code = ErrUnknownComposite
	}
	return &Error{Code: code, Op: op, Message: err.Error(), Err: err}
}

// errf builds an *Error from scratch with an explicit code.
func errf(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Message: fmt.Sprintf(format, args...)}
}
