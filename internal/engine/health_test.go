package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wolves/internal/view"
)

// flakyJournal is a scriptable RecoverableJournal: while broken, every
// journal call returns an unavailable-marked error; Probe fails until
// healed, then Resync records that it ran before the registry flipped
// back.
type flakyJournal struct {
	mu      sync.Mutex
	broken  bool
	resyncs int
	probes  int
	appends int
}

type unavailableErr struct{}

func (unavailableErr) Error() string            { return "disk on fire" }
func (unavailableErr) JournalUnavailable() bool { return true }

func (j *flakyJournal) call() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return unavailableErr{}
	}
	j.appends++
	return nil
}

func (j *flakyJournal) Registered(context.Context, *LiveState) error               { return j.call() }
func (j *flakyJournal) Committed(context.Context, *AppliedBatch, *LiveState) error { return j.call() }
func (j *flakyJournal) ViewAttached(context.Context, *LiveState, string, *view.View) error {
	return j.call()
}
func (j *flakyJournal) ViewDetached(context.Context, *LiveState, string) error { return j.call() }
func (j *flakyJournal) Deleted(ctx context.Context, id string) error           { return j.call() }
func (j *flakyJournal) Probe() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.probes++
	if j.broken {
		return unavailableErr{}
	}
	return nil
}
func (j *flakyJournal) Resync(*Registry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return unavailableErr{}
	}
	j.resyncs++
	return nil
}

func (j *flakyJournal) setBroken(b bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.broken = b
}

func TestRegistryDegradesAndRecovers(t *testing.T) {
	j := &flakyJournal{}
	reg := NewRegistry(New(), WithJournal(j),
		WithProbeBackoff(2*time.Millisecond, 20*time.Millisecond))
	lw := figure1Registered(t, reg)
	preRep, preVer, err := lw.Report("fig1b")
	if err != nil {
		t.Fatal(err)
	}

	// Break the journal: the next mutation applies in memory but comes
	// back as a typed degraded error, and the registry flips.
	j.setBroken(true)
	_, err = lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}})
	if !IsCode(err, ErrDegraded) {
		t.Fatalf("mutate on broken journal: want degraded, got %v", err)
	}
	if !reg.Degraded() {
		t.Fatal("registry did not degrade after an unavailable journal error")
	}
	if v := lw.Version(); v != preVer+1 {
		t.Fatalf("mutation must stay applied in memory: version %d, want %d", v, preVer+1)
	}

	// While degraded: queries keep serving identical answers; every
	// write surface is gated with the typed error, before touching state.
	rep, _, err := lw.Report("fig1b")
	if err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	_ = rep
	_ = preRep
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"4", "5"}}}); !IsCode(err, ErrDegraded) {
		t.Fatalf("gated mutate: want degraded, got %v", err)
	}
	if v := lw.Version(); v != preVer+1 {
		t.Fatalf("gated mutate must not apply: version %d, want %d", v, preVer+1)
	}
	if err := lw.DetachView("fig1b"); !IsCode(err, ErrDegraded) {
		t.Fatalf("gated detach: want degraded, got %v", err)
	}
	if err := reg.Delete("phylo"); !IsCode(err, ErrDegraded) {
		t.Fatalf("gated delete: want degraded, got %v", err)
	}
	if _, err := reg.Get("phylo"); err != nil {
		t.Fatalf("gated delete removed the workflow from memory: %v", err)
	}
	if h := reg.Health(); h.Status != HealthDegraded || h.Degradations != 1 || h.LastError == "" {
		t.Fatalf("health while degraded: %+v", h)
	}

	// Heal the disk: the probe loop must reopen, resync BEFORE flipping
	// healthy, and then writes flow again.
	j.setBroken(false)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("registry never recovered; health %+v", reg.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	j.mu.Lock()
	resyncs, probes := j.resyncs, j.probes
	j.mu.Unlock()
	if resyncs != 1 {
		t.Fatalf("resyncs = %d, want exactly 1", resyncs)
	}
	if probes == 0 {
		t.Fatal("no probes recorded")
	}
	h := reg.Health()
	if h.Status != HealthHealthy || h.Recoveries != 1 || h.Probes < int64(probes) {
		t.Fatalf("health after recovery: %+v", h)
	}
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"4", "5"}}}); err != nil {
		t.Fatalf("mutate after recovery: %v", err)
	}
}

func TestJournalFaultWithoutMarkerStaysInternal(t *testing.T) {
	reg := NewRegistry(New())
	err := reg.JournalFault("mutate", errors.New("plain failure"))
	if IsCode(err, ErrDegraded) {
		t.Fatal("unmarked journal error classified as degraded")
	}
	if reg.Degraded() {
		t.Fatal("unmarked journal error degraded the registry")
	}
	if !IsCode(err, ErrInternal) {
		t.Fatalf("want internal, got %v", err)
	}
}
