package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"wolves/internal/gen"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// benchWorkload is one live-mutation scenario: a layered workflow, an
// attached interval view, and a pool of fresh candidate edges that all
// respect a single topological order (so any prefix of the stream is
// acyclic and both benchmark variants process the identical mutations).
type benchWorkload struct {
	wf         *workflow.Workflow
	v          *view.View
	candidates [][2]string
}

// benchEdgePool bounds the candidate stream; past it the stream wraps to
// duplicate edges (no-ops for the incremental path, full price for the
// rebuild path), so record numbers with -benchtime=2000x or lower.
const benchEdgePool = 8192

func newBenchWorkload(b *testing.B, n int) *benchWorkload {
	b.Helper()
	wf := gen.Layered(gen.LayeredConfig{
		Name: fmt.Sprintf("bench-%d", n), Tasks: n, Layers: 12,
		EdgeProb: 0.25, SkipProb: 0.05, Seed: int64(n),
	})
	v := gen.IntervalView(wf, n/16, "bench-view")
	order, err := wf.Graph().TopoOrder()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(n) * 7))
	seen := make(map[[2]int]bool, benchEdgePool)
	cands := make([][2]string, 0, benchEdgePool)
	for len(cands) < benchEdgePool {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		u, w := order[i], order[j]
		if seen[[2]int{u, w}] || wf.Graph().HasEdge(u, w) {
			continue
		}
		seen[[2]int{u, w}] = true
		cands = append(cands, [2]string{wf.Task(u).ID, wf.Task(w).ID})
	}
	return &benchWorkload{wf: wf, v: v, candidates: cands}
}

// batch returns the i-th mutation batch of the stream.
func (w *benchWorkload) batch(i, size int) [][2]string {
	out := make([][2]string, 0, size)
	for k := 0; k < size; k++ {
		out = append(out, w.candidates[(i*size+k)%len(w.candidates)])
	}
	return out
}

// BenchmarkMutateIncremental measures the registry path: one Mutate call
// per iteration — incremental closure update, dirty-set revalidation,
// report merge.
func BenchmarkMutateIncremental(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("n=%d/batch=%d", n, batch), func(b *testing.B) {
				w := newBenchWorkload(b, n)
				reg := NewRegistry(New())
				lw, err := reg.Register("bench", w.wf)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := lw.AttachView("v", func(wf *workflow.Workflow) (*view.View, error) {
					return w.v, nil
				}); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := lw.Mutate(Mutation{Edges: w.batch(i, batch)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMutateRebuild measures what the stateless stack pays for the
// same mutation stream: apply the edges, rebuild the reachability
// closure from scratch, revalidate the whole view.
func BenchmarkMutateRebuild(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("n=%d/batch=%d", n, batch), func(b *testing.B) {
				w := newBenchWorkload(b, n)
				g := w.wf.Graph()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, e := range w.batch(i, batch) {
						g.MustAddEdge(w.wf.MustIndex(e[0]), w.wf.MustIndex(e[1]))
					}
					w.wf.StructureChanged()
					oracle := soundness.NewOracle(w.wf)
					rep := soundness.ValidateView(oracle, w.v)
					_ = rep
				}
			})
		}
	}
}
