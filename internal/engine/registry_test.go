package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wolves/internal/core"
	"wolves/internal/gen"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// figure1Registered builds the README walkthrough state: Figure 1's
// workflow without the 3→4 and 4→5 edges (so composite 16 = {4,7} is
// initially sound — task 4 is isolated) registered as "phylo" with the
// Figure 1(b) view attached as "fig1b".
func figure1Registered(t *testing.T, reg *Registry) *LiveWorkflow {
	t.Helper()
	b := workflow.NewBuilder("phylogenomics")
	for i := 1; i <= 12; i++ {
		b.AddTask(fmt.Sprintf("%d", i))
	}
	b.AddEdge("1", "2").AddEdge("2", "3").AddEdge("2", "6").
		AddEdge("6", "7").AddEdge("7", "8").AddEdge("8", "11").
		AddEdge("5", "11").AddEdge("9", "10").AddEdge("10", "11").
		AddEdge("11", "12")
	wf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lw, err := reg.Register("phylo", wf)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := lw.AttachView("fig1b", func(wf *workflow.Workflow) (*view.View, error) {
		return view.NewBuilder(wf, "fig1b").
			Assign("13", "1", "2").
			Assign("14", "3").
			Assign("15", "6").
			Assign("16", "4", "7").
			Assign("17", "5").
			Assign("18", "8").
			Assign("19", "9", "10", "11", "12").
			Build()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Fatalf("pre-mutation view must be sound, got unsound composites %v", rep.Unsound)
	}
	return lw
}

// assertLiveReportsFresh asserts every attached view's maintained report
// equals a from-scratch validation over a freshly computed closure.
func assertLiveReportsFresh(t *testing.T, lw *LiveWorkflow) {
	t.Helper()
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	fresh := soundness.NewOracle(lw.wf)
	for _, vid := range lw.viewOrder {
		lv := lw.views[vid]
		want := soundness.ValidateView(fresh, lv.v)
		if !reflect.DeepEqual(lv.report, want) {
			t.Fatalf("view %q: maintained report diverged from from-scratch validation\ngot:  %+v\nwant: %+v",
				vid, lv.report, want)
		}
	}
}

func TestRegistryFigure1Walkthrough(t *testing.T) {
	reg := NewRegistry(New())
	lw := figure1Registered(t, reg)

	// Adding 3→4 gives composite 16 an in-node (4) that cannot reach its
	// out-node (7): the view flips unsound, caught by revalidating only
	// the dirty composites.
	res, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.EdgesAdded != 1 {
		t.Fatalf("mutation result %+v, want version 2, 1 edge", res)
	}
	if len(res.Views) != 1 {
		t.Fatalf("want one view delta, got %+v", res.Views)
	}
	vd := res.Views[0]
	if vd.Sound || !reflect.DeepEqual(vd.Flipped, []string{"16"}) || !reflect.DeepEqual(vd.Unsound, []string{"16"}) {
		t.Fatalf("view delta %+v, want composite 16 flipped unsound", vd)
	}
	assertLiveReportsFresh(t, lw)

	// Completing Figure 1 (edge 4→5) keeps 16 unsound; the final state
	// must report exactly like the canonical Figure 1 instance.
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"4", "5"}}}); err != nil {
		t.Fatal(err)
	}
	rep, version, err := lw.Report("fig1b")
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 {
		t.Fatalf("version = %d, want 3", version)
	}
	wfRef, vRef := repo.Figure1()
	want := soundness.ValidateView(soundness.NewOracle(wfRef), vRef)
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("post-mutation report diverges from canonical Figure 1:\ngot:  %+v\nwant: %+v", rep, want)
	}
	assertLiveReportsFresh(t, lw)
}

func TestRegistryRandomMutationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	reg := NewRegistry(New(WithWorkers(4)))
	for round := 0; round < 4; round++ {
		n := 24 + rng.Intn(60)
		wf := gen.Layered(gen.LayeredConfig{
			Name: fmt.Sprintf("wf-%d", round), Tasks: n, Layers: 5,
			EdgeProb: 0.3, SkipProb: 0.1, Seed: int64(round),
		})
		ids := wf.IDs()
		lw, err := reg.Register(fmt.Sprintf("wf-%d", round), wf)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := lw.AttachView("interval", func(wf *workflow.Workflow) (*view.View, error) {
			return gen.IntervalView(wf, 2+n/8, "interval"), nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := lw.AttachView("random", func(wf *workflow.Workflow) (*view.View, error) {
			return gen.RandomView(wf, 2+n/5, int64(round), "random"), nil
		}); err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 40; step++ {
			var m Mutation
			pendingID := ""
			if rng.Intn(8) == 0 {
				pendingID = fmt.Sprintf("x-%d-%d", round, step)
				m.Tasks = []workflow.Task{{ID: pendingID}}
				m.Edges = append(m.Edges, [2]string{ids[rng.Intn(len(ids))], pendingID})
			}
			for e := 0; e < 1+rng.Intn(3); e++ {
				m.Edges = append(m.Edges, [2]string{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]})
			}
			_, err := lw.Mutate(m)
			if err != nil {
				var ee *Error
				if !errors.As(err, &ee) || (ee.Code != ErrCycleRejected && ee.Code != ErrBadInput) {
					t.Fatalf("round %d step %d: unexpected mutation error %v", round, step, err)
				}
				// Rejected batches must leave no trace (the equivalence
				// check below still runs against the rolled-back state).
			} else if pendingID != "" {
				ids = append(ids, pendingID)
			}
			assertLiveReportsFresh(t, lw)
		}
	}
}

func TestRegistryCycleRollbackIsAtomic(t *testing.T) {
	reg := NewRegistry(New())
	lw := figure1Registered(t, reg)
	infoBefore, err := lw.Info()
	if err != nil {
		t.Fatal(err)
	}
	repBefore, _, _ := lw.Report("fig1b")

	// Batch: one new task, one good edge, then an edge closing a cycle
	// through the good edge. Everything must unwind.
	_, err = lw.Mutate(Mutation{
		Tasks: []workflow.Task{{ID: "99"}},
		Edges: [][2]string{{"3", "4"}, {"12", "99"}, {"4", "2"}},
	})
	var ee *Error
	if !errors.As(err, &ee) || ee.Code != ErrCycleRejected {
		t.Fatalf("cycle batch error = %v, want code %s", err, ErrCycleRejected)
	}
	infoAfter, err := lw.Info()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(infoAfter, infoBefore) {
		t.Fatalf("rollback left a trace: %+v vs %+v", infoAfter, infoBefore)
	}
	repAfter, _, _ := lw.Report("fig1b")
	if !reflect.DeepEqual(repAfter, repBefore) {
		t.Fatal("rollback changed the maintained report")
	}
	assertLiveReportsFresh(t, lw)

	// The rolled-back state must still accept valid mutations.
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}}); err != nil {
		t.Fatalf("mutation after rollback failed: %v", err)
	}
	assertLiveReportsFresh(t, lw)
}

func TestRegistryTaskAdditionExtendsViews(t *testing.T) {
	reg := NewRegistry(New())
	lw := figure1Registered(t, reg)
	res, err := lw.Mutate(Mutation{
		Tasks: []workflow.Task{{ID: "13b", Name: "Archive tree"}},
		Edges: [][2]string{{"12", "13b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksAdded != 1 || res.EdgesAdded != 1 {
		t.Fatalf("result %+v", res)
	}
	rep, _, err := lw.Report("fig1b")
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Composites[len(rep.Composites)-1]
	if last.ID != "13b" || !last.Sound {
		t.Fatalf("new singleton composite missing or unsound: %+v", last)
	}
	assertLiveReportsFresh(t, lw)
}

func TestRegistryVersionConflict(t *testing.T) {
	reg := NewRegistry(New())
	lw := figure1Registered(t, reg)
	_, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}, IfVersion: 7})
	var ee *Error
	if !errors.As(err, &ee) || ee.Code != ErrVersionConflict {
		t.Fatalf("stale IfVersion error = %v, want %s", err, ErrVersionConflict)
	}
	// The matching version succeeds.
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}, IfVersion: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryTypedLookupErrors(t *testing.T) {
	reg := NewRegistry(New())
	if _, err := reg.Get("nope"); !hasCode(err, ErrUnknownWorkflow) {
		t.Fatalf("Get(nope) = %v", err)
	}
	if err := reg.Delete("nope"); !hasCode(err, ErrUnknownWorkflow) {
		t.Fatalf("Delete(nope) = %v", err)
	}
	lw := figure1Registered(t, reg)
	if _, _, err := lw.Report("nope"); !hasCode(err, ErrUnknownView) {
		t.Fatalf("Report(nope) = %v", err)
	}
	if _, err := lw.Lineage("fig1b", "nope"); !hasCode(err, ErrUnknownTask) {
		t.Fatalf("Lineage(bad task) = %v", err)
	}
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"1", "nope"}}}); !hasCode(err, ErrUnknownTask) {
		t.Fatalf("Mutate(bad edge) = %v", err)
	}
	if err := reg.Delete("phylo"); err != nil {
		t.Fatal(err)
	}
	// Operations through the stale handle fail cleanly.
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}}); !hasCode(err, ErrUnknownWorkflow) {
		t.Fatalf("Mutate on deleted = %v", err)
	}
	if _, _, err := lw.Report("fig1b"); !hasCode(err, ErrUnknownWorkflow) {
		t.Fatalf("Report on deleted = %v", err)
	}
}

func hasCode(err error, code Code) bool {
	var ee *Error
	return errors.As(err, &ee) && ee.Code == code
}

func TestRegistryEviction(t *testing.T) {
	reg := NewRegistry(New(), WithRegistryCapacity(2))
	mk := func(name string) *LiveWorkflow {
		wf, err := workflow.NewBuilder(name).AddTask("a").AddTask("b").Chain("a", "b").Build()
		if err != nil {
			t.Fatal(err)
		}
		lw, err := reg.Register(name, wf)
		if err != nil {
			t.Fatal(err)
		}
		return lw
	}
	a := mk("a")
	mk("b")
	if _, err := reg.Get("a"); err != nil { // refresh a's recency: b is now LRU
		t.Fatal(err)
	}
	mk("c")
	if reg.Len() != 2 {
		t.Fatalf("registry holds %d workflows, want 2", reg.Len())
	}
	if _, err := reg.Get("b"); !hasCode(err, ErrUnknownWorkflow) {
		t.Fatalf("LRU workflow b should be evicted, Get = %v", err)
	}
	if _, err := reg.Get("a"); err != nil {
		t.Fatalf("recently used workflow a evicted: %v", err)
	}
	_ = a
}

func TestRegistrySnapshotSeedsOracleCache(t *testing.T) {
	eng := New()
	reg := NewRegistry(eng)
	lw := figure1Registered(t, reg)
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}, {"4", "5"}}}); err != nil {
		t.Fatal(err)
	}
	snap, version, err := lw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("snapshot version = %d, want 2", version)
	}
	builds0 := eng.CacheStats().Builds

	// The snapshot equals canonical Figure 1; a stateless Validate on it
	// must hit the seeded oracle and build nothing.
	wfRef, vRef := repo.Figure1()
	if !workflow.Same(snap, wfRef) {
		t.Fatal("snapshot does not match canonical Figure 1")
	}
	snapView, err := view.FromAssignments(snap, "fig1b", map[string][]string{
		"16": {"4", "7"}, "13": {"1", "2"}, "14": {"3"}, "15": {"6"},
		"17": {"5"}, "18": {"8"}, "19": {"9", "10", "11", "12"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Validate(context.Background(), snap, snapView)
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Builds != builds0 {
		t.Fatalf("stateless Validate on a snapshot rebuilt the closure (builds %d → %d)",
			builds0, eng.CacheStats().Builds)
	}
	want := soundness.ValidateView(soundness.NewOracle(wfRef), vRef)
	if rep.Sound != want.Sound || !reflect.DeepEqual(rep.Unsound, want.Unsound) {
		t.Fatalf("seeded-oracle report diverges: %+v vs %+v", rep, want)
	}

	// Snapshots are insulated from later mutations.
	if _, err := lw.Mutate(Mutation{Tasks: []workflow.Task{{ID: "zz"}}}); err != nil {
		t.Fatal(err)
	}
	if snap.N() != 12 {
		t.Fatalf("mutation reached a published snapshot: n=%d", snap.N())
	}
}

func TestRegistryDeleteInvalidatesSeededOracle(t *testing.T) {
	eng := New()
	reg := NewRegistry(eng)
	lw := figure1Registered(t, reg)
	snap, _, err := lw.Snapshot() // seeds the oracle cache
	if err != nil {
		t.Fatal(err)
	}
	v := view.Atomic(snap)
	if _, err := eng.Validate(context.Background(), snap, v); err != nil {
		t.Fatal(err)
	}
	builds0 := eng.CacheStats().Builds
	if builds0 != 0 {
		t.Fatalf("seeded validate built %d closures, want 0", builds0)
	}

	// Deleting the live workflow must purge the seeded entry: the same
	// (structurally identical) workflow now rebuilds from scratch instead
	// of serving an oracle descended from the dead registration.
	if err := reg.Delete("phylo"); err != nil {
		t.Fatal(err)
	}
	if inv := eng.CacheStats().Invalidations; inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}
	if _, err := eng.Validate(context.Background(), snap, v); err != nil {
		t.Fatal(err)
	}
	if builds := eng.CacheStats().Builds; builds != builds0+1 {
		t.Fatalf("validate after delete built %d closures, want %d (cache entry must be gone)",
			builds, builds0+1)
	}
}

func TestRegistryEvictionInvalidatesSeededOracle(t *testing.T) {
	eng := New()
	reg := NewRegistry(eng, WithRegistryCapacity(1))
	lw := figure1Registered(t, reg)
	if _, _, err := lw.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Registering a second workflow evicts the first (capacity 1); its
	// seeded cache entry must go with it.
	wf, err := workflow.NewBuilder("other").AddTask("a").AddTask("b").Chain("a", "b").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("other", wf); err != nil {
		t.Fatal(err)
	}
	if inv := eng.CacheStats().Invalidations; inv != 1 {
		t.Fatalf("invalidations after eviction = %d, want 1", inv)
	}
}

func TestRegistryInfos(t *testing.T) {
	reg := NewRegistry(New())
	if infos := reg.Infos(); len(infos) != 0 {
		t.Fatalf("empty registry Infos = %+v", infos)
	}
	lw := figure1Registered(t, reg)
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}}}); err != nil {
		t.Fatal(err)
	}
	wf, err := workflow.NewBuilder("aaa").AddTask("x").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("aaa", wf); err != nil {
		t.Fatal(err)
	}
	infos := reg.Infos()
	if len(infos) != 2 || infos[0].ID != "aaa" || infos[1].ID != "phylo" {
		t.Fatalf("Infos = %+v, want [aaa phylo] sorted", infos)
	}
	if infos[1].Version != 2 || len(infos[1].Views) != 1 || infos[1].Views[0] != "fig1b" {
		t.Fatalf("phylo info = %+v, want version 2 with view fig1b", infos[1])
	}
	if infos[0].Tasks != 1 || infos[0].Version != 1 {
		t.Fatalf("aaa info = %+v", infos[0])
	}
}

func TestRegistryLineageFigure1(t *testing.T) {
	reg := NewRegistry(New())
	lw := figure1Registered(t, reg)
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}, {"4", "5"}}}); err != nil {
		t.Fatal(err)
	}
	// The paper's running example: through the unsound Figure 1(b) view,
	// the provenance of task 8's output wrongly includes tasks 3 and 4.
	res, err := lw.Lineage("fig1b", "8")
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewSound {
		t.Fatal("fig1b must be unsound after completing Figure 1")
	}
	if !reflect.DeepEqual(res.WorkflowLineage, []string{"1", "2", "6", "7"}) {
		t.Fatalf("workflow lineage %v", res.WorkflowLineage)
	}
	if !reflect.DeepEqual(res.FalsePositives, []string{"3", "4"}) {
		t.Fatalf("false positives %v, want [3 4]", res.FalsePositives)
	}
}

func TestRegistryCorrectLiveView(t *testing.T) {
	reg := NewRegistry(New())
	lw := figure1Registered(t, reg)
	if _, err := lw.Mutate(Mutation{Edges: [][2]string{{"3", "4"}, {"4", "5"}}}); err != nil {
		t.Fatal(err)
	}
	vc, rep, version, err := lw.Correct(context.Background(), "fig1b", core.Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Fatal("corrected view must validate sound")
	}
	if version != 2 || vc.CompositesAfter <= vc.CompositesBefore {
		t.Fatalf("correction %+v at version %d", vc, version)
	}
	// Applying the proposal: re-attach the corrected view.
	if _, _, err := lw.AttachView("fig1b", func(wf *workflow.Workflow) (*view.View, error) {
		if vc.Corrected.Workflow() != wf {
			return nil, fmt.Errorf("corrected view bound to a stale workflow")
		}
		return vc.Corrected, nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _, err := lw.Report("fig1b")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sound {
		t.Fatal("re-attached corrected view must stay sound")
	}
	assertLiveReportsFresh(t, lw)
}
