package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"wolves/internal/core"
	"wolves/internal/gen"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

func unsoundView(t *testing.T, wf *workflow.Workflow, members []int) *view.View {
	t.Helper()
	part := make([]int, wf.N())
	inComp := make(map[int]bool, len(members))
	for _, m := range members {
		inComp[m] = true
	}
	next := 1
	for i := 0; i < wf.N(); i++ {
		if inComp[i] {
			part[i] = 0
		} else {
			part[i] = next
			next++
		}
	}
	v, err := view.FromPartition(wf, "unsound", part)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestValidateCacheHit pins the acceptance criterion: a repeated
// workflow hits the oracle cache and performs zero closure builds.
func TestValidateCacheHit(t *testing.T) {
	e := New()
	wf, v := repo.Figure1()
	ctx := context.Background()

	rep1, err := e.Validate(ctx, wf, v)
	if err != nil {
		t.Fatal(err)
	}
	s := e.CacheStats()
	if s.Builds != 1 || s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first validate: %+v", s)
	}

	rep2, err := e.Validate(ctx, wf, v)
	if err != nil {
		t.Fatal(err)
	}
	s = e.CacheStats()
	if s.Builds != 1 {
		t.Fatalf("cache hit must build zero closures, stats %+v", s)
	}
	if s.Hits != 1 {
		t.Fatalf("expected one hit, stats %+v", s)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("cached oracle must produce an identical report")
	}

	// A structurally identical workflow decoded independently (fresh
	// pointer, equal fingerprint) also hits.
	wf2, v2 := repo.Figure1()
	if wf2 == wf {
		t.Fatal("repo.Figure1 must build fresh values for this test")
	}
	rep3, err := e.Validate(ctx, wf2, v2)
	if err != nil {
		t.Fatal(err)
	}
	s = e.CacheStats()
	if s.Builds != 1 || s.Hits != 2 {
		t.Fatalf("structural twin must hit, stats %+v", s)
	}
	if !reflect.DeepEqual(rep1, rep3) {
		t.Fatal("structural twin must produce an identical report")
	}
}

// TestOptimalCancelUnder100ms pins the acceptance criterion: Correct
// under Optimal on a 20-member composite returns an ErrCanceled-coded
// error within ~100ms of ctx cancellation.
func TestOptimalCancelUnder100ms(t *testing.T) {
	wf, members := gen.UnsoundTask(20, 7)
	v := unsoundView(t, wf, members)
	e := New()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	deadline, _ := ctx.Deadline()

	_, err := e.Correct(ctx, wf, v, core.Optimal)
	late := time.Since(deadline)
	if err == nil {
		t.Skip("optimal correction finished before the deadline fired")
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Code != ErrCanceled {
		t.Fatalf("err = %v, want *Error with Code ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if late > 100*time.Millisecond {
		t.Fatalf("returned %v after the deadline, want < 100ms", late)
	}
}

// TestWithOptimalTimeout verifies the engine-imposed Optimal bound.
func TestWithOptimalTimeout(t *testing.T) {
	wf, members := gen.UnsoundTask(20, 7)
	v := unsoundView(t, wf, members)
	e := New(WithOptimalTimeout(5 * time.Millisecond))
	_, err := e.Correct(context.Background(), wf, v, core.Optimal)
	if err == nil {
		t.Skip("optimal correction finished inside the engine timeout")
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Code != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled code", err)
	}
	// The same engine corrects fine under a polynomial criterion — the
	// timeout only applies to Optimal.
	vc, err := e.Correct(context.Background(), wf, v, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Validate(context.Background(), wf, vc.Corrected)
	if err != nil || !rep.Sound {
		t.Fatalf("corrected view: rep=%+v err=%v", rep, err)
	}
}

// TestErrorCodes exercises the typed-error classification.
func TestErrorCodes(t *testing.T) {
	e := New()
	ctx := context.Background()
	wf, v := repo.Figure1()
	f3 := repo.Figure3()

	if _, err := e.Validate(ctx, nil, v); code(err) != ErrBadInput {
		t.Fatalf("nil workflow: %v", err)
	}
	if _, err := e.Validate(ctx, wf, nil); code(err) != ErrBadInput {
		t.Fatalf("nil view: %v", err)
	}
	if _, err := e.Validate(ctx, wf, f3.View); code(err) != ErrWorkflowMismatch {
		t.Fatalf("foreign view: %v", err)
	}
	if _, err := e.SplitTask(ctx, wf, []int{0, 99}, core.Weak); code(err) != ErrUnknownTask {
		t.Fatalf("bad index: %v", err)
	}

	bigWF, members := gen.UnsoundTask(25, 1)
	if _, err := e.SplitTask(ctx, bigWF, members, core.Optimal); code(err) != ErrOptimalLimit {
		t.Fatalf("over limit: %v", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Correct(canceled, wf, v, core.Strong); code(err) != ErrCanceled {
		t.Fatalf("canceled: %v", err)
	}
}

func code(err error) Code {
	var ee *Error
	if errors.As(err, &ee) {
		return ee.Code
	}
	return ""
}

// TestBatchAPIs runs mixed batches and checks per-job isolation.
func TestBatchAPIs(t *testing.T) {
	e := New(WithWorkers(4))
	ctx := context.Background()
	wf1, v1 := repo.Figure1()
	f3 := repo.Figure3()

	vjobs := []ValidateJob{
		{Workflow: wf1, View: v1},
		{Workflow: f3.Workflow, View: f3.View},
		{Workflow: wf1, View: f3.View}, // mismatched on purpose
		{Workflow: wf1, View: v1},
	}
	vres := e.ValidateBatch(ctx, vjobs)
	if len(vres) != 4 {
		t.Fatalf("got %d results", len(vres))
	}
	if vres[0].Err != nil || vres[0].Report.Sound {
		t.Fatalf("job 0: %+v", vres[0])
	}
	if vres[1].Err != nil || vres[1].Report.Sound {
		t.Fatalf("job 1: %+v", vres[1])
	}
	if vres[2].Err == nil || vres[2].Err.Code != ErrWorkflowMismatch {
		t.Fatalf("job 2 must fail alone: %+v", vres[2])
	}
	if vres[3].Err != nil {
		t.Fatalf("job 3: %+v", vres[3])
	}

	// Correction batch: the over-limit Optimal job fails, the rest repair.
	bigWF, members := gen.UnsoundTask(25, 1)
	bigView := unsoundView(t, bigWF, members)
	cjobs := []CorrectJob{
		{Workflow: wf1, View: v1, Criterion: core.Strong},
		{Workflow: bigWF, View: bigView, Criterion: core.Optimal},
		{Workflow: f3.Workflow, View: f3.View, Criterion: core.Weak},
	}
	cres := e.CorrectBatch(ctx, cjobs)
	if cres[0].Err != nil || cres[0].Correction == nil {
		t.Fatalf("job 0: %+v", cres[0])
	}
	if cres[1].Err == nil || cres[1].Err.Code != ErrOptimalLimit {
		t.Fatalf("job 1 must hit the optimal limit: %+v", cres[1])
	}
	if cres[2].Err != nil || cres[2].Correction == nil {
		t.Fatalf("job 2: %+v", cres[2])
	}
	rep, err := e.Validate(ctx, wf1, cres[0].Correction.Corrected)
	if err != nil || !rep.Sound {
		t.Fatalf("corrected job 0: rep=%+v err=%v", rep, err)
	}

	// A canceled context fails the whole batch with typed errors, not
	// silence.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	for i, r := range e.ValidateBatch(canceled, vjobs) {
		if r.Err == nil || r.Err.Code != ErrCanceled {
			t.Fatalf("canceled batch job %d: %+v", i, r)
		}
	}
}

// TestBatchMatchesSequential: batch results must be byte-identical to
// the one-at-a-time path.
func TestBatchMatchesSequential(t *testing.T) {
	e := New(WithWorkers(8))
	ctx := context.Background()
	var jobs []ValidateJob
	var want []*soundness.Report
	for _, entry := range repo.Catalog() {
		for _, vs := range entry.Views {
			jobs = append(jobs, ValidateJob{Workflow: entry.Workflow, View: vs.View})
			rep, err := e.Validate(ctx, entry.Workflow, vs.View)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, rep)
		}
	}
	got := e.ValidateBatch(ctx, jobs)
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("job %d: %v", i, got[i].Err)
		}
		if !reflect.DeepEqual(got[i].Report, want[i]) {
			t.Fatalf("job %d: batch report differs from sequential", i)
		}
	}
}

// TestCacheEviction checks LRU behavior and the disabled-cache mode.
func TestCacheEviction(t *testing.T) {
	e := New(WithOracleCache(2))
	ctx := context.Background()
	wfs := make([]*workflow.Workflow, 3)
	for i := range wfs {
		wfs[i] = gen.Layered(gen.LayeredConfig{Tasks: 9, Layers: 3, EdgeProb: 0.5, Seed: int64(i + 1)})
	}
	for _, wf := range wfs {
		if _, err := e.Validate(ctx, wf, view.Atomic(wf)); err != nil {
			t.Fatal(err)
		}
	}
	s := e.CacheStats()
	if s.Size != 2 || s.Evictions != 1 || s.Builds != 3 {
		t.Fatalf("after 3 distinct workflows through capacity 2: %+v", s)
	}
	// Re-validating the evicted (oldest) workflow rebuilds.
	if _, err := e.Validate(ctx, wfs[0], view.Atomic(wfs[0])); err != nil {
		t.Fatal(err)
	}
	if s = e.CacheStats(); s.Builds != 4 {
		t.Fatalf("evicted workflow must rebuild: %+v", s)
	}

	// Disabled cache: every call builds.
	e2 := New(WithOracleCache(0))
	for i := 0; i < 2; i++ {
		if _, err := e2.Validate(ctx, wfs[0], view.Atomic(wfs[0])); err != nil {
			t.Fatal(err)
		}
	}
	if s = e2.CacheStats(); s.Builds != 2 || s.Hits != 0 {
		t.Fatalf("disabled cache: %+v", s)
	}
}

// TestConcurrentValidate hammers one engine from many goroutines; run
// under -race this doubles as the concurrency-safety proof. The closure
// must still be built exactly once.
func TestConcurrentValidate(t *testing.T) {
	e := New()
	wf, v := repo.Figure1()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := e.Validate(context.Background(), wf, v)
			if err != nil {
				errs <- err
				return
			}
			if rep.Sound {
				errs <- errors.New("figure 1 view must be unsound")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Builds != 1 {
		t.Fatalf("concurrent validates must share one build: %+v", s)
	}
}

// TestAudit smoke-tests the provenance audit through the engine.
func TestAudit(t *testing.T) {
	e := New()
	wf, v := repo.Figure1()
	a, err := e.Audit(context.Background(), wf, v)
	if err != nil {
		t.Fatal(err)
	}
	if a.FalsePairs == 0 || a.Precision >= 1.0 {
		t.Fatalf("figure 1 view must induce provenance error: %+v", a)
	}
	if a.MissingPairs != 0 {
		t.Fatalf("quotient views never miss pairs: %+v", a)
	}
}
