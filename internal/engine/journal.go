package engine

import (
	"context"

	"wolves/internal/view"
	"wolves/internal/workflow"
)

// This file defines the durability seam of the live workflow registry:
// every committed state transition — registration, mutation batch, view
// attach/detach, deletion — flows through a Journal. The default journal
// is nil (purely in-memory, exactly the pre-durability behavior); the
// internal/storage package implements Journal with a checksummed
// write-ahead log plus per-workflow snapshots, and restores a Registry
// after a crash through the Restore/State surface below.
//
// Ordering contract: the registry invokes journal methods while holding
// the affected live workflow's write lock (and, for registration, before
// the workflow is reachable by other goroutines), so per-workflow journal
// calls arrive in commit order. Calls for different workflows may arrive
// concurrently; the journal serializes them itself.
//
// Failure contract: a journal error fails the triggering operation.
// Registration is unpublished on journal failure; a mutation or view
// change that fails to journal remains applied in memory (unwinding a
// merged report is not worth the complexity for a failing disk) —
// implementations are expected to treat any append error as sticky, so
// no later operation can fork memory further from the durable history.
// A sticky error that implements JournalUnavailable() bool flips the
// registry into degraded read-only mode (health.go): queries keep
// serving from memory, writes return typed degraded errors, and when
// the journal also implements RecoverableJournal a background probe
// reopens it, resyncs the durable state to memory (which is
// authoritative — it includes the operations that failed mid-journal),
// and flips the registry back to healthy. Journal errors without the
// marker surface as internal-coded errors and the operator restarts
// from the last durable state.

// AttachedView pairs a view ID with the attached view object.
type AttachedView struct {
	ID   string
	View *view.View
}

// LiveState is a read-consistent description of one live workflow handed
// to a Journal (for snapshots) or to State callbacks. The Workflow and
// View pointers reference live registry state and are only valid for the
// duration of the call that provided them: encode, don't retain.
type LiveState struct {
	ID       string
	Version  uint64
	Workflow *workflow.Workflow
	Views    []AttachedView
}

// AppliedBatch is the committed portion of a mutation batch: the tasks
// appended and the edges actually inserted (requested duplicates are
// dropped), as ID pairs in application order. Replaying an AppliedBatch
// through LiveWorkflow.Mutate from the same pre-state is deterministic
// and reproduces the same post-state, version bump and reports.
type AppliedBatch struct {
	Tasks []workflow.Task
	Edges [][2]string
}

// Journal receives every committed registry state transition. The no-op
// journal is a nil Journal; see internal/storage for the durable one.
// Every method takes the operation's context first: it carries the
// request's trace span (internal/obs) down into the storage layer and
// is for observability only — journal appends are never abandoned on
// cancellation, or memory and the durable history would fork.
type Journal interface {
	// Registered is called when a workflow is registered (or replaces a
	// previous registration under the same ID). st captures the initial
	// state: version 1, no views.
	Registered(ctx context.Context, st *LiveState) error
	// Committed is called after a structural mutation batch commits. st
	// reflects the post-batch state (the journal decides when to turn it
	// into a snapshot).
	Committed(ctx context.Context, batch *AppliedBatch, st *LiveState) error
	// ViewAttached is called when a view is attached or replaced. st
	// reflects the post-attach state (the attached view document can be
	// large, so journals fold view churn into their snapshot policy).
	ViewAttached(ctx context.Context, st *LiveState, vid string, v *view.View) error
	// ViewDetached is called when a view is detached; st reflects the
	// post-detach state.
	ViewDetached(ctx context.Context, st *LiveState, vid string) error
	// Deleted is called when a workflow is deleted — explicitly, or by
	// LRU eviction / replacement (a durable registry mirrors the live
	// one exactly, so eviction deletes persisted state too; size the
	// registry capacity accordingly).
	Deleted(ctx context.Context, id string) error
}

// RestoredView names one view to re-attach during recovery. Build
// decodes or constructs the view against the restored live workflow; the
// report is recomputed by full validation, which by the registry's
// maintenance invariant equals the incrementally maintained report the
// view had before the crash.
type RestoredView struct {
	ID    string
	Build func(wf *workflow.Workflow) (*view.View, error)
}

// Restore registers a recovered workflow at an explicit version with its
// views, bypassing the journal (the state being restored is already
// durable). It is the replayer's counterpart of Register + AttachView
// and is not meant for general use: call it only before the registry
// serves traffic.
func (r *Registry) Restore(id string, version uint64, wf *workflow.Workflow, views []RestoredView) (*LiveWorkflow, error) {
	if version == 0 {
		version = 1
	}
	ctx := context.Background() //lint:allow ctxpass replay of durable state: journaling is off, nothing downstream to trace or cancel
	lw, err := r.register(ctx, id, wf, version, false)
	if err != nil {
		return nil, err
	}
	for _, rv := range views {
		if _, _, err := lw.attachView(ctx, rv.ID, rv.Build, false); err != nil {
			return nil, err
		}
	}
	return lw, nil
}

// BeginRestore puts the registry in replay mode: epoch publication —
// and with it the per-view quotient label rebuild, the dominant cost of
// applying a mutation — is deferred until EndRestore. Replay applies
// thousands of records per workflow before anyone can query, so
// publishing a fresh read epoch after every one is pure waste; deferred,
// each workflow pays for exactly one publication at the end of recovery.
// Pair with EndRestore before the registry serves traffic. Queries
// issued while restoring (recovery itself runs some) fall back to the
// locked session path and stay correct.
func (r *Registry) BeginRestore() { r.restoring.Store(true) }

// EndRestore leaves replay mode and publishes one read epoch per live
// workflow. Idempotent; a no-op when BeginRestore was never called.
func (r *Registry) EndRestore() {
	if !r.restoring.Swap(false) {
		return
	}
	r.mu.Lock()
	lws := make([]*LiveWorkflow, 0, len(r.lws))
	for _, lw := range r.lws {
		lws = append(lws, lw)
	}
	r.mu.Unlock()
	for _, lw := range lws {
		lw.mu.Lock()
		if !lw.closed {
			lw.publishEpochLocked()
		}
		lw.mu.Unlock()
	}
}

// SetJournal installs (or clears) the registry's journal. Not
// synchronized with in-flight operations: call it during setup, after
// recovery and before the registry serves traffic (wolvesd recovers into
// a journal-less registry, then installs the store it recovered from).
func (r *Registry) SetJournal(j Journal) { r.journal = j }

// State invokes fn with a read-locked snapshot description of the live
// workflow. The LiveState (and the pointers inside it) must not be
// retained past fn.
func (lw *LiveWorkflow) State(fn func(st *LiveState) error) error {
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed {
		return lw.errClosed("state")
	}
	return fn(lw.stateLocked())
}

// stateLocked assembles the LiveState under a held lock.
func (lw *LiveWorkflow) stateLocked() *LiveState {
	st := &LiveState{ID: lw.id, Version: lw.version, Workflow: lw.wf}
	for _, vid := range lw.viewOrder {
		st.Views = append(st.Views, AttachedView{ID: vid, View: lw.views[vid].v})
	}
	return st
}
