package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"wolves/internal/core"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// ValidateJob is one unit of ValidateBatch work.
type ValidateJob struct {
	Workflow *workflow.Workflow
	View     *view.View
}

// ValidateResult pairs a job's report with its typed error; exactly one
// of the two is set.
type ValidateResult struct {
	Report *soundness.Report
	Err    *Error
}

// CorrectJob is one unit of CorrectBatch work.
type CorrectJob struct {
	Workflow  *workflow.Workflow
	View      *view.View
	Criterion core.Criterion
	// Options overrides the engine's corrector options for this job
	// (nil means the engine default).
	Options *core.Options
}

// CorrectResult pairs a job's correction with its typed error; exactly
// one of the two is set.
type CorrectResult struct {
	Correction *core.ViewCorrection
	Err        *Error
}

// runBatch claims job indices with an atomic cursor and fans them over
// min(workers, len(jobs)) goroutines. Once ctx fires, unclaimed jobs
// complete immediately via onCanceled instead of running.
func runBatch(ctx context.Context, workers, n int, run func(i int), onCanceled func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					onCanceled(i)
					continue
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// FanOut runs n independent jobs over min(workers, n) goroutines with
// the batch machinery's atomic claim cursor: run(i) executes each job,
// and once ctx fires the unclaimed remainder completes immediately via
// onCanceled(i) instead of running. It is the scheduling core behind
// ValidateBatch/CorrectBatch, exported so sibling subsystems (the run
// store's batch lineage endpoint) share one worker-pool behavior.
func FanOut(ctx context.Context, workers, n int, run func(i int), onCanceled func(i int)) {
	runBatch(ctx, workers, n, run, onCanceled)
}

// ValidateBatch validates every job over the engine's worker pool and
// returns per-job results in input order. Jobs repeating a workflow
// share its cached oracle; a canceled ctx marks the remaining jobs with
// ErrCanceled instead of abandoning them silently.
func (e *Engine) ValidateBatch(ctx context.Context, jobs []ValidateJob) []ValidateResult {
	return e.ValidateBatchN(ctx, jobs, 0)
}

// ValidateBatchN is ValidateBatch with an explicit pool width (0 = the
// engine's Workers()). Callers running several batches concurrently
// split the engine width between them so the configured fan-out cap
// holds across the whole request.
func (e *Engine) ValidateBatchN(ctx context.Context, jobs []ValidateJob, workers int) []ValidateResult {
	if workers <= 0 {
		workers = e.Workers()
	}
	results := make([]ValidateResult, len(jobs))
	runBatch(ctx, workers, len(jobs),
		func(i int) {
			// Within a batch each job validates sequentially; the batch
			// itself is the parallelism.
			rep, err := e.validateSequential(ctx, jobs[i].Workflow, jobs[i].View)
			if err != nil {
				results[i] = ValidateResult{Err: wrapErr("validate", err)}
				return
			}
			results[i] = ValidateResult{Report: rep}
		},
		func(i int) {
			results[i] = ValidateResult{Err: wrapErr("validate", ctx.Err())}
		})
	return results
}

// validateSequential is Validate without the per-view fan-out (batch
// workers already occupy the pool).
func (e *Engine) validateSequential(ctx context.Context, wf *workflow.Workflow, v *view.View) (*soundness.Report, error) {
	if err := checkView("validate", wf, v); err != nil {
		return nil, err
	}
	return soundness.ValidateViewCtx(ctx, e.Oracle(wf), v)
}

// correctSequential is CorrectWithOracle with the inner validation
// pinned to one worker — a batch job must not multiply the configured
// fan-out cap.
func (e *Engine) correctSequential(ctx context.Context, j CorrectJob) (*core.ViewCorrection, error) {
	ctx, cancel := e.optimalCtx(ctx, j.Criterion)
	defer cancel()
	return core.CorrectViewWorkersCtx(ctx, e.Oracle(j.Workflow), j.View, j.Criterion, e.corrOptions(j.Options), 1)
}

// CorrectBatch corrects every job over the engine's worker pool and
// returns per-job results in input order. Error handling is per job: one
// composite exceeding the Optimal limit fails only its own job.
func (e *Engine) CorrectBatch(ctx context.Context, jobs []CorrectJob) []CorrectResult {
	return e.CorrectBatchN(ctx, jobs, 0)
}

// CorrectBatchN is CorrectBatch with an explicit pool width (0 = the
// engine's Workers()); see ValidateBatchN.
func (e *Engine) CorrectBatchN(ctx context.Context, jobs []CorrectJob, workers int) []CorrectResult {
	if workers <= 0 {
		workers = e.Workers()
	}
	results := make([]CorrectResult, len(jobs))
	runBatch(ctx, workers, len(jobs),
		func(i int) {
			j := jobs[i]
			if err := checkView("correct", j.Workflow, j.View); err != nil {
				results[i] = CorrectResult{Err: err}
				return
			}
			vc, err := e.correctSequential(ctx, j)
			if err != nil {
				results[i] = CorrectResult{Err: wrapErr("correct", err)}
				return
			}
			results[i] = CorrectResult{Correction: vc}
		},
		func(i int) {
			results[i] = CorrectResult{Err: wrapErr("correct", ctx.Err())}
		})
	return results
}
