// Package engine implements the long-lived WOLVES service facade: a
// concurrency-safe object that owns a fingerprint-keyed LRU cache of
// soundness oracles and exposes the whole pipeline — validation,
// correction, task splitting, provenance auditing — as context-aware
// methods plus batch entry points.
//
// The free functions of the wolves package build an oracle per workflow
// per call site; a service handling many requests over the same
// workflows pays the closure construction once here and amortizes it
// across every later request (cmd/wolvesd is exactly that service).
// Every method returns structured *Error values whose Code classifies
// the failure, and every method observes ctx: in particular the
// exponential Optimal corrector aborts within milliseconds of
// cancellation.
//
// Beside the stateless pipeline sits the live workflow Registry
// (registry.go): named, versioned workflows mutated in place, whose
// reachability closures are maintained incrementally and whose attached
// views are revalidated over dirty composites only — see the registry
// documentation for versioning, concurrency and eviction semantics.
package engine

import (
	"context"
	"runtime"
	"time"

	"wolves/internal/core"
	"wolves/internal/provenance"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// DefaultCacheSize is the oracle-cache capacity used when WithOracleCache
// is not given.
const DefaultCacheSize = 128

// Engine is the long-lived service facade. The zero value is not usable;
// construct with New. An Engine is safe for concurrent use: the oracle
// cache is internally locked, oracles are concurrency-safe readers, and
// per-request state lives on the stack of each call.
type Engine struct {
	workers        int
	corrOpts       *core.Options
	optimalTimeout time.Duration
	cache          *oracleCache
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithWorkers sets the fan-out width used by parallel validation and the
// batch entry points. n <= 0 (the default) means runtime.GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithOracleCache sets the capacity of the fingerprint-keyed oracle LRU.
// n <= 0 disables caching (every call builds a fresh oracle). The
// default is DefaultCacheSize.
func WithOracleCache(n int) Option {
	return func(e *Engine) { e.cache = newOracleCache(n) }
}

// WithCorrectorOptions sets the default corrector options applied by
// Correct and SplitTask when the caller passes none.
func WithCorrectorOptions(opts *core.Options) Option {
	return func(e *Engine) { e.corrOpts = opts }
}

// WithOptimalTimeout bounds every Optimal correction: when d > 0,
// Correct and SplitTask under core.Optimal run with a deadline of d (in
// addition to whatever deadline the caller's ctx carries) and return an
// ErrCanceled-coded error when it fires. Zero (the default) means no
// engine-imposed bound.
func WithOptimalTimeout(d time.Duration) Option {
	return func(e *Engine) { e.optimalTimeout = d }
}

// New constructs an Engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	if e.cache == nil {
		e.cache = newOracleCache(DefaultCacheSize)
	}
	return e
}

// Workers returns the effective fan-out width.
func (e *Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// CacheStats returns a snapshot of the oracle-cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Oracle returns the cached soundness oracle for wf, building it on the
// first request. Structurally identical workflows (equal fingerprints)
// share one oracle, so a daemon decoding the same workflow JSON per
// request builds the reachability closure exactly once.
func (e *Engine) Oracle(wf *workflow.Workflow) *soundness.Oracle {
	entry := e.cache.get(wf)
	return e.cache.oracleFor(entry)
}

// checkView validates the (wf, v) pair shared by every view method.
func checkView(op string, wf *workflow.Workflow, v *view.View) *Error {
	if wf == nil {
		return errf(ErrBadInput, op, "nil workflow")
	}
	if v == nil {
		return errf(ErrBadInput, op, "nil view")
	}
	if !workflow.Same(v.Workflow(), wf) {
		return errf(ErrWorkflowMismatch, op,
			"view %q belongs to workflow %q, not %q",
			v.Name(), v.Workflow().Name(), wf.Name())
	}
	return nil
}

// Validate checks every composite of v (Proposition 2.1) against wf,
// fanning composites over the engine's workers. A cache hit performs
// zero closure builds.
func (e *Engine) Validate(ctx context.Context, wf *workflow.Workflow, v *view.View) (*soundness.Report, error) {
	if err := checkView("validate", wf, v); err != nil {
		return nil, err
	}
	return e.ValidateWithOracle(ctx, e.Oracle(wf), v)
}

// ValidateWithOracle is Validate against a caller-held oracle (the
// compatibility path of the deprecated free functions).
func (e *Engine) ValidateWithOracle(ctx context.Context, o *soundness.Oracle, v *view.View) (*soundness.Report, error) {
	if o == nil || v == nil {
		return nil, errf(ErrBadInput, "validate", "nil oracle or view")
	}
	if !workflow.Same(v.Workflow(), o.Workflow()) {
		return nil, errf(ErrWorkflowMismatch, "validate",
			"view %q belongs to a different workflow", v.Name())
	}
	rep, err := soundness.ValidateViewParallelCtx(ctx, o, v, e.workers)
	if err != nil {
		return nil, wrapErr("validate", err)
	}
	return rep, nil
}

// optimalCtx applies the engine's Optimal timeout when crit is Optimal.
func (e *Engine) optimalCtx(ctx context.Context, crit core.Criterion) (context.Context, context.CancelFunc) {
	if crit == core.Optimal && e.optimalTimeout > 0 {
		return context.WithTimeout(ctx, e.optimalTimeout)
	}
	return ctx, func() {}
}

// corrOptions resolves per-call options against the engine default.
func (e *Engine) corrOptions(opts *core.Options) *core.Options {
	if opts != nil {
		return opts
	}
	return e.corrOpts
}

// Correct repairs every unsound composite of v under crit and returns
// the provably sound result. Under core.Optimal the call is bounded by
// WithOptimalTimeout (when set) and aborts with an ErrCanceled-coded
// error within ~100ms of ctx firing.
func (e *Engine) Correct(ctx context.Context, wf *workflow.Workflow, v *view.View, crit core.Criterion) (*core.ViewCorrection, error) {
	if err := checkView("correct", wf, v); err != nil {
		return nil, err
	}
	return e.CorrectWithOracle(ctx, e.Oracle(wf), v, crit, nil)
}

// CorrectWithOracle is Correct against a caller-held oracle, with an
// optional per-call options override (nil falls back to the engine's
// WithCorrectorOptions, then to the package defaults).
func (e *Engine) CorrectWithOracle(ctx context.Context, o *soundness.Oracle, v *view.View, crit core.Criterion, opts *core.Options) (*core.ViewCorrection, error) {
	if o == nil || v == nil {
		return nil, errf(ErrBadInput, "correct", "nil oracle or view")
	}
	ctx, cancel := e.optimalCtx(ctx, crit)
	defer cancel()
	vc, err := core.CorrectViewWorkersCtx(ctx, o, v, crit, e.corrOptions(opts), e.workers)
	if err != nil {
		return nil, wrapErr("correct", err)
	}
	return vc, nil
}

// SplitTask splits one composite's member set into sound blocks under
// crit. Members are workflow task indices, as in core.SplitTask.
func (e *Engine) SplitTask(ctx context.Context, wf *workflow.Workflow, members []int, crit core.Criterion) (*core.Result, error) {
	if wf == nil {
		return nil, errf(ErrBadInput, "split", "nil workflow")
	}
	for _, m := range members {
		if m < 0 || m >= wf.N() {
			return nil, errf(ErrUnknownTask, "split", "task index %d out of range [0,%d)", m, wf.N())
		}
	}
	return e.SplitWithOracle(ctx, e.Oracle(wf), members, crit, nil)
}

// SplitWithOracle is SplitTask against a caller-held oracle, with an
// optional per-call options override.
func (e *Engine) SplitWithOracle(ctx context.Context, o *soundness.Oracle, members []int, crit core.Criterion, opts *core.Options) (*core.Result, error) {
	if o == nil {
		return nil, errf(ErrBadInput, "split", "nil oracle")
	}
	ctx, cancel := e.optimalCtx(ctx, crit)
	defer cancel()
	res, err := core.SplitTaskCtx(ctx, o, members, crit, e.corrOptions(opts))
	if err != nil {
		return nil, wrapErr("split", err)
	}
	return res, nil
}

// Audit quantifies the provenance error v induces (false lineage pairs,
// wrong queries, precision), reusing the cached lineage engine.
func (e *Engine) Audit(ctx context.Context, wf *workflow.Workflow, v *view.View) (*provenance.ViewAudit, error) {
	if err := checkView("audit", wf, v); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapErr("audit", err)
	}
	entry := e.cache.get(wf)
	return provenance.AuditView(e.cache.provFor(entry), v), nil
}
