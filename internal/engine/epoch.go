package engine

import (
	"sync/atomic"

	"wolves/internal/dag"
	"wolves/internal/obs"
	"wolves/internal/provenance"
	"wolves/internal/view"
)

// This file implements the epoch-stamped, lock-free read session behind
// the run store's lineage serve path. Every committed state transition
// (registration, mutation, view attach/detach — the restore paths
// re-enter the same functions) publishes a fresh ReadEpoch through an
// atomic pointer: an immutable snapshot of exactly what a lineage query
// needs — the workflow version, the task-ID table, a forked reachability
// label index, and per-view label indexes over the quotient graphs.
// Readers load the pointer and serve without ever touching the
// workflow's RWMutex, so heavy read traffic stops contending with
// mutations entirely. The only lazily filled piece is the audited
// level's provenance audit, which must read live closure rows: the
// first audited query per (view, version) takes the read lock to build
// it, verifies the epoch is still current, and caches the result on the
// epoch — every later audited query at that version is lock-free again.

// ReadEpoch is an immutable snapshot of one live workflow version for
// lock-free lineage reads. Obtain one with LiveWorkflow.Epoch; a nil
// epoch means the label index is unavailable (interval budget exceeded,
// or the workflow is closed) and callers serve through the locked
// ProvSession path instead.
type ReadEpoch struct {
	version uint64
	taskIDs []string
	labels  *dag.Labels
	rev     *dag.Labels
	views   map[string]*EpochView
}

// EpochView is the per-view slice of a ReadEpoch: the immutable view
// object of that version, its soundness at publication, a label index
// over the quotient graph, and the lazily cached provenance audit.
type EpochView struct {
	v     *view.View
	sound bool
	// labels/revLabels are the composite-level label indexes (forward
	// and ancestor direction); both nil when the quotient graph blew
	// the interval budget (readers fall back to the locked path for
	// this view).
	labels    *dag.Labels
	revLabels *dag.Labels
	// audit caches the provenance audit for this epoch's version,
	// filled by LiveWorkflow.EpochAudit under the read lock on the
	// first audited query.
	audit atomic.Pointer[provenance.ViewAudit]
}

// Version returns the workflow version the epoch snapshots.
func (ep *ReadEpoch) Version() uint64 { return ep.version }

// TaskID returns the ID of task index u at the epoch's version.
func (ep *ReadEpoch) TaskID(u int) string { return ep.taskIDs[u] }

// Tasks returns the number of tasks at the epoch's version.
func (ep *ReadEpoch) Tasks() int { return len(ep.taskIDs) }

// Labels returns the task-level reachability label index (never nil on
// a published epoch).
func (ep *ReadEpoch) Labels() *dag.Labels { return ep.labels }

// RevLabels returns the ancestor-direction task-level index (never nil
// on a published epoch): RevLabels().Reaches(v, u) ⇔ u reaches v.
func (ep *ReadEpoch) RevLabels() *dag.Labels { return ep.rev }

// View returns the epoch's snapshot of view vid, or nil when the view
// was not attached at this version.
func (ep *ReadEpoch) View(vid string) *EpochView { return ep.views[vid] }

// View returns the immutable view object (views are replaced wholesale
// on mutation, never mutated in place).
func (ev *EpochView) View() *view.View { return ev.v }

// Sound reports the view's maintained soundness at the epoch's version.
func (ev *EpochView) Sound() bool { return ev.sound }

// Labels returns the composite-level label index, or nil when the
// quotient graph exceeded the interval budget.
func (ev *EpochView) Labels() *dag.Labels { return ev.labels }

// RevLabels returns the ancestor-direction composite-level index, nil
// exactly when Labels is nil.
func (ev *EpochView) RevLabels() *dag.Labels { return ev.revLabels }

// Epoch returns the current read epoch, or nil when lock-free serving
// is unavailable (no epoch published yet, label budget exceeded, or the
// workflow closed). The returned epoch may lag the live version during
// an in-flight mutation; answers served from it are consistent as of
// its stamped version.
func (lw *LiveWorkflow) Epoch() *ReadEpoch { return lw.epoch.Load() }

// publishEpochLocked rebuilds and atomically publishes the read epoch.
// Callers hold the write lock (or own lw exclusively, pre-publication).
// When the task graph's label index is unavailable the epoch is cleared
// and readers fall back to the locked path wholesale.
func (lw *LiveWorkflow) publishEpochLocked() {
	if lw.reg.restoring.Load() {
		// Replay mode (Registry.BeginRestore): defer the rebuild, clear
		// any stale epoch so readers take the locked path meanwhile.
		lw.epoch.Store(nil)
		return
	}
	labels := lw.ic.Labels()
	if labels == nil {
		lw.epoch.Store(nil)
		return
	}
	ep := &ReadEpoch{
		version: lw.version,
		taskIDs: make([]string, lw.wf.N()),
		labels:  labels.Fork(),
		rev:     lw.ic.RevLabels().Fork(),
		views:   make(map[string]*EpochView, len(lw.views)),
	}
	// The task-ID table is copied: ExtendTasks appends to the live
	// workflow's slice in place, so sharing the header with lock-free
	// readers would race.
	for i := range ep.taskIDs {
		ep.taskIDs[i] = lw.wf.Task(i).ID
	}
	for vid, lv := range lw.views {
		ev := &EpochView{v: lv.v, sound: lv.report.Sound}
		qg := lv.v.Graph()
		ev.labels = dag.BuildLabels(qg)
		if ev.labels != nil {
			ev.revLabels = dag.BuildLabels(qg.Reversed())
			if ev.revLabels == nil {
				ev.labels = nil
			}
		}
		lw.reg.viewLabelBuilds.Add(1)
		ep.views[vid] = ev
	}
	lw.epoch.Store(ep)
	obs.MEpochPublishes.Inc()
}

// EpochAudit returns the provenance audit of view vid at exactly ep's
// version, building and caching it on the epoch under the read lock on
// first use. ok is false when the audit cannot be pinned to ep's
// version — the workflow moved on, closed, or dropped the view — in
// which case the caller re-resolves a fresh epoch or falls back to the
// locked session path.
func (lw *LiveWorkflow) EpochAudit(ep *ReadEpoch, vid string) (audit *provenance.ViewAudit, ok bool) {
	ev := ep.views[vid]
	if ev == nil {
		return nil, false
	}
	if a := ev.audit.Load(); a != nil {
		obs.MAuditCacheHits.Inc()
		return a, true
	}
	lw.mu.RLock()
	defer lw.mu.RUnlock()
	if lw.closed || lw.version != ep.version {
		return nil, false
	}
	lv := lw.views[vid]
	if lv == nil || lv.v != ev.v {
		return nil, false
	}
	obs.MAuditCacheMisses.Inc()
	a := lv.viewAudit(lw.prov)
	ev.audit.Store(a)
	return a, true
}

// LabelStats aggregates label-index counters for /v1/stats: lifetime
// build/rebuild/patch counts summed over resident workflows, plus the
// resident interval count and memory footprint of every live index
// (task-level and per-view).
type LabelStats struct {
	// Workflows counts resident workflows currently serving lock-free
	// from a label index; Disabled counts residents whose graphs blew
	// the interval budget (serving from closure rows).
	Workflows int `json:"workflows"`
	Disabled  int `json:"disabled"`
	// Builds / Rebuilds / Patches are task-level index counters summed
	// over resident workflows: full builds, rebuilds forced past the
	// patch damage threshold, and incremental edge patches.
	Builds   int64 `json:"builds"`
	Rebuilds int64 `json:"rebuilds"`
	Patches  int64 `json:"patches"`
	// ViewBuilds is the lifetime count of view-level (quotient) label
	// builds across all publications.
	ViewBuilds int64 `json:"view_builds"`
	// Intervals / MemoryBytes cover every resident index, task-level
	// and view-level.
	Intervals   int64 `json:"intervals"`
	MemoryBytes int64 `json:"memory_bytes"`
}

// LabelStats sweeps the resident workflows and aggregates their
// label-index counters.
func (r *Registry) LabelStats() LabelStats {
	r.mu.Lock()
	lws := make([]*LiveWorkflow, 0, len(r.lws))
	for _, lw := range r.lws {
		lws = append(lws, lw)
	}
	r.mu.Unlock()

	st := LabelStats{ViewBuilds: r.viewLabelBuilds.Load()}
	for _, lw := range lws {
		lw.mu.RLock()
		if lw.closed {
			lw.mu.RUnlock()
			continue
		}
		st.Builds += lw.ic.LabelBuilds()
		st.Rebuilds += lw.ic.LabelRebuilds()
		st.Patches += lw.ic.LabelPatches()
		ep := lw.epoch.Load()
		lw.mu.RUnlock()
		if ep == nil {
			st.Disabled++
			continue
		}
		st.Workflows++
		st.Intervals += int64(ep.labels.Intervals()) + int64(ep.rev.Intervals())
		st.MemoryBytes += ep.labels.MemoryBytes() + ep.rev.MemoryBytes()
		for _, ev := range ep.views {
			if ev.labels != nil {
				st.Intervals += int64(ev.labels.Intervals()) + int64(ev.revLabels.Intervals())
				st.MemoryBytes += ev.labels.MemoryBytes() + ev.revLabels.MemoryBytes()
			}
		}
	}
	return st
}
