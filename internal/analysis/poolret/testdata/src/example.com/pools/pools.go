// Package pools is golden testdata for sync.Pool Get/Put pairing: the
// allocation-free scratch design degrades into churn if a Get never
// returns its buffer.
package pools

import "sync"

type scratch struct{ bits []uint64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// good is the canonical form: defer the Put right after the Get.
func good() int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	return len(sc.bits)
}

// goodExplicit puts the buffer back on every path it takes.
func goodExplicit(n int) int {
	sc := pool.Get().(*scratch)
	sum := n + len(sc.bits)
	pool.Put(sc)
	return sum
}

// goodDeferredClosure releases inside a deferred closure.
func goodDeferredClosure() int {
	sc := pool.Get().(*scratch)
	defer func() {
		sc.bits = sc.bits[:0]
		pool.Put(sc)
	}()
	return len(sc.bits)
}

// leak never returns the buffer.
func leak() *scratch {
	sc := pool.Get().(*scratch) // want `pool.Get\(\) has no matching pool.Put\(\) in this function`
	return sc
}

// transfer hands ownership to the caller — sanctioned via annotation.
func transfer() *scratch {
	sc := pool.Get().(*scratch) //lint:allow poolret ownership transfers to caller, released in release()
	return sc
}

func release(sc *scratch) {
	pool.Put(sc)
}

// twoPools must not cross-match: a Put on pb does not satisfy a Get on
// pa.
var (
	pa = sync.Pool{New: func() any { return new(scratch) }}
	pb = sync.Pool{New: func() any { return new(scratch) }}
)

func crossed() int {
	a := pa.Get().(*scratch) // want `pa.Get\(\) has no matching pa.Put\(\) in this function`
	b := pb.Get().(*scratch)
	defer pb.Put(b)
	return len(a.bits) + len(b.bits)
}

// methodReceiver exercises pointer-field pools.
type holder struct{ p *sync.Pool }

func (h *holder) use() {
	v := h.p.Get()
	defer h.p.Put(v)
}

func (h *holder) drop() {
	_ = h.p.Get() // want `h.p.Get\(\) has no matching h.p.Put\(\) in this function`
}
