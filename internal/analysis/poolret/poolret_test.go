package poolret_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/poolret"
)

func TestPoolRet(t *testing.T) {
	analysistest.Run(t, "testdata", poolret.Analyzer, "example.com/pools")
}
