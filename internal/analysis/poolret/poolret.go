// Package poolret checks sync.Pool discipline on the soundness/core
// scratch pools (PR 1's allocation-free oracle): a function that Gets a
// buffer from a pool must Put it back — typically `defer pool.Put(sc)`
// right after the Get — or the steady-state allocation-free property
// silently degrades into churn under load.
//
// Ownership transfers (a Get whose buffer is returned to the caller,
// which Puts it later) annotate `//lint:allow poolret <reason>`.
package poolret

import (
	"go/ast"
	"go/types"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "poolret",
	Doc: "sync.Pool.Get without a matching Put on the same pool in the same function leaks the buffer " +
		"and defeats the allocation-free scratch design; defer the Put or annotate //lint:allow poolret",
	Run: run,
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc reports Gets without a same-receiver Put in the function.
// Nested closures are checked as their own scope for Gets, but a Put
// anywhere in the function (including a deferred closure) satisfies an
// outer Get.
func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	var gets []*ast.CallExpr
	var getRecvs []string
	puts := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := poolMethod(pass, call); ok {
			switch name {
			case "Get":
				gets = append(gets, call)
				getRecvs = append(getRecvs, recv)
			case "Put":
				puts[recv] = true
			}
		}
		return true
	})
	for i, call := range gets {
		if !puts[getRecvs[i]] {
			pass.Reportf(call.Pos(),
				"%s.Get() has no matching %s.Put() in this function; defer the Put "+
					"(or annotate //lint:allow poolret when ownership transfers out)",
				getRecvs[i], getRecvs[i])
		}
	}
}

// poolMethod matches calls to (*sync.Pool).Get/Put and returns the
// rendered receiver expression and method name.
func poolMethod(pass *lint.Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}
