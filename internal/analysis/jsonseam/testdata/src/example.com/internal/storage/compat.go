package storage

import "encoding/json"

// compat.go is the designated seam: JSON record-body fallbacks live
// here, unflagged.
func decodeCompat(b []byte) (record, error) {
	var r record
	err := json.Unmarshal(b, &r)
	return r, err
}
