// Package storage is golden testdata modeling the real
// internal/storage: encoding/json may only appear in the designated
// compat files.
package storage

import (
	"encoding/json" // want `encoding/json outside the designated compat seam`
)

type record struct {
	ID string `json:"id"`
}

func badEncode(r record) ([]byte, error) {
	return json.Marshal(r) // want `json.Marshal outside the designated compat seam`
}

func badDecode(b []byte) (record, error) {
	var r record
	err := json.Unmarshal(b, &r) // want `json.Unmarshal outside the designated compat seam`
	return r, err
}

func badType() json.RawMessage { // want `json.RawMessage outside the designated compat seam`
	return nil
}

func escapeHatch(r record) {
	//lint:allow jsonseam modeled: deliberate cold-path JSON
	json.Marshal(r)
	json.Valid(nil) //lint:allow jsonseam modeled same-line annotation
}
