package storage

import "encoding/json"

// snapshot.go is the other designated seam: snapshot documents are
// JSON by design.
func encodeSnapshot(r record) ([]byte, error) {
	return json.Marshal(r)
}
