// Package jsonseam checks the PR 9 binary write-path seam: inside
// internal/storage, encoding/json may only be touched by the designated
// compat files — compat.go (the frozen JSON record-body shapes that
// pre-PR-9 WALs contain) and snapshot.go (snapshot documents, which are
// JSON by design). Everywhere else in the package a json.Marshal or
// json.Unmarshal is a hot-path regression waiting to happen: the WAL
// record bodies for the hot kinds (mutate, run) are binary binwire, and
// an accidental JSON encode on that path silently gives back the
// throughput PR 9 bought.
//
// The escape hatch is `//lint:allow jsonseam <reason>` on (or directly
// above) the offending line, for deliberate cold-path JSON.
package jsonseam

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "jsonseam",
	Doc: "encoding/json inside internal/storage outside the designated compat files (compat.go, snapshot.go) " +
		"re-opens the hot write path to reflective JSON (PR 9); move the code into the compat seam, " +
		"encode with binwire, or annotate //lint:allow jsonseam",
	Run: run,
}

// exemptFiles are the designated JSON seam: the only storage files
// allowed to touch encoding/json. Test files are exempt too — they
// routinely decode documents to assert on them.
var exemptFiles = map[string]bool{
	"compat.go":   true,
	"snapshot.go": true,
}

func exempt(pass *lint.Pass, f *ast.File) bool {
	name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
	return exemptFiles[name] || strings.HasSuffix(name, "_test.go")
}

func run(pass *lint.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/storage") || strings.Contains(path, "internal/storage/vfs") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if exempt(pass, f) {
			continue
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "encoding/json" {
				pass.Reportf(imp.Pos(),
					"encoding/json outside the designated compat seam (compat.go, snapshot.go); "+
						"hot-path record bodies are binary — move this into the seam or use binwire")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "encoding/json" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"json.%s outside the designated compat seam bypasses the binary write path; "+
					"move it into compat.go/snapshot.go or encode with binwire",
				sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
