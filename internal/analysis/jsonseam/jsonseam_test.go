package jsonseam_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/jsonseam"
)

func TestJSONSeam(t *testing.T) {
	analysistest.Run(t, "testdata", jsonseam.Analyzer,
		"example.com/internal/storage")
}
