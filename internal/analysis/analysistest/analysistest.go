// Package analysistest pins analyzers to golden diagnostics, mirroring
// golang.org/x/tools/go/analysis/analysistest: a test package lives
// under testdata/src/<importpath>/, and every expected diagnostic is a
// `// want "regexp"` comment on the line it must land on. Run fails the
// test on any unexpected, missing, or mismatched diagnostic — so both
// the positives and the //lint:allow escape hatch are golden-file
// verified.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"wolves/internal/analysis/lint"
)

// std resolves export data for standard-library imports of testdata
// packages, shared across tests in the process.
var std lint.StdExports

// Run loads each package under dir/src/<path>, applies the analyzer,
// and matches its findings against the // want comments in the package
// sources.
func Run(t *testing.T, dir string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	ld := &testLoader{
		srcRoot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		loaded:  make(map[string]*lint.Package),
	}
	ld.imp = lint.NewExportImporter(ld.fset, std.Resolve)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				t.Errorf("loading %s: %v", path, e)
			}
			continue
		}
		findings, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, ld.fset, pkg, findings)
	}
}

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a want comment. Patterns are
// Go-quoted strings: // want "foo" `bar.*baz`
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants collects the expectations declared in f.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			pats := wantRE.FindAllString(text, -1)
			if len(pats) == 0 {
				t.Errorf("%s: malformed want comment %q", pos, c.Text)
				continue
			}
			for _, p := range pats {
				unq := p[1 : len(p)-1]
				if p[0] == '"' {
					unq = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(unq)
				}
				re, err := regexp.Compile(unq)
				if err != nil {
					t.Errorf("%s: bad want pattern %q: %v", pos, unq, err)
					continue
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: unq, re: re})
			}
		}
	}
	return out
}

// check matches findings against expectations one-to-one.
func check(t *testing.T, fset *token.FileSet, pkg *lint.Package, findings []lint.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, parseWants(t, fset, f)...)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.pattern)
		}
	}
}

// testLoader typechecks testdata packages, resolving imports first
// against testdata/src (so golden packages can model multi-package
// seams like a fake engine + server pair) and then against standard
// library export data.
type testLoader struct {
	srcRoot string
	fset    *token.FileSet
	imp     types.ImporterFrom
	loaded  map[string]*lint.Package
}

func (ld *testLoader) load(path string) (*lint.Package, error) {
	if pkg, ok := ld.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &lint.Package{PkgPath: path, Dir: dir, Fset: ld.fset}
	ld.loaded[path] = pkg
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, fmt.Errorf("no Go files in %s", dir))
	}
	if len(pkg.Errors) > 0 {
		return pkg, nil
	}
	pkg.TypesInfo = lint.NewTypesInfo()
	conf := types.Config{
		Importer: (*loaderImporter)(ld),
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	pkg.Types, _ = conf.Check(path, ld.fset, pkg.Files, pkg.TypesInfo)
	return pkg, nil
}

// loaderImporter adapts testLoader to types.Importer: testdata packages
// shadow everything else, the standard library resolves through export
// data.
type loaderImporter testLoader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	ld := (*testLoader)(li)
	if _, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("testdata package %s: %v", path, pkg.Errors[0])
		}
		return pkg.Types, nil
	}
	return ld.imp.ImportFrom(path, "", 0)
}
