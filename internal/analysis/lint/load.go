package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Errors collects parse and type errors. The driver refuses to lint
	// a package that does not compile — diagnostics over broken syntax
	// are noise.
	Errors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, "."
// for the current directory) with the go tool and typechecks each
// matched package from source. Imports — including in-module siblings —
// resolve through compiler export data produced by `go list -export`,
// so loading needs no network and no source typechecking of
// dependencies. Test files are not loaded: the invariants the analyzers
// encode live in shipping code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
		if lp.Error != nil {
			pkg.Errors = append(pkg.Errors, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err))
			pkgs = append(pkgs, pkg)
			continue
		}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				pkg.Errors = append(pkg.Errors, err)
				continue
			}
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Errors) == 0 {
			pkg.TypesInfo = NewTypesInfo()
			conf := types.Config{
				Importer: imp,
				Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
			}
			pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.TypesInfo)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter resolves imports from gc export data. The resolve
// function maps an import path to an export-data file; "unsafe" is
// served from go/types directly (it has no export data).
type exportImporter struct {
	gc      types.ImporterFrom
	resolve func(path string) (string, bool)
}

// NewExportImporter builds a types importer over compiler export data.
// resolve maps import paths to export-data files (as reported by
// `go list -export`).
func NewExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.ImporterFrom {
	imp := &exportImporter{resolve: resolve}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.ImportFrom(path, dir, mode)
}

// StdExports lazily resolves export-data files for packages outside a
// caller-managed set (the standard library, in practice) by invoking
// `go list -export` on demand. It backs the analysistest loader, whose
// golden packages import std packages the host module may not depend
// on. Safe for concurrent use; results are cached for the process.
type StdExports struct {
	mu    sync.Mutex
	files map[string]string
	// misses remembers paths go list could not export, so repeated
	// lookups fail fast instead of re-invoking the tool.
	misses map[string]bool
}

// Resolve returns the export-data file for the import path, invoking
// the go tool on a cache miss.
func (s *StdExports) Resolve(path string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[path]; ok {
		return f, true
	}
	if s.misses[path] {
		return "", false
	}
	cmd := exec.Command("go", "list", "-e", "-export",
		"-json=ImportPath,Export,DepOnly", "-deps", "--", path)
	out, err := cmd.Output()
	if err != nil {
		if s.misses == nil {
			s.misses = make(map[string]bool)
		}
		s.misses[path] = true
		return "", false
	}
	if s.files == nil {
		s.files = make(map[string]string)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			break
		}
		if p.Export != "" {
			s.files[p.ImportPath] = p.Export
		}
	}
	f, ok := s.files[path]
	if !ok {
		if s.misses == nil {
			s.misses = make(map[string]bool)
		}
		s.misses[path] = true
	}
	return f, ok
}
