// Package lint is the analyzer framework under cmd/wolveslint: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a package loader built on
// `go list -export` and the standard library's gc export-data importer.
//
// The repo pins invariants that no compiler checks — the vfs I/O seam,
// engine.Code↔HTTP exhaustiveness, ctx threading, lock/unlock pairing,
// sync.Pool Get/Put pairing — and this framework is what machine-checks
// them offline, with nothing outside the Go standard library and the go
// toolchain itself. The types mirror go/analysis deliberately: an
// analyzer written against this package ports to the upstream
// multichecker by changing imports only.
//
// Suppression: a diagnostic is dropped when the line it lands on (or the
// line directly above it) carries a `//lint:allow <name>[,<name>...]
// [reason]` comment naming its analyzer. Analyzers may also consume
// other `//lint:<verb>` directives via FileDirectives (the errcode
// analyzer's `//lint:exhaustive errcode` marker, for example).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by the driver.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position translated, suppressions
// applied, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Directive is one //lint:<verb> comment: `//lint:allow vfsseam reason`
// parses as Verb "allow", Args ["vfsseam", "reason"].
type Directive struct {
	Line int
	Verb string
	Args []string
}

// FileDirectives extracts every //lint: directive of f. Directives must
// start the comment ("//lint:" exactly, no space) to count.
func FileDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			out = append(out, Directive{
				Line: fset.Position(c.Pos()).Line,
				Verb: fields[0],
				Args: fields[1:],
			})
		}
	}
	return out
}

// allowedLines returns, per line, the set of analyzer names allowed by
// //lint:allow directives in f. The first argument of an allow
// directive is a comma-separated analyzer list; the rest is free-form
// rationale.
func allowedLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	var allowed map[int]map[string]bool
	for _, d := range FileDirectives(fset, f) {
		if d.Verb != "allow" || len(d.Args) == 0 {
			continue
		}
		if allowed == nil {
			allowed = make(map[int]map[string]bool)
		}
		set := allowed[d.Line]
		if set == nil {
			set = make(map[string]bool)
			allowed[d.Line] = set
		}
		for _, name := range strings.Split(d.Args[0], ",") {
			set[strings.TrimSpace(name)] = true
		}
	}
	return allowed
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Analyzer errors (not diagnostics) abort
// the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		// One suppression index per package, keyed by filename.
		allowed := make(map[string]map[int]map[string]bool)
		for _, f := range pkg.Files {
			allowed[pkg.Fset.Position(f.Pos()).Filename] = allowedLines(pkg.Fset, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				byLine := allowed[pos.Filename]
				if byLine[pos.Line][a.Name] || byLine[pos.Line-1][a.Name] {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// NewTypesInfo allocates a fully-populated types.Info, so analyzers can
// rely on every map being present.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
