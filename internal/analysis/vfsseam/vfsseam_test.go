package vfsseam_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/vfsseam"
)

func TestVFSSeam(t *testing.T) {
	analysistest.Run(t, "testdata", vfsseam.Analyzer,
		"example.com/internal/storage",
		"example.com/internal/storage/vfs")
}
