// Package vfs is the seam itself: the one storage package allowed to
// touch the real filesystem.
package vfs

import "os"

// OpenFile passes through to the operating system — legal here, and
// only here.
func OpenFile(name string, flag int, perm os.FileMode) (*os.File, error) {
	return os.OpenFile(name, flag, perm)
}

func remove(name string) error { return os.Remove(name) }
