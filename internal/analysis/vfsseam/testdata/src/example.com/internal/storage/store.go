// Package storage is golden testdata modeling the real
// internal/storage: file I/O must route through the vfs seam.
package storage

import (
	"io/ioutil" // want `io/ioutil bypasses the vfs seam`
	"os"
	"syscall"
)

func bad(dir string) {
	os.OpenFile(dir, os.O_RDWR, 0o644) // want `direct os.OpenFile bypasses the vfs seam`
	os.Remove(dir)                     // want `direct os.Remove bypasses the vfs seam`
	os.ReadDir(dir)                    // want `direct os.ReadDir bypasses the vfs seam`
	syscall.Flock(0, syscall.LOCK_EX)  // want `raw syscall.Flock inside internal/storage bypasses the vfs seam`
	ioutil.ReadFile(dir)               // want `ioutil.ReadFile bypasses the vfs seam`
}

func fine(err error) bool {
	// Pure helpers and constants stay legal: only filesystem
	// operations are fenced.
	var f *os.File
	_ = f
	_ = os.FileMode(0o644)
	return os.IsNotExist(err)
}

func escapeHatch(dir string) {
	//lint:allow vfsseam modeled: lock acquisition documented outside the seam
	os.Create(dir)
	os.Mkdir(dir, 0o755) //lint:allow vfsseam modeled same-line annotation
}
