// Package vfsseam checks the PR 6 storage I/O seam: inside
// internal/storage (everywhere except the vfs package itself), every
// filesystem operation must route through a vfs.FS so FaultFS can
// inject faults at the site. A direct os.* file call — or any
// io/ioutil use, or a raw syscall — is a hole in the fault-injection
// harness: the chaos suite can never exercise that failure path.
//
// The escape hatch is `//lint:allow vfsseam <reason>` on (or directly
// above) the offending line, for operations that are deliberately
// outside the seam.
package vfsseam

import (
	"go/ast"
	"go/types"
	"strings"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "vfsseam",
	Doc: "direct os/ioutil/syscall file I/O inside internal/storage bypasses the vfs fault-injection seam (PR 6); " +
		"route the operation through vfs.FS or annotate //lint:allow vfsseam",
	Run: run,
}

// bannedOS lists the os functions that touch the filesystem. Pure
// helpers (os.IsNotExist, os.Getenv, constants, types) stay legal —
// only operations FaultFS would want to fail are fenced.
var bannedOS = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Truncate": true, "Chmod": true, "Chtimes": true,
	"Link": true, "Symlink": true, "Stat": true, "Lstat": true,
	"NewFile": true, "ReadLink": true, "Readlink": true,
}

func run(pass *lint.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/storage") || strings.Contains(path, "internal/storage/vfs") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "io/ioutil" {
				pass.Reportf(imp.Pos(), "io/ioutil bypasses the vfs seam; use vfs.ReadFile/vfs.WriteFile")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "os":
				if bannedOS[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"direct os.%s bypasses the vfs seam; use the store's vfs.FS so FaultFS covers this I/O site",
						sel.Sel.Name)
				}
			case "syscall":
				pass.Reportf(call.Pos(),
					"raw syscall.%s inside internal/storage bypasses the vfs seam; wrap it behind vfs.FS",
					sel.Sel.Name)
			case "io/ioutil":
				pass.Reportf(call.Pos(),
					"ioutil.%s bypasses the vfs seam; use vfs.ReadFile/vfs.WriteFile", sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}
