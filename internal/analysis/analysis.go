// Package analysis registers the wolveslint invariant suite: custom
// analyzers that machine-check the seams earlier PRs established by
// convention. See the individual analyzer packages for the invariant
// each one encodes, and README.md ("Static analysis & invariants") for
// the catalogue.
package analysis

import (
	"wolves/internal/analysis/ctxpass"
	"wolves/internal/analysis/errcode"
	"wolves/internal/analysis/jsonseam"
	"wolves/internal/analysis/lint"
	"wolves/internal/analysis/lockflow"
	"wolves/internal/analysis/obsseam"
	"wolves/internal/analysis/poolret"
	"wolves/internal/analysis/vfsseam"
)

// All returns the full analyzer suite in the order the driver runs it.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		vfsseam.Analyzer,
		jsonseam.Analyzer,
		errcode.Analyzer,
		ctxpass.Analyzer,
		lockflow.Analyzer,
		poolret.Analyzer,
		obsseam.Analyzer,
	}
}

// ByName resolves a subset of the suite by analyzer name; unknown names
// return nil.
func ByName(names []string) []*lint.Analyzer {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
