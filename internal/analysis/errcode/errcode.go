// Package errcode checks the engine.Code seam built in PR 2 and
// extended by PRs 3–6: every declared engine.Code constant must stay
// wired through the surfaces that enumerate codes — the wolvesd
// status-mapping switch and the engine.Codes() registry — and no code
// may be minted ad hoc from a string literal outside the declaration
// block.
//
// Enumerating surfaces opt in with a `//lint:exhaustive errcode`
// directive on (or directly above) the switch statement or []Code
// composite literal; the analyzer then reports any declared constant
// the surface misses. Everywhere, a raw string literal used at type
// engine.Code (composite literal fields, call arguments, comparisons,
// conversions) is reported: codes must be the declared constants so
// the exhaustiveness checks can see them.
package errcode

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "errcode",
	Doc: "engine.Code exhaustiveness: surfaces marked //lint:exhaustive errcode must handle every declared code, " +
		"and codes must be declared constants, never raw string literals",
	Run: run,
}

// enginePath is the import-path suffix identifying the package that
// declares Code (suffix-matched so golden testdata can model it).
const enginePath = "internal/engine"

func run(pass *lint.Pass) (any, error) {
	eng, codeObj := findEngine(pass)
	if codeObj == nil {
		return nil, nil
	}
	declared := declaredCodes(eng, codeObj)
	exempt := exemptLiterals(pass, eng)

	for _, f := range pass.Files {
		marked := markedLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag == nil || !isCode(pass, n.Tag, codeObj) || !markedAt(marked, pass.Fset, n.Pos()) {
					return true
				}
				checkSwitch(pass, n, declared, codeObj)
			case *ast.CompositeLit:
				if !isCodeList(pass, n, codeObj) || !markedAt(marked, pass.Fset, n.Pos()) {
					return true
				}
				checkList(pass, n, declared, codeObj)
			case *ast.CallExpr:
				// Conversion Code("...") mints an undeclared code.
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && namedObj(tv.Type) == codeObj {
					if len(n.Args) == 1 {
						if lit, ok := n.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
							pass.Reportf(n.Pos(), "conversion of a string literal to engine.Code; use a declared Code constant")
							// The operand also typechecks as Code; don't
							// report it a second time below.
							exempt[lit] = true
						}
					}
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING || exempt[n] {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n]; ok && namedObj(tv.Type) == codeObj {
					pass.Reportf(n.Pos(), "raw string literal used as engine.Code; use a declared Code constant")
				}
			}
			return true
		})
	}
	return nil, nil
}

// findEngine locates the package declaring type Code: the package under
// analysis itself when its path ends in internal/engine, else a direct
// import. Returns nil when the package has no engine in sight.
func findEngine(pass *lint.Pass) (*types.Package, *types.TypeName) {
	candidates := []*types.Package{pass.Pkg}
	candidates = append(candidates, pass.Pkg.Imports()...)
	for _, p := range candidates {
		if !strings.HasSuffix(p.Path(), enginePath) {
			continue
		}
		if tn, ok := p.Scope().Lookup("Code").(*types.TypeName); ok {
			if basic, ok := tn.Type().Underlying().(*types.Basic); ok && basic.Kind() == types.String {
				return p, tn
			}
		}
	}
	return nil, nil
}

// declaredCodes collects every package-level constant of type Code.
func declaredCodes(eng *types.Package, codeObj *types.TypeName) []*types.Const {
	var out []*types.Const
	for _, name := range eng.Scope().Names() {
		if c, ok := eng.Scope().Lookup(name).(*types.Const); ok && namedObj(c.Type()) == codeObj {
			out = append(out, c)
		}
	}
	return out
}

// exemptLiterals marks the string literals of the engine package's own
// Code constant declarations — the one legitimate place codes are
// spelled out.
func exemptLiterals(pass *lint.Pass, eng *types.Package) map[*ast.BasicLit]bool {
	exempt := make(map[*ast.BasicLit]bool)
	if pass.Pkg != eng {
		return exempt
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if lit, ok := v.(*ast.BasicLit); ok {
						exempt[lit] = true
					}
				}
			}
		}
	}
	return exempt
}

// markedLines returns the lines carrying //lint:exhaustive errcode.
func markedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	marked := make(map[int]bool)
	for _, d := range lint.FileDirectives(fset, f) {
		if d.Verb == "exhaustive" && len(d.Args) > 0 && d.Args[0] == "errcode" {
			marked[d.Line] = true
		}
	}
	return marked
}

// markedAt reports whether pos (or the line above it) carries the
// exhaustive directive.
func markedAt(marked map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	return marked[line] || marked[line-1]
}

// isCode reports whether the expression has the Code named type.
func isCode(pass *lint.Pass, e ast.Expr, codeObj *types.TypeName) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && namedObj(tv.Type) == codeObj
}

// isCodeList reports whether the composite literal is a slice or array
// of Code.
func isCodeList(pass *lint.Pass, cl *ast.CompositeLit, codeObj *types.TypeName) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		return namedObj(u.Elem()) == codeObj
	case *types.Array:
		return namedObj(u.Elem()) == codeObj
	}
	return false
}

// namedObj returns the defining TypeName of a named type, or nil.
func namedObj(t types.Type) *types.TypeName {
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// constObj resolves an expression to the declared Code constant it
// names, or nil for anything else (literals, locals, other consts).
func constObj(pass *lint.Pass, e ast.Expr, codeObj *types.TypeName) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[e].(*types.Const); ok && namedObj(c.Type()) == codeObj {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const); ok && namedObj(c.Type()) == codeObj {
			return c
		}
	}
	return nil
}

// checkSwitch enforces exhaustiveness on a marked Code switch.
func checkSwitch(pass *lint.Pass, sw *ast.SwitchStmt, declared []*types.Const, codeObj *types.TypeName) {
	seen := make(map[*types.Const]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok || cc.List == nil { // default clause
			continue
		}
		for _, e := range cc.List {
			c := constObj(pass, e, codeObj)
			if c == nil {
				pass.Reportf(e.Pos(), "case expression is not a declared engine.Code constant")
				continue
			}
			seen[c] = true
		}
	}
	if missing := missingNames(declared, seen); len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over engine.Code marked exhaustive is missing: %s",
			strings.Join(missing, ", "))
	}
}

// checkList enforces exhaustiveness on a marked []Code literal.
func checkList(pass *lint.Pass, cl *ast.CompositeLit, declared []*types.Const, codeObj *types.TypeName) {
	seen := make(map[*types.Const]bool)
	for _, e := range cl.Elts {
		c := constObj(pass, e, codeObj)
		if c == nil {
			pass.Reportf(e.Pos(), "list element is not a declared engine.Code constant")
			continue
		}
		seen[c] = true
	}
	if missing := missingNames(declared, seen); len(missing) > 0 {
		pass.Reportf(cl.Pos(), "engine.Code list marked exhaustive is missing: %s",
			strings.Join(missing, ", "))
	}
}

func missingNames(declared []*types.Const, seen map[*types.Const]bool) []string {
	var missing []string
	for _, c := range declared {
		if !seen[c] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	return missing
}
