// Package server is golden testdata modeling the wolvesd status
// mapping: the marked switch must handle every declared engine.Code.
package server

import "example.com/internal/engine"

func statusFor(e *engine.Error) int {
	//lint:exhaustive errcode
	switch e.Code { // want `switch over engine.Code marked exhaustive is missing: ErrC`
	case engine.ErrA:
		return 400
	case engine.ErrB, "weird": // want `case expression is not a declared engine.Code constant` `raw string literal used as engine.Code`
		return 404
	default:
		return 500
	}
}

// unmarked switches are not checked for exhaustiveness, only for raw
// literals.
func coarse(e *engine.Error) bool {
	switch e.Code {
	case engine.ErrA:
		return true
	}
	return false
}

func build() *engine.Error {
	return &engine.Error{Code: "oops"} // want `raw string literal used as engine.Code`
}

func exhaustive(e *engine.Error) int {
	//lint:exhaustive errcode
	switch e.Code {
	case engine.ErrA, engine.ErrB:
		return 1
	case engine.ErrC:
		return 2
	default:
		return 0
	}
}
