// Package engine is golden testdata modeling the real engine error
// seam: a Code enum, a typed Error, and the Codes registry list.
package engine

// Code classifies an error.
type Code string

// The declared codes. These literals are the one legitimate place a
// code is spelled out.
const (
	ErrA Code = "a"
	ErrB Code = "b"
	ErrC Code = "c"
)

// Error is the structured error type.
type Error struct {
	Code    Code
	Message string
}

//lint:exhaustive errcode
var allCodes = []Code{ErrA, ErrB} // want `engine.Code list marked exhaustive is missing: ErrC`

// unmarked lists are not checked for exhaustiveness.
var partial = []Code{ErrA}

func mint() Code {
	bad := Code("zzz") // want `conversion of a string literal to engine.Code`
	_ = bad
	_ = allCodes
	_ = partial
	return ErrA
}

func compare(c Code) bool {
	return c == "a" // want `raw string literal used as engine.Code`
}

func escapeHatch() *Error {
	return &Error{Code: "legacy"} //lint:allow errcode modeled migration shim
}
