package errcode_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/errcode"
)

func TestErrCode(t *testing.T) {
	analysistest.Run(t, "testdata", errcode.Analyzer,
		"example.com/internal/engine",
		"example.com/internal/server")
}
