package ctxpass_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/ctxpass"
)

func TestCtxPass(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpass.Analyzer,
		"example.com/lib",
		"example.com/cmd")
}
