// Package lib is golden testdata for the ctx-threading rules: library
// code must pass ctx through instead of minting fresh roots or calling
// non-ctx wrappers when a ...Ctx variant exists.
package lib

import "context"

// WorkCtx is the real implementation.
func WorkCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Work is the compat wrapper: the one sanctioned fresh root, annotated.
func Work(n int) int {
	return WorkCtx(context.Background(), n) //lint:allow ctxpass compat wrapper anchors its own root
}

func freshRoot() int {
	ctx := context.Background() // want `context.Background\(\) in library code breaks the cancellation thread`
	return WorkCtx(ctx, 1)
}

func todoRoot() int {
	ctx := context.TODO() // want `context.TODO\(\) in library code breaks the cancellation thread`
	return WorkCtx(ctx, 1)
}

func discards(ctx context.Context) int {
	return WorkCtx(context.Background(), 2) // want `context.Background\(\) discards the ctx already in scope`
}

func drops(ctx context.Context) int {
	return Work(3) // want `call to Work drops the in-scope ctx; use WorkCtx`
}

func threads(ctx context.Context) int {
	return WorkCtx(ctx, 4)
}

// Runner exercises the method-set lookup.
type Runner struct{}

func (Runner) RunCtx(ctx context.Context) {}

func (r Runner) Run() {
	r.RunCtx(context.Background()) //lint:allow ctxpass compat wrapper anchors its own root
}

func methodDrop(ctx context.Context, r Runner) {
	r.Run() // want `call to Run drops the in-scope ctx; use RunCtx`
}

// closures inherit the enclosing ctx scope.
func closures(ctx context.Context) func() {
	return func() {
		Work(5) // want `call to Work drops the in-scope ctx; use WorkCtx`
	}
}

// a closure that takes no ctx inside a ctx-free function is clean.
func noCtxAnywhere() int {
	f := func() int { return Work(6) }
	return f()
}

// Plain is not flagged: no Ctx variant exists.
func Plain(n int) int { return n }

func callsPlain(ctx context.Context) int {
	return Plain(7)
}
