// Binaries own their root contexts: package main is exempt.
package main

import (
	"context"

	"example.com/lib"
)

func main() {
	ctx := context.Background()
	_ = lib.WorkCtx(ctx, 1)
	_ = lib.Work(2)
}
