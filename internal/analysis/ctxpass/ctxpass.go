// Package ctxpass checks the PR 2 cancellation seam: ctx must thread
// through the library. Two rules, both over non-main packages (binaries
// own their root contexts) and both overridable with
// `//lint:allow ctxpass <reason>`:
//
//  1. context.Background() / context.TODO() inside library code is a
//     broken thread: the DP and auditor loops poll ctx every few
//     thousand states, but only if callers pass one down. Compat
//     wrappers that intentionally anchor a fresh context carry the
//     annotation with a rationale.
//  2. Calling F when FCtx exists (same package, or same method set)
//     while a ctx is in scope silently drops cancellation on the floor.
package ctxpass

import (
	"go/ast"
	"go/types"
	"strings"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "ctxpass",
	Doc: "library code must thread ctx: no context.Background()/TODO() outside binaries, " +
		"and no call to a non-ctx wrapper when the ...Ctx variant exists and a ctx is in scope",
	Run: run,
}

func run(pass *lint.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ctxType := contextType(pass.Pkg)
	for _, f := range pass.Files {
		walkFuncs(pass, f, ctxType)
	}
	return nil, nil
}

// contextType resolves context.Context from the package's imports, or
// nil when the package never touches context.
func contextType(pkg *types.Package) types.Type {
	for _, imp := range pkg.Imports() {
		if imp.Path() == "context" {
			if tn, ok := imp.Scope().Lookup("Context").(*types.TypeName); ok {
				return tn.Type()
			}
		}
	}
	return nil
}

// walkFuncs visits every function body tracking whether a ctx parameter
// is in scope (directly or via an enclosing closure).
func walkFuncs(pass *lint.Pass, f *ast.File, ctxType types.Type) {
	var visit func(n ast.Node, ctxInScope bool)
	visit = func(n ast.Node, ctxInScope bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					visit(n.Body, hasCtxParam(pass, n.Type, ctxType))
				}
				return false
			case *ast.FuncLit:
				visit(n.Body, ctxInScope || hasCtxParam(pass, n.Type, ctxType))
				return false
			case *ast.CallExpr:
				checkCall(pass, n, ctxInScope, ctxType)
			}
			return true
		})
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd.Body, hasCtxParam(pass, fd.Type, ctxType))
		}
	}
}

// hasCtxParam reports whether the function type declares a parameter of
// type context.Context.
func hasCtxParam(pass *lint.Pass, ft *ast.FuncType, ctxType types.Type) bool {
	if ctxType == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && types.Identical(tv.Type, ctxType) {
			return true
		}
	}
	return false
}

// checkCall applies both rules to one call expression.
func checkCall(pass *lint.Pass, call *ast.CallExpr, ctxInScope bool, ctxType types.Type) {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}

	// Rule 1: fresh root contexts in library code.
	if callee.Pkg().Path() == "context" {
		if name := callee.Name(); name == "Background" || name == "TODO" {
			if ctxInScope {
				pass.Reportf(call.Pos(), "context.%s() discards the ctx already in scope; pass it through", name)
			} else {
				pass.Reportf(call.Pos(),
					"context.%s() in library code breaks the cancellation thread; accept a ctx parameter "+
						"(compat wrappers annotate //lint:allow ctxpass with a rationale)", name)
			}
		}
		return
	}

	// Rule 2: dropping ctx by calling the non-ctx wrapper.
	if !ctxInScope {
		return
	}
	name := callee.Name()
	if strings.HasSuffix(name, "Ctx") {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || takesCtx(sig, ctxType) {
		return
	}
	variant := name + "Ctx"
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), variant)
		if v, ok := obj.(*types.Func); ok && takesCtx(v.Type().(*types.Signature), ctxType) {
			pass.Reportf(call.Pos(), "call to %s drops the in-scope ctx; use %s", name, variant)
		}
		return
	}
	if v, ok := callee.Pkg().Scope().Lookup(variant).(*types.Func); ok {
		if sig, ok := v.Type().(*types.Signature); ok && takesCtx(sig, ctxType) {
			pass.Reportf(call.Pos(), "call to %s drops the in-scope ctx; use %s", name, variant)
		}
	}
}

// takesCtx reports whether the signature accepts a context.Context.
func takesCtx(sig *types.Signature, ctxType types.Type) bool {
	if ctxType == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if types.Identical(sig.Params().At(i).Type(), ctxType) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function object, nil for builtins,
// conversions and dynamic calls.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
