package obsseam_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/obsseam"
)

func TestObsSeam(t *testing.T) {
	analysistest.Run(t, "testdata", obsseam.Analyzer,
		"example.com/internal/engine",
		"example.com/cmd/tool",
		"example.com/internal/obs")
}
