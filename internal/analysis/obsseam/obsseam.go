// Package obsseam checks the PR 10 observability seam: library packages
// must log through internal/obs — structured key=value lines with a
// level, a component and a rate limit — never through the stdlib log
// package or raw fmt writes to os.Stderr. A stray log.Printf bypasses
// the level filter, the rate limiter and the machine-parseable format
// at once; operators end up with two interleaved log dialects on one
// stream.
//
// Exempt: internal/obs itself (it owns the sink), package main under
// cmd/ (a CLI's usage/error chatter to stderr is its interface, and
// wolvesd's last-resort exit message must not depend on the logger it
// is reporting about), and test files.
//
// The escape hatch is `//lint:allow obsseam <reason>` on (or directly
// above) the offending line.
package obsseam

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "obsseam",
	Doc: "stdlib log or raw fmt-to-os.Stderr output outside internal/obs and cmd/ mains bypasses the " +
		"structured, leveled, rate-limited logger (PR 10); use obs.NewLogger(component) " +
		"or annotate //lint:allow obsseam",
	Run: run,
}

// exemptPkg reports whether the package owns its own output dialect:
// internal/obs (the sink), and main packages (CLI chatter to stderr is
// their interface).
func exemptPkg(pass *lint.Pass) bool {
	if pass.Pkg.Name() == "main" {
		return true
	}
	return strings.HasSuffix(pass.Pkg.Path(), "internal/obs")
}

// pkgOf resolves the imported package path behind a selector base
// identifier, or "" when the base is not a package name.
func pkgOf(pass *lint.Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isStderr reports whether e is the os.Stderr variable.
func isStderr(pass *lint.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	return pkgOf(pass, sel.X) == "os"
}

func run(pass *lint.Pass) (any, error) {
	if exemptPkg(pass) {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "log" {
				pass.Reportf(imp.Pos(),
					"stdlib log outside internal/obs and cmd/ mains; "+
						"log through obs.NewLogger(component) so lines stay structured, leveled and rate-limited")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkgOf(pass, n.X) == "log" {
					pass.Reportf(n.Pos(),
						"log.%s bypasses the structured logger; use obs.NewLogger(component)",
						n.Sel.Name)
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || pkgOf(pass, sel.X) != "fmt" {
					return true
				}
				if !strings.HasPrefix(sel.Sel.Name, "Fprint") || len(n.Args) == 0 {
					return true
				}
				if isStderr(pass, n.Args[0]) {
					pass.Reportf(n.Pos(),
						"fmt.%s to os.Stderr bypasses the structured logger; use obs.NewLogger(component)",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}
