// Package obs is golden testdata: the logging package itself owns the
// sink and is exempt.
package obs

import (
	"fmt"
	"os"
)

func emit(line string) {
	fmt.Fprintln(os.Stderr, line)
}
