// Package engine is golden testdata modeling a library package: stdlib
// log and raw fmt writes to os.Stderr must go through the structured
// logger instead.
package engine

import (
	"fmt"
	"log" // want `stdlib log outside internal/obs and cmd/ mains`
	"os"
)

func badPrintf(err error) {
	log.Printf("engine: mutate failed: %v", err) // want `log.Printf bypasses the structured logger`
}

func badFatal(err error) {
	log.Fatalln("engine: unrecoverable:", err) // want `log.Fatalln bypasses the structured logger`
}

func badStderr(err error) {
	fmt.Fprintln(os.Stderr, "engine:", err)           // want `fmt.Fprintln to os.Stderr bypasses the structured logger`
	fmt.Fprintf(os.Stderr, "engine: %v\n", err)       // want `fmt.Fprintf to os.Stderr bypasses the structured logger`
	fmt.Fprintf(os.Stdout, "report: %v\n", err)       // stdout is data, not logging
	fmt.Fprintln(nopWriter{}, "not stderr, no sweat") // other writers are fine
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func escapeHatch(err error) {
	//lint:allow obsseam modeled: deliberate raw write during sink bootstrap
	fmt.Fprintln(os.Stderr, "bootstrap:", err)
	log.Println("annotated") //lint:allow obsseam modeled same-line annotation
}
