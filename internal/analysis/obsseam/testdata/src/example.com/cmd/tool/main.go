// Command tool is golden testdata: package main under cmd/ is exempt —
// a CLI's stderr chatter is its interface.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	log.Printf("tool: starting")
	fmt.Fprintln(os.Stderr, "tool: usage: tool [flags]")
}
