package lockflow_test

import (
	"testing"

	"wolves/internal/analysis/analysistest"
	"wolves/internal/analysis/lockflow"
)

func TestLockFlow(t *testing.T) {
	analysistest.Run(t, "testdata", lockflow.Analyzer, "example.com/locks")
}
