// Package lockflow checks lock/unlock pairing on sync.Mutex and
// sync.RWMutex: the PR 5 re-registration race fix depends on journal
// appends happening under the workflow lock, and the PR 4 registration
// path holds the write lock across publish+journal — invariants that
// rot silently if a refactor drops an Unlock or returns early while
// holding.
//
// The check is deliberately shallow (no CFG): a Lock()/RLock() call
// must either be followed immediately by the matching defer Unlock, or
// be explicitly released with no early return at the same nesting
// level in between. Hand-over-hand and conditional-release patterns
// (an if-branch that unlocks and returns) are accepted; genuinely
// intricate flows annotate `//lint:allow lockflow <reason>`.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"wolves/internal/analysis/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "lockflow",
	Doc: "a mutex Lock/RLock must pair with defer Unlock/RUnlock (or an explicit unlock with no early return " +
		"in between); guards the journal-under-lock and registration-publish orderings",
	Run: run,
}

// lockMethods maps a lock method to its matching unlock.
var lockMethods = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkBody scans every statement list of the function body (blocks,
// case bodies) for lock calls, including those inside closures.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			if recv, unlock := asLockStmt(pass, stmt); unlock != "" {
				checkLock(pass, body, list, i, recv, unlock, stmt.Pos())
			}
		}
		return true
	})
}

// checkLock applies the pairing rules to one lock statement at list[i].
func checkLock(pass *lint.Pass, body *ast.BlockStmt, list []ast.Stmt, i int, recv, unlock string, pos token.Pos) {
	// Canonical form: the very next statement defers the unlock.
	if i+1 < len(list) && isDeferUnlock(pass, list[i+1], recv, unlock) {
		return
	}
	// No release anywhere in the function is an unconditional leak.
	if !subtreeUnlocks(pass, body, recv, unlock) {
		pass.Reportf(pos, "%s is locked but never %sed in this function; add defer %s.%s() "+
			"(or annotate //lint:allow lockflow if release is delegated)", recv, unlock, recv, unlock)
		return
	}
	// Walk the statements after the lock at the same nesting level.
	for j := i + 1; j < len(list); j++ {
		s := list[j]
		if isDeferUnlock(pass, s, recv, unlock) || isExplicitUnlock(pass, s, recv, unlock) {
			return
		}
		if subtreeUnlocks(pass, s, recv, unlock) {
			// Conditional release (if err { mu.Unlock(); return err }):
			// accepted — path-sensitive reasoning is out of scope.
			return
		}
		if subtreeReturns(s) {
			pass.Reportf(pos, "%s may still be held at the return below; use defer %s.%s() "+
				"immediately after locking (or annotate //lint:allow lockflow)", recv, recv, unlock)
			return
		}
	}
}

// asLockStmt matches `recv.Lock()` / `recv.RLock()` expression
// statements on sync.Mutex / sync.RWMutex and returns the rendered
// receiver and the matching unlock method name.
func asLockStmt(pass *lint.Pass, stmt ast.Stmt) (string, string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, name, ok := syncMutexMethod(pass, call)
	if !ok {
		return "", ""
	}
	unlock, ok := lockMethods[name]
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), unlock
}

// syncMutexMethod matches calls to methods of sync.Mutex/sync.RWMutex
// and returns the selector plus the method name.
func syncMutexMethod(pass *lint.Pass, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	recvName := recvTypeName(sig.Recv().Type())
	if recvName != "Mutex" && recvName != "RWMutex" {
		return nil, "", false
	}
	return sel, fn.Name(), true
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isUnlockCall matches `recv.<unlock>()` for the same rendered receiver.
func isUnlockCall(pass *lint.Pass, e ast.Expr, recv, unlock string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, name, ok := syncMutexMethod(pass, call)
	if !ok || name != unlock {
		return false
	}
	return types.ExprString(sel.X) == recv
}

func isDeferUnlock(pass *lint.Pass, stmt ast.Stmt, recv, unlock string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	if isUnlockCall(pass, ds.Call, recv, unlock) {
		return true
	}
	// defer func() { ...; mu.Unlock() }() releases too.
	if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
		return subtreeUnlocks(pass, lit.Body, recv, unlock)
	}
	return false
}

func isExplicitUnlock(pass *lint.Pass, stmt ast.Stmt, recv, unlock string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	return ok && isUnlockCall(pass, es.X, recv, unlock)
}

// subtreeUnlocks reports whether the subtree contains a matching unlock
// call. Closure bodies only count when deferred or invoked in place —
// a goroutine's unlock does not release for this frame.
func subtreeUnlocks(pass *lint.Pass, n ast.Node, recv, unlock string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isUnlockCall(pass, n, recv, unlock) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// subtreeReturns reports whether the subtree returns from the enclosing
// function (returns inside nested function literals do not count).
func subtreeReturns(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		}
		return true
	})
	return found
}
