// Package locks is golden testdata for the lock/unlock pairing rules
// guarding the journal-under-lock and registration-publish orderings.
package locks

import (
	"errors"
	"sync"
)

type registry struct {
	mu    sync.RWMutex
	items map[string]int
}

// good is the canonical form: defer immediately after locking.
func (r *registry) good(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = v
}

// goodExplicit releases explicitly with no early return in between.
func (r *registry) goodExplicit(k string, v int) {
	r.mu.Lock()
	r.items[k] = v
	r.mu.Unlock()
}

// goodConditional unlocks on the error path before returning — the
// shallow check accepts conditional release.
func (r *registry) goodConditional(k string) (int, error) {
	r.mu.RLock()
	v, ok := r.items[k]
	if !ok {
		r.mu.RUnlock()
		return 0, errors.New("missing")
	}
	r.mu.RUnlock()
	return v, nil
}

// goodDeferredClosure releases inside a deferred closure.
func (r *registry) goodDeferredClosure(k string, v int) {
	r.mu.Lock()
	defer func() {
		r.items[k] = v
		r.mu.Unlock()
	}()
}

// leak never releases at all.
func (r *registry) leak(k string, v int) {
	r.mu.Lock() // want `r.mu is locked but never Unlocked in this function`
	r.items[k] = v
}

// earlyReturn may exit while still holding.
func (r *registry) earlyReturn(k string) int {
	r.mu.RLock() // want `r.mu may still be held at the return below`
	if len(r.items) == 0 {
		return -1
	}
	v := r.items[k]
	r.mu.RUnlock()
	return v
}

// wrongUnlock pairs RLock with Unlock — a different method, so the
// RLock is never RUnlocked.
func (r *registry) wrongUnlock(k string) int {
	r.mu.RLock() // want `r.mu is locked but never RUnlocked in this function`
	v := r.items[k]
	r.mu.Unlock()
	return v
}

// goroutineUnlock does not release for this frame: handing the unlock
// to a goroutine is a leak as far as this function is concerned.
func (r *registry) goroutineUnlock() {
	r.mu.Lock() // want `r.mu is locked but never Unlocked in this function`
	go func() {
		r.mu.Unlock()
	}()
}

// annotated opts out: hand-over-hand release is delegated to unlockAll.
func (r *registry) annotated() {
	r.mu.Lock() //lint:allow lockflow release delegated to unlockAll
	r.unlockAll()
}

func (r *registry) unlockAll() {
	r.mu.Unlock()
}

// twoMutexes must not cross-match: each receiver pairs with its own
// unlock.
type twoMutexes struct {
	a sync.Mutex
	b sync.Mutex
}

func (t *twoMutexes) crossed() {
	t.a.Lock() // want `t.a is locked but never Unlocked in this function`
	t.b.Lock()
	defer t.b.Unlock()
}

// notAMutex: Lock methods on non-sync types are ignored.
type fakeLock struct{}

func (fakeLock) Lock()   {}
func (fakeLock) Unlock() {}

func usesFake(f fakeLock) {
	f.Lock()
}
