package estimate

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	if got := Classify(3, 2); got != (GroupKey{"1-4", "chain-like"}) {
		t.Fatalf("Classify(3,2) = %+v", got)
	}
	if got := Classify(10, 12); got != (GroupKey{"5-16", "branching"}) {
		t.Fatalf("Classify(10,12) = %+v", got)
	}
	if got := Classify(10, 25); got != (GroupKey{"5-16", "dense"}) {
		t.Fatalf("Classify(10,25) = %+v", got)
	}
	if got := Classify(100, 10); got != (GroupKey{"65-256", "chain-like"}) {
		t.Fatalf("Classify(100,10) = %+v", got)
	}
	if got := Classify(500, 2000); got != (GroupKey{"257+", "dense"}) {
		t.Fatalf("Classify(500,2000) = %+v", got)
	}
	if got := Classify(0, 0); got.Shape != "chain-like" {
		t.Fatalf("Classify(0,0) = %+v", got)
	}
}

func TestRecordAndPredict(t *testing.T) {
	e := New()
	if _, ok := e.Predict(10, 12, "weak"); ok {
		t.Fatal("empty estimator must not predict")
	}
	e.Record(10, 12, "weak", 100*time.Millisecond, 0.8)
	e.Record(12, 14, "weak", 300*time.Millisecond, 0.6) // same group (5-16, branching)
	p, ok := e.Predict(11, 13, "weak")
	if !ok {
		t.Fatal("prediction expected")
	}
	if p.Samples != 2 || p.AvgTime != 200*time.Millisecond || p.AvgQuality != 0.7 {
		t.Fatalf("prediction = %+v", p)
	}
	// Different criterion: no data.
	if _, ok := e.Predict(11, 13, "strong"); ok {
		t.Fatal("no strong history yet")
	}
	// Different group: no data.
	if _, ok := e.Predict(100, 120, "weak"); ok {
		t.Fatal("different group must not predict")
	}
}

func TestGroupsAndCriteria(t *testing.T) {
	e := New()
	e.Record(3, 2, "weak", time.Millisecond, 1)
	e.Record(3, 2, "optimal", time.Millisecond, 1)
	e.Record(30, 80, "weak", time.Millisecond, 1)
	groups := e.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	crits := e.Criteria(groups[0])
	if len(crits) != 2 || crits[0] != "optimal" {
		t.Fatalf("criteria = %v", crits)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := New()
	e.Record(10, 12, "strong", 50*time.Millisecond, 0.9)
	e.Record(10, 12, "strong", 150*time.Millisecond, 1.0)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	if err := e2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	p, ok := e2.Predict(10, 12, "strong")
	if !ok || p.Samples != 2 || p.AvgTime != 100*time.Millisecond {
		t.Fatalf("after load: %+v, %v", p, ok)
	}
	// Load merges rather than replaces.
	var buf2 bytes.Buffer
	if err := e.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := e2.Load(&buf2); err != nil {
		t.Fatal(err)
	}
	p, _ = e2.Predict(10, 12, "strong")
	if p.Samples != 4 {
		t.Fatalf("merge load samples = %d", p.Samples)
	}
	if err := e2.Load(strings.NewReader("{")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestConcurrentUse(t *testing.T) {
	e := New()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				e.Record(10, 12, "weak", time.Millisecond, 1)
				e.Predict(10, 12, "weak")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	p, _ := e.Predict(10, 12, "weak")
	if p.Samples != 800 {
		t.Fatalf("samples = %d, want 800", p.Samples)
	}
}
