// Package estimate implements the demo's correction-time/quality
// estimator (§3.2): "we group the workflows which have been corrected in
// the past according to their sizes and substructures, and report the
// average running time and quality of each approach for the group that
// the current workflow belongs to."
//
// A correction task is classified by the size of the composite being
// split (bucketed in powers of four) and by the edge density of its
// member subgraph (chain-like, branching, dense). The estimator keeps
// streaming means per (group, corrector) and is safe for concurrent use.
package estimate

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// GroupKey classifies a correction task.
type GroupKey struct {
	SizeBucket string `json:"size"`
	Shape      string `json:"shape"`
}

// Classify buckets a composite by member count n and by the density of
// its induced dependency subgraph (edges within the composite / n).
func Classify(n int, innerEdges int) GroupKey {
	var size string
	switch {
	case n <= 4:
		size = "1-4"
	case n <= 16:
		size = "5-16"
	case n <= 64:
		size = "17-64"
	case n <= 256:
		size = "65-256"
	default:
		size = "257+"
	}
	density := 0.0
	if n > 0 {
		density = float64(innerEdges) / float64(n)
	}
	var shape string
	switch {
	case density < 0.9:
		shape = "chain-like"
	case density < 1.8:
		shape = "branching"
	default:
		shape = "dense"
	}
	return GroupKey{SizeBucket: size, Shape: shape}
}

// Prediction is the estimator's answer for one corrector on one group.
type Prediction struct {
	AvgTime    time.Duration `json:"avg_time"`
	AvgQuality float64       `json:"avg_quality"`
	Samples    int           `json:"samples"`
}

type agg struct {
	TotalNs      int64   `json:"total_ns"`
	TotalQuality float64 `json:"total_quality"`
	Samples      int     `json:"samples"`
}

// Estimator accumulates correction history and serves predictions.
type Estimator struct {
	mu   sync.Mutex
	hist map[GroupKey]map[string]*agg
}

// New returns an empty estimator.
func New() *Estimator {
	return &Estimator{hist: map[GroupKey]map[string]*agg{}}
}

// Record adds one observed correction: composite size n with innerEdges
// internal edges, corrected by criterion, taking elapsed, achieving the
// paper's quality ratio (optimal blocks / produced blocks).
func (e *Estimator) Record(n, innerEdges int, criterion string, elapsed time.Duration, quality float64) {
	key := Classify(n, innerEdges)
	e.mu.Lock()
	defer e.mu.Unlock()
	byAlg := e.hist[key]
	if byAlg == nil {
		byAlg = map[string]*agg{}
		e.hist[key] = byAlg
	}
	a := byAlg[criterion]
	if a == nil {
		a = &agg{}
		byAlg[criterion] = a
	}
	a.TotalNs += elapsed.Nanoseconds()
	a.TotalQuality += quality
	a.Samples++
}

// Predict returns the average time and quality for the group the given
// composite belongs to. ok is false when no history exists.
func (e *Estimator) Predict(n, innerEdges int, criterion string) (Prediction, bool) {
	key := Classify(n, innerEdges)
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.hist[key][criterion]
	if a == nil || a.Samples == 0 {
		return Prediction{}, false
	}
	return Prediction{
		AvgTime:    time.Duration(a.TotalNs / int64(a.Samples)),
		AvgQuality: a.TotalQuality / float64(a.Samples),
		Samples:    a.Samples,
	}, true
}

// Groups returns the known group keys, sorted for stable output.
func (e *Estimator) Groups() []GroupKey {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []GroupKey
	for k := range e.hist {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SizeBucket != out[j].SizeBucket {
			return out[i].SizeBucket < out[j].SizeBucket
		}
		return out[i].Shape < out[j].Shape
	})
	return out
}

// Criteria returns the criteria recorded for a group, sorted.
func (e *Estimator) Criteria(key GroupKey) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for c := range e.hist[key] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// jsonShape is the persistence format: a flat record list.
type jsonShape struct {
	Records []jsonRecord `json:"records"`
}

type jsonRecord struct {
	Key       GroupKey `json:"group"`
	Criterion string   `json:"criterion"`
	Agg       agg      `json:"agg"`
}

// Save serializes the history.
func (e *Estimator) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var doc jsonShape
	for key, byAlg := range e.hist {
		for crit, a := range byAlg {
			doc.Records = append(doc.Records, jsonRecord{Key: key, Criterion: crit, Agg: *a})
		}
	}
	sort.Slice(doc.Records, func(i, j int) bool {
		a, b := doc.Records[i], doc.Records[j]
		if a.Key != b.Key {
			if a.Key.SizeBucket != b.Key.SizeBucket {
				return a.Key.SizeBucket < b.Key.SizeBucket
			}
			return a.Key.Shape < b.Key.Shape
		}
		return a.Criterion < b.Criterion
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load merges persisted history into the estimator.
func (e *Estimator) Load(r io.Reader) error {
	var doc jsonShape
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("estimate: load: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rec := range doc.Records {
		byAlg := e.hist[rec.Key]
		if byAlg == nil {
			byAlg = map[string]*agg{}
			e.hist[rec.Key] = byAlg
		}
		a := byAlg[rec.Criterion]
		if a == nil {
			a = &agg{}
			byAlg[rec.Criterion] = a
		}
		a.TotalNs += rec.Agg.TotalNs
		a.TotalQuality += rec.Agg.TotalQuality
		a.Samples += rec.Agg.Samples
	}
	return nil
}
