package view

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"wolves/internal/workflow"
)

// wfDiamond: a→b, a→c, b→d, c→d.
func wfDiamond(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := workflow.NewBuilder("diamond").
		AddTask("a").AddTask("b").AddTask("c").AddTask("d").
		AddEdge("a", "b").AddEdge("a", "c").AddEdge("b", "d").AddEdge("c", "d").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuilderPartition(t *testing.T) {
	w := wfDiamond(t)
	v, err := NewBuilder(w, "v").
		Assign("top", "a").
		Assign("mid", "b", "c").
		Assign("bot", "d").
		Named("mid", "Middle Stage").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 3 {
		t.Fatalf("N = %d", v.N())
	}
	c, ok := v.CompositeByID("mid")
	if !ok || c.Name != "Middle Stage" || c.Size() != 2 {
		t.Fatalf("mid = %+v", c)
	}
	if v.CompOf(w.MustIndex("b")) != 1 || v.CompOf(w.MustIndex("d")) != 2 {
		t.Fatal("CompOf wrong")
	}
	if got := v.MemberIDs(1); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("MemberIDs = %v", got)
	}
	if got := v.CompositeIDs(); !reflect.DeepEqual(got, []string{"top", "mid", "bot"}) {
		t.Fatalf("CompositeIDs = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	w := wfDiamond(t)
	if _, err := NewBuilder(w, "v").Assign("x", "a", "b", "c").Build(); !errors.Is(err, ErrNotPartition) {
		t.Fatalf("missing task err = %v", err)
	}
	if _, err := NewBuilder(w, "v").Assign("x", "a", "a", "b", "c", "d").Build(); !errors.Is(err, ErrNotPartition) {
		t.Fatalf("dup task err = %v", err)
	}
	if _, err := NewBuilder(w, "v").Assign("x", "a", "ghost").Build(); !errors.Is(err, workflow.ErrUnknownTask) {
		t.Fatalf("unknown task err = %v", err)
	}
}

func TestFromAssignmentsAndPartition(t *testing.T) {
	w := wfDiamond(t)
	v, err := FromAssignments(w, "v", map[string][]string{
		"g1": {"a", "b"},
		"g2": {"c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 2 {
		t.Fatalf("N = %d", v.N())
	}
	v2, err := FromPartition(w, "p", []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v2.N() != 2 || v2.CompOf(3) != 1 {
		t.Fatal("FromPartition wrong")
	}
	if _, err := FromPartition(w, "p", []int{0, 0, 2, 2}); err == nil {
		t.Fatal("gap in block ids must error")
	}
	if _, err := FromPartition(w, "p", []int{0, 0}); err == nil {
		t.Fatal("short partition must error")
	}
}

func TestAtomicView(t *testing.T) {
	w := wfDiamond(t)
	v := Atomic(w)
	if v.N() != w.N() {
		t.Fatalf("atomic N = %d", v.N())
	}
	g := v.Graph()
	if g.M() != w.M() {
		t.Fatal("atomic view graph must equal workflow graph")
	}
}

func TestViewGraphQuotient(t *testing.T) {
	w := wfDiamond(t)
	v, _ := FromAssignments(w, "v", map[string][]string{
		"g1": {"a"}, "g2": {"b", "c"}, "g3": {"d"},
	})
	g := v.Graph()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("quotient N=%d M=%d", g.N(), g.M())
	}
	i1, _ := v.CompIndex("g1")
	i2, _ := v.CompIndex("g2")
	i3, _ := v.CompIndex("g3")
	if !g.HasEdge(i1, i2) || !g.HasEdge(i2, i3) {
		t.Fatal("quotient edges wrong")
	}
}

func TestInOutSets(t *testing.T) {
	// Paper Definition 2.2 semantics on the diamond with {b,c} composite:
	// both b and c have external pred a and external succ d.
	w := wfDiamond(t)
	v, _ := FromAssignments(w, "v", map[string][]string{
		"g1": {"a"}, "g2": {"b", "c"}, "g3": {"d"},
	})
	mid, _ := v.CompIndex("g2")
	in := v.In(mid)
	out := v.Out(mid)
	if len(in) != 2 || len(out) != 2 {
		t.Fatalf("in=%v out=%v", in, out)
	}
	// Source composite has empty in; sink composite empty out.
	top, _ := v.CompIndex("g1")
	bot, _ := v.CompIndex("g3")
	if len(v.In(top)) != 0 || len(v.Out(top)) != 1 {
		t.Fatalf("top in/out = %v/%v", v.In(top), v.Out(top))
	}
	if len(v.In(bot)) != 1 || len(v.Out(bot)) != 0 {
		t.Fatalf("bot in/out = %v/%v", v.In(bot), v.Out(bot))
	}
}

func TestMergeComposites(t *testing.T) {
	w := wfDiamond(t)
	v, _ := FromAssignments(w, "v", map[string][]string{
		"g1": {"a"}, "g2": {"b"}, "g3": {"c"}, "g4": {"d"},
	})
	m, err := v.MergeComposites("mid", "g2", "g3")
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	c, ok := m.CompositeByID("mid")
	if !ok || c.Size() != 2 {
		t.Fatalf("merged = %+v", c)
	}
	// Original view untouched.
	if v.N() != 4 {
		t.Fatal("merge must not mutate the source view")
	}
	if _, err := v.MergeComposites("x", "g2"); err == nil {
		t.Fatal("single-composite merge must error")
	}
	if _, err := v.MergeComposites("x", "g2", "ghost"); !errors.Is(err, ErrUnknownComp) {
		t.Fatalf("err = %v", err)
	}
	if _, err := v.MergeComposites("g1", "g2", "g3"); !errors.Is(err, ErrDuplicateComp) {
		t.Fatalf("existing id err = %v", err)
	}
	// Reusing one of the merged ids is allowed.
	if _, err := v.MergeComposites("g2", "g2", "g3"); err != nil {
		t.Fatalf("reusing merged id: %v", err)
	}
}

func TestReplaceComposite(t *testing.T) {
	w := wfDiamond(t)
	v, _ := FromAssignments(w, "v", map[string][]string{
		"g1": {"a"}, "g2": {"b", "c"}, "g3": {"d"},
	})
	b, c := w.MustIndex("b"), w.MustIndex("c")
	split, err := v.ReplaceComposite("g2", [][]int{{b}, {c}})
	if err != nil {
		t.Fatal(err)
	}
	if split.N() != 4 {
		t.Fatalf("N = %d", split.N())
	}
	if _, ok := split.CompositeByID("g2.1"); !ok {
		t.Fatal("split ids wrong")
	}
	// Single block keeps the id.
	same, err := v.ReplaceComposite("g2", [][]int{{b, c}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := same.CompositeByID("g2"); !ok {
		t.Fatal("single-block split must keep id")
	}

	if _, err := v.ReplaceComposite("ghost", [][]int{{b}}); !errors.Is(err, ErrUnknownComp) {
		t.Fatalf("err = %v", err)
	}
	if _, err := v.ReplaceComposite("g2", [][]int{{b}}); !errors.Is(err, ErrNotPartition) {
		t.Fatalf("partial split err = %v", err)
	}
	if _, err := v.ReplaceComposite("g2", [][]int{{b}, {b, c}}); !errors.Is(err, ErrNotPartition) {
		t.Fatalf("dup split err = %v", err)
	}
	a := w.MustIndex("a")
	if _, err := v.ReplaceComposite("g2", [][]int{{a, b, c}}); err == nil {
		t.Fatal("foreign task must error")
	}
	if _, err := v.ReplaceComposite("g2", [][]int{{b, c}, {}}); !errors.Is(err, ErrEmptyComp) {
		t.Fatalf("empty block err = %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := wfDiamond(t)
	v, _ := NewBuilder(w, "jv").
		Assign("g1", "a").Assign("g2", "b", "c").Assign("g3", "d").
		Named("g2", "Middle").Build()
	var buf bytes.Buffer
	if err := v.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := DecodeJSON(w, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.N() != 3 || v2.Name() != "jv" {
		t.Fatalf("round trip: %v", v2)
	}
	c, _ := v2.CompositeByID("g2")
	if c.Name != "Middle" {
		t.Fatal("composite name lost")
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	w := wfDiamond(t)
	cases := []string{
		`{`,
		`{"name":"v","workflow":"other","composites":[{"id":"x","members":["a","b","c","d"]}]}`,
		`{"name":"v","composites":[{"id":"x","members":["a"]}]}`,
		`{"name":"v","bogus":true,"composites":[{"id":"x","members":["a","b","c","d"]}]}`,
	}
	for i, c := range cases {
		if _, err := DecodeJSON(w, strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDescribeAndString(t *testing.T) {
	w := wfDiamond(t)
	v, _ := FromAssignments(w, "v", map[string][]string{"g1": {"a", "b", "c", "d"}})
	if s := v.String(); !strings.Contains(s, "1 composites over 4 tasks") {
		t.Fatalf("String = %q", s)
	}
	if d := v.Describe(); !strings.Contains(d, "g1 = {a, b, c, d}") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestExtendSingletons(t *testing.T) {
	wf, err := workflow.NewBuilder("live").
		AddTask("a").AddTask("b").AddTask("c").
		Chain("a", "b", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := FromAssignments(wf, "v", map[string][]string{
		"AB": {"a", "b"}, "C": {"c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if same, err := v.ExtendSingletons(); err != nil || same != v {
		t.Fatalf("covering view must return itself: %v, %v", same, err)
	}

	if _, err := wf.ExtendTasks([]workflow.Task{{ID: "d"}, {ID: "e"}}); err != nil {
		t.Fatal(err)
	}
	wf.Graph().AddNodes(2)
	nv, err := v.ExtendSingletons()
	if err != nil {
		t.Fatal(err)
	}
	if nv.N() != 4 {
		t.Fatalf("extended view has %d composites, want 4", nv.N())
	}
	for i, id := range []string{"AB", "C", "d", "e"} {
		if nv.Composite(i).ID != id {
			t.Fatalf("composite %d = %q, want %q (indices must be stable)", i, nv.Composite(i).ID, id)
		}
	}
	if ci := nv.CompOf(3); nv.Composite(ci).ID != "d" {
		t.Fatalf("task d assigned to composite %q", nv.Composite(ci).ID)
	}
	// The original view is untouched.
	if v.N() != 2 {
		t.Fatalf("ExtendSingletons mutated the receiver: %d composites", v.N())
	}

	// ID collision: a new task named like an existing composite.
	if _, err := wf.ExtendTasks([]workflow.Task{{ID: "AB"}}); err != nil {
		t.Fatal(err)
	}
	wf.Graph().AddNodes(1)
	if _, err := nv.ExtendSingletons(); !errors.Is(err, ErrDuplicateComp) {
		t.Fatalf("composite-ID collision accepted: %v", err)
	}
}
