package view

import (
	"encoding/json"
	"fmt"
	"io"

	"wolves/internal/workflow"
)

// jsonView is the on-disk JSON shape of a view: composite → member IDs.
type jsonView struct {
	Name       string          `json:"name"`
	Workflow   string          `json:"workflow"`
	Composites []jsonComposite `json:"composites"`
}

type jsonComposite struct {
	ID      string   `json:"id"`
	Name    string   `json:"name,omitempty"`
	Members []string `json:"members"`
}

// MarshalJSON encodes the view in a stable format.
func (v *View) MarshalJSON() ([]byte, error) {
	jv := jsonView{Name: v.name, Workflow: v.wf.Name()}
	for i := range v.comps {
		c := &v.comps[i]
		jc := jsonComposite{ID: c.ID, Members: v.MemberIDs(i)}
		if c.Name != c.ID {
			jc.Name = c.Name
		}
		jv.Composites = append(jv.Composites, jc)
	}
	return json.Marshal(jv)
}

// DecodeJSON reads a view over wf from r and validates the partition.
func DecodeJSON(wf *workflow.Workflow, r io.Reader) (*View, error) {
	var jv jsonView
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jv); err != nil {
		return nil, fmt.Errorf("view: decode: %w", err)
	}
	if jv.Workflow != "" && jv.Workflow != wf.Name() {
		return nil, fmt.Errorf("view: file targets workflow %q, got %q", jv.Workflow, wf.Name())
	}
	b := NewBuilder(wf, jv.Name)
	for _, c := range jv.Composites {
		b.Assign(c.ID, c.Members...)
		if c.Name != "" {
			b.Named(c.ID, c.Name)
		}
	}
	return b.Build()
}

// EncodeJSON writes the view as indented JSON.
func (v *View) EncodeJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
