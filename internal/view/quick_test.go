package view

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wolves/internal/workflow"
)

func quickWorkflow(rng *rand.Rand, n int) *workflow.Workflow {
	b := workflow.NewBuilder("qw")
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%d", i)
		b.AddTask(ids[i])
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(ids[perm[i]], ids[perm[j]])
			}
		}
	}
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}

func quickPartition(rng *rand.Rand, n int) []int {
	k := 1 + rng.Intn(n)
	part := make([]int, n)
	for i := 0; i < k; i++ {
		part[i] = i
	}
	for i := k; i < n; i++ {
		part[i] = rng.Intn(k)
	}
	rng.Shuffle(n, func(i, j int) { part[i], part[j] = part[j], part[i] })
	return part
}

// Property: FromPartition → PartOf round-trips up to block renaming, and
// the composites exactly partition the tasks.
func TestQuickPartitionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		wf := quickWorkflow(rng, n)
		part := quickPartition(rng, n)
		v, err := FromPartition(wf, "p", part)
		if err != nil {
			return false
		}
		got := v.PartOf()
		// Same partition: tasks share a block in part iff they do in got.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (part[i] == part[j]) != (got[i] == got[j]) {
					return false
				}
			}
		}
		// Exact cover.
		seen := map[int]bool{}
		total := 0
		for ci := 0; ci < v.N(); ci++ {
			for _, m := range v.Composite(ci).Members() {
				if seen[m] {
					return false
				}
				seen[m] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: MergeComposites reduces the composite count by k-1, keeps
// the partition exact, and ReplaceComposite with singleton blocks undoes
// nothing structurally (still a partition, composite count restored).
func TestQuickMergeThenSplitInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		wf := quickWorkflow(rng, n)
		v, err := FromPartition(wf, "p", quickPartition(rng, n))
		if err != nil || v.N() < 2 {
			return err == nil // degenerate but valid
		}
		a := rng.Intn(v.N())
		b := rng.Intn(v.N())
		if a == b {
			return true
		}
		merged, err := v.MergeComposites("mx", v.Composite(a).ID, v.Composite(b).ID)
		if err != nil {
			return false
		}
		if merged.N() != v.N()-1 {
			return false
		}
		// Split mx back into singletons.
		mx, _ := merged.CompositeByID("mx")
		var blocks [][]int
		for _, m := range mx.Members() {
			blocks = append(blocks, []int{m})
		}
		split, err := merged.ReplaceComposite("mx", blocks)
		if err != nil {
			return false
		}
		return split.N() == merged.N()-1+len(blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the view graph never misses an inter-composite edge and
// never contains an intra-composite edge.
func TestQuickViewGraphFaithful(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		wf := quickWorkflow(rng, n)
		v, err := FromPartition(wf, "p", quickPartition(rng, n))
		if err != nil {
			return false
		}
		q := v.Graph()
		ok := true
		wf.Graph().Edges(func(u, w int) {
			cu, cw := v.CompOf(u), v.CompOf(w)
			if cu == cw {
				return
			}
			if !q.HasEdge(cu, cw) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		// Every quotient edge is witnessed by some task edge.
		witnessed := map[[2]int]bool{}
		wf.Graph().Edges(func(u, w int) {
			witnessed[[2]int{v.CompOf(u), v.CompOf(w)}] = true
		})
		q.Edges(func(a, b int) {
			if !witnessed[[2]int{a, b}] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
