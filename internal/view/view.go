// Package view models workflow views: partitions of a workflow's atomic
// tasks into composite tasks, as in Figure 1(b) of the WOLVES paper. The
// view graph is the quotient of the workflow DAG under the partition,
// preserving all inter-composite edges.
//
// A View is immutable; correction and user feedback produce new Views via
// ReplaceComposite and MergeComposites.
package view

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"wolves/internal/dag"
	"wolves/internal/workflow"
)

// Composite is a composite task: a named, non-empty set of atomic tasks.
type Composite struct {
	ID      string
	Name    string
	members []int // ascending workflow task indices
}

// Members returns the workflow task indices in the composite, ascending.
// The slice is shared; do not mutate.
func (c *Composite) Members() []int { return c.members }

// Size returns the number of atomic tasks in the composite.
func (c *Composite) Size() int { return len(c.members) }

// View is an immutable partition of a workflow's tasks into composites.
type View struct {
	wf     *workflow.Workflow
	name   string
	comps  []Composite
	compOf []int
	index  map[string]int
}

// Errors reported during view construction and editing.
var (
	ErrNotPartition  = errors.New("view: composites do not partition the workflow tasks")
	ErrUnknownComp   = errors.New("view: unknown composite id")
	ErrDuplicateComp = errors.New("view: duplicate composite id")
	ErrEmptyComp     = errors.New("view: empty composite")
)

// Builder accumulates composite assignments for a workflow.
type Builder struct {
	wf    *workflow.Workflow
	name  string
	order []string
	comps map[string][]string
	names map[string]string
}

// NewBuilder returns a view builder over wf.
func NewBuilder(wf *workflow.Workflow, name string) *Builder {
	return &Builder{wf: wf, name: name, comps: map[string][]string{}, names: map[string]string{}}
}

// Assign adds task IDs to composite compID (created on first use).
func (b *Builder) Assign(compID string, taskIDs ...string) *Builder {
	if _, ok := b.comps[compID]; !ok {
		b.order = append(b.order, compID)
	}
	b.comps[compID] = append(b.comps[compID], taskIDs...)
	return b
}

// Named sets the human-readable name of a composite.
func (b *Builder) Named(compID, name string) *Builder {
	b.names[compID] = name
	return b
}

// Build validates that the assignment is an exact partition and freezes
// the view.
func (b *Builder) Build() (*View, error) {
	v := &View{
		wf:     b.wf,
		name:   b.name,
		compOf: make([]int, b.wf.N()),
		index:  make(map[string]int, len(b.order)),
	}
	for i := range v.compOf {
		v.compOf[i] = -1
	}
	for _, cid := range b.order {
		ids := b.comps[cid]
		if len(ids) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrEmptyComp, cid)
		}
		if _, dup := v.index[cid]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateComp, cid)
		}
		ci := len(v.comps)
		v.index[cid] = ci
		name := b.names[cid]
		if name == "" {
			name = cid
		}
		comp := Composite{ID: cid, Name: name}
		for _, tid := range ids {
			ti, ok := b.wf.Index(tid)
			if !ok {
				return nil, fmt.Errorf("view: composite %q: %w: task %q", cid, workflow.ErrUnknownTask, tid)
			}
			if v.compOf[ti] != -1 {
				return nil, fmt.Errorf("%w: task %q assigned twice", ErrNotPartition, tid)
			}
			v.compOf[ti] = ci
			comp.members = append(comp.members, ti)
		}
		sort.Ints(comp.members)
		v.comps = append(v.comps, comp)
	}
	for ti, ci := range v.compOf {
		if ci == -1 {
			return nil, fmt.Errorf("%w: task %q unassigned", ErrNotPartition, b.wf.Task(ti).ID)
		}
	}
	return v, nil
}

// FromAssignments builds a view from a composite→tasks map. Composite IDs
// are processed in sorted order for determinism.
func FromAssignments(wf *workflow.Workflow, name string, assign map[string][]string) (*View, error) {
	b := NewBuilder(wf, name)
	cids := make([]string, 0, len(assign))
	for cid := range assign {
		cids = append(cids, cid)
	}
	sort.Strings(cids)
	for _, cid := range cids {
		b.Assign(cid, assign[cid]...)
	}
	return b.Build()
}

// Atomic returns the identity view: one singleton composite per task,
// composite IDs equal to task IDs.
func Atomic(wf *workflow.Workflow) *View {
	b := NewBuilder(wf, wf.Name()+"-atomic")
	for _, id := range wf.IDs() {
		b.Assign(id, id)
	}
	v, err := b.Build()
	if err != nil {
		panic("view: atomic view must build: " + err.Error())
	}
	return v
}

// FromPartition builds a view from dense block assignments: partOf[t] is
// the block of task index t; block IDs become "B0", "B1", ….
func FromPartition(wf *workflow.Workflow, name string, partOf []int) (*View, error) {
	if len(partOf) != wf.N() {
		return nil, fmt.Errorf("view: partition has %d entries, workflow has %d tasks", len(partOf), wf.N())
	}
	k := 0
	for _, b := range partOf {
		if b < 0 {
			return nil, fmt.Errorf("view: negative block id %d", b)
		}
		if b+1 > k {
			k = b + 1
		}
	}
	builder := NewBuilder(wf, name)
	for b := 0; b < k; b++ {
		cid := fmt.Sprintf("B%d", b)
		any := false
		for t, bt := range partOf {
			if bt == b {
				builder.Assign(cid, wf.Task(t).ID)
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("view: block %d is empty", b)
		}
	}
	return builder.Build()
}

// Workflow returns the underlying workflow.
func (v *View) Workflow() *workflow.Workflow { return v.wf }

// Name returns the view name.
func (v *View) Name() string { return v.name }

// N returns the number of composite tasks.
func (v *View) N() int { return len(v.comps) }

// Composite returns the composite at index i.
func (v *View) Composite(i int) *Composite { return &v.comps[i] }

// CompositeByID looks a composite up by ID.
func (v *View) CompositeByID(id string) (*Composite, bool) {
	i, ok := v.index[id]
	if !ok {
		return nil, false
	}
	return &v.comps[i], true
}

// CompIndex returns the dense index of a composite ID.
func (v *View) CompIndex(id string) (int, bool) {
	i, ok := v.index[id]
	return i, ok
}

// CompOf returns the composite index containing workflow task index t.
func (v *View) CompOf(t int) int { return v.compOf[t] }

// PartOf returns the task→composite assignment as a dense slice (copy).
func (v *View) PartOf() []int { return append([]int(nil), v.compOf...) }

// Graph returns the view (quotient) graph over composite indices. The
// quotient of a DAG can be cyclic for badly designed views; callers use
// dag diagnostics on the result.
func (v *View) Graph() *dag.Graph {
	q, err := v.wf.Graph().Quotient(v.compOf, len(v.comps))
	if err != nil {
		panic("view: internal partition invalid: " + err.Error())
	}
	return q
}

// In returns T.in per Definition 2.2: members of composite ci having at
// least one predecessor outside the composite. Ascending task indices.
func (v *View) In(ci int) []int {
	var out []int
	g := v.wf.Graph()
	for _, t := range v.comps[ci].members {
		for _, p := range g.Preds(t) {
			if v.compOf[p] != ci {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// Out returns T.out per Definition 2.2: members of composite ci having at
// least one successor outside the composite. Ascending task indices.
func (v *View) Out(ci int) []int {
	var out []int
	g := v.wf.Graph()
	for _, t := range v.comps[ci].members {
		for _, s := range g.Succs(t) {
			if v.compOf[s] != ci {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// MergeComposites returns a new view in which the listed composites are
// replaced by a single composite with the given id (the demo's "Create
// Composite Task" feedback operation).
func (v *View) MergeComposites(newID string, compIDs ...string) (*View, error) {
	if len(compIDs) < 2 {
		return nil, errors.New("view: merge needs at least two composites")
	}
	merge := map[int]bool{}
	for _, id := range compIDs {
		i, ok := v.index[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownComp, id)
		}
		merge[i] = true
	}
	if _, exists := v.index[newID]; exists && !merge[v.index[newID]] {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateComp, newID)
	}
	b := NewBuilder(v.wf, v.name)
	placed := false
	for i := range v.comps {
		c := &v.comps[i]
		if merge[i] {
			if !placed {
				placed = true
				for j := range v.comps {
					if merge[j] {
						for _, t := range v.comps[j].members {
							b.Assign(newID, v.wf.Task(t).ID)
						}
					}
				}
			}
			continue
		}
		for _, t := range c.members {
			b.Assign(c.ID, v.wf.Task(t).ID)
		}
		b.Named(c.ID, c.Name)
	}
	return b.Build()
}

// ReplaceComposite returns a new view in which composite id is replaced
// by the given blocks (task-index sets partitioning its members). Block
// IDs are id+".1", id+".2", … unless there is exactly one block, which
// keeps the original ID. This is how corrector splits are applied.
func (v *View) ReplaceComposite(id string, blocks [][]int) (*View, error) {
	ci, ok := v.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownComp, id)
	}
	seen := map[int]bool{}
	total := 0
	for _, blk := range blocks {
		if len(blk) == 0 {
			return nil, fmt.Errorf("%w: in split of %q", ErrEmptyComp, id)
		}
		for _, t := range blk {
			if v.compOf[t] != ci {
				return nil, fmt.Errorf("view: split of %q contains foreign task %q", id, v.wf.Task(t).ID)
			}
			if seen[t] {
				return nil, fmt.Errorf("%w: task %q duplicated in split of %q", ErrNotPartition, v.wf.Task(t).ID, id)
			}
			seen[t] = true
			total++
		}
	}
	if total != len(v.comps[ci].members) {
		return nil, fmt.Errorf("%w: split of %q covers %d of %d members", ErrNotPartition, id, total, len(v.comps[ci].members))
	}
	b := NewBuilder(v.wf, v.name)
	for i := range v.comps {
		c := &v.comps[i]
		if i != ci {
			for _, t := range c.members {
				b.Assign(c.ID, v.wf.Task(t).ID)
			}
			b.Named(c.ID, c.Name)
			continue
		}
		for bi, blk := range blocks {
			bid := id
			if len(blocks) > 1 {
				bid = fmt.Sprintf("%s.%d", id, bi+1)
			}
			sorted := append([]int(nil), blk...)
			sort.Ints(sorted)
			for _, t := range sorted {
				b.Assign(bid, v.wf.Task(t).ID)
			}
		}
	}
	return b.Build()
}

// ExtendSingletons returns a view covering every workflow task the view
// does not yet cover — tasks appended to a live workflow after the view
// was built — as new singleton composites (ID and name equal to the task
// ID), in task-index order after the existing composites. Existing
// composite indices are unchanged, so incrementally maintained reports
// stay aligned. Fails with ErrDuplicateComp when a new task's ID
// collides with an existing composite ID; the registry prechecks this
// before mutating anything. When the view already covers the workflow,
// v itself is returned.
func (v *View) ExtendSingletons() (*View, error) {
	n := v.wf.N()
	if n == len(v.compOf) {
		return v, nil
	}
	for t := len(v.compOf); t < n; t++ {
		if _, clash := v.index[v.wf.Task(t).ID]; clash {
			return nil, fmt.Errorf("%w: task %q already names a composite", ErrDuplicateComp, v.wf.Task(t).ID)
		}
	}
	nv := &View{
		wf:     v.wf,
		name:   v.name,
		comps:  append(make([]Composite, 0, len(v.comps)+n-len(v.compOf)), v.comps...),
		compOf: append(make([]int, 0, n), v.compOf...),
		index:  make(map[string]int, len(v.index)+n-len(v.compOf)),
	}
	for id, i := range v.index {
		nv.index[id] = i
	}
	for t := len(v.compOf); t < n; t++ {
		id := v.wf.Task(t).ID
		ci := len(nv.comps)
		nv.index[id] = ci
		nv.comps = append(nv.comps, Composite{ID: id, Name: id, members: []int{t}})
		nv.compOf = append(nv.compOf, ci)
	}
	return nv, nil
}

// CompositeIDs returns composite IDs in index order.
func (v *View) CompositeIDs() []string {
	out := make([]string, len(v.comps))
	for i := range v.comps {
		out[i] = v.comps[i].ID
	}
	return out
}

// MemberIDs returns the task IDs of composite ci, ascending by index.
func (v *View) MemberIDs(ci int) []string {
	ms := v.comps[ci].members
	out := make([]string, len(ms))
	for i, t := range ms {
		out[i] = v.wf.Task(t).ID
	}
	return out
}

// String renders a compact summary like "view v (7 composites over 12 tasks)".
func (v *View) String() string {
	return fmt.Sprintf("view %q (%d composites over %d tasks)", v.name, v.N(), v.wf.N())
}

// Describe renders one line per composite: "ID = {t1, t2}".
func (v *View) Describe() string {
	var b strings.Builder
	for i := range v.comps {
		fmt.Fprintf(&b, "%s = {%s}\n", v.comps[i].ID, strings.Join(v.MemberIDs(i), ", "))
	}
	return b.String()
}
