package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing: in-process spans sampled 1-in-N at the request root,
// propagated via context through server → engine → runs → storage, and
// recorded into a fixed-size lock-free ring served by GET
// /debug/traces.
//
// The no-op fast path is the whole design: an unsampled request gets a
// nil *Span back, every Span method is nil-receiver safe, and the
// context is returned untouched — zero allocations, zero atomics past
// the sampling counter. The warm lineage serve path stays 0 allocs/op
// with tracing sampled out.

// SpanRecord is one completed span as stored in the ring and served by
// /debug/traces.
type SpanRecord struct {
	TraceID   string `json:"trace_id"`
	SpanID    string `json:"span_id"`
	ParentID  string `json:"parent_id,omitempty"`
	Component string `json:"component"`
	Name      string `json:"name"`
	StartUnix int64  `json:"start_unix_nano"`
	DurMicros int64  `json:"duration_micros"`
	Attrs     string `json:"attrs,omitempty"`
}

// ringSize is the trace ring capacity; must be a power of two.
const ringSize = 512

// maxAttrs caps per-span attributes; SetAttr past the cap is dropped.
const maxAttrs = 6

// Tracer mints trace/span IDs, applies sampling, and owns the record
// ring.
type Tracer struct {
	sampleN atomic.Int64  // 0 = tracing off; N = sample 1 request in N
	ctr     atomic.Uint64 // round-robin sampling counter
	idctr   atomic.Uint64 // span/trace ID mint
	idbase  uint64        // per-process ID randomizer

	ring [ringSize]atomic.Pointer[SpanRecord]
	pos  atomic.Uint64

	sampled *Counter // spans recorded (nil ok: counting disabled)
}

// NewTracer returns a tracer with sampling off.
func NewTracer() *Tracer {
	return &Tracer{idbase: uint64(time.Now().UnixNano())}
}

// SetSampleN sets the sampling rate: 0 disables tracing, 1 traces every
// request, N traces one request in N.
func (t *Tracer) SetSampleN(n int64) {
	if n < 0 {
		n = 0
	}
	t.sampleN.Store(n)
}

// SampleN returns the current sampling rate.
func (t *Tracer) SampleN() int64 { return t.sampleN.Load() }

// Span is one in-flight traced operation. The zero value is not used;
// spans come from StartSpan and are pooled — after End the span must
// not be touched. All methods are safe on a nil receiver (the unsampled
// fast path).
type Span struct {
	tracer    *Tracer
	traceID   uint64
	spanID    uint64
	parentID  uint64
	component string
	name      string
	start     time.Time
	attrs     [maxAttrs][2]string
	nattrs    int
}

type spanCtxKey struct{}

// spanPool recycles Span structs across requests. Get happens in
// StartSpan and the matching Put in End — ownership transfers through
// the context, which is the point of the seam.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// withSpan returns ctx carrying s.
func withSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// StartSpan starts a span under the span already carried by ctx, or —
// when ctx carries none — applies the sampling decision to start a new
// root. Unsampled requests get (ctx, nil) back: the context untouched,
// no allocation. Sampled requests pay one pooled span and one context
// allocation per span.
func (t *Tracer) StartSpan(ctx context.Context, component, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		n := t.sampleN.Load()
		if n <= 0 || t.ctr.Add(1)%uint64(n) != 0 {
			return ctx, nil
		}
	}
	s := spanPool.Get().(*Span) //lint:allow poolret ownership transfers to End via the context
	s.tracer = t
	s.spanID = t.mintID()
	if parent != nil {
		s.traceID = parent.traceID
		s.parentID = parent.spanID
	} else {
		s.traceID = s.spanID
		s.parentID = 0
	}
	s.component, s.name = component, name
	s.nattrs = 0
	s.start = time.Now()
	return withSpan(ctx, s), s
}

// mintID returns a process-unique non-zero ID.
func (t *Tracer) mintID() uint64 {
	id := t.idbase + t.idctr.Add(1)*0x9e3779b97f4a7c15
	if id == 0 {
		id = 1
	}
	return id
}

// SetAttr attaches one key/value to the span. Nil-safe; attributes past
// the fixed cap are dropped.
func (s *Span) SetAttr(k, v string) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = [2]string{k, v}
	s.nattrs++
}

// End completes the span: the record lands in the tracer's ring and the
// span returns to the pool. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	rec := &SpanRecord{
		TraceID:   hexID(s.traceID),
		SpanID:    hexID(s.spanID),
		Component: s.component,
		Name:      s.name,
		StartUnix: s.start.UnixNano(),
		DurMicros: time.Since(s.start).Microseconds(),
	}
	if s.parentID != 0 {
		rec.ParentID = hexID(s.parentID)
	}
	if s.nattrs > 0 {
		var b []byte
		for i := 0; i < s.nattrs; i++ {
			if i > 0 {
				b = append(b, ' ')
			}
			b = append(b, s.attrs[i][0]...)
			b = append(b, '=')
			b = append(b, s.attrs[i][1]...)
		}
		rec.Attrs = string(b)
	}
	slot := t.pos.Add(1) - 1
	t.ring[slot%ringSize].Store(rec)
	if t.sampled != nil {
		t.sampled.Inc()
	}
	*s = Span{}
	spanPool.Put(s)
}

func hexID(id uint64) string { return strconv.FormatUint(id, 16) }

// Tail returns up to n most recent completed spans, oldest first.
func (t *Tracer) Tail(n int) []SpanRecord {
	if n <= 0 || n > ringSize {
		n = ringSize
	}
	end := t.pos.Load()
	start := uint64(0)
	if end > uint64(n) {
		start = end - uint64(n)
	}
	out := make([]SpanRecord, 0, end-start)
	for i := start; i < end; i++ {
		if rec := t.ring[i%ringSize].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// Handler serves the trace tail as JSON at GET /debug/traces. The ?n=
// query parameter bounds the tail (default and max: the ring size).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n, _ := strconv.Atoi(req.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			SampleN int64        `json:"sample_n"`
			Spans   []SpanRecord `json:"spans"`
		}{SampleN: t.SampleN(), Spans: t.Tail(n)})
	})
}
