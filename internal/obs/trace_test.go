package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanSampling(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()

	// Sampling off: no span, context untouched.
	c2, s := tr.StartSpan(ctx, "http", "lineage")
	if s != nil {
		t.Fatal("sampled with sampling off")
	}
	if c2 != ctx {
		t.Fatal("context replaced on unsampled path")
	}
	s.SetAttr("k", "v") // nil-safe
	s.End()             // nil-safe

	// Sample every request: root + child share a trace, parent links.
	tr.SetSampleN(1)
	c2, root := tr.StartSpan(ctx, "http", "lineage")
	if root == nil {
		t.Fatal("not sampled with N=1")
	}
	root.SetAttr("route", "lineage")
	c3, child := tr.StartSpan(c2, "runs", "lineage")
	if child == nil {
		t.Fatal("child of sampled span not recorded")
	}
	if child.traceID != root.traceID || child.parentID != root.spanID {
		t.Errorf("child not linked: trace %x/%x parent %x span %x",
			child.traceID, root.traceID, child.parentID, root.spanID)
	}
	if FromContext(c3) != child {
		t.Error("FromContext did not return innermost span")
	}
	child.End()
	root.End()

	tail := tr.Tail(0)
	if len(tail) != 2 {
		t.Fatalf("tail: got %d spans, want 2", len(tail))
	}
	// Children end first: tail is completion-ordered.
	if tail[0].Name != "lineage" || tail[0].Component != "runs" {
		t.Errorf("unexpected first record: %+v", tail[0])
	}
	if tail[0].ParentID != tail[1].SpanID || tail[0].TraceID != tail[1].TraceID {
		t.Errorf("ring lost the parent link: %+v / %+v", tail[0], tail[1])
	}
	if !strings.Contains(tail[1].Attrs, "route=lineage") {
		t.Errorf("attrs lost: %+v", tail[1])
	}
}

func TestSampleOneInN(t *testing.T) {
	tr := NewTracer()
	tr.SetSampleN(4)
	sampled := 0
	for i := 0; i < 100; i++ {
		_, s := tr.StartSpan(context.Background(), "http", "x")
		if s != nil {
			sampled++
			s.End()
		}
	}
	if sampled != 25 {
		t.Errorf("1-in-4 sampling: got %d of 100", sampled)
	}
}

// TestRingConcurrent hammers the ring from many goroutines while a
// reader tails it; run under -race in CI.
func TestRingConcurrent(t *testing.T) {
	tr := NewTracer()
	tr.SetSampleN(1)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Tail(64)
			}
		}
	}()
	const workers, per = 4, 500
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < per; i++ {
				ctx, s := tr.StartSpan(context.Background(), "bench", "op")
				_, c := tr.StartSpan(ctx, "bench", "inner")
				c.End()
				s.End()
			}
		}()
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := tr.pos.Load(); got != workers*per*2 {
		t.Errorf("recorded %d spans, want %d", got, workers*per*2)
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer()
	tr.SetSampleN(1)
	for i := 0; i < 3; i++ {
		_, s := tr.StartSpan(context.Background(), "http", "stats")
		s.End()
	}
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?n=2", nil))
	var body struct {
		SampleN int64        `json:"sample_n"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rr.Body.String())
	}
	if body.SampleN != 1 || len(body.Spans) != 2 {
		t.Errorf("got sample_n=%d spans=%d, want 1 and 2", body.SampleN, len(body.Spans))
	}
}

// TestUnsampledStartSpanAllocFree pins the tentpole contract: a
// sampled-out StartSpan performs no allocation.
func TestUnsampledStartSpanAllocFree(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		c, s := tr.StartSpan(ctx, "http", "lineage")
		s.End()
		_ = c
	}); n != 0 {
		t.Errorf("unsampled StartSpan allocates: %v allocs/op", n)
	}
	tr.SetSampleN(2) // every other request unsampled
	if n := testing.AllocsPerRun(200, func() {
		_, s := tr.StartSpan(ctx, "http", "lineage")
		s.End()
	}); n > 2 {
		t.Errorf("sampled spans too expensive: %v allocs/op", n)
	}
}
