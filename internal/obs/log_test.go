package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// capture redirects the log sink for one test.
func capture(t *testing.T) *syncBuffer {
	t.Helper()
	buf := &syncBuffer{}
	prev := SetLogOutput(buf)
	t.Cleanup(func() { SetLogOutput(prev) })
	return buf
}

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var lineRE = regexp.MustCompile(
	`^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z level=(debug|info|warn|error) component=\S+ msg=\S.*$`)

func TestLoggerFormat(t *testing.T) {
	buf := capture(t)
	l := NewLogger("storage")
	l.Info("segment rotated", "segment", 7, "bytes", int64(4096))
	l.Warn("retrying snapshot", "attempt", 2, "err", "disk full: /tmp/x")
	l.Error("journal unavailable", "cause", "fsync: EIO")
	out := strings.TrimRight(buf.String(), "\n")
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !lineRE.MatchString(line) {
			t.Errorf("line not key=value structured: %q", line)
		}
	}
	if !strings.Contains(lines[0], `msg="segment rotated" segment=7 bytes=4096`) {
		t.Errorf("values mis-rendered: %q", lines[0])
	}
	if !strings.Contains(lines[1], `err="disk full: /tmp/x"`) {
		t.Errorf("string with spaces not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[2], "level=error component=storage") {
		t.Errorf("error line mis-tagged: %q", lines[2])
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	buf := capture(t)
	SetLogLevel(LevelWarn)
	t.Cleanup(func() { SetLogLevel(LevelInfo) })
	l := NewLogger("engine")
	l.Debug("noisy")
	l.Info("noisy")
	l.Warn("kept")
	if out := buf.String(); strings.Contains(out, "noisy") || !strings.Contains(out, "kept") {
		t.Errorf("level filter wrong:\n%s", out)
	}
}

func TestLoggerRateLimit(t *testing.T) {
	buf := capture(t)
	l := NewLogger("flood")
	for i := 0; i < 200; i++ {
		l.Info("spam", "i", i)
	}
	// Errors always pass, and report how many lines were shed.
	l.Error("must appear")
	out := buf.String()
	n := strings.Count(out, "msg=spam")
	if n >= 200 {
		t.Errorf("rate limiter let all %d lines through", n)
	}
	if n == 0 {
		t.Error("rate limiter shed everything, burst should pass")
	}
	if !strings.Contains(out, "must appear") {
		t.Error("error line was rate-limited")
	}
	// The next unthrottled line reports the shed count.
	if !strings.Contains(out, "dropped=") {
		t.Errorf("no dropped report:\n%s", out)
	}
}
