// Package obs is the zero-dependency observability subsystem: in-process
// trace spans propagated via context (server → engine → runs → storage),
// hand-rolled Prometheus-text-format metrics, and structured key=value
// logging. Nothing outside the Go standard library; every internal
// package may import it without cycles.
//
// Hot-path discipline: counters and histograms are plain atomics with
// labels fixed at registration (no maps, no allocation per event), and
// tracing has a nil-span no-op fast path so the warm lineage serve
// stays at 0 allocs/op when a request is sampled out. Collector-style
// series (cache hit ratios, label-index sizes, run-store totals) read
// their sources only at scrape time via CounterFunc/GaugeFunc.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry, served by wolvesd at
// GET /metrics.
var Default = NewRegistry()

// DefaultTracer is the process-wide tracer, served by wolvesd at
// GET /debug/traces. Sampling starts off (SetSampleN to enable).
var DefaultTracer = NewTracer()

// StartSpan starts a span on the default tracer. See Tracer.StartSpan
// for the sampling contract.
func StartSpan(ctx context.Context, component, name string) (context.Context, *Span) {
	return DefaultTracer.StartSpan(ctx, component, name)
}

// slowQueryNanos is the slow-query threshold; 0 disables the slow log.
var slowQueryNanos atomic.Int64

// SetSlowQueryThreshold sets the duration above which the server logs a
// request to the slow-query log (0 disables).
func SetSlowQueryThreshold(d time.Duration) { slowQueryNanos.Store(int64(d)) }

// SlowQueryThreshold returns the current threshold (0 = disabled).
func SlowQueryThreshold() time.Duration { return time.Duration(slowQueryNanos.Load()) }

// --- canonical instruments -------------------------------------------------
//
// One handle per instrumented seam, resolved once at package init so
// call sites pay a single atomic op. Collector-backed series (oracle
// cache, label index, run-store totals, health state) are bound at
// wire-up time by the components that own them — see
// server.bindCollectors and cmd/wolvesd.

// HTTP serve path.
var (
	// MHTTPLatency observes wall time per served request, all routes.
	MHTTPLatency = Default.Histogram("wolves_http_request_seconds",
		"HTTP request latency in seconds, all routes.", LatencyBuckets)
	// MSlowQueries counts requests over the slow-query threshold.
	MSlowQueries = Default.Counter("wolves_slow_queries_total",
		"Requests slower than the -slow-query threshold.")
)

// Lineage read path (internal/runs).
var (
	// MLineageQueries counts lineage queries by answer level.
	MLineageQueries = Default.CounterVec("wolves_lineage_queries_total",
		"Lineage queries served, by answer level.", "level",
		"exact", "view", "audited")
	// MLineageLatency observes lineage serve latency by answer level.
	MLineageLatency = Default.HistogramVec("wolves_lineage_latency_seconds",
		"Lineage query latency in seconds, by answer level.",
		"level", LatencyBuckets, "exact", "view", "audited")
	// MLineageDriftRetries counts label-path retries after an epoch moved
	// mid-answer.
	MLineageDriftRetries = Default.Counter("wolves_lineage_drift_retries_total",
		"Label-indexed lineage attempts retried because the epoch moved mid-answer.")
	// MLineageFallbacks counts queries that fell back to the locked
	// closure-row path after exhausting label-path retries.
	MLineageFallbacks = Default.Counter("wolves_lineage_fallbacks_total",
		"Lineage queries answered by the locked closure-row fallback after label-path retries were exhausted.")
)

// Ingest write path (internal/runs).
var (
	// MIngestRuns counts runs admitted into the store.
	MIngestRuns = Default.Counter("wolves_ingest_runs_total",
		"Run documents ingested.")
	// MIngestLatency observes per-document ingest latency (decode,
	// validate, intern, insert, journal).
	MIngestLatency = Default.Histogram("wolves_ingest_latency_seconds",
		"Run ingest latency in seconds per document.", LatencyBuckets)
)

// Epoch/label-index seam (internal/engine).
var (
	// MEpochPublishes counts read-epoch publications.
	MEpochPublishes = Default.Counter("wolves_epoch_publishes_total",
		"Read-epoch publications (one per applied mutation batch or view change).")
	// MAuditCacheHits / MAuditCacheMisses track the per-view audit cache.
	MAuditCacheHits = Default.Counter("wolves_audit_cache_hits_total",
		"Audited-lineage delta lookups served from the epoch's cached audit.")
	MAuditCacheMisses = Default.Counter("wolves_audit_cache_misses_total",
		"Audited-lineage delta lookups that built the audit under lock.")
)

// WAL write path (internal/storage).
var (
	// MWALAppends counts records appended to the WAL.
	MWALAppends = Default.Counter("wolves_wal_appends_total",
		"Records appended to the write-ahead log.")
	// MWALAppendBytes counts bytes appended to the WAL.
	MWALAppendBytes = Default.Counter("wolves_wal_append_bytes_total",
		"Bytes appended to the write-ahead log.")
	// MWALFsyncs counts fsyncs on the active segment.
	MWALFsyncs = Default.Counter("wolves_wal_fsyncs_total",
		"fsync calls on the active WAL segment.")
	// MWALGroupCommit observes records made durable per group-commit
	// fsync (leader batches).
	MWALGroupCommit = Default.Histogram("wolves_wal_group_commit_batch",
		"Records made durable per group-commit fsync.", SizeBuckets)
	// MWALRotations counts segment rotations.
	MWALRotations = Default.Counter("wolves_wal_rotations_total",
		"WAL segment rotations.")
)

// Snapshot/checkpoint path (internal/storage).
var (
	// MSnapshotPublishes counts snapshot documents published.
	MSnapshotPublishes = Default.Counter("wolves_snapshot_publishes_total",
		"Snapshot documents published.")
	// MSnapshotBytes counts snapshot bytes written.
	MSnapshotBytes = Default.Counter("wolves_snapshot_bytes_total",
		"Snapshot bytes written.")
	// MSnapshotRetries counts snapshot write attempts that failed and
	// were retried.
	MSnapshotRetries = Default.Counter("wolves_snapshot_retries_total",
		"Snapshot write attempts retried after a fault.")
)

// Recovery path (internal/storage).
var (
	// MRecoveryRecords counts WAL records replayed at boot.
	MRecoveryRecords = Default.Counter("wolves_recovery_records_replayed_total",
		"WAL records replayed during recovery.")
	// MRecoveryRuns counts run documents restored at boot.
	MRecoveryRuns = Default.Counter("wolves_recovery_runs_total",
		"Run documents restored during recovery.")
	// MRecoverySeconds gauges the wall time of the last recovery.
	MRecoverySeconds = Default.Gauge("wolves_recovery_wall_millis",
		"Wall-clock milliseconds of the last recovery replay.")
)

// Health state machine (internal/engine).
var (
	// MHealthTransitions counts state-machine transitions by target
	// state.
	MHealthTransitions = Default.CounterVec("wolves_health_transitions_total",
		"Health state transitions, by target state.", "state",
		"degraded", "probing", "healthy")
)

func init() {
	DefaultTracer.sampled = Default.Counter("wolves_trace_spans_total",
		"Trace spans recorded (sampled in).")
}
