package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one fixed name/value pair attached to a series at
// registration time. Labels are resolved when the instrument is
// created, never on the hot path — there is no per-observation label
// lookup anywhere in this package.
type Label struct {
	Name, Value string
}

// maxSeries caps the number of series one family may hold. Every label
// set in this package is fixed at registration, so hitting the cap is
// a programming error (someone tried to mint per-request or
// per-workflow-ID series), not an operational event.
const maxSeries = 256

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge. All methods are safe for concurrent use
// and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 updated by CAS, for histogram sums.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bucket bounds are set at
// registration; Observe is a linear scan over ≤ ~16 bounds plus two
// atomic adds — no locks, no maps, no allocation.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, per-bucket (cumulated at scrape)
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// LatencyBuckets is the default bound set for request/query latency
// histograms, in seconds: 50µs … 2.5s.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets is the default bound set for batch-size histograms
// (group-commit batches, ingest batches): powers of two, 1 … 512.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// CounterVec is a counter family over one label with a fixed value
// set. With on an undeclared value returns the overflow child (label
// value "other") instead of minting a new series — the cardinality
// guard that keeps per-workflow or per-run IDs out of /metrics.
type CounterVec struct {
	values   []string
	counters []*Counter
	other    *Counter
}

// With returns the child counter for value, or the overflow child when
// value was not declared at registration.
func (v *CounterVec) With(value string) *Counter {
	for i, s := range v.values {
		if s == value {
			return v.counters[i]
		}
	}
	return v.other
}

// HistogramVec is a histogram family over one label with a fixed value
// set, with the same overflow behavior as CounterVec.
type HistogramVec struct {
	values []string
	hists  []*Histogram
	other  *Histogram
}

// With returns the child histogram for value, or the overflow child.
func (v *HistogramVec) With(value string) *Histogram {
	for i, s := range v.values {
		if s == value {
			return v.hists[i]
		}
	}
	return v.other
}

// series is one exposition line source inside a family.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	write  func(w *bufio.Writer, name, labels string)
}

// family is one named metric with HELP/TYPE and its series.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration (typically package init or process
// wire-up) takes a lock; reads on the hot path never touch the
// registry — instruments are plain structs updated with atomics.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help, typ string) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic("obs: metric " + name + " re-registered as " + typ + ", was " + f.typ)
	}
	return f
}

// addSeries appends (or, for collector rebinding, replaces) a series.
func (f *family) addSeries(s *series, replace bool) {
	for i, old := range f.series {
		if old.labels == s.labels {
			if replace {
				f.series[i] = s
				return
			}
			panic("obs: duplicate series " + f.name + s.labels)
		}
	}
	if len(f.series) >= maxSeries {
		panic("obs: series cardinality cap exceeded for " + f.name +
			" — label values must be fixed, not per-entity")
	}
	f.series = append(f.series, s)
}

// renderLabels renders a label set deterministically (sorted by name).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	out := "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return out + "}"
}

func escapeLabel(v string) string {
	// Backslash, double quote and newline must be escaped per the
	// exposition format.
	var b []byte
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return string(b)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	f.addSeries(&series{labels: renderLabels(labels), write: func(w *bufio.Writer, name, ls string) {
		w.WriteString(name)
		w.WriteString(ls)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(c.Value(), 10))
		w.WriteByte('\n')
	}}, false)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for counters already maintained elsewhere (cache hit
// totals, run-store ingest totals). Rebinding the same name+labels
// replaces the previous function, so a restarted component (or a test
// constructing a second server) re-points the series instead of
// panicking.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	f.addSeries(&series{labels: renderLabels(labels), write: func(w *bufio.Writer, name, ls string) {
		w.WriteString(name)
		w.WriteString(ls)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(fn(), 10))
		w.WriteByte('\n')
	}}, true)
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge")
	f.addSeries(&series{labels: renderLabels(labels), write: func(w *bufio.Writer, name, ls string) {
		w.WriteString(name)
		w.WriteString(ls)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(g.Value(), 10))
		w.WriteByte('\n')
	}}, false)
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time. Same rebinding semantics as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge")
	f.addSeries(&series{labels: renderLabels(labels), write: func(w *bufio.Writer, name, ls string) {
		w.WriteString(name)
		w.WriteString(ls)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatFloat(fn(), 'g', -1, 64))
		w.WriteByte('\n')
	}}, true)
}

// Histogram registers and returns a histogram series with the given
// ascending bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds not ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "histogram")
	f.addSeries(&series{labels: renderLabels(labels), write: func(w *bufio.Writer, name, ls string) {
		writeHistogram(w, name, ls, h)
	}}, false)
	return h
}

// writeHistogram renders one histogram series: cumulative buckets with
// the le label merged into the pre-rendered label set, then sum and
// count.
func writeHistogram(w *bufio.Writer, name, ls string, h *Histogram) {
	// ls is `` or `{a="b"}`; splice le before the closing brace.
	open := "{"
	if ls != "" {
		open = ls[:len(ls)-1] + ","
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		w.WriteString(name)
		w.WriteString("_bucket")
		w.WriteString(open)
		w.WriteString(`le="`)
		if i < len(h.bounds) {
			w.WriteString(strconv.FormatFloat(h.bounds[i], 'g', -1, 64))
		} else {
			w.WriteString("+Inf")
		}
		w.WriteString(`"} `)
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
	}
	w.WriteString(name)
	w.WriteString("_sum")
	w.WriteString(ls)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	w.WriteByte('\n')
	w.WriteString(name)
	w.WriteString("_count")
	w.WriteString(ls)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
}

// CounterVec registers a counter family over one label with the given
// fixed value set, plus an overflow child labeled "other".
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	v := &CounterVec{values: append([]string(nil), values...)}
	for _, val := range values {
		v.counters = append(v.counters, r.Counter(name, help, Label{label, val}))
	}
	v.other = r.Counter(name, help, Label{label, "other"})
	return v
}

// HistogramVec registers a histogram family over one label with the
// given fixed value set, plus an overflow child labeled "other".
func (r *Registry) HistogramVec(name, help, label string, bounds []float64, values ...string) *HistogramVec {
	v := &HistogramVec{values: append([]string(nil), values...)}
	for _, val := range values {
		v.hists = append(v.hists, r.Histogram(name, help, bounds, Label{label, val}))
	}
	v.other = r.Histogram(name, help, bounds, Label{label, "other"})
	return v
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range ss {
			s.write(bw, f.name, s.labels)
		}
	}
	return bw.Flush()
}

// Handler serves the registry at GET /metrics in text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Too late for a status change; the connection is toast anyway.
			return
		}
	})
}
