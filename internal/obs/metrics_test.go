package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: a value equal to
// a bound lands in that bucket (le is ≤), one past it lands in the
// next, and everything beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "t", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 5, 6, 100} {
		h.Observe(v)
	}
	// counts per raw bucket: ≤1: {0.5, 1} = 2; (1,2]: {1.0000001, 2} = 2;
	// (2,5]: {3, 5} = 2; +Inf: {6, 100} = 2.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count: got %d want 8", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+3+5+6+100; got != want {
		t.Errorf("sum: got %v want %v", got, want)
	}
	// Exposition must be cumulative and end with _count == total.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`test_hist_bucket{le="1"} 2`,
		`test_hist_bucket{le="2"} 4`,
		`test_hist_bucket{le="5"} 6`,
		`test_hist_bucket{le="+Inf"} 8`,
		`test_hist_count 8`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestCounterMonotonicUnderConcurrency hammers one counter and one
// histogram from many goroutines; totals must be exact (run under
// -race in CI).
func TestCounterMonotonicUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ctr", "t")
	h := r.Histogram("test_lat", "t", LatencyBuckets)
	g := r.Gauge("test_g", "t")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 0.001)
				g.Add(1)
				if v := c.Value(); v < last {
					t.Errorf("counter went backwards: %d after %d", v, last)
					return
				} else {
					last = v
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter: got %d want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count: got %d want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge: got %d want %d", g.Value(), workers*per)
	}
}

// expositionLine matches one sample line of the text format.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// TestExpositionFormatParses renders a registry exercising every
// instrument kind and validates each line against the text exposition
// grammar, plus histogram internal consistency.
func TestExpositionFormatParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("wolves_a_total", "a counter").Add(3)
	r.Gauge("wolves_b", "a gauge", Label{"shard", "s0"}).Set(-2)
	r.GaugeFunc("wolves_c", "a gauge func", func() float64 { return 1.5 })
	r.CounterFunc("wolves_d_total", "a counter func", func() uint64 { return 9 })
	h := r.Histogram("wolves_e_seconds", "a histogram", []float64{0.1, 1}, Label{"kind", "x"})
	h.Observe(0.05)
	h.Observe(10)
	v := r.CounterVec("wolves_f_total", "a vec", "level", "exact", "view")
	v.With("exact").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	types := map[string]string{}
	var samples int
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Errorf("bad type %q in %q", parts[1], line)
			}
			if _, dup := types[parts[0]]; dup {
				t.Errorf("duplicate TYPE for %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not parse as exposition sample: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}
	// Histogram internal consistency: cumulative buckets, count matches.
	var prev, inf uint64
	for _, line := range lines {
		if !strings.HasPrefix(line, "wolves_e_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev, inf = n, n
	}
	if inf != 2 {
		t.Errorf("+Inf bucket: got %d want 2", inf)
	}
}

// TestLabelCardinalityGuard pins the two guards against unbounded
// series: an undeclared vec value collapses into the "other" child
// instead of minting a series, and direct registration past the series
// cap panics (so a per-workflow-ID label blows up in tests, not in
// production memory).
func TestLabelCardinalityGuard(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_vec_total", "t", "level", "exact", "view")
	v.With("exact").Inc()
	// Undeclared values — as a per-workflow-ID label would be — all
	// collapse into the one overflow child.
	for i := 0; i < 1000; i++ {
		v.With("wf-" + strconv.Itoa(i)).Inc()
	}
	if got := v.With("definitely-not-declared").Value(); got != 1000 {
		t.Errorf("overflow child: got %d want 1000", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "test_vec_total{"); n != 3 {
		t.Errorf("series count: got %d want 3 (exact, view, other):\n%s", n, buf.String())
	}
	if strings.Contains(buf.String(), "wf-") {
		t.Error("per-entity label value leaked into exposition")
	}
	// Unbounded direct registration must panic at the cap.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic past the series cardinality cap")
			}
		}()
		for i := 0; ; i++ {
			r.Counter("test_capped_total", "t", Label{"id", strconv.Itoa(i)})
		}
	}()
	// Duplicate registration of the same series is a programming error.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate series")
			}
		}()
		r.Counter("test_vec_total", "t", Label{"level", "exact"})
	}()
	// Collector rebinding, by contrast, replaces: a second server in the
	// same process re-points the series.
	r.GaugeFunc("test_collector", "t", func() float64 { return 1 })
	r.GaugeFunc("test_collector", "t", func() float64 { return 2 })
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_collector 2\n") {
		t.Errorf("rebind did not replace collector:\n%s", buf.String())
	}
}

// TestObserveAllocFree pins the hot-path contract: counter increments
// and histogram observations allocate nothing.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_alloc_total", "t")
	h := r.Histogram("test_alloc_seconds", "t", LatencyBuckets)
	v := r.CounterVec("test_alloc_vec_total", "t", "level", "exact", "view", "audited")
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		h.Observe(0.003)
		v.With("audited").Inc()
	}); n != 0 {
		t.Errorf("hot-path metrics allocate: %v allocs/op", n)
	}
}
