package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Structured leveled logging: key=value lines, component-scoped,
// rate-limited. This replaces raw log.Printf across the daemon and the
// library packages (machine-checked by the obsseam analyzer): every
// line carries ts, level, component and msg, and high-frequency
// callers cannot flood the sink — each logger holds a token bucket and
// reports how many lines it dropped once the flood ebbs.
//
// Errors bypass the rate limit: a line that explains why the store
// degraded must never be the one that was shed.

// Level orders log severities.
type Level int32

// Log levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// logSink is the shared output: one mutex so concurrent components
// interleave whole lines, never bytes.
var logSink struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

func init() {
	logSink.w = os.Stderr
	logSink.min.Store(int32(LevelInfo))
}

// SetLogOutput redirects every logger's output (tests, or a log file).
// It returns the previous writer.
func SetLogOutput(w io.Writer) io.Writer {
	logSink.mu.Lock()
	defer logSink.mu.Unlock()
	prev := logSink.w
	logSink.w = w
	return prev
}

// SetLogLevel sets the global minimum level.
func SetLogLevel(l Level) { logSink.min.Store(int32(l)) }

// ParseLevel resolves a level name as written on a -log-level flag.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// Logger emits key=value lines for one component. The zero value is
// unusable; create with NewLogger.
type Logger struct {
	component string

	// Token bucket: capacity burst, refilled ratePerSec per second.
	// Guarded by mu; logging is off the request hot path.
	mu         sync.Mutex
	tokens     float64
	burst      float64
	ratePerSec float64
	last       time.Time
	dropped    uint64
}

// NewLogger returns a logger scoped to component, allowing a burst of
// 32 lines refilled at 16 lines/second.
func NewLogger(component string) *Logger {
	return &Logger{
		component:  component,
		tokens:     32,
		burst:      32,
		ratePerSec: 16,
		last:       time.Now(),
	}
}

// allow takes one token; errors always pass (and, like any allowed
// line, harvest the pending dropped count).
func (l *Logger) allow(level Level) (ok bool, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.ratePerSec
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens < 1 && level < LevelError {
		l.dropped++
		return false, 0
	}
	if l.tokens >= 1 {
		l.tokens--
	}
	dropped = l.dropped
	l.dropped = 0
	return true, dropped
}

// Debug logs at debug level. kv alternates key, value.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level. kv alternates key, value.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level. kv alternates key, value.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level — never rate-limited. kv alternates key,
// value.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if int32(level) < logSink.min.Load() {
		return
	}
	ok, dropped := l.allow(level)
	if !ok {
		return
	}
	b := make([]byte, 0, 160)
	b = time.Now().UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
	b = append(b, " level="...)
	b = append(b, level.String()...)
	b = append(b, " component="...)
	b = append(b, l.component...)
	b = append(b, " msg="...)
	b = appendValue(b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		b = appendValue(b, kv[i+1])
	}
	if dropped > 0 {
		b = append(b, " dropped="...)
		b = strconv.AppendUint(b, dropped, 10)
	}
	b = append(b, '\n')
	logSink.mu.Lock()
	_, _ = logSink.w.Write(b)
	logSink.mu.Unlock()
}

// appendValue renders one value, quoting strings that contain spaces,
// quotes or '=' so lines stay machine-parseable.
func appendValue(b []byte, v any) []byte {
	var s string
	switch v := v.(type) {
	case string:
		s = v
	case error:
		s = v.Error()
	case int:
		return strconv.AppendInt(b, int64(v), 10)
	case int64:
		return strconv.AppendInt(b, v, 10)
	case uint64:
		return strconv.AppendUint(b, v, 10)
	case bool:
		return strconv.AppendBool(b, v)
	case time.Duration:
		return append(b, v.String()...)
	default:
		s = fmt.Sprint(v)
	}
	if needsQuote(s) {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == ' ' || c == '"' || c == '=' || c < 0x20:
			return true
		}
	}
	return false
}
