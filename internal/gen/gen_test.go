package gen

import (
	"testing"

	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

func TestLayeredDeterministicAndValid(t *testing.T) {
	cfg := LayeredConfig{Name: "l", Tasks: 60, Layers: 6, EdgeProb: 0.3, SkipProb: 0.05, Seed: 9}
	a := Layered(cfg)
	b := Layered(cfg)
	if a.N() != 60 || a.M() == 0 {
		t.Fatalf("layered shape: %v", a)
	}
	if a.M() != b.M() {
		t.Fatal("generator must be deterministic under a fixed seed")
	}
	// Every non-layer-0 task has a predecessor.
	g := a.Graph()
	for i := 0; i < a.N(); i++ {
		if a.Task(i).Kind != "layer0" && g.InDeg(i) == 0 {
			t.Fatalf("task %d (kind %s) has no predecessor", i, a.Task(i).Kind)
		}
	}
	// Degenerate configs are clamped, not fatal.
	small := Layered(LayeredConfig{Name: "s", Tasks: 3, Layers: 99, Seed: 1})
	if small.N() != 3 {
		t.Fatal("clamping failed")
	}
}

func TestSeriesParallel(t *testing.T) {
	wf := SeriesParallel(SPConfig{Name: "sp", Depth: 3, MaxBranch: 3, Seed: 4})
	if wf.N() < 4 {
		t.Fatalf("too small: %v", wf)
	}
	if !wf.Graph().IsAcyclic() {
		t.Fatal("must be acyclic")
	}
	wf2 := SeriesParallel(SPConfig{Name: "sp", Depth: 3, MaxBranch: 3, Seed: 4})
	if wf.N() != wf2.N() || wf.M() != wf2.M() {
		t.Fatal("must be deterministic")
	}
}

func TestScientificPipeline(t *testing.T) {
	wf := ScientificPipeline(PipelineConfig{
		Name: "sci", Branches: 3, ChainLen: 4, SideChains: 2, SideChainLen: 3, Seed: 1,
	})
	// fetch, split, merge, render + 3*4 + 2*3 = 22.
	if wf.N() != 22 {
		t.Fatalf("N = %d, want 22", wf.N())
	}
	if got := wf.Sources(); len(got) != 3 { // fetch + 2 side chains
		t.Fatalf("sources = %v", got)
	}
	mv := ModuleView(wf, "stages")
	// fetch, merge, render, branch0..2, annot0..1 = 8 composites.
	if mv.N() != 8 {
		t.Fatalf("module view composites = %d", mv.N())
	}
}

func TestIntervalAndRandomViews(t *testing.T) {
	wf := Layered(LayeredConfig{Name: "l", Tasks: 40, Layers: 5, EdgeProb: 0.4, Seed: 2})
	iv := IntervalView(wf, 5, "iv")
	if iv.N() != 5 {
		t.Fatalf("interval composites = %d", iv.N())
	}
	rv := RandomView(wf, 7, 3, "rv")
	if rv.N() != 7 {
		t.Fatalf("random composites = %d", rv.N())
	}
	rv2 := RandomView(wf, 7, 3, "rv")
	for i := 0; i < wf.N(); i++ {
		if rv.CompOf(i) != rv2.CompOf(i) {
			t.Fatal("random view must be deterministic under a fixed seed")
		}
	}
	// Clamps.
	if IntervalView(wf, 0, "x").N() != 1 || IntervalView(wf, 999, "x").N() != wf.N() {
		t.Fatal("interval clamps wrong")
	}
}

func TestBitonStyleView(t *testing.T) {
	wf := ScientificPipeline(PipelineConfig{Name: "sci", Branches: 2, ChainLen: 3, SideChains: 1, SideChainLen: 2})
	v, err := BitonStyleView(wf, []string{"merge", "b0_s1"}, "user")
	if err != nil {
		t.Fatal(err)
	}
	// Relevant tasks anchor their own composites.
	cm := v.CompOf(wf.MustIndex("merge"))
	cb := v.CompOf(wf.MustIndex("b0_s1"))
	if cm == cb {
		t.Fatal("relevant tasks must be in distinct composites")
	}
	if v.Composite(cm).Size() != 1 {
		// merge anchors a fresh composite, but later tasks may join it.
		// Its first member must be merge itself or a descendant.
		found := false
		for _, m := range v.Composite(cm).Members() {
			if wf.Task(m).ID == "merge" {
				found = true
			}
		}
		if !found {
			t.Fatal("merge lost its composite")
		}
	}
	if _, err := BitonStyleView(wf, []string{"ghost"}, "user"); err == nil {
		t.Fatal("unknown relevant task must error")
	}
}

func TestInjectUnsound(t *testing.T) {
	wf := ScientificPipeline(PipelineConfig{Name: "sci", Branches: 3, ChainLen: 3, SideChains: 2, SideChainLen: 2})
	base := view.Atomic(wf)
	v := InjectUnsound(base, 10, 5)
	if v.N() != base.N()-10 {
		t.Fatalf("composites = %d, want %d", v.N(), base.N()-10)
	}
}

func TestUnsoundTaskGuarantee(t *testing.T) {
	for _, n := range []int{2, 3, 6, 12, 24, 48} {
		for seed := int64(0); seed < 4; seed++ {
			wf, members := UnsoundTask(n, seed)
			if len(members) != n {
				t.Fatalf("n=%d seed=%d: got %d members", n, seed, len(members))
			}
			o := soundness.NewOracle(wf)
			if ok, _ := o.SoundSlice(members); ok {
				t.Fatalf("n=%d seed=%d: generated task is sound", n, seed)
			}
		}
	}
	// Determinism.
	a, am := UnsoundTask(10, 7)
	b, bm := UnsoundTask(10, 7)
	if a.N() != b.N() || a.M() != b.M() || len(am) != len(bm) {
		t.Fatal("UnsoundTask must be deterministic")
	}
}

func TestBicliqueTask(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		wf, members := BicliqueTask(k)
		if len(members) != 2*k+8 {
			t.Fatalf("k=%d: members = %d, want %d", k, len(members), 2*k+8)
		}
		o := soundness.NewOracle(wf)
		if ok, _ := o.SoundSlice(members); ok {
			t.Fatalf("k=%d: composite must be unsound", k)
		}
		// The k×k biclique itself is a sound block.
		var bic []int
		for i := 0; i < k; i++ {
			bic = append(bic, wf.MustIndex("u"+string(rune('0'+i))))
			bic = append(bic, wf.MustIndex("v"+string(rune('0'+i))))
		}
		if ok, viol := o.SoundSlice(bic); !ok {
			t.Fatalf("k=%d: biclique block unsound: %v", k, viol)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k<2 must panic")
			}
		}()
		BicliqueTask(1)
	}()
}

func TestModuleViewCoversEverything(t *testing.T) {
	wf, err := workflow.NewBuilder("k").
		AddTask("a").AddTask("b", workflow.WithKind("x")).
		AddEdge("a", "b").Build()
	if err != nil {
		t.Fatal(err)
	}
	v := ModuleView(wf, "m")
	if v.N() != 2 {
		t.Fatalf("composites = %d", v.N())
	}
	if _, ok := v.CompositeByID("m:misc"); !ok {
		t.Fatal("kindless tasks must land in m:misc")
	}
}
