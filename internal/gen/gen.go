// Package gen generates synthetic workflows and views. It is the
// repository substitute demanded by the reproduction: the paper
// evaluated on Kepler [1] and myExperiment [5] workflows and on views
// auto-constructed by Biton et al. [2]; none of those artifacts are
// available, so gen produces workloads in the same structural regimes
// (layered dataflow graphs, series-parallel pipelines, motif-based
// scientific pipelines) plus view constructors that — like the real
// tools — do not guarantee soundness. Everything is deterministic under
// a caller-supplied seed.
package gen

import (
	"fmt"
	"math/rand"

	"wolves/internal/workflow"
)

// LayeredConfig parameterizes a layered random DAG, the shape of most
// scientific dataflow programs.
type LayeredConfig struct {
	Name     string
	Tasks    int
	Layers   int
	EdgeProb float64 // probability of an edge between adjacent layers
	SkipProb float64 // probability of a layer-skipping edge
	Seed     int64
}

// Layered builds a layered random workflow. Every non-first-layer task
// is guaranteed at least one predecessor, so the graph has no stray
// sources beyond layer 0.
func Layered(cfg LayeredConfig) *workflow.Workflow {
	if cfg.Tasks < 1 {
		panic("gen: Tasks must be positive")
	}
	if cfg.Layers < 1 {
		cfg.Layers = 1
	}
	if cfg.Layers > cfg.Tasks {
		cfg.Layers = cfg.Tasks
	}
	if cfg.EdgeProb <= 0 {
		cfg.EdgeProb = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := workflow.NewBuilder(cfg.Name)
	layerOf := make([]int, cfg.Tasks)
	ids := make([]string, cfg.Tasks)
	// Distribute tasks over layers round-robin, then shuffle sizes a bit.
	for i := 0; i < cfg.Tasks; i++ {
		ids[i] = fmt.Sprintf("t%d", i)
		layerOf[i] = i * cfg.Layers / cfg.Tasks
		b.AddTask(ids[i], workflow.WithKind(fmt.Sprintf("layer%d", layerOf[i])))
	}
	var layers [][]int
	layers = make([][]int, cfg.Layers)
	for i, l := range layerOf {
		layers[l] = append(layers[l], i)
	}
	for l := 1; l < cfg.Layers; l++ {
		for _, t := range layers[l] {
			connected := false
			for _, p := range layers[l-1] {
				if rng.Float64() < cfg.EdgeProb {
					b.AddEdge(ids[p], ids[t])
					connected = true
				}
			}
			if !connected {
				p := layers[l-1][rng.Intn(len(layers[l-1]))]
				b.AddEdge(ids[p], ids[t])
			}
			if cfg.SkipProb > 0 && l >= 2 {
				for back := 2; back <= l; back++ {
					for _, p := range layers[l-back] {
						if rng.Float64() < cfg.SkipProb {
							b.AddEdge(ids[p], ids[t])
						}
					}
				}
			}
		}
	}
	wf, err := b.Build()
	if err != nil {
		panic("gen: layered workflow must build: " + err.Error())
	}
	return wf
}

// SPConfig parameterizes a series-parallel workflow.
type SPConfig struct {
	Name      string
	Depth     int // recursion depth
	MaxBranch int // max parallel branches per split
	Seed      int64
}

// SeriesParallel builds a series-parallel workflow by recursive
// expansion: a segment is either a chain, or a split into parallel
// segments that re-join.
func SeriesParallel(cfg SPConfig) *workflow.Workflow {
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if cfg.MaxBranch < 2 {
		cfg.MaxBranch = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := workflow.NewBuilder(cfg.Name)
	counter := 0
	newTask := func(kind string) string {
		id := fmt.Sprintf("t%d", counter)
		counter++
		b.AddTask(id, workflow.WithKind(kind))
		return id
	}
	// expand returns (entry, exit) of the generated segment. The root
	// always expands to a split so the workflow has parallel structure.
	var expand func(depth int) (string, string)
	expand = func(depth int) (string, string) {
		if depth == 0 || (depth < cfg.Depth && rng.Float64() < 0.3) {
			// Chain of 1–3 tasks.
			n := 1 + rng.Intn(3)
			first := newTask("chain")
			prev := first
			for i := 1; i < n; i++ {
				next := newTask("chain")
				b.AddEdge(prev, next)
				prev = next
			}
			return first, prev
		}
		split := newTask("split")
		join := newTask("join")
		branches := 2 + rng.Intn(cfg.MaxBranch-1)
		for i := 0; i < branches; i++ {
			en, ex := expand(depth - 1)
			b.AddEdge(split, en)
			b.AddEdge(ex, join)
		}
		return split, join
	}
	en, ex := expand(cfg.Depth)
	_ = en
	_ = ex
	wf, err := b.Build()
	if err != nil {
		panic("gen: series-parallel workflow must build: " + err.Error())
	}
	return wf
}

// PipelineConfig parameterizes a Kepler-style scientific pipeline:
// fetch → split → per-branch processing chains → merge → render, with
// optional side-annotation chains joining at the merge (the Figure 1
// shape, scaled).
type PipelineConfig struct {
	Name         string
	Branches     int // parallel processing branches
	ChainLen     int // tasks per branch chain
	SideChains   int // independent annotation chains entering the merge
	SideChainLen int
	Seed         int64
}

// ScientificPipeline builds the motif workflow. Task kinds name their
// stage, so ModuleView can group by stage.
func ScientificPipeline(cfg PipelineConfig) *workflow.Workflow {
	if cfg.Branches < 1 {
		cfg.Branches = 2
	}
	if cfg.ChainLen < 1 {
		cfg.ChainLen = 2
	}
	if cfg.SideChainLen < 1 {
		cfg.SideChainLen = 2
	}
	b := workflow.NewBuilder(cfg.Name)
	b.AddTask("fetch", workflow.WithKind("fetch"))
	b.AddTask("split", workflow.WithKind("fetch"))
	b.AddEdge("fetch", "split")
	b.AddTask("merge", workflow.WithKind("merge"))
	b.AddTask("render", workflow.WithKind("render"))
	b.AddEdge("merge", "render")
	for br := 0; br < cfg.Branches; br++ {
		prev := "split"
		for s := 0; s < cfg.ChainLen; s++ {
			id := fmt.Sprintf("b%d_s%d", br, s)
			b.AddTask(id, workflow.WithKind(fmt.Sprintf("branch%d", br)))
			b.AddEdge(prev, id)
			prev = id
		}
		b.AddEdge(prev, "merge")
	}
	for sc := 0; sc < cfg.SideChains; sc++ {
		prev := ""
		for s := 0; s < cfg.SideChainLen; s++ {
			id := fmt.Sprintf("a%d_s%d", sc, s)
			b.AddTask(id, workflow.WithKind(fmt.Sprintf("annot%d", sc)))
			if prev != "" {
				b.AddEdge(prev, id)
			}
			prev = id
		}
		b.AddEdge(prev, "merge")
	}
	wf, err := b.Build()
	if err != nil {
		panic("gen: pipeline workflow must build: " + err.Error())
	}
	return wf
}
