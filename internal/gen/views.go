package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"wolves/internal/view"
	"wolves/internal/workflow"
)

// IntervalView partitions the workflow into k composites of consecutive
// tasks in topological order — the "bands of a pipeline" views experts
// tend to draw. Often (but not always) unsound on graphs with parallel
// structure.
func IntervalView(wf *workflow.Workflow, k int, name string) *view.View {
	if k < 1 {
		k = 1
	}
	if k > wf.N() {
		k = wf.N()
	}
	order, err := wf.Graph().TopoOrder()
	if err != nil {
		panic("gen: workflow must be acyclic")
	}
	part := make([]int, wf.N())
	for pos, t := range order {
		part[t] = pos * k / wf.N()
	}
	v, err := view.FromPartition(wf, name, part)
	if err != nil {
		panic("gen: interval view must build: " + err.Error())
	}
	return v
}

// RandomView assigns tasks to k composites uniformly at random. Random
// partitions of dataflow graphs are almost always unsound — the
// adversarial end of the spectrum.
func RandomView(wf *workflow.Workflow, k int, seed int64, name string) *view.View {
	if k < 1 {
		k = 1
	}
	if k > wf.N() {
		k = wf.N()
	}
	rng := rand.New(rand.NewSource(seed))
	part := make([]int, wf.N())
	for i := 0; i < k; i++ {
		part[i] = i
	}
	for i := k; i < wf.N(); i++ {
		part[i] = rng.Intn(k)
	}
	rng.Shuffle(len(part), func(i, j int) { part[i], part[j] = part[j], part[i] })
	v, err := view.FromPartition(wf, name, part)
	if err != nil {
		panic("gen: random view must build: " + err.Error())
	}
	return v
}

// ModuleView groups tasks by their Kind — the "one composite per stage"
// view a domain expert would define for generator-produced pipelines.
func ModuleView(wf *workflow.Workflow, name string) *view.View {
	groups := map[string][]string{}
	for i := 0; i < wf.N(); i++ {
		t := wf.Task(i)
		kind := t.Kind
		if kind == "" {
			kind = "misc"
		}
		groups[kind] = append(groups[kind], t.ID)
	}
	// view.FromAssignments sorts composite ids for determinism.
	assign := map[string][]string{}
	for kind, ids := range groups {
		assign["m:"+kind] = ids
	}
	v, err := view.FromAssignments(wf, name, assign)
	if err != nil {
		panic("gen: module view must build: " + err.Error())
	}
	return v
}

// BitonStyleView emulates the automatic user-view construction of Biton
// et al. [2]: the user marks relevant tasks; every relevant task anchors
// a composite, and each irrelevant task is absorbed into the composite
// of its first predecessor (or a fresh composite when it has none).
// Like the real tool, the result makes no soundness promise.
func BitonStyleView(wf *workflow.Workflow, relevant []string, name string) (*view.View, error) {
	rel := map[int]bool{}
	for _, id := range relevant {
		i, ok := wf.Index(id)
		if !ok {
			return nil, fmt.Errorf("gen: %w: relevant task %q", workflow.ErrUnknownTask, id)
		}
		rel[i] = true
	}
	order, err := wf.Graph().TopoOrder()
	if err != nil {
		return nil, err
	}
	part := make([]int, wf.N())
	next := 0
	for _, t := range order {
		switch {
		case rel[t]:
			part[t] = next
			next++
		case wf.Graph().InDeg(t) == 0:
			part[t] = next
			next++
		default:
			p := int(wf.Graph().Preds(t)[0])
			part[t] = part[p]
		}
	}
	// Compact block ids.
	remap := map[int]int{}
	for _, b := range part {
		if _, ok := remap[b]; !ok {
			remap[b] = len(remap)
		}
	}
	for i := range part {
		part[i] = remap[part[i]]
	}
	return view.FromPartition(wf, name, part)
}

// InjectUnsound coarsens a view by merging randomly chosen composite
// pairs until at least `merges` merges have happened — the controlled
// unsoundness injector used to build corrector workloads. The result is
// frequently (not provably) unsound; callers validate.
func InjectUnsound(v *view.View, merges int, seed int64) *view.View {
	rng := rand.New(rand.NewSource(seed))
	cur := v
	for m := 0; m < merges && cur.N() >= 2; m++ {
		a := rng.Intn(cur.N())
		b := rng.Intn(cur.N())
		if a == b {
			m--
			continue
		}
		merged, err := cur.MergeComposites(
			fmt.Sprintf("u%d", m),
			cur.Composite(a).ID, cur.Composite(b).ID)
		if err != nil {
			panic("gen: inject merge must succeed: " + err.Error())
		}
		cur = merged
	}
	return cur
}

// BicliqueTask generalizes the paper's Figure 3 instance to a k×k
// biclique: k upper tasks u0..u(k-1) each feed all k lower tasks
// v0..v(k-1); two cross-feeding entry chains fan into the uppers, two
// exit chains drain the lowers, and external context pins every block.
// The weakly local optimal split stalls with all 2k biclique tasks as
// singletons (2k+4 blocks) while the strongly local optimal split merges
// the whole biclique into one sound block (5 blocks) — the Figure 3 gap,
// scaled. Returns the workflow and the composite's member indices.
func BicliqueTask(k int) (*workflow.Workflow, []int) {
	if k < 2 {
		panic("gen: biclique needs k ≥ 2")
	}
	b := workflow.NewBuilder(fmt.Sprintf("biclique-k%d", k))
	var members []string
	add := func(id string) string {
		b.AddTask(id)
		members = append(members, id)
		return id
	}
	// Entry chains a→b and e→h, cross-feeding every upper task.
	add("en1a")
	add("en1b")
	add("en2a")
	add("en2b")
	b.AddEdge("en1a", "en1b")
	b.AddEdge("en2a", "en2b")
	for i := 0; i < k; i++ {
		u := add(fmt.Sprintf("u%d", i))
		b.AddEdge("en1b", u)
		b.AddEdge("en2b", u)
	}
	for j := 0; j < k; j++ {
		v := add(fmt.Sprintf("v%d", j))
		for i := 0; i < k; i++ {
			b.AddEdge(fmt.Sprintf("u%d", i), v)
		}
	}
	// Exit chains i→j and k→m; lane bypasses keep the whole task unsound.
	add("ex1a")
	add("ex1b")
	add("ex2a")
	add("ex2b")
	b.AddEdge("ex1a", "ex1b")
	b.AddEdge("ex2a", "ex2b")
	b.AddEdge("en1b", "ex1a") // lane-1 bypass
	b.AddEdge("en2b", "ex2a") // lane-2 bypass
	for j := 0; j < k; j++ {
		b.AddEdge(fmt.Sprintf("v%d", j), "ex2a")
	}
	// External context (mirrors x1..x4 / y1..y4 of Figure 3).
	for _, e := range [][2]string{
		{"ctx-x1", "en1a"}, {"ctx-x2", "en2a"}, {"ctx-x3", "ex1a"}, {"ctx-x4", "ex2a"},
	} {
		b.AddTask(e[0])
		b.AddEdge(e[0], e[1])
	}
	b.AddTask("ctx-y2")
	b.AddTask("ctx-y3")
	b.AddEdge("ex1b", "ctx-y2")
	b.AddEdge("ex2b", "ctx-y3")
	for j := 0; j < k; j++ {
		yid := fmt.Sprintf("ctx-yv%d", j)
		b.AddTask(yid)
		b.AddEdge(fmt.Sprintf("v%d", j), yid)
	}
	wf, err := b.Build()
	if err != nil {
		panic("gen: biclique workflow must build: " + err.Error())
	}
	idx := make([]int, len(members))
	for i, id := range members {
		idx[i] = wf.MustIndex(id)
	}
	sort.Ints(idx)
	return wf, idx
}

// UnsoundTask generates a workflow embedding one composite task of
// exactly n members that is guaranteed unsound — the instance family of
// the E4 corrector sweeps. The members form a layered random DAG;
// external feeder/drain tasks attach to the borders, and if the random
// structure happens to be sound, an incomparable member pair is wired to
// an extra feeder/drain, which manufactures a Definition-2.3 violation.
// It returns the workflow and the member indices.
func UnsoundTask(n int, seed int64) (*workflow.Workflow, []int) {
	if n < 2 {
		panic("gen: unsound task needs at least 2 members")
	}
	rng := rand.New(rand.NewSource(seed))
	b := workflow.NewBuilder(fmt.Sprintf("unsound-n%d", n))
	ids := make([]string, n)
	layers := 2 + n/6
	if layers > n {
		layers = n
	}
	layerOf := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("m%d", i)
		b.AddTask(ids[i])
		layerOf[i] = i * layers / n
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if layerOf[j] == layerOf[i]+1 && rng.Float64() < 0.4 {
				b.AddEdge(ids[i], ids[j])
			} else if layerOf[j] > layerOf[i] && rng.Float64() < 0.05 {
				b.AddEdge(ids[i], ids[j])
			}
		}
	}
	// External context: feeders into layer 0, drains from the last layer,
	// and sparse mid attachments.
	feeders, drains := 0, 0
	for i := 0; i < n; i++ {
		if layerOf[i] == 0 {
			fid := fmt.Sprintf("x%d", feeders)
			feeders++
			b.AddTask(fid)
			b.AddEdge(fid, ids[i])
		}
		if layerOf[i] == layers-1 {
			did := fmt.Sprintf("y%d", drains)
			drains++
			b.AddTask(did)
			b.AddEdge(ids[i], did)
		} else if rng.Float64() < 0.15 {
			did := fmt.Sprintf("y%d", drains)
			drains++
			b.AddTask(did)
			b.AddEdge(ids[i], did)
		}
	}
	wf, err := b.Build()
	if err != nil {
		panic("gen: unsound-task workflow must build: " + err.Error())
	}
	members := make([]int, n)
	for i, id := range ids {
		members[i] = wf.MustIndex(id)
	}

	// Guarantee unsoundness: find members u, v with no path u→v, then
	// attach a feeder to u and a drain to v.
	reach := wf.Graph().Reachability()
	var bu, bv = -1, -1
	for _, u := range members {
		for _, v := range members {
			if u != v && !reach.Reaches(u, v) && !reach.Reaches(v, u) {
				bu, bv = u, v
				break
			}
		}
		if bu != -1 {
			break
		}
	}
	if bu == -1 {
		// Totally ordered members (tiny n): use the reverse of an edge.
		bu, bv = members[n-1], members[0]
	}
	b2 := workflow.NewBuilder(wf.Name())
	for i := 0; i < wf.N(); i++ {
		t := wf.Task(i)
		b2.AddTask(t.ID, workflow.WithName(t.Name), workflow.WithKind(t.Kind))
	}
	for _, e := range wf.Edges() {
		b2.AddEdge(e[0], e[1])
	}
	b2.AddTask("xforce")
	b2.AddTask("yforce")
	b2.AddEdge("xforce", wf.Task(bu).ID)
	b2.AddEdge(wf.Task(bv).ID, "yforce")
	wf2, err := b2.Build()
	if err != nil {
		panic("gen: forcing unsoundness must not break the DAG: " + err.Error())
	}
	members2 := make([]int, n)
	for i, id := range ids {
		members2[i] = wf2.MustIndex(id)
	}
	sort.Ints(members2)
	return wf2, members2
}
