package gen

import (
	"testing"

	"wolves/internal/view"
)

// sameView compares two views composite-by-composite over member IDs.
func sameView(a, b *view.View) bool {
	if a.N() != b.N() {
		return false
	}
	for i := 0; i < a.N(); i++ {
		am, bm := a.MemberIDs(i), b.MemberIDs(i)
		if len(am) != len(bm) {
			return false
		}
		for j := range am {
			if am[j] != bm[j] {
				return false
			}
		}
	}
	return true
}

// TestRandomViewDeterminism pins the generator contract: the same seed
// produces the identical view, and different seeds (virtually always)
// differ — workload sweeps rely on this for reproducibility.
func TestRandomViewDeterminism(t *testing.T) {
	wf := Layered(LayeredConfig{Tasks: 40, Layers: 5, EdgeProb: 0.4, SkipProb: 0.05, Seed: 3})
	for _, seed := range []int64{0, 1, 42, -7} {
		v1 := RandomView(wf, 8, seed, "rv")
		v2 := RandomView(wf, 8, seed, "rv")
		if !sameView(v1, v2) {
			t.Fatalf("seed %d: two runs produced different views", seed)
		}
	}
	if sameView(RandomView(wf, 8, 1, "rv"), RandomView(wf, 8, 2, "rv")) {
		t.Fatal("seeds 1 and 2 produced the same 8-way partition of 40 tasks")
	}
}
