package storage

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/runs"
	"wolves/internal/storage/vfs"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// testOpts keeps tests fast (no fsync) while still exercising rotation
// and snapshotting aggressively.
func testOpts() Options {
	return Options{Fsync: FsyncNone, SegmentBytes: 16 << 10, SnapshotEvery: 64}
}

// mutationWorkload is a deterministic stream of valid mutations over a
// layered workflow: every candidate edge respects one fixed topological
// order, so any prefix applies cleanly.
type mutationWorkload struct {
	wf         *workflow.Workflow
	candidates [][2]string
}

func newMutationWorkload(t testing.TB, n, pool int, seed int64) *mutationWorkload {
	t.Helper()
	wf := gen.Layered(gen.LayeredConfig{
		Name: fmt.Sprintf("wl-%d", seed), Tasks: n, Layers: 8,
		EdgeProb: 0.2, SkipProb: 0.05, Seed: seed,
	})
	order, err := wf.Graph().TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 31))
	seen := make(map[[2]int]bool, pool)
	cands := make([][2]string, 0, pool)
	for len(cands) < pool {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		u, w := order[i], order[j]
		if seen[[2]int{u, w}] || wf.Graph().HasEdge(u, w) {
			continue
		}
		seen[[2]int{u, w}] = true
		cands = append(cands, [2]string{wf.Task(u).ID, wf.Task(w).ID})
	}
	return &mutationWorkload{wf: wf, candidates: cands}
}

// registerWorkload registers a fresh clone of the workload's workflow
// (each registry takes ownership) with two attached views.
func (w *mutationWorkload) register(t testing.TB, reg *engine.Registry, id string) *engine.LiveWorkflow {
	t.Helper()
	lw, err := reg.Register(id, w.wf.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lw.AttachView("interval", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.IntervalView(wf, 2+wf.N()/8, "interval"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lw.AttachView("random", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.RandomView(wf, 2+wf.N()/5, 7, "random"), nil
	}); err != nil {
		t.Fatal(err)
	}
	return lw
}

// mutation returns the i-th mutation of the stream: usually a small edge
// batch, periodically a task addition wired into the DAG.
func (w *mutationWorkload) mutation(i int) engine.Mutation {
	var m engine.Mutation
	if i%17 == 5 {
		id := fmt.Sprintf("t-extra-%d", i)
		m.Tasks = []workflow.Task{{ID: id, Kind: "extra"}}
		m.Edges = append(m.Edges, [2]string{w.candidates[i%len(w.candidates)][0], id})
		return m
	}
	for k := 0; k < 1+i%3; k++ {
		m.Edges = append(m.Edges, w.candidates[(i*3+k)%len(w.candidates)])
	}
	return m
}

// assertRegistriesEqual deep-compares two registries: IDs, per-workflow
// metadata (version, fingerprint, counts, view order), the canonical
// workflow and view documents, and every maintained report.
func assertRegistriesEqual(t *testing.T, got, want *engine.Registry) {
	t.Helper()
	gotIDs, wantIDs := got.IDs(), want.IDs()
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("workflow IDs diverge: got %v want %v", gotIDs, wantIDs)
	}
	for _, id := range wantIDs {
		glw, err := got.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		wlw, err := want.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		ginfo, err := glw.Info()
		if err != nil {
			t.Fatal(err)
		}
		winfo, err := wlw.Info()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ginfo, winfo) {
			t.Fatalf("workflow %q info diverges:\ngot:  %+v\nwant: %+v", id, ginfo, winfo)
		}
		gdocs, wdocs := stateDocs(t, glw), stateDocs(t, wlw)
		if !reflect.DeepEqual(gdocs, wdocs) {
			t.Fatalf("workflow %q documents diverge:\ngot:  %v\nwant: %v", id, gdocs, wdocs)
		}
		for _, vid := range winfo.Views {
			grep, gver, err := glw.Report(vid)
			if err != nil {
				t.Fatal(err)
			}
			wrep, wver, err := wlw.Report(vid)
			if err != nil {
				t.Fatal(err)
			}
			if gver != wver || !reflect.DeepEqual(grep, wrep) {
				t.Fatalf("workflow %q view %q report diverges (version %d vs %d)", id, vid, gver, wver)
			}
		}
	}
}

// stateDocs renders a live workflow's canonical documents.
func stateDocs(t *testing.T, lw *engine.LiveWorkflow) map[string]string {
	t.Helper()
	docs := make(map[string]string)
	err := lw.State(func(st *engine.LiveState) error {
		raw, err := json.Marshal(st.Workflow)
		if err != nil {
			return err
		}
		docs["workflow"] = string(raw)
		for _, av := range st.Views {
			raw, err := json.Marshal(av.View)
			if err != nil {
				return err
			}
			docs["view:"+av.ID] = string(raw)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

// TestRecoverAfterHardKill is the acceptance scenario: a 1k-mutation
// stream journaled with snapshots and rotation, then a hard kill (the
// store is simply abandoned — no checkpoint, no close), then recovery
// into a fresh registry, which must deep-equal a never-killed reference
// registry that applied the identical stream.
func TestRecoverAfterHardKill(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 96, 2048, 42)

	durable := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	reference := engine.NewRegistry(engine.New())
	dlw := wl.register(t, durable, "phylo")
	rlw := wl.register(t, reference, "phylo")

	for i := 0; i < 1000; i++ {
		m := wl.mutation(i)
		if _, err := dlw.Mutate(m); err != nil {
			t.Fatalf("mutation %d (durable): %v", i, err)
		}
		if _, err := rlw.Mutate(m); err != nil {
			t.Fatalf("mutation %d (reference): %v", i, err)
		}
	}
	// Detach one view late so the detach record replays too.
	if err := dlw.DetachView("random"); err != nil {
		t.Fatal(err)
	}
	if err := rlw.DetachView("random"); err != nil {
		t.Fatal(err)
	}

	// Hard kill: no Checkpoint — Close here only releases the file
	// descriptors and the directory flock, exactly what process death
	// does; the on-disk state is the crash state (no final snapshot, no
	// tail truncation). Reopen the directory cold.
	st.Close()
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	stats, err := st2.Recover(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workflows != 1 {
		t.Fatalf("recovery stats %+v, want 1 workflow", stats)
	}
	assertRegistriesEqual(t, recovered, reference)

	// The recovered store must accept new journaled traffic.
	recoveredLW, err := recovered.Get("phylo")
	if err != nil {
		t.Fatal(err)
	}
	recovered.SetJournal(st2)
	if _, err := recoveredLW.Mutate(wl.mutation(1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := rlw.Mutate(wl.mutation(1000)); err != nil {
		t.Fatal(err)
	}
	assertRegistriesEqual(t, recovered, reference)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointThenRecover: after a graceful checkpoint the WAL is
// compacted down and recovery replays (almost) nothing, yet restores the
// same state.
func TestCheckpointThenRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 64, 1024, 7)
	durable := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	reference := engine.NewRegistry(engine.New())
	dlw := wl.register(t, durable, "wf")
	rlw := wl.register(t, reference, "wf")
	for i := 0; i < 300; i++ {
		if _, err := dlw.Mutate(wl.mutation(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := rlw.Mutate(wl.mutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(durable); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	stats, err := st2.Recover(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 {
		t.Fatalf("post-checkpoint recovery replayed %d records, want 0 (stats %+v)", stats.Replayed, stats)
	}
	assertRegistriesEqual(t, recovered, reference)

	// Checkpoint + snapshot-triggered compaction must actually bound the
	// log: all that survives is the snapshot and the tail segment.
	segs, err := listSegments(vfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("checkpoint left %d segments behind", len(segs))
	}
	st2.Close()
}

// TestDeleteAndReregisterSurviveRestart: deletes are durable, and a
// deleted-then-reregistered ID recovers to the second registration.
func TestDeleteAndReregisterSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl := newMutationWorkload(t, 32, 256, 3)
	lw := wl.register(t, reg, "a")
	if _, err := lw.Mutate(wl.mutation(0)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// Re-register under the same ID with a different workflow shape.
	wf2, err := workflow.NewBuilder("a2").AddTask("x").AddTask("y").Chain("x", "y").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("a", wf2); err != nil {
		t.Fatal(err)
	}
	// Also delete a second workflow entirely.
	wl.register(t, reg, "b")
	if err := reg.Delete("b"); err != nil {
		t.Fatal(err)
	}

	st.Close() // release fds + flock without a checkpoint (crash state)
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	if _, err := st2.Recover(recovered); err != nil {
		t.Fatal(err)
	}
	if ids := recovered.IDs(); !reflect.DeepEqual(ids, []string{"a"}) {
		t.Fatalf("recovered IDs %v, want [a]", ids)
	}
	lw2, err := recovered.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	info, err := lw2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Tasks != 2 || info.Version != 1 {
		t.Fatalf("recovered %+v, want the re-registered 2-task workflow at version 1", info)
	}
	st2.Close()
}

// TestConcurrentJournaledMutations: distinct workflows journal through
// one store concurrently; the log must remain replayable and complete.
func TestConcurrentJournaledMutations(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	durable := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	reference := engine.NewRegistry(engine.New())
	const workers, muts = 4, 60
	workloads := make([]*mutationWorkload, workers)
	for w := 0; w < workers; w++ {
		workloads[w] = newMutationWorkload(t, 48, 512, int64(100+w))
		workloads[w].register(t, durable, fmt.Sprintf("wf-%d", w))
		workloads[w].register(t, reference, fmt.Sprintf("wf-%d", w))
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lw, err := durable.Get(fmt.Sprintf("wf-%d", w))
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < muts; i++ {
				if _, err := lw.Mutate(workloads[w].mutation(i)); err != nil {
					errs[w] = fmt.Errorf("mutation %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st.Close() // release fds + flock without a checkpoint (crash state)
	for w := 0; w < workers; w++ {
		lw, err := reference.Get(fmt.Sprintf("wf-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < muts; i++ {
			if _, err := lw.Mutate(workloads[w].mutation(i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	if _, err := st2.Recover(recovered); err != nil {
		t.Fatal(err)
	}
	assertRegistriesEqual(t, recovered, reference)
	st2.Close()
}

// TestDirtyDirRequiresRecover: journaling into a directory that holds
// state without recovering it first must be refused.
func TestDirtyDirRequiresRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl := newMutationWorkload(t, 16, 64, 9)
	wl.register(t, reg, "w")

	st.Close()
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg2 := engine.NewRegistry(engine.New(), engine.WithJournal(st2))
	wf, err := workflow.NewBuilder("x").AddTask("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Register("x", wf); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("journaling before Recover = %v, want recovery guard", err)
	}
}

// TestDeleteRegisterRaceDurability hammers concurrent Delete/Register of
// one ID through the journal: whatever interleaving happens, the journal
// must end ordered so that recovery reproduces the registry's final
// state (the historical hazard: a delete record overtaking a newer
// registration's record and destroying its snapshot).
func TestDeleteRegisterRaceDurability(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	mkwf := func() *workflow.Workflow {
		wf, err := workflow.NewBuilder("x").AddTask("a").AddTask("b").Chain("a", "b").Build()
		if err != nil {
			t.Fatal(err)
		}
		return wf
	}
	if _, err := reg.Register("x", mkwf()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(del bool) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if del {
					reg.Delete("x") // unknown-workflow errors expected mid-race
				} else if _, err := reg.Register("x", mkwf()); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(i == 0)
	}
	wg.Wait()
	// Settle on a known final state, then recover cold and compare.
	if _, err := reg.Register("x", mkwf()); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	if _, err := st2.Recover(recovered); err != nil {
		t.Fatal(err)
	}
	assertRegistriesEqual(t, recovered, reg)
	st2.Close()
}

// TestLockExcludesSecondStore: two stores (two daemons) must never share
// one directory — interleaved appends would corrupt the WAL beyond
// recovery, so the second Open fails while the first holds the flock.
func TestLockExcludesSecondStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open on a held directory = %v, want lock error", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	st2.Close()
}

// TestViewChurnTriggersSnapshot: repeatedly replacing a view must feed
// the snapshot trigger like mutations do, so a workflow that never
// mutates still gets folded into snapshots and its log stays bounded.
func TestViewChurnTriggersSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNone, SnapshotBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl := newMutationWorkload(t, 24, 64, 13)
	lw := wl.register(t, reg, "w")
	const churn = 200
	for i := 0; i < churn; i++ {
		if _, _, err := lw.AttachView("interval", func(wf *workflow.Workflow) (*view.View, error) {
			return gen.IntervalView(wf, 2+wf.N()/8, "interval"), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	stats, err := st2.Recover(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed >= churn {
		t.Fatalf("replayed %d of %d attach records: view churn never triggered a snapshot", stats.Replayed, churn)
	}
	assertRegistriesEqual(t, recovered, reg)
	st2.Close()
}

// TestRecoverRefusesUndersizedCapacity: restoring more workflows than
// the registry holds would evict (= durably delete) the overflow, so
// recovery must refuse instead.
func TestRecoverRefusesUndersizedCapacity(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl := newMutationWorkload(t, 16, 64, 21)
	for i := 0; i < 3; i++ {
		wl.register(t, reg, fmt.Sprintf("wf-%d", i))
	}
	st.Close()

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	small := engine.NewRegistry(engine.New(), engine.WithRegistryCapacity(2))
	if _, err := st2.Recover(small); err == nil || !strings.Contains(err.Error(), "live-workflows") {
		t.Fatalf("recover into capacity 2 = %v, want refusal", err)
	}
	// No snapshot was deleted by the refused recovery.
	st2.Close()
	st3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	big := engine.NewRegistry(engine.New())
	stats, err := st3.Recover(big)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workflows != 3 {
		t.Fatalf("recovered %d workflows after the refused attempt, want 3", stats.Workflows)
	}
	st3.Close()
}

// copyDir clones the store directory so each truncation experiment works
// on its own files.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornTailEveryByteOffset is the crash-atomicity property test: the
// WAL is truncated at every byte offset of the last record, and replay
// must restore either the pre-batch or the post-batch state — the torn
// record is discarded whole, never half-applied.
func TestTornTailEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	// One big segment, snapshots effectively off past registration: the
	// final mutate record must be the only thing separating pre and post.
	st, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 1 << 20, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl := newMutationWorkload(t, 24, 128, 11)
	lw := wl.register(t, reg, "w")
	if _, err := lw.Mutate(wl.mutation(0)); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segName(1))
	preStat, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	preSize := preStat.Size()
	preVersion := lw.Version()
	preDocs := mustRegistryFingerprint(t, reg)

	// The last record: a batch adding a task and two edges.
	final := engine.Mutation{
		Tasks: []workflow.Task{{ID: "torn-task"}},
		Edges: [][2]string{{wl.candidates[0][0], "torn-task"}, wl.candidates[40]},
	}
	if _, err := lw.Mutate(final); err != nil {
		t.Fatal(err)
	}
	postStat, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	postSize := postStat.Size()
	postVersion := lw.Version()
	postDocs := mustRegistryFingerprint(t, reg)
	if postSize <= preSize {
		t.Fatalf("final record added no bytes (%d → %d)", preSize, postSize)
	}

	for cut := preSize; cut <= postSize; cut++ {
		dir2 := t.TempDir()
		copyDir(t, dir, dir2)
		if err := os.Truncate(filepath.Join(dir2, segName(1)), cut); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir2, Options{Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		reg2 := engine.NewRegistry(engine.New())
		if _, err := st2.Recover(reg2); err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		lw2, err := reg2.Get("w")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		version := lw2.Version()
		docs := mustRegistryFingerprint(t, reg2)
		switch {
		case cut == postSize:
			if version != postVersion || docs != postDocs {
				t.Fatalf("cut %d (complete record): version %d docs diverge from post-batch state", cut, version)
			}
		default:
			if version != preVersion || docs != preDocs {
				t.Fatalf("cut %d: version %d, want pre-batch version %d with identical state (torn record must be atomic)",
					cut, version, preVersion)
			}
		}
		st2.Close()
	}
}

// mustRegistryFingerprint renders the full registry state (documents +
// reports) as one string for equality checks.
func mustRegistryFingerprint(t *testing.T, reg *engine.Registry) string {
	t.Helper()
	var b strings.Builder
	for _, id := range reg.IDs() {
		lw, err := reg.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		info, err := lw.Info()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s@%d:%s\n", info.ID, info.Version, info.Fingerprint)
		docs := stateDocs(t, lw)
		keys := make([]string, 0, len(docs))
		for k := range docs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s\n", k, docs[k])
		}
		for _, vid := range info.Views {
			rep, ver, err := lw.Report(vid)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "report:%s@%d=%s\n", vid, ver, raw)
		}
	}
	return b.String()
}

// --- run durability -----------------------------------------------------------

// runDoc builds a deterministic small trace over the workload's task
// space: a chain of four artifacts produced by four tasks.
func (w *mutationWorkload) runDoc(i int) (string, []byte) {
	runID := fmt.Sprintf("run-%d", i)
	n := w.wf.N()
	type art struct {
		ID  string `json:"id"`
		Gen string `json:"generated_by,omitempty"`
	}
	type used struct {
		Process  string `json:"process"`
		Artifact string `json:"artifact"`
	}
	doc := struct {
		Run       string `json:"run"`
		Artifacts []art  `json:"artifacts"`
		Used      []used `json:"used"`
	}{Run: runID}
	var tasks []string
	for k := 0; k < 4; k++ {
		tasks = append(tasks, w.wf.Task((i*7+k*13)%n).ID)
	}
	for k, task := range tasks {
		doc.Artifacts = append(doc.Artifacts, art{ID: fmt.Sprintf("%s/a%d", runID, k), Gen: task})
		if k > 0 {
			doc.Used = append(doc.Used, used{Process: task, Artifact: doc.Artifacts[k-1].ID})
		}
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return runID, raw
}

// assertRunsEqual compares the run stores' contents and a sample of
// lineage answers byte-for-byte.
func assertRunsEqual(t *testing.T, id string, got, want *runs.Store) {
	t.Helper()
	gotRuns, err := got.Runs(id)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns, err := want.Runs(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRuns, wantRuns) {
		t.Fatalf("run lists diverge:\ngot:  %+v\nwant: %+v", gotRuns, wantRuns)
	}
	for _, info := range wantRuns {
		for _, q := range []runs.Query{
			{Run: info.Run, Artifact: info.Run + "/a3", Witness: true},
			{Run: info.Run, Artifact: info.Run + "/a3", Level: runs.LevelAudited, View: "interval"},
		} {
			wantAns, err := want.Lineage(id, q)
			if err != nil {
				t.Fatal(err)
			}
			gotAns, err := got.Lineage(id, q)
			if err != nil {
				t.Fatal(err)
			}
			wantRaw, _ := json.Marshal(wantAns)
			gotRaw, _ := json.Marshal(gotAns)
			if string(wantRaw) != string(gotRaw) {
				t.Fatalf("lineage answer for %+v diverges:\ngot:  %s\nwant: %s", q, gotRaw, wantRaw)
			}
		}
	}
}

// TestRecoverRunsAfterHardKill is the run-store acceptance scenario: a
// stream of interleaved mutations and run ingestions (with snapshot and
// compaction churn), a hard kill, and a recovery whose run store must
// answer every lineage query byte-identically to a never-killed
// reference.
func TestRecoverRunsAfterHardKill(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 96, 2048, 43)

	durable := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	reference := engine.NewRegistry(engine.New())
	dlw := wl.register(t, durable, "phylo")
	rlw := wl.register(t, reference, "phylo")
	dRuns := runs.New(durable, runs.WithJournal(st))
	rRuns := runs.New(reference)
	st.SetRunProvider(dRuns)

	for i := 0; i < 300; i++ {
		m := wl.mutation(i)
		if _, err := dlw.Mutate(m); err != nil {
			t.Fatalf("mutation %d (durable): %v", i, err)
		}
		if _, err := rlw.Mutate(m); err != nil {
			t.Fatalf("mutation %d (reference): %v", i, err)
		}
		if i%3 == 0 {
			_, doc := wl.runDoc(i)
			if _, err := dRuns.Ingest("phylo", doc); err != nil {
				t.Fatalf("ingest %d (durable): %v", i, err)
			}
			if _, err := rRuns.Ingest("phylo", doc); err != nil {
				t.Fatalf("ingest %d (reference): %v", i, err)
			}
		}
	}
	// Replace one run late, so a replacement record replays too.
	_, doc := wl.runDoc(0)
	if _, err := dRuns.Ingest("phylo", doc); err != nil {
		t.Fatal(err)
	}
	if _, err := rRuns.Ingest("phylo", doc); err != nil {
		t.Fatal(err)
	}

	// Hard kill (no checkpoint), reopen cold, recover runs and registry.
	st.Close()
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recovered := engine.NewRegistry(engine.New())
	recRuns := runs.New(recovered)
	stats, err := st2.RecoverWithRuns(recovered, recRuns)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs == 0 {
		t.Fatalf("recovery restored no runs: %+v", stats)
	}
	assertRegistriesEqual(t, recovered, reference)
	assertRunsEqual(t, "phylo", recRuns, rRuns)

	// The recovered pair must accept new journaled traffic.
	st2.SetRunProvider(recRuns)
	recRuns.SetJournal(st2)
	recovered.SetJournal(st2)
	_, doc = wl.runDoc(9999)
	if _, err := recRuns.Ingest("phylo", doc); err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

// TestRecoverWithoutRestorerSkipsRuns pins backward compatibility: a
// directory holding run records recovers fine through the run-less
// Recover, skipping (not failing on) every run record.
func TestRecoverWithoutRestorerSkipsRuns(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 32, 256, 11)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl.register(t, reg, "wf")
	rs := runs.New(reg, runs.WithJournal(st))
	st.SetRunProvider(rs)
	for i := 0; i < 8; i++ {
		_, doc := wl.runDoc(i)
		if _, err := rs.Ingest("wf", doc); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recovered := engine.NewRegistry(engine.New())
	stats, err := st2.Recover(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workflows != 1 || stats.Runs != 0 {
		t.Fatalf("run-less recovery stats: %+v", stats)
	}
}

// TestIngestVsReRegisterRecovers hammers run ingestion against
// concurrent same-ID re-registration. The ingestion path journals its
// recRun record inside the workflow's read lock, which orders it before
// the registration record of any replacing incarnation (close() needs
// the write lock first) — so no interleaving may ever produce a WAL
// whose replay fails. The registries re-register with different
// workflows (disjoint task spaces), so a mis-ordered record would
// surface as an invalid_trace replay error.
func TestIngestVsReRegisterRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	rs := runs.New(reg, runs.WithJournal(st))
	st.SetRunProvider(rs)

	mkWF := func(gen int) *workflow.Workflow {
		b := workflow.NewBuilder(fmt.Sprintf("g%d", gen))
		for i := 0; i < 8; i++ {
			b.AddTask(fmt.Sprintf("g%d-t%d", gen, i))
		}
		wf, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return wf
	}
	if _, err := reg.Register("wf", mkWF(0)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for gen := 1; gen <= 40; gen++ {
			if _, err := reg.Register("wf", mkWF(gen)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// The task referenced may belong to an already-replaced
			// incarnation; that must fail the ingest (invalid_trace or
			// unknown workflow), never corrupt the log.
			gen := i % 41
			doc := fmt.Sprintf(`{"run":"r%d","artifacts":[{"id":"a%d","generated_by":"g%d-t0"}]}`, i, i, gen)
			if _, err := rs.Ingest("wf", []byte(doc)); err != nil &&
				!engine.IsCode(err, engine.ErrInvalidTrace) && !engine.IsCode(err, engine.ErrUnknownWorkflow) {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	st.Close()

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recovered := engine.NewRegistry(engine.New())
	recRuns := runs.New(recovered)
	if _, err := st2.RecoverWithRuns(recovered, recRuns); err != nil {
		t.Fatalf("recovery must survive any ingest/re-register interleaving: %v", err)
	}
	if got := recovered.IDs(); len(got) != 1 || got[0] != "wf" {
		t.Fatalf("recovered IDs = %v", got)
	}
}
