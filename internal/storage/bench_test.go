package storage

import (
	"context"
	"fmt"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// benchRegistryWorkload builds the mutation benchmark workload: a
// layered workflow, an n/16-composite interval view, and a cycle-free
// candidate edge stream. BenchmarkMutateInMemory runs it without a
// journal in the same package, so the journaled variant's overhead is
// isolated to the journal itself.
func benchRegistryWorkload(b *testing.B, n int) (*workflow.Workflow, *view.View, [][2]string) {
	b.Helper()
	wl := newMutationWorkload(b, n, 8192, int64(n))
	wf := wl.wf.Clone()
	return wf, gen.IntervalView(wf, n/16, "bench-view"), wl.candidates
}

// setupBenchRegistry registers the workload into a registry wired to j.
func setupBenchRegistry(b *testing.B, wf *workflow.Workflow, v *view.View, j engine.Journal) *engine.LiveWorkflow {
	b.Helper()
	var reg *engine.Registry
	if j != nil {
		reg = engine.NewRegistry(engine.New(), engine.WithJournal(j))
	} else {
		reg = engine.NewRegistry(engine.New())
	}
	lw, err := reg.Register("bench", wf)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := lw.AttachView("v", func(*workflow.Workflow) (*view.View, error) {
		return v, nil
	}); err != nil {
		b.Fatal(err)
	}
	return lw
}

// benchCandidates reuses the workload generator's candidate stream; past
// the pool the stream wraps to duplicate edges, so record numbers with
// -benchtime=2000x or lower (exactly like BenchmarkMutateIncremental).
func runMutateBench(b *testing.B, lw *engine.LiveWorkflow, cands [][2]string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lw.Mutate(engine.Mutation{Edges: [][2]string{cands[i%len(cands)]}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutateInMemory is the journal-less baseline, in this package
// so the journaled variant's overhead is measured on identical hardware
// in the same run.
func BenchmarkMutateInMemory(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			wf, v, cands := benchRegistryWorkload(b, n)
			lw := setupBenchRegistry(b, wf, v, nil)
			runMutateBench(b, lw, cands)
		})
	}
}

// BenchmarkMutateJournaled measures the registry mutation path with the
// durable journal attached: encode + checksummed WAL append per commit.
// (Snapshots are size-proportional — one fires only after the workflow
// writes max(SnapshotBytes, snapshot size) of log, so their amortized
// cost per append is bounded by a constant factor of the append itself
// and none fire in this loop.) The acceptance bar is within 2x of
// BenchmarkMutateInMemory under fsync=none.
func BenchmarkMutateJournaled(b *testing.B) {
	for _, mode := range []FsyncMode{FsyncNone, FsyncBatch} {
		for _, n := range []int{1024, 4096} {
			b.Run(fmt.Sprintf("fsync=%s/n=%d", mode, n), func(b *testing.B) {
				wf, v, cands := benchRegistryWorkload(b, n)
				st, err := Open(b.TempDir(), Options{Fsync: mode})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				lw := setupBenchRegistry(b, wf, v, st)
				runMutateBench(b, lw, cands)
			})
		}
	}
}

// BenchmarkWALAppend measures the raw record path: encode, checksum,
// write, and (per mode) wait for durability, for a typical single-edge
// mutation record.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []FsyncMode{FsyncNone, FsyncBatch, FsyncAlways} {
		b.Run("fsync="+mode.String(), func(b *testing.B) {
			// Snapshots off: this measures the append path alone.
			st, err := Open(b.TempDir(), Options{Fsync: mode, SnapshotBytes: 1 << 40})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			batch := &engine.AppliedBatch{Edges: [][2]string{{"task-0001", "task-0002"}}}
			stl := &engine.LiveState{ID: "bench", Version: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stl.Version++
				if err := st.Committed(context.Background(), batch, stl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplay measures recovery throughput: a WAL of single-edge
// mutation records over a 256-task workflow with one attached view,
// replayed into a fresh registry. Reported as records/sec.
func BenchmarkReplay(b *testing.B) {
	const records = 2000
	dir := b.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNone, SnapshotBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	wl := newMutationWorkload(b, 256, records, 5)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	lw, err := reg.Register("bench", wl.wf.Clone())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := lw.AttachView("v", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.IntervalView(wf, 16, "v"), nil
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := lw.Mutate(engine.Mutation{Edges: [][2]string{wl.candidates[i]}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	var replayed int64
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, Options{Fsync: FsyncNone})
		if err != nil {
			b.Fatal(err)
		}
		fresh := engine.NewRegistry(engine.New())
		stats, err := st.Recover(fresh)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Replayed < records {
			b.Fatalf("replayed %d records, want >= %d", stats.Replayed, records)
		}
		replayed += stats.Replayed
		st.Close()
	}
	b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "records/sec")
}
