package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"wolves/internal/engine"
	"wolves/internal/obs"
	"wolves/internal/storage/vfs"
	"wolves/internal/view"
)

// storeLog narrates cold-path store events (snapshot retries,
// poisoning, probe recovery); the hot append path never logs.
var storeLog = obs.NewLogger("storage")

// Defaults for Options zero values.
const (
	DefaultSegmentBytes  = 4 << 20
	DefaultSnapshotBytes = 1 << 20
)

// Options tunes a Store. The zero value is production-sane: 4 MiB
// segments, size-proportional snapshots, group-commit fsync.
type Options struct {
	// SegmentBytes rotates the WAL once the current segment exceeds it.
	SegmentBytes int64
	// SnapshotBytes is the snapshot trigger floor: a workflow is folded
	// into a fresh snapshot (and fully covered segments are compacted)
	// once the WAL bytes appended for it since its last snapshot exceed
	// max(SnapshotBytes, size of that snapshot). Scaling the trigger
	// with the snapshot's own size keeps the amortized snapshot cost
	// O(1) per appended byte no matter how large the workflow grows,
	// and bounds both disk usage and recovery replay at roughly 2x the
	// live state.
	SnapshotBytes int64
	// SnapshotEvery additionally triggers a snapshot after this many
	// committed mutation batches, regardless of bytes. 0 (the default)
	// disables the count trigger; tests use it to force snapshot and
	// compaction churn.
	SnapshotEvery int
	// Fsync selects the durability mode (FsyncBatch by default).
	Fsync FsyncMode
	// LegacyJSONBodies forces the pre-PR-9 JSON encoding for the hot
	// record bodies (mutation batches and runs) instead of the compact
	// binary form. Decoding always accepts both encodings regardless, so
	// this knob only exists for benchmark baselines and for compat tests
	// that write an old-format directory on purpose; production has no
	// reason to set it.
	LegacyJSONBodies bool
	// RecoveryWorkers bounds the parallelism of Recover: snapshot
	// loading and WAL body decoding fan out across this many workers,
	// and record application fans out per workflow. 0 (the default)
	// means GOMAXPROCS; 1 pins the sequential reference path that the
	// parallel path is equivalence-tested against.
	RecoveryWorkers int
	// FS is the filesystem seam every store I/O goes through; nil means
	// the real filesystem. Tests install a vfs.FaultFS here to inject
	// disk faults at any I/O site, including acquisition of the
	// directory flock (LOCK) — a FaultFS delegates the actual flock to
	// its os-backed inner FS, so the lock still arbitrates between
	// processes.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SnapshotBytes <= 0 {
		o.SnapshotBytes = DefaultSnapshotBytes
	}
	if o.FS == nil {
		o.FS = vfs.OS()
	}
	return o
}

// wfState is the store's per-workflow bookkeeping.
type wfState struct {
	snapLSN        uint64 // LSN the latest durable snapshot covers
	sinceSnapRecs  int    // mutation records appended since that snapshot
	sinceSnapBytes int64  // WAL bytes appended for this workflow since it
	lastSnapBytes  int64  // encoded size of that snapshot
}

// wantSnapshot decides the snapshot trigger for ws under opts.
func (ws *wfState) wantSnapshot(opts Options) bool {
	if opts.SnapshotEvery > 0 && ws.sinceSnapRecs >= opts.SnapshotEvery {
		return true
	}
	floor := opts.SnapshotBytes
	if ws.lastSnapBytes > floor {
		floor = ws.lastSnapBytes
	}
	return ws.sinceSnapBytes >= floor
}

// errNeedsRecovery guards a dirty directory: journaling into it before
// Recover would interleave a live stream with an unread history.
var errNeedsRecovery = errors.New("storage: directory holds state; call Recover before journaling")

// Snapshot write retry policy: capped exponential backoff over a few
// attempts. Kept short — the caller holds the workflow's lock, so a
// snapshot stuck in retries stalls that workflow's traffic (and only
// that workflow's).
const (
	snapRetryMax  = 3
	snapRetryBase = 5 * time.Millisecond
	snapRetryCap  = 100 * time.Millisecond
)

// Store is the durable registry backend: an engine.Journal whose appends
// go to a checksummed, segment-rotated WAL and whose snapshots bound
// both recovery time and disk growth. Open one with Open, restore a
// registry with Recover, install it with Registry.SetJournal, checkpoint
// it on graceful shutdown with Checkpoint, and Close it last.
//
// Failure handling is sticky: the first append or snapshot error poisons
// the store and every later operation returns it, so a registry backed
// by a failing disk degrades loudly instead of silently forking from its
// durable history. The sticky error implements JournalUnavailable, which
// the engine maps to its degraded read-only mode; Probe and Resync
// (engine.RecoverableJournal) bring a poisoned store back once the disk
// recovers.
type Store struct {
	dir  string
	fs   vfs.FS
	opts Options

	lockf vfs.File // exclusive flock on dir/LOCK for the store's lifetime

	// runProv supplies the run documents to embed in workflow snapshots
	// (SetRunProvider); nil means snapshots carry no runs. Set during
	// setup, not synchronized with live traffic.
	runProv RunProvider

	mu        sync.Mutex
	failed    error
	closed    bool // Close was called; Probe must not resurrect the store
	needsRec  bool
	recovered bool
	lsn       uint64 // last assigned LSN
	enc       []byte // reusable body-encode scratch, used under mu
	wal       *wal
	wfs       map[string]*wfState
	snaps     []loadedSnapshot // loaded at Open, consumed by Recover
	corrupt   []string         // corrupt snapshot paths, removed by Recover
	tornBytes int64
}

// lockDir takes an exclusive advisory lock on dir/LOCK. Two daemons
// pointed at one -data-dir would otherwise interleave appends at
// arbitrary byte boundaries and corrupt the WAL beyond recovery; the
// second Open must fail loudly instead.
func lockDir(fsys vfs.FS, dir string) (vfs.File, error) {
	f, err := fsys.Lock(filepath.Join(dir, "LOCK"))
	if err != nil {
		return nil, fmt.Errorf("storage: locking %s: %w", dir, err)
	}
	return f, nil
}

// Open prepares dir as a store: creates it if missing, validates every
// WAL segment (truncating a torn tail in the last one — the crash
// point), loads snapshot documents, and positions the WAL for appends.
// If dir already holds state, Recover must run before journaling.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lockf, err := lockDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lockf.Close()
		}
	}()
	// Clear snapshot temp files orphaned by a crash or disk fault between
	// create and rename; loadSnapshots never reads them, but left in
	// place they hold torn bytes and waste space forever.
	if entries, err := fsys.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
				fsys.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: fsys, opts: opts, lockf: lockf, wfs: make(map[string]*wfState)}

	w := &wal{fs: fsys, dir: dir, segBytes: opts.SegmentBytes, mode: opts.Fsync}
	w.syncCond = sync.NewCond(&w.syncMu)
	if len(segs) == 0 {
		f, err := createSegment(fsys, dir, 1, opts.Fsync)
		if err != nil {
			return nil, err
		}
		w.seq, w.f, w.size = 1, f, int64(len(segMagic))
	} else {
		records := false
		for i := range segs {
			isLast := i == len(segs)-1
			segMax := uint64(0)
			validSize, torn, err := scanSegment(fsys, segs[i].path, isLast, func(rec record) error {
				segMax = rec.lsn
				records = true
				return nil
			})
			if err != nil {
				return nil, err
			}
			segs[i].maxLSN = segMax
			if segMax > s.lsn {
				s.lsn = segMax
			}
			if !isLast {
				continue
			}
			if torn {
				st, err := fsys.Stat(segs[i].path)
				if err != nil {
					return nil, err
				}
				s.tornBytes = st.Size() - validSize
				if validSize < int64(len(segMagic)) {
					// The crash tore the magic itself: rewrite it.
					if err := vfs.WriteFile(fsys, segs[i].path, segMagic, 0o644); err != nil {
						return nil, err
					}
					validSize = int64(len(segMagic))
				} else if err := fsys.Truncate(segs[i].path, validSize); err != nil {
					return nil, err
				}
			}
			f, err := fsys.OpenFile(segs[i].path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return nil, err
			}
			w.seq, w.f, w.size, w.maxLSN = segs[i].seq, f, validSize, segMax
			w.sealed = segs[:i:i]
		}
		if records {
			s.needsRec = true
		}
	}
	s.wal = w

	snaps, corrupt, err := loadSnapshots(fsys, dir)
	if err != nil {
		return nil, err
	}
	s.snaps, s.corrupt = snaps, corrupt
	for _, ls := range snaps {
		if ls.doc.LSN > s.lsn {
			s.lsn = ls.doc.LSN
		}
		s.wfs[ls.doc.ID] = &wfState{snapLSN: ls.doc.LSN}
		s.needsRec = true
	}
	ok = true
	return s, nil
}

// RunProvider supplies, per workflow, the canonical documents of every
// currently ingested run, in ingestion order — the run store
// (internal/runs) implements it. Snapshots embed these documents so run
// records are snapshot-covered: compaction may drop the segments holding
// them without losing a single run.
type RunProvider interface {
	SnapshotRuns(workflowID string) (ids []string, docs [][]byte)
}

// SetRunProvider installs the run provider consulted by every snapshot.
// Call during setup (wolvesd does, right after Open), before the store
// journals traffic.
func (s *Store) SetRunProvider(p RunProvider) { s.runProv = p }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// usableLocked gates journal operations; callers hold s.mu.
func (s *Store) usableLocked() error {
	if s.failed != nil {
		return s.failed
	}
	if s.needsRec && !s.recovered {
		return errNeedsRecovery
	}
	return nil
}

// storeFailure is the sticky error of a poisoned store. It marks itself
// JournalUnavailable so the engine (which cannot import this package)
// can classify it via errors.As and flip the registry into degraded
// read-only mode instead of surfacing an opaque internal error.
type storeFailure struct{ err error }

func (e *storeFailure) Error() string            { return "storage: store failed: " + e.err.Error() }
func (e *storeFailure) Unwrap() error            { return e.err }
func (e *storeFailure) JournalUnavailable() bool { return true }

// failLocked makes err sticky; callers hold s.mu.
func (s *Store) failLocked(err error) error {
	if s.failed == nil {
		s.failed = &storeFailure{err: err}
	}
	return s.failed
}

// fail is failLocked for callers not holding s.mu.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failLocked(err)
}

// waitDurable waits for ticket's group commit and poisons the store on
// a sync failure: after a failed fsync the record may sit in dirty
// pages the kernel already dropped (fsyncgate), so the store must stop
// appending — and report itself unavailable, so the registry degrades —
// until Probe rotates to a fresh segment.
func (s *Store) waitDurable(ticket uint64) error {
	if err := s.wal.waitDurable(ticket); err != nil {
		return s.fail(err)
	}
	return nil
}

// appendLocked assigns the next LSN and writes one record, returning the
// group-commit ticket and the record's on-disk size; callers hold s.mu
// (which is what keeps file order equal to LSN order across workflows).
// The body is pre-encoded by the caller (compat.go / binary.go) and is
// copied by the WAL before this returns, so callers may pass the s.enc
// scratch. The ticket feeds waitDurable after s.mu is released, so one
// slow fsync never blocks other workflows' appends.
func (s *Store) appendLocked(typ byte, body []byte) (uint64, int64, error) {
	ticket, err := s.wal.append(record{typ: typ, lsn: s.lsn + 1, body: body})
	if err != nil {
		// A full disk is the one write failure worth retrying in place:
		// when the failed write was cleanly rolled back (the segment still
		// ends on a record boundary), compact every snapshot-covered
		// segment to free space and try once more before surrendering.
		var we *walWriteError
		if errors.As(err, &we) && we.clean && errors.Is(we.err, syscall.ENOSPC) {
			s.wal.compact(s.coveredLocked())
			ticket, err = s.wal.append(record{typ: typ, lsn: s.lsn + 1, body: body})
		}
		if err != nil {
			return 0, 0, s.failLocked(err)
		}
	}
	s.lsn++
	return ticket, int64(recHeaderLen + recPrefixLen + len(body)), nil
}

// writeSnapshot encodes and writes st's snapshot covering coverLSN with
// NO store lock held — the multi-millisecond marshal + file I/O of one
// workflow must not stall every other workflow's journal appends. The
// caller holds st's workflow lock (every journal call does), which is
// what keeps st stable and serializes snapshots of the same workflow;
// distinct workflows write distinct files concurrently. Bookkeeping and
// compaction briefly retake s.mu at the end.
func (s *Store) writeSnapshot(st *engine.LiveState, coverLSN uint64, wfRaw []byte) error {
	var runIDs []string
	var runDocs [][]byte
	if s.runProv != nil {
		// The provider re-reads the run store's shard under its own lock;
		// runs are inserted there before their records are journaled, so
		// every run record at or below coverLSN is present (a run racing
		// in after coverLSN is harmlessly included — its record replays
		// idempotently on top).
		runIDs, runDocs = s.runProv.SnapshotRuns(st.ID)
	}
	doc, err := encodeSnapshot(st, coverLSN, wfRaw, runIDs, runDocs)
	if err != nil {
		return s.fail(err)
	}
	// Snapshot writes are transient-fault tolerant: the temp file is
	// removed on every failure (fresh inode per attempt, so no torn
	// bytes accumulate) and the write is retried under a capped
	// exponential backoff. ENOSPC additionally compacts covered
	// segments first — reclaimed WAL space is often exactly what the
	// snapshot needs. Only after the attempts are exhausted is the
	// store poisoned.
	var size int64
	backoff := snapRetryBase
	for attempt := 0; ; attempt++ {
		size, err = writeSnapshotFile(s.fs, s.dir, doc, s.opts.Fsync)
		if err == nil {
			break
		}
		if attempt == snapRetryMax-1 {
			storeLog.Error("snapshot write failed, store poisoned",
				"workflow", st.ID, "attempts", snapRetryMax, "err", err)
			return s.fail(err)
		}
		obs.MSnapshotRetries.Inc()
		storeLog.Warn("snapshot write failed, retrying",
			"workflow", st.ID, "attempt", attempt+1, "backoff", backoff, "err", err)
		if errors.Is(err, syscall.ENOSPC) {
			s.mu.Lock()
			covered := s.coveredLocked()
			s.mu.Unlock()
			s.wal.compact(covered)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > snapRetryCap {
			backoff = snapRetryCap
		}
	}
	s.mu.Lock()
	ws := s.wfs[st.ID]
	if ws == nil {
		ws = &wfState{}
		s.wfs[st.ID] = ws
	}
	ws.snapLSN = coverLSN
	ws.sinceSnapRecs = 0
	ws.sinceSnapBytes = 0
	ws.lastSnapBytes = size
	obs.MSnapshotPublishes.Inc()
	obs.MSnapshotBytes.Add(uint64(size))
	covered := s.coveredLocked()
	s.mu.Unlock()
	s.wal.compact(covered)
	return nil
}

// coveredLocked returns the LSN below which every live workflow is
// snapshot-covered; sealed segments at or below it are dead weight.
func (s *Store) coveredLocked() uint64 {
	covered := ^uint64(0)
	for _, ws := range s.wfs {
		if ws.snapLSN < covered {
			covered = ws.snapLSN
		}
	}
	return covered
}

// --- engine.Journal -----------------------------------------------------------

// Registered appends a registration record and immediately snapshots the
// newborn workflow, giving it a covered LSN so compaction is never
// blocked by a workflow that happens not to mutate.
func (s *Store) Registered(ctx context.Context, st *engine.LiveState) error {
	wfRaw, err := marshalWorkflowJSON(st.Workflow)
	if err != nil {
		return s.fail(err)
	}
	body, err := encodeRegisterBody(st.ID, st.Version, wfRaw)
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	ticket, _, err := s.appendLocked(recRegister, body)
	coverLSN := s.lsn
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.writeSnapshot(st, coverLSN, wfRaw); err != nil {
		return err
	}
	return s.waitDurable(ticket)
}

// Committed appends the mutation batch; once the workflow's WAL growth
// passes the snapshot trigger (see Options.SnapshotBytes) it is folded
// into a fresh snapshot and fully covered segments are compacted.
func (s *Store) Committed(ctx context.Context, batch *engine.AppliedBatch, st *engine.LiveState) error {
	ctx, span := obs.StartSpan(ctx, "storage", "committed")
	defer span.End()
	span.SetAttr("workflow", st.ID)
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	// Hot path: encode the batch into the store's scratch under mu (the
	// WAL copies it before appendLocked returns). The legacy knob keeps
	// the old JSON encoding reachable for baselines and compat tests.
	var body []byte
	if s.opts.LegacyJSONBodies {
		var jerr error
		if body, jerr = encodeMutateJSON(st.ID, st.Version, batch); jerr != nil {
			jerr = s.failLocked(jerr)
			s.mu.Unlock()
			return jerr
		}
	} else {
		s.enc = appendMutateBinary(s.enc[:0], st.ID, st.Version, batch)
		body = s.enc
	}
	ticket, n, err := s.appendLocked(recMutate, body)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	ws := s.wfs[st.ID]
	if ws == nil {
		ws = &wfState{}
		s.wfs[st.ID] = ws
	}
	ws.sinceSnapRecs++
	ws.sinceSnapBytes += n
	snap := ws.wantSnapshot(s.opts)
	coverLSN := s.lsn
	s.mu.Unlock()
	if snap {
		if err := s.writeSnapshot(st, coverLSN, nil); err != nil {
			return err
		}
	}
	return s.waitDurable(ticket)
}

// ViewAttached appends the attach record carrying the view document.
// View documents can be as large as the HTTP layer admits, so they feed
// the same snapshot trigger as mutations: a workflow whose views churn
// without mutating still gets folded into snapshots and its log still
// compacts, keeping the ~2x-of-live-state disk bound honest.
func (s *Store) ViewAttached(ctx context.Context, st *engine.LiveState, vid string, v *view.View) error {
	raw, err := marshalViewJSON(v)
	if err != nil {
		return s.fail(err)
	}
	body, err := encodeAttachBody(st.ID, vid, st.Version, raw)
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	ticket, n, err := s.appendLocked(recAttach, body)
	snap := false
	coverLSN := s.lsn
	if err == nil {
		if ws := s.wfs[st.ID]; ws != nil {
			ws.sinceSnapBytes += n
			snap = ws.wantSnapshot(s.opts)
		}
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if snap {
		if err := s.writeSnapshot(st, coverLSN, nil); err != nil {
			return err
		}
	}
	return s.waitDurable(ticket)
}

// ViewDetached appends the detach record.
func (s *Store) ViewDetached(ctx context.Context, st *engine.LiveState, vid string) error {
	body, err := encodeDetachBody(st.ID, vid, st.Version)
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	ticket, n, err := s.appendLocked(recDetach, body)
	snap := false
	coverLSN := s.lsn
	if err == nil {
		if ws := s.wfs[st.ID]; ws != nil {
			ws.sinceSnapBytes += n
			snap = ws.wantSnapshot(s.opts)
		}
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if snap {
		if err := s.writeSnapshot(st, coverLSN, nil); err != nil {
			return err
		}
	}
	return s.waitDurable(ticket)
}

// Deleted appends the delete record, waits for it to be durable, and
// only then removes the snapshot file — so a crash anywhere in between
// leaves either the workflow intact (delete never acknowledged) or a
// durable delete that replay honors; never a silently lost workflow.
func (s *Store) Deleted(ctx context.Context, id string) error {
	body, err := encodeDeleteBody(id)
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	ticket, _, err := s.appendLocked(recDelete, body)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.wfs, id)
	s.mu.Unlock()
	if err := s.waitDurable(ticket); err != nil {
		return err
	}
	s.mu.Lock()
	// Remove the snapshot file only if the ID has not been re-registered
	// since the delete record was appended (a new registration recreates
	// the wfs entry and owns the snapshot file now). The registry already
	// serializes Deleted against same-ID registration; this guard keeps
	// the store safe even for journals driven differently.
	if _, reborn := s.wfs[id]; !reborn {
		if err := s.fs.Remove(snapPath(s.dir, id)); err != nil && !os.IsNotExist(err) {
			err = s.failLocked(err)
			s.mu.Unlock()
			return err
		}
		if s.opts.Fsync != FsyncNone {
			_ = syncDir(s.fs, s.dir)
		}
	}
	covered := s.coveredLocked()
	s.mu.Unlock()
	s.wal.compact(covered)
	return nil
}

// --- runs.Journal -------------------------------------------------------------

// RunIngested appends one ingested-run record, implementing the run
// store's journal. Run documents feed the same size-proportional
// snapshot trigger as mutations and view churn — a workflow that only
// ingests runs still gets folded into snapshots and its log still
// compacts — but the snapshot itself is the caller's follow-up (the run
// store calls SnapshotWorkflow under the workflow's read lock), because
// this method has no LiveState in hand.
func (s *Store) RunIngested(ctx context.Context, workflowID, runID string, doc []byte) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "storage", "run.journal")
	defer span.End()
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return false, err
	}
	ticket, err := s.appendRunLocked(workflowID, runID, doc)
	want := false
	if err == nil {
		want = s.wfs[workflowID].wantSnapshot(s.opts)
	}
	s.mu.Unlock()
	if err != nil {
		return false, err
	}
	return want, s.waitDurable(ticket)
}

// appendRunLocked encodes and appends one run record and rolls its size
// into the workflow's snapshot-trigger bookkeeping; callers hold s.mu.
// The legacy JSON body is only expressible for JSON documents (the
// RawMessage embeds the doc verbatim), so binary docs always take the
// binary body even under the legacy knob.
func (s *Store) appendRunLocked(workflowID, runID string, doc []byte) (uint64, error) {
	var body []byte
	if s.opts.LegacyJSONBodies && len(doc) > 0 && doc[0] == '{' {
		var jerr error
		if body, jerr = encodeRunJSON(workflowID, runID, doc); jerr != nil {
			return 0, s.failLocked(jerr)
		}
	} else {
		s.enc = appendRunBinary(s.enc[:0], workflowID, runID, doc)
		body = s.enc
	}
	ticket, n, err := s.appendLocked(recRun, body)
	if err != nil {
		return 0, err
	}
	ws := s.wfs[workflowID]
	if ws == nil {
		ws = &wfState{}
		s.wfs[workflowID] = ws
	}
	ws.sinceSnapRecs++
	ws.sinceSnapBytes += n
	return ticket, nil
}

// RunsIngested journals a batch of runs ingested together: every record
// is appended under one hold of the store lock — so the batch occupies
// a contiguous LSN range with nothing interleaved — and the caller
// waits on the last record's group-commit ticket, so the whole burst
// rides one fsync instead of one per run. The snapshot-trigger answer
// covers the batch as a whole.
func (s *Store) RunsIngested(ctx context.Context, workflowID string, runIDs []string, docs [][]byte) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "storage", "runs.journal")
	defer span.End()
	if len(runIDs) == 0 {
		return false, nil
	}
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return false, err
	}
	var ticket uint64
	for i, runID := range runIDs {
		t, err := s.appendRunLocked(workflowID, runID, docs[i])
		if err != nil {
			s.mu.Unlock()
			return false, err
		}
		ticket = t
	}
	want := s.wfs[workflowID].wantSnapshot(s.opts)
	s.mu.Unlock()
	return want, s.waitDurable(ticket)
}

// SnapshotWorkflow folds st into a fresh snapshot covering everything
// journaled so far, compacting segments the snapshot subsumes. The
// caller holds st's workflow lock (the run store calls through
// LiveWorkflow.State), which keeps st stable and serializes snapshots of
// the same workflow.
func (s *Store) SnapshotWorkflow(ctx context.Context, st *engine.LiveState) error {
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	coverLSN := s.lsn
	s.mu.Unlock()
	return s.writeSnapshot(st, coverLSN, nil)
}

// --- lifecycle ----------------------------------------------------------------

// Checkpoint snapshots every live workflow at the current LSN, seals the
// WAL segment and compacts everything now covered: after a clean
// Checkpoint the next boot replays (almost) nothing. wolvesd runs one on
// graceful shutdown; operators can also run them periodically.
func (s *Store) Checkpoint(reg *engine.Registry) error {
	return s.checkpoint(reg, true)
}

func (s *Store) checkpoint(reg *engine.Registry, seal bool) error {
	for _, id := range reg.IDs() {
		// Peek, not Get: a maintenance sweep must not bump LRU recency,
		// or every checkpoint would reorder the eviction queue into
		// sorted-ID order underneath real traffic.
		lw, err := reg.Peek(id)
		if err != nil {
			continue // deleted while we iterated
		}
		err = lw.State(func(st *engine.LiveState) error {
			s.mu.Lock()
			if err := s.usableLocked(); err != nil {
				s.mu.Unlock()
				return err
			}
			// s.lsn covers every record this workflow has written: its
			// lock is held here, so it cannot be appending concurrently.
			coverLSN := s.lsn
			s.mu.Unlock()
			return s.writeSnapshot(st, coverLSN, nil)
		})
		if err != nil && !engine.IsCode(err, engine.ErrUnknownWorkflow) {
			return err
		}
	}
	if seal {
		if err := s.wal.seal(); err != nil {
			return s.fail(err)
		}
	}
	s.mu.Lock()
	covered := s.coveredLocked()
	s.mu.Unlock()
	s.wal.compact(covered)
	return nil
}

// Probe attempts to bring a poisoned store back: it repairs the WAL's
// tail (truncating any bytes a failed write tore), rotates to a fresh
// segment without ever re-fsyncing the suspect one (fsyncgate: after a
// failed fsync the kernel may have dropped the dirty pages, so a retried
// fsync can report success over lost data), and clears the sticky
// failure. It is idempotent and safe to call repeatedly; each call that
// fails leaves the store exactly as poisoned as before.
//
// Probe alone does not make the store consistent with the registry —
// operations that failed mid-journal left memory ahead of the log. The
// caller must follow a successful Probe with Resync before appending;
// engine.Registry's degraded-mode probe loop does exactly that and keeps
// mutations gated until Resync succeeds.
func (s *Store) Probe() error {
	s.mu.Lock()
	if s.closed {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if s.failed == nil {
		s.mu.Unlock()
		return nil
	}
	if s.needsRec && !s.recovered {
		s.mu.Unlock()
		return errNeedsRecovery
	}
	s.mu.Unlock()
	// Reopen outside s.mu: it creates and syncs files, and a slow disk
	// must not block concurrent read-path bookkeeping.
	if err := s.wal.reopen(); err != nil {
		return err
	}
	s.mu.Lock()
	s.failed = nil
	s.mu.Unlock()
	return nil
}

// Resync makes the store's durable state equal to the registry's live
// state after a successful Probe: every live workflow is folded into a
// fresh snapshot at the current LSN (capturing any mutations that were
// applied in memory while their journal append failed), bookkeeping for
// workflows the registry no longer holds is dropped along with their
// snapshot files, and every segment now covered — including the suspect
// pre-Probe segment — is compacted away. After Resync returns nil, a
// crash-recovery from the directory reproduces the registry as it stood
// at the Resync point.
//
// If the machine dies between Probe and the compaction here, the next
// boot may find a sealed segment whose tail was torn by the original
// fault; Open refuses such a directory loudly (corrupt record in a
// non-last segment) rather than ever replaying around missing records.
func (s *Store) Resync(reg *engine.Registry) error {
	if err := s.checkpoint(reg, false); err != nil {
		return err
	}
	live := make(map[string]bool)
	for _, id := range reg.IDs() {
		live[id] = true
	}
	s.mu.Lock()
	var stale []string
	for id := range s.wfs {
		if !live[id] {
			stale = append(stale, id)
			delete(s.wfs, id)
		}
	}
	covered := s.coveredLocked()
	s.mu.Unlock()
	// Snapshot files for workflows the registry dropped (a registration
	// or deletion whose journaling failed mid-way) would resurrect state
	// the client was told does not exist; remove them now that the
	// registry is authoritative again.
	for _, id := range stale {
		if err := s.fs.Remove(snapPath(s.dir, id)); err != nil && !os.IsNotExist(err) {
			return s.fail(err)
		}
	}
	if len(stale) > 0 && s.opts.Fsync != FsyncNone {
		_ = syncDir(s.fs, s.dir)
	}
	s.wal.compact(covered)
	return nil
}

// Close flushes and closes the WAL and releases the directory lock. The
// store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.failed == nil {
		s.failed = errors.New("storage: store closed")
	}
	s.mu.Unlock()
	err := s.wal.close()
	if s.lockf != nil {
		s.lockf.Close() // releases the flock
		s.lockf = nil
	}
	return err
}

// snapPath joins dir and the snapshot file name for id.
func snapPath(dir, id string) string {
	return filepath.Join(dir, snapName(id))
}
