// Package storage implements the durable backend of the live workflow
// registry: a binary, length-prefixed, CRC32C-checksummed write-ahead
// log of registry operations plus periodic per-workflow snapshots, with
// segment rotation, snapshot-triggered compaction, and a replayer that
// restores an engine.Registry to its pre-crash state (same versions,
// same reports via revalidation) after a hard kill at any byte offset.
//
// The Store implements engine.Journal; wolvesd opens one per -data-dir,
// recovers the registry from it at boot, installs it as the registry's
// journal, and checkpoints it on graceful shutdown. See store.go for
// the write path and recover.go for the read path.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record types, one per registry transition (see engine.Journal).
const (
	recRegister byte = 1 // registerBody: workflow registered/replaced
	recMutate   byte = 2 // mutateBody: mutation batch committed
	recAttach   byte = 3 // attachBody: view attached/replaced
	recDetach   byte = 4 // detachBody: view detached
	recDelete   byte = 5 // deleteBody: workflow deleted/evicted
	recRun      byte = 6 // runBody: execution trace ingested/replaced
)

// segMagic opens every WAL segment file; a file without it is rejected
// as foreign rather than replayed as garbage.
var segMagic = []byte("WOLVESW1")

const (
	// recHeaderLen is the fixed on-disk prefix of every record:
	// uint32 LE payload length followed by uint32 LE CRC32C(payload).
	recHeaderLen = 8
	// recPrefixLen is the payload's own fixed prefix: 1 type byte plus
	// the uint64 LE LSN.
	recPrefixLen = 9
	// maxRecordLen caps a record payload. The largest legitimate payload
	// is a workflow or view document (the HTTP layer caps uploads at
	// 8 MiB); anything bigger is a corrupt length field, not data.
	maxRecordLen = 64 << 20
)

// crcTable is the Castagnoli polynomial (hardware-accelerated CRC32C).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete or checksum-corrupt record: the signature
// of a crash mid-append. Torn records are tolerated (and truncated away)
// at the tail of the last segment and fatal anywhere else.
var errTorn = errors.New("storage: torn record")

// record is one WAL entry. The body is the encoded record body — JSON
// for the cold kinds and for every record written before PR 9, the
// version-tagged binary form of binary.go for hot kinds (mutate, run)
// since; lsn is the store-wide monotonic sequence number used to
// decide, per workflow, which records a snapshot already covers. The
// framing below is encoding-agnostic: the body is opaque bytes under
// the CRC.
type record struct {
	typ  byte
	lsn  uint64
	body []byte
}

// appendRecord encodes rec onto dst:
//
//	| len(payload) uint32 | crc32c(payload) uint32 | payload |
//	payload = | type byte | lsn uint64 | body |
func appendRecord(dst []byte, rec record) []byte {
	payloadLen := recPrefixLen + len(rec.body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC backpatched below
	start := len(dst)
	dst = append(dst, rec.typ)
	dst = binary.LittleEndian.AppendUint64(dst, rec.lsn)
	dst = append(dst, rec.body...)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[start:], crcTable))
	return dst
}

// readRecord decodes one record from r. It returns the bytes consumed so
// scanners can track the last valid offset. io.EOF means a clean end of
// segment; errTorn means a short or checksum-corrupt record.
func readRecord(r *bufio.Reader) (record, int64, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return record{}, 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, errTorn
		}
		return record{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen < recPrefixLen || payloadLen > maxRecordLen {
		return record{}, 0, errTorn
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return record{}, 0, errTorn
		}
		return record{}, 0, err
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return record{}, 0, errTorn
	}
	rec := record{
		typ:  payload[0],
		lsn:  binary.LittleEndian.Uint64(payload[1:recPrefixLen]),
		body: payload[recPrefixLen:],
	}
	if rec.typ < recRegister || rec.typ > recRun {
		return record{}, 0, fmt.Errorf("storage: unknown record type %d at lsn %d", rec.typ, rec.lsn)
	}
	return rec, int64(recHeaderLen) + int64(payloadLen), nil
}

// The typed record bodies and their codecs live next door: compat.go
// holds the JSON structs (the designated compat decoder for pre-PR-9
// logs and the cold record kinds), binary.go the version-tagged binary
// encoding of the hot kinds and the sniffing decoders that accept both.
