// Package storage implements the durable backend of the live workflow
// registry: a binary, length-prefixed, CRC32C-checksummed write-ahead
// log of registry operations plus periodic per-workflow snapshots, with
// segment rotation, snapshot-triggered compaction, and a replayer that
// restores an engine.Registry to its pre-crash state (same versions,
// same reports via revalidation) after a hard kill at any byte offset.
//
// The Store implements engine.Journal; wolvesd opens one per -data-dir,
// recovers the registry from it at boot, installs it as the registry's
// journal, and checkpoints it on graceful shutdown. See store.go for
// the write path and recover.go for the read path.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record types, one per registry transition (see engine.Journal).
const (
	recRegister byte = 1 // registerBody: workflow registered/replaced
	recMutate   byte = 2 // mutateBody: mutation batch committed
	recAttach   byte = 3 // attachBody: view attached/replaced
	recDetach   byte = 4 // detachBody: view detached
	recDelete   byte = 5 // deleteBody: workflow deleted/evicted
	recRun      byte = 6 // runBody: execution trace ingested/replaced
)

// segMagic opens every WAL segment file; a file without it is rejected
// as foreign rather than replayed as garbage.
var segMagic = []byte("WOLVESW1")

const (
	// recHeaderLen is the fixed on-disk prefix of every record:
	// uint32 LE payload length followed by uint32 LE CRC32C(payload).
	recHeaderLen = 8
	// recPrefixLen is the payload's own fixed prefix: 1 type byte plus
	// the uint64 LE LSN.
	recPrefixLen = 9
	// maxRecordLen caps a record payload. The largest legitimate payload
	// is a workflow or view document (the HTTP layer caps uploads at
	// 8 MiB); anything bigger is a corrupt length field, not data.
	maxRecordLen = 64 << 20
)

// crcTable is the Castagnoli polynomial (hardware-accelerated CRC32C).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete or checksum-corrupt record: the signature
// of a crash mid-append. Torn records are tolerated (and truncated away)
// at the tail of the last segment and fatal anywhere else.
var errTorn = errors.New("storage: torn record")

// record is one WAL entry. The body is the JSON encoding of the typed
// bodies below; lsn is the store-wide monotonic sequence number used to
// decide, per workflow, which records a snapshot already covers.
type record struct {
	typ  byte
	lsn  uint64
	body []byte
}

// appendRecord encodes rec onto dst:
//
//	| len(payload) uint32 | crc32c(payload) uint32 | payload |
//	payload = | type byte | lsn uint64 | body JSON |
func appendRecord(dst []byte, rec record) []byte {
	payloadLen := recPrefixLen + len(rec.body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC backpatched below
	start := len(dst)
	dst = append(dst, rec.typ)
	dst = binary.LittleEndian.AppendUint64(dst, rec.lsn)
	dst = append(dst, rec.body...)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[start:], crcTable))
	return dst
}

// readRecord decodes one record from r. It returns the bytes consumed so
// scanners can track the last valid offset. io.EOF means a clean end of
// segment; errTorn means a short or checksum-corrupt record.
func readRecord(r *bufio.Reader) (record, int64, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return record{}, 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, errTorn
		}
		return record{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen < recPrefixLen || payloadLen > maxRecordLen {
		return record{}, 0, errTorn
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return record{}, 0, errTorn
		}
		return record{}, 0, err
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return record{}, 0, errTorn
	}
	rec := record{
		typ:  payload[0],
		lsn:  binary.LittleEndian.Uint64(payload[1:recPrefixLen]),
		body: payload[recPrefixLen:],
	}
	if rec.typ < recRegister || rec.typ > recRun {
		return record{}, 0, fmt.Errorf("storage: unknown record type %d at lsn %d", rec.typ, rec.lsn)
	}
	return rec, int64(recHeaderLen) + int64(payloadLen), nil
}

// --- record bodies (JSON) -----------------------------------------------------

// taskBody is one task addition inside a mutateBody, mirroring the
// registry's workflow.Task (an empty Name defaults to the ID on replay,
// exactly as it did on the original apply).
type taskBody struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

// registerBody records a workflow registration (or same-ID replacement).
type registerBody struct {
	ID       string          `json:"id"`
	Version  uint64          `json:"version"`
	Workflow json.RawMessage `json:"workflow"`
}

// mutateBody records a committed mutation batch: the applied tasks and
// edges plus the post-batch version, checked against the replayed
// Mutate's result to catch divergence.
type mutateBody struct {
	ID      string      `json:"id"`
	Version uint64      `json:"version"`
	Tasks   []taskBody  `json:"tasks,omitempty"`
	Edges   [][2]string `json:"edges,omitempty"`
}

// attachBody records a view attach/replace.
type attachBody struct {
	ID      string          `json:"id"`
	VID     string          `json:"vid"`
	Version uint64          `json:"version"`
	View    json.RawMessage `json:"view"`
}

// detachBody records a view detach.
type detachBody struct {
	ID      string `json:"id"`
	VID     string `json:"vid"`
	Version uint64 `json:"version"`
}

// deleteBody records a workflow deletion (explicit or by eviction).
type deleteBody struct {
	ID string `json:"id"`
}

// runBody records one ingested (or replaced) execution trace: the
// canonical run document as produced by the run store. Replay re-ingests
// the document; ingestion is idempotent by run ID, so a record also
// covered by a snapshot replays harmlessly.
type runBody struct {
	ID  string          `json:"id"`  // workflow ID
	Run string          `json:"run"` // run ID
	Doc json.RawMessage `json:"doc"`
}
