// Binary WAL record bodies (PR 9). The hot record kinds — mutation
// batches and ingested runs, the two that dominate both the write path
// and replay — are encoded as compact length-prefixed binary instead of
// JSON: no reflection, no field names, no quoting, and on the run path
// no re-encoding of the normalized document the run store already built.
//
// Every binary body opens with the version tag bodyBinV1. JSON object
// bodies always open with '{' (0x7B), so the decoders below sniff the
// first byte and fall back to the compat JSON decoders in compat.go for
// every record written before PR 9 — recovery of old data dirs is
// unchanged, byte for byte. Bodies sit under the WAL record CRC, so the
// decoders here defend against truncation (a torn record the framing
// admitted) but need not defend against bit rot.
package storage

import (
	"fmt"

	"wolves/internal/binwire"
	"wolves/internal/engine"
	"wolves/internal/workflow"
)

// bodyBinV1 tags the first binary body format. A future v2 gets the
// next byte; decoders reject tags they do not know rather than guess.
const bodyBinV1 = 0x01

// appendMutateBinary encodes a committed mutation batch:
//
//	bodyBinV1 | id | uvarint version
//	| uvarint ntasks | (id, name, kind)*
//	| uvarint nedges | (from, to)*
//
// where every string is uvarint-length-prefixed (binwire).
func appendMutateBinary(dst []byte, id string, version uint64, batch *engine.AppliedBatch) []byte {
	dst = append(dst, bodyBinV1)
	dst = binwire.AppendString(dst, id)
	dst = binwire.AppendUvarint(dst, version)
	dst = binwire.AppendUvarint(dst, uint64(len(batch.Tasks)))
	for _, t := range batch.Tasks {
		dst = binwire.AppendString(dst, t.ID)
		dst = binwire.AppendString(dst, t.Name)
		dst = binwire.AppendString(dst, t.Kind)
	}
	dst = binwire.AppendUvarint(dst, uint64(len(batch.Edges)))
	for _, e := range batch.Edges {
		dst = binwire.AppendString(dst, e[0])
		dst = binwire.AppendString(dst, e[1])
	}
	return dst
}

// appendRunBinary encodes an ingested-run record:
//
//	bodyBinV1 | workflowID | runID | uvarint len(doc) | doc
//
// The doc bytes are the run store's canonical document, embedded
// verbatim — JSON or the run store's own binary form, this layer does
// not care.
func appendRunBinary(dst []byte, workflowID, runID string, doc []byte) []byte {
	dst = append(dst, bodyBinV1)
	dst = binwire.AppendString(dst, workflowID)
	dst = binwire.AppendString(dst, runID)
	return binwire.AppendBytes(dst, doc)
}

// decodeMutateBody decodes a mutate record body of either encoding.
func decodeMutateBody(b []byte) (mutateBody, error) {
	if len(b) == 0 {
		return mutateBody{}, binwire.ErrCorrupt
	}
	if b[0] != bodyBinV1 {
		return decodeMutateJSON(b)
	}
	r := binwire.NewReader(b[1:])
	var m mutateBody
	m.ID = r.String()
	m.Version = r.Uvarint()
	if n := r.Len(3); n > 0 {
		m.Tasks = make([]taskBody, 0, n)
		for i := 0; i < n; i++ {
			m.Tasks = append(m.Tasks, taskBody{ID: r.String(), Name: r.String(), Kind: r.String()})
		}
	}
	if n := r.Len(2); n > 0 {
		m.Edges = make([][2]string, 0, n)
		for i := 0; i < n; i++ {
			m.Edges = append(m.Edges, [2]string{r.String(), r.String()})
		}
	}
	if err := r.Close(); err != nil {
		return mutateBody{}, fmt.Errorf("binary mutate body: %w", err)
	}
	return m, nil
}

// decodeRunBody decodes a run record body of either encoding. The
// binary path returns Doc aliasing b (record payloads are allocated
// per record by the scanner, so the alias is safe to retain).
func decodeRunBody(b []byte) (runBody, error) {
	if len(b) == 0 {
		return runBody{}, binwire.ErrCorrupt
	}
	if b[0] != bodyBinV1 {
		return decodeRunJSON(b)
	}
	r := binwire.NewReader(b[1:])
	var body runBody
	body.ID = r.String()
	body.Run = r.String()
	body.Doc = r.Bytes()
	if err := r.Close(); err != nil {
		return runBody{}, fmt.Errorf("binary run body: %w", err)
	}
	return body, nil
}

// recordWorkflowID extracts just the workflow ID of a register or
// delete record body — the only two kinds the capacity pre-pass needs,
// both JSON-encoded.
func recordWorkflowID(b []byte) (string, error) {
	body, err := decodeDeleteBody(b) // registerBody's ID field has the same shape
	return body.ID, err
}

// mutation converts the decoded body back into the engine's mutation
// shape for replay.
func (m *mutateBody) mutation() engine.Mutation {
	mut := engine.Mutation{Edges: m.Edges}
	for _, t := range m.Tasks {
		mut.Tasks = append(mut.Tasks, workflow.Task{ID: t.ID, Name: t.Name, Kind: t.Kind})
	}
	return mut
}
