package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/runs"
	"wolves/internal/storage/vfs"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// This file is the robustness capstone: a chaos property test that runs
// a mutation+ingest workload while every filesystem operation can fail
// (write errors, short writes, ENOSPC, fsync failures, torn renames),
// and asserts the system's two survival invariants across many seeds:
//
//  1. No wrong answers, ever: a fault surfaces to the client only as a
//     typed degraded error; queries keep serving the in-memory state,
//     which advances only by successfully applied operations.
//  2. Recovery is a committed prefix: after abandoning the faulted
//     store mid-flight (no checkpoint, probe loop frozen) and
//     recovering the directory with a clean filesystem, the restored
//     registry + run store deep-equal the in-memory state as it stood
//     after some applied operation — at or past the last operation
//     that returned success (group commit makes success durable).
//
// Seeds are controlled by WOLVES_CHAOS_SEED_BASE / _SEED_COUNT so CI
// can fan a matrix without touching the code.

const chaosOps = 1000

// chaosSeeds reads the seed window from the environment (base 1,
// count 8 by default; -short trims to 2 seeds).
func chaosSeeds(t *testing.T) []int64 {
	base, count := int64(1), 8
	if v := os.Getenv("WOLVES_CHAOS_SEED_BASE"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("WOLVES_CHAOS_SEED_BASE=%q: %v", v, err)
		}
		base = n
	}
	if v := os.Getenv("WOLVES_CHAOS_SEED_COUNT"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("WOLVES_CHAOS_SEED_COUNT=%q: %v", v, err)
		}
		count = n
	}
	if testing.Short() && count > 2 {
		count = 2
	}
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// chaosDigest hashes the full observable state: every workflow's
// version, fingerprint, canonical documents and maintained reports,
// plus the run store's metadata and canonical run documents. Two states
// with equal digests answer every query identically.
func chaosDigest(t *testing.T, reg *engine.Registry, rs *runs.Store) string {
	t.Helper()
	h := sha256.New()
	h.Write([]byte(mustRegistryFingerprint(t, reg)))
	for _, id := range reg.IDs() {
		ids, docs := rs.SnapshotRuns(id)
		for i, rid := range ids {
			fmt.Fprintf(h, "run:%s/%s=", id, rid)
			h.Write(docs[i])
			h.Write([]byte{'\n'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestChaosWorkloadRecoversToCommittedPrefix(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosSeedRun(t, seed)
		})
	}
}

func chaosSeedRun(t *testing.T, seed int64) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS())
	// FsyncBatch: a successful operation implies its record hit the disk
	// (group commit waits for the fsync covering its LSN), which is what
	// lets lastSuccess below lower-bound the committed prefix. Small
	// segments + an aggressive snapshot cadence maximize rotation,
	// snapshot and compaction traffic — i.e. faultable I/O sites.
	st, err := Open(dir, Options{
		FS: ffs, Fsync: FsyncBatch, SegmentBytes: 8 << 10, SnapshotEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 96, 2048, seed)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st),
		engine.WithProbeBackoff(time.Millisecond, 10*time.Millisecond))
	rRuns := runs.New(reg, runs.WithJournal(st))
	st.SetRunProvider(rRuns)
	lw := wl.register(t, reg, "wf")

	// The registration is the fault-free baseline: digests[0]. Everything
	// after it runs under seeded chaos at every I/O site.
	digests := []string{chaosDigest(t, reg, rRuns)}
	lastSuccess := 0
	ffs.Chaos(seed, 0.02)

	runCount := 0
	for i := 0; i < chaosOps; i++ {
		preVer := lw.Version()
		info, err := lw.Info()
		if err != nil {
			t.Fatal(err)
		}
		preViews := len(info.Views)

		var opErr error
		applied := false
		// A mutation whose whole edge batch is already present applies as
		// a no-op: success with no version bump. Every other op kind must
		// change observable state when it reports success.
		maybeNoop := false
		switch {
		case i%7 == 3:
			_, doc := wl.runDoc(i)
			_, opErr = rRuns.Ingest("wf", doc)
			ids, _ := rRuns.SnapshotRuns("wf")
			if len(ids) != runCount {
				runCount = len(ids)
				applied = true
			}
		case i%23 == 11:
			hasRandom := false
			for _, vid := range info.Views {
				if vid == "random" {
					hasRandom = true
				}
			}
			if hasRandom {
				opErr = lw.DetachView("random")
			} else {
				_, _, opErr = lw.AttachView("random", func(wf *workflow.Workflow) (*view.View, error) {
					return gen.RandomView(wf, 2+wf.N()/5, 7, "random"), nil
				})
			}
			post, err := lw.Info()
			if err != nil {
				t.Fatal(err)
			}
			applied = len(post.Views) != preViews
		default:
			_, opErr = lw.Mutate(wl.mutation(i))
			applied = lw.Version() != preVer
			maybeNoop = true
		}

		// Invariant 1: a fault is only ever visible as a typed degraded
		// error — never a wrong answer, never an opaque internal error.
		if opErr != nil && !engine.IsCode(opErr, engine.ErrDegraded) {
			t.Fatalf("op %d: fault leaked as non-degraded error: %v", i, opErr)
		}
		if opErr == nil && !applied && !maybeNoop {
			t.Fatalf("op %d: reported success without applying", i)
		}
		if applied {
			digests = append(digests, chaosDigest(t, reg, rRuns))
			if opErr == nil {
				lastSuccess = len(digests) - 1
			}
		}
		if reg.Degraded() {
			// Give the probe loop air; ops meanwhile bounce off the gate,
			// which is part of what this test exercises.
			time.Sleep(300 * time.Microsecond)
		}
	}
	if ffs.Injected() == 0 {
		t.Fatalf("seed %d injected no faults; the workload proved nothing", seed)
	}

	// Hard kill mid-flight: freeze the fault filesystem entirely (so a
	// concurrently running probe/resync can no longer touch the
	// directory), abandon the store without a checkpoint, and recover the
	// directory with a clean filesystem — the crashed-machine view.
	for op := vfs.OpOpen; op <= vfs.OpMkdir; op++ {
		ffs.Deny(op, vfs.Fault{})
	}
	_ = st.Close() // releases the directory lock; close errors are the fault fs talking

	st2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer st2.Close()
	reg2 := engine.NewRegistry(engine.New())
	rRuns2 := runs.New(reg2)
	if _, err := st2.RecoverWithRuns(reg2, rRuns2); err != nil {
		t.Fatalf("recover after chaos: %v", err)
	}

	// Invariant 2: the recovered state is a committed prefix — it equals
	// the applied-state digest at some index, and that index is at or
	// past the last operation whose success was acknowledged.
	got := chaosDigest(t, reg2, rRuns2)
	idx := -1
	for k, d := range digests {
		if d == got {
			idx = k
		}
	}
	if idx < 0 {
		t.Fatalf("seed %d: recovered state matches no applied prefix (%d digests, lastSuccess=%d, %d faults injected)",
			seed, len(digests), lastSuccess, ffs.Injected())
	}
	if idx < lastSuccess {
		t.Fatalf("seed %d: recovery lost acknowledged operations: prefix %d < last success %d",
			seed, idx, lastSuccess)
	}
}
