package storage

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wolves/internal/engine"
	"wolves/internal/obs"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// RecoveryStats summarizes what Recover rebuilt.
type RecoveryStats struct {
	// Workflows and Views count what the recovered registry holds.
	Workflows int `json:"workflows"`
	Views     int `json:"views"`
	// Snapshots counts snapshot documents restored; SnapshotsDropped
	// counts corrupt or undecodable ones that were discarded (their
	// workflows may still have been rebuilt from WAL records).
	Snapshots        int `json:"snapshots"`
	SnapshotsDropped int `json:"snapshots_dropped"`
	// Segments counts the WAL segment files scanned during replay.
	Segments int `json:"segments"`
	// Replayed and Skipped count WAL records applied vs already covered
	// by a snapshot (or referencing a workflow evicted during restore).
	Replayed int64 `json:"replayed"`
	Skipped  int64 `json:"skipped"`
	// Runs counts execution traces restored into the run store — from
	// snapshot-embedded documents and uncovered WAL run records alike.
	// Zero when recovery ran without a run restorer.
	Runs int64 `json:"runs"`
	// TornBytes is how much of the last segment the crash tore off.
	TornBytes int64 `json:"torn_bytes"`
	// Workers is the parallelism replay actually ran with (it can be
	// lower than Options.RecoveryWorkers when the capacity headroom
	// forces the sequential path); WallMillis the recovery wall time.
	Workers    int   `json:"workers"`
	WallMillis int64 `json:"wall_millis"`
}

// RunRestorer re-ingests recovered run documents; the run store
// (internal/runs) implements it. RestoreRun must bypass the journal (the
// document being restored is already durable) and must be idempotent by
// run ID — replay may re-apply a run a snapshot already restored.
type RunRestorer interface {
	RestoreRun(workflowID, runID string, doc []byte) error
}

// Recover is RecoverWithRuns without a run restorer: run records and
// snapshot-embedded runs are skipped (counted, not applied). Registries
// that never ingested runs lose nothing.
func (s *Store) Recover(reg *engine.Registry) (*RecoveryStats, error) {
	return s.RecoverWithRuns(reg, nil)
}

// RecoverWithRuns rebuilds reg (and, when rr is non-nil, the run store
// behind it) from the store: snapshots first (each workflow's snapshot
// is independent, so they load and decode on a worker pool), then every
// WAL record not covered by a snapshot, in log order. View reports are
// recomputed by validation — byte-identical to the incrementally
// maintained reports of the pre-crash registry — and runs are re-ingested
// through the ordinary validation path, so their lineage answers are
// byte-identical too. Call it exactly once, on a registry that is not
// yet serving traffic and has no journal installed; install the store
// with reg.SetJournal (and the run store's SetJournal) afterwards.
//
// Replay parallelism (Options.RecoveryWorkers) is a pipeline: one
// reader scans the segments in order, a pool of workers decodes and
// validates record bodies ahead of the apply cursor, and application
// fans out across per-workflow partitions — records of one workflow
// apply in strict LSN order, distinct workflows in parallel (their
// registry entries and run shards are lock-independent). The parallel
// path is equivalence-pinned against RecoveryWorkers=1, the sequential
// reference.
func (s *Store) RecoverWithRuns(reg *engine.Registry, rr RunRestorer) (*RecoveryStats, error) {
	start := time.Now()
	s.mu.Lock()
	if s.recovered {
		s.mu.Unlock()
		return nil, errors.New("storage: Recover called twice")
	}
	if s.failed != nil {
		s.mu.Unlock()
		return nil, s.failed
	}
	snaps, corrupt := s.snaps, s.corrupt
	s.snaps, s.corrupt = nil, nil
	s.mu.Unlock()

	workers := s.opts.RecoveryWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Replay mode: defer per-record epoch publication (and the per-view
	// label rebuilds inside it) until the registry is fully restored —
	// one publication per workflow instead of one per record.
	reg.BeginRestore()
	defer reg.EndRestore()

	stats := &RecoveryStats{TornBytes: s.tornBytes, Workers: workers}
	snapLSN := make(map[string]uint64, len(snaps))
	snapSize := make(map[string]int64, len(snaps))
	for _, ls := range snaps {
		snapLSN[ls.doc.ID] = ls.doc.LSN
		snapSize[ls.doc.ID] = ls.size
	}
	// Refuse rather than truncate: if at any point of the replay the
	// registry would hold more workflows than its capacity, the LRU
	// would evict the overflow — and during recovery an eviction means
	// a durable workflow silently missing from the restored registry. A
	// misconfigured -live-workflows must fail the boot, not lose data.
	// The pre-pass simulates exactly the ID-level lifecycle the replay
	// will perform (snapshots, then uncovered register/delete records)
	// and checks the peak concurrent population; it also reports the
	// no-deletion upper bound that gates parallel apply below.
	peak, upper, err := s.replayPopulation(snapLSN)
	if err != nil {
		return stats, err
	}
	if peak > reg.Capacity() {
		return stats, fmt.Errorf("storage: replay needs room for %d workflows but the registry capacity is %d; raise -live-workflows",
			peak, reg.Capacity())
	}
	for _, path := range corrupt {
		s.fs.Remove(path)
		stats.SnapshotsDropped++
	}
	if err := s.restoreSnapshots(reg, rr, snaps, snapLSN, snapSize, stats, workers); err != nil {
		return stats, err
	}

	deleted := make(map[string]bool)
	paths := s.wal.segmentPaths()
	stats.Segments = len(paths)
	// Parallel apply reorders deletes relative to other workflows'
	// records, so the transient population can reach the no-deletion
	// upper bound; when that exceeds the capacity (sequential peak fits,
	// thanks to interleaved deletes), an LRU eviction — silent data loss
	// — becomes possible and the sequential path is the only safe one.
	replayWorkers := workers
	if upper > reg.Capacity() {
		replayWorkers = 1
	}
	stats.Workers = replayWorkers
	if replayWorkers > 1 {
		err = s.replayParallel(reg, rr, paths, snapLSN, deleted, stats, replayWorkers)
	} else {
		err = s.replaySequential(reg, rr, paths, snapLSN, deleted, stats)
	}
	if err != nil {
		return stats, err
	}

	// Reconcile bookkeeping with what actually survived: workflows the
	// registry holds keep their snapshot coverage. A snapshot file is
	// removed only when a replayed delete record explains its absence —
	// never merely because the workflow is missing from the registry —
	// so no recovery path can silently destroy durable state.
	live := make(map[string]bool)
	for _, id := range reg.IDs() {
		live[id] = true
		stats.Workflows++
	}
	for _, info := range reg.Infos() {
		stats.Views += len(info.Views)
	}
	s.mu.Lock()
	s.wfs = make(map[string]*wfState, len(live))
	for id := range live {
		// Seed lastSnapBytes from the restored snapshot so the
		// size-proportional trigger survives restarts; a workflow
		// restored from WAL records alone starts at the floor and
		// self-corrects on its first snapshot.
		s.wfs[id] = &wfState{snapLSN: snapLSN[id], lastSnapBytes: snapSize[id]}
	}
	s.recovered = true
	s.mu.Unlock()
	for _, ls := range snaps {
		if !live[ls.doc.ID] && deleted[ls.doc.ID] {
			s.fs.Remove(ls.path)
		}
	}
	stats.WallMillis = time.Since(start).Milliseconds()
	obs.MRecoveryRecords.Add(uint64(stats.Replayed))
	obs.MRecoveryRuns.Add(uint64(stats.Runs))
	obs.MRecoverySeconds.Set(stats.WallMillis)
	return stats, nil
}

// replayPopulation simulates the ID-level lifecycle the replay will
// perform — snapshot-restored workflows plus uncovered register/delete
// records in log order — and returns the maximum number of workflows
// alive at any point (peak), plus the count alive if no delete ever
// applied (upper): the worst transient population parallel replay can
// reach when deletes of one workflow apply after registers of others.
func (s *Store) replayPopulation(snapLSN map[string]uint64) (peak, upper int, err error) {
	alive := make(map[string]bool, len(snapLSN))
	ever := make(map[string]bool, len(snapLSN))
	for id := range snapLSN {
		alive[id] = true
		ever[id] = true
	}
	peak = len(alive)
	paths := s.wal.segmentPaths()
	for i, path := range paths {
		_, _, serr := scanSegment(s.fs, path, i == len(paths)-1, func(rec record) error {
			if rec.typ != recRegister && rec.typ != recDelete {
				return nil
			}
			id, derr := recordWorkflowID(rec.body)
			if derr != nil {
				return fmt.Errorf("storage: replay pre-pass lsn %d: %w", rec.lsn, derr)
			}
			if rec.lsn <= snapLSN[id] {
				return nil
			}
			if rec.typ == recRegister {
				ever[id] = true
				if !alive[id] {
					alive[id] = true
					if len(alive) > peak {
						peak = len(alive)
					}
				}
			} else {
				delete(alive, id)
			}
			return nil
		})
		if serr != nil {
			return 0, 0, serr
		}
	}
	return peak, len(ever), nil
}

// decodeError marks snapshot/record payloads that fail to decode.
type decodeError struct{ err error }

func (e *decodeError) Error() string { return e.err.Error() }
func (e *decodeError) Unwrap() error { return e.err }

// restoreSnapshots restores every loaded snapshot into reg. Snapshots
// are per-workflow and their IDs are distinct (one file per ID), so
// with workers > 1 they restore concurrently — Registry.Restore and the
// run restorer are safe for distinct workflow IDs. Corrupt documents
// are dropped under mu (file removed, coverage cleared so the WAL's
// history for that workflow replays in full); real errors abort.
func (s *Store) restoreSnapshots(reg *engine.Registry, rr RunRestorer, snaps []loadedSnapshot,
	snapLSN map[string]uint64, snapSize map[string]int64, stats *RecoveryStats, workers int) error {
	if workers > len(snaps) {
		workers = len(snaps)
	}
	if workers <= 1 {
		for _, ls := range snaps {
			if err := restoreSnapshot(reg, rr, &ls.doc, stats); err != nil {
				if _, ok := err.(*decodeError); ok {
					// A snapshot that does not decode is a half-written file
					// from an unsynced crash: drop it (and its record
					// coverage) and fall back to whatever the log still says.
					reg.Delete(ls.doc.ID) // drop any partially restored state
					s.fs.Remove(ls.path)
					delete(snapLSN, ls.doc.ID)
					delete(snapSize, ls.doc.ID)
					stats.SnapshotsDropped++
					continue
				}
				return err
			}
			stats.Snapshots++
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	idxc := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				if stop.Load() {
					continue
				}
				ls := snaps[i]
				var local RecoveryStats
				err := restoreSnapshot(reg, rr, &ls.doc, &local)
				func() {
					mu.Lock()
					defer mu.Unlock()
					switch {
					case err == nil:
						stats.Snapshots++
						stats.Runs += local.Runs
					default:
						if _, ok := err.(*decodeError); ok {
							reg.Delete(ls.doc.ID)
							s.fs.Remove(ls.path)
							delete(snapLSN, ls.doc.ID)
							delete(snapSize, ls.doc.ID)
							stats.SnapshotsDropped++
						} else if firstErr == nil {
							firstErr = err
							stop.Store(true)
						}
					}
				}()
			}
		}()
	}
	for i := range snaps {
		idxc <- i
	}
	close(idxc)
	wg.Wait()
	return firstErr
}

// restoreSnapshot registers one snapshot document into reg and
// re-ingests its embedded runs.
func restoreSnapshot(reg *engine.Registry, rr RunRestorer, doc *snapshotDoc, stats *RecoveryStats) error {
	wf, err := workflow.DecodeJSON(bytes.NewReader(doc.Workflow))
	if err != nil {
		return &decodeError{fmt.Errorf("snapshot %q: %w", doc.ID, err)}
	}
	views := make([]engine.RestoredView, 0, len(doc.Views))
	for _, sv := range doc.Views {
		raw := sv.View
		views = append(views, engine.RestoredView{ID: sv.ID, Build: func(wf *workflow.Workflow) (*view.View, error) {
			return view.DecodeJSON(wf, bytes.NewReader(raw))
		}})
	}
	if _, err := reg.Restore(doc.ID, doc.Version, wf, views); err != nil {
		return &decodeError{fmt.Errorf("snapshot %q: %w", doc.ID, err)}
	}
	if rr == nil {
		return nil
	}
	for _, sr := range doc.Runs {
		if err := rr.RestoreRun(doc.ID, sr.ID, sr.Doc); err != nil {
			// A run that no longer validates against its own snapshot is a
			// half-written document from an unsynced crash: treat it like a
			// corrupt snapshot and fall back to the WAL's history.
			return &decodeError{fmt.Errorf("snapshot %q: run %q: %w", doc.ID, sr.ID, err)}
		}
		stats.Runs++
	}
	return nil
}

// decodedRec is one WAL record with its body parsed and validated,
// ready to apply. Decoding is the CPU-heavy half of replay (JSON or
// binwire body parse, plus the workflow document decode on register
// records); the parallel path runs it on a worker pool ahead of the
// apply cursor.
type decodedRec struct {
	lsn  uint64
	typ  byte
	wfID string
	skip bool // snapshot-covered: counted, not applied

	wf  *workflow.Workflow // register: decoded workflow document
	reg *registerBody
	mut *mutateBody
	att *attachBody
	det *detachBody
	del *deleteBody
	run *runBody
}

// decodeRecord parses one record's body (sniffing binary vs compat
// JSON), resolves its workflow ID, and pre-decodes the embedded
// workflow document for uncovered register records. The snapLSN map is
// read-only during replay, so decodeRecord is safe to call from many
// goroutines at once.
func decodeRecord(rec record, snapLSN map[string]uint64) (*decodedRec, error) {
	fail := func(err error) (*decodedRec, error) {
		return nil, fmt.Errorf("storage: replay lsn %d: %w", rec.lsn, err)
	}
	d := &decodedRec{lsn: rec.lsn, typ: rec.typ}
	switch rec.typ {
	case recRegister:
		body, err := decodeRegisterBody(rec.body)
		if err != nil {
			return fail(err)
		}
		d.reg, d.wfID = &body, body.ID
		if d.skip = rec.lsn <= snapLSN[body.ID]; d.skip {
			break
		}
		if d.wf, err = workflow.DecodeJSON(bytes.NewReader(body.Workflow)); err != nil {
			return fail(err)
		}
	case recMutate:
		body, err := decodeMutateBody(rec.body)
		if err != nil {
			return fail(err)
		}
		d.mut, d.wfID = &body, body.ID
		d.skip = rec.lsn <= snapLSN[body.ID]
	case recAttach:
		body, err := decodeAttachBody(rec.body)
		if err != nil {
			return fail(err)
		}
		d.att, d.wfID = &body, body.ID
		d.skip = rec.lsn <= snapLSN[body.ID]
	case recDetach:
		body, err := decodeDetachBody(rec.body)
		if err != nil {
			return fail(err)
		}
		d.det, d.wfID = &body, body.ID
		d.skip = rec.lsn <= snapLSN[body.ID]
	case recDelete:
		body, err := decodeDeleteBody(rec.body)
		if err != nil {
			return fail(err)
		}
		d.del, d.wfID = &body, body.ID
		d.skip = rec.lsn <= snapLSN[body.ID]
	case recRun:
		body, err := decodeRunBody(rec.body)
		if err != nil {
			return fail(err)
		}
		d.run, d.wfID = &body, body.ID
		d.skip = rec.lsn <= snapLSN[body.ID]
	default:
		return fail(fmt.Errorf("unknown record type %d", rec.typ))
	}
	return d, nil
}

// applyDecoded applies one decoded record to reg, honoring snapshot
// coverage and tracking applied deletions in deleted (a later register
// for the same ID clears the mark). Unknown-workflow lookups are
// tolerated (the workflow was evicted during restore, or a delete raced
// the crash); anything else a clean log cannot produce is an error. In
// parallel replay each partition owns a disjoint set of workflow IDs,
// so distinct appliers never touch the same registry entry, run shard,
// or deleted-map key.
func applyDecoded(reg *engine.Registry, rr RunRestorer, d *decodedRec, deleted map[string]bool, stats *RecoveryStats) error {
	fail := func(err error) error {
		return fmt.Errorf("storage: replay lsn %d: %w", d.lsn, err)
	}
	if d.skip || (d.typ == recRun && rr == nil) {
		stats.Skipped++
		return nil
	}
	switch d.typ {
	case recRegister:
		if _, err := reg.Restore(d.reg.ID, d.reg.Version, d.wf, nil); err != nil {
			return fail(err)
		}
		delete(deleted, d.reg.ID)
	case recMutate:
		lw, err := reg.Get(d.mut.ID)
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		res, err := lw.Mutate(d.mut.mutation())
		if err != nil {
			return fail(err)
		}
		if res.Version != d.mut.Version {
			return fail(fmt.Errorf("workflow %q replayed to version %d, log says %d",
				d.mut.ID, res.Version, d.mut.Version))
		}
	case recAttach:
		lw, err := reg.Get(d.att.ID)
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		_, _, err = lw.AttachView(d.att.VID, func(wf *workflow.Workflow) (*view.View, error) {
			return view.DecodeJSON(wf, bytes.NewReader(d.att.View))
		})
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
	case recDetach:
		lw, err := reg.Get(d.det.ID)
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		if err := lw.DetachView(d.det.VID); err != nil &&
			!engine.IsCode(err, engine.ErrUnknownView) && !engine.IsCode(err, engine.ErrUnknownWorkflow) {
			return fail(err)
		}
	case recDelete:
		if err := reg.Delete(d.del.ID); err != nil && !engine.IsCode(err, engine.ErrUnknownWorkflow) {
			return fail(err)
		}
		deleted[d.del.ID] = true
	case recRun:
		if err := rr.RestoreRun(d.run.ID, d.run.Run, d.run.Doc); err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		stats.Runs++
	}
	stats.Replayed++
	return nil
}

// replaySequential is the reference replay: decode and apply each
// record inline, in log order. The parallel path is pinned against it
// by TestParallelRecoveryEquivalence.
func (s *Store) replaySequential(reg *engine.Registry, rr RunRestorer, paths []string,
	snapLSN map[string]uint64, deleted map[string]bool, stats *RecoveryStats) error {
	for i, path := range paths {
		_, _, err := scanSegment(s.fs, path, i == len(paths)-1, func(rec record) error {
			d, derr := decodeRecord(rec, snapLSN)
			if derr != nil {
				return derr
			}
			return applyDecoded(reg, rr, d, deleted, stats)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// errReplayStopped aborts a segment scan when another pipeline stage
// already failed; it never escapes replayParallel.
var errReplayStopped = errors.New("storage: replay stopped")

// partitionOf routes a workflow ID onto one of n appliers (FNV-1a).
func partitionOf(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// replayParallel is the pipelined replay: a reader scans segments in
// order and hands raw records to a decode pool; a dispatcher restores
// the global log order over the decoded stream and routes each record
// to a per-workflow partition applier. Records of one workflow always
// land on the same partition in log order (the dispatcher emits in
// global order into FIFO channels), so per-workflow apply order — the
// only order the state machines depend on — is exactly sequential
// replay's; distinct workflows apply concurrently. The caller has
// already ruled out LRU eviction (capacity upper bound), which is the
// one cross-workflow coupling replay has.
func (s *Store) replayParallel(reg *engine.Registry, rr RunRestorer, paths []string,
	snapLSN map[string]uint64, deleted map[string]bool, stats *RecoveryStats, workers int) error {
	type rawRec struct {
		seq uint64
		rec record
	}
	type decRec struct {
		seq uint64
		d   *decodedRec
		err error
	}
	var (
		rawc     = make(chan rawRec, 256)
		decc     = make(chan decRec, 256)
		stop     = make(chan struct{})
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	abort := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	// Stage 1 — reader: sequential segment I/O, in replay order.
	go func() {
		defer close(rawc)
		seq := uint64(0)
		for i, path := range paths {
			_, _, err := scanSegment(s.fs, path, i == len(paths)-1, func(rec record) error {
				seq++
				select {
				case rawc <- rawRec{seq: seq, rec: rec}:
					return nil
				case <-stop:
					return errReplayStopped
				}
			})
			if err != nil {
				if !errors.Is(err, errReplayStopped) {
					abort(err)
				}
				return
			}
		}
	}()

	// Stage 2 — decode pool: body parse + validation ahead of apply.
	var dwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for it := range rawc {
				d, err := decodeRecord(it.rec, snapLSN)
				select {
				case decc <- decRec{seq: it.seq, d: d, err: err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		dwg.Wait()
		close(decc)
	}()

	// Stage 4 — partition appliers (started before the dispatcher so its
	// sends have somewhere to go). Each partition owns a disjoint ID set,
	// with its own deleted-map and stats merged at the end.
	partc := make([]chan *decodedRec, workers)
	partStats := make([]RecoveryStats, workers)
	partDel := make([]map[string]bool, workers)
	var pwg sync.WaitGroup
	for p := 0; p < workers; p++ {
		partc[p] = make(chan *decodedRec, 64)
		partDel[p] = make(map[string]bool)
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for d := range partc[p] {
				if err := applyDecoded(reg, rr, d, partDel[p], &partStats[p]); err != nil {
					abort(err)
					for range partc[p] { // drain so the dispatcher never blocks
					}
					return
				}
			}
		}(p)
	}

	// Stage 3 — dispatcher: restore global order, route by workflow.
	pending := make(map[uint64]decRec)
	next := uint64(1)
dispatch:
	for it := range decc {
		pending[it.seq] = it
		for {
			n, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if n.err != nil {
				abort(n.err)
				break dispatch
			}
			select {
			case partc[partitionOf(n.d.wfID, workers)] <- n.d:
			case <-stop:
				break dispatch
			}
		}
	}
	for _, c := range partc {
		close(c)
	}
	pwg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return err
	}
	for p := 0; p < workers; p++ {
		stats.Replayed += partStats[p].Replayed
		stats.Skipped += partStats[p].Skipped
		stats.Runs += partStats[p].Runs
		for id := range partDel[p] {
			deleted[id] = true
		}
	}
	return nil
}
