package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"wolves/internal/engine"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// RecoveryStats summarizes what Recover rebuilt.
type RecoveryStats struct {
	// Workflows and Views count what the recovered registry holds.
	Workflows int `json:"workflows"`
	Views     int `json:"views"`
	// Snapshots counts snapshot documents restored; SnapshotsDropped
	// counts corrupt or undecodable ones that were discarded (their
	// workflows may still have been rebuilt from WAL records).
	Snapshots        int `json:"snapshots"`
	SnapshotsDropped int `json:"snapshots_dropped"`
	// Replayed and Skipped count WAL records applied vs already covered
	// by a snapshot (or referencing a workflow evicted during restore).
	Replayed int64 `json:"replayed"`
	Skipped  int64 `json:"skipped"`
	// Runs counts execution traces restored into the run store — from
	// snapshot-embedded documents and uncovered WAL run records alike.
	// Zero when recovery ran without a run restorer.
	Runs int64 `json:"runs"`
	// TornBytes is how much of the last segment the crash tore off.
	TornBytes int64 `json:"torn_bytes"`
}

// RunRestorer re-ingests recovered run documents; the run store
// (internal/runs) implements it. RestoreRun must bypass the journal (the
// document being restored is already durable) and must be idempotent by
// run ID — replay may re-apply a run a snapshot already restored.
type RunRestorer interface {
	RestoreRun(workflowID, runID string, doc []byte) error
}

// Recover is RecoverWithRuns without a run restorer: run records and
// snapshot-embedded runs are skipped (counted, not applied). Registries
// that never ingested runs lose nothing.
func (s *Store) Recover(reg *engine.Registry) (*RecoveryStats, error) {
	return s.RecoverWithRuns(reg, nil)
}

// RecoverWithRuns rebuilds reg (and, when rr is non-nil, the run store
// behind it) from the store: snapshots first (ascending LSN, so if the
// registry's capacity forces evictions the freshest state wins), then
// every WAL record not covered by a snapshot, in log order. View reports
// are recomputed by validation — byte-identical to the incrementally
// maintained reports of the pre-crash registry — and runs are re-ingested
// through the ordinary validation path, so their lineage answers are
// byte-identical too. Call it exactly once, on a registry that is not
// yet serving traffic and has no journal installed; install the store
// with reg.SetJournal (and the run store's SetJournal) afterwards.
func (s *Store) RecoverWithRuns(reg *engine.Registry, rr RunRestorer) (*RecoveryStats, error) {
	s.mu.Lock()
	if s.recovered {
		s.mu.Unlock()
		return nil, errors.New("storage: Recover called twice")
	}
	if s.failed != nil {
		s.mu.Unlock()
		return nil, s.failed
	}
	snaps, corrupt := s.snaps, s.corrupt
	s.snaps, s.corrupt = nil, nil
	s.mu.Unlock()

	stats := &RecoveryStats{TornBytes: s.tornBytes}
	snapLSN := make(map[string]uint64, len(snaps))
	snapSize := make(map[string]int64, len(snaps))
	for _, ls := range snaps {
		snapLSN[ls.doc.ID] = ls.doc.LSN
		snapSize[ls.doc.ID] = ls.size
	}
	// Refuse rather than truncate: if at any point of the replay the
	// registry would hold more workflows than its capacity, the LRU
	// would evict the overflow — and during recovery an eviction means
	// a durable workflow silently missing from the restored registry. A
	// misconfigured -live-workflows must fail the boot, not lose data.
	// The pre-pass simulates exactly the ID-level lifecycle the replay
	// will perform (snapshots, then uncovered register/delete records)
	// and checks the peak concurrent population.
	if peak, err := s.peakPopulation(snapLSN); err != nil {
		return stats, err
	} else if peak > reg.Capacity() {
		return stats, fmt.Errorf("storage: replay needs room for %d workflows but the registry capacity is %d; raise -live-workflows",
			peak, reg.Capacity())
	}
	for _, path := range corrupt {
		s.fs.Remove(path)
		stats.SnapshotsDropped++
	}
	for _, ls := range snaps {
		if err := restoreSnapshot(reg, rr, &ls.doc, stats); err != nil {
			// A snapshot that does not decode is a half-written file from
			// an unsynced crash: drop it (and its record coverage, so the
			// WAL's history for this workflow replays in full) and fall
			// back to whatever the log still says.
			if _, ok := err.(*decodeError); ok {
				reg.Delete(ls.doc.ID) // drop any partially restored state
				s.fs.Remove(ls.path)
				delete(snapLSN, ls.doc.ID)
				delete(snapSize, ls.doc.ID)
				stats.SnapshotsDropped++
				continue
			}
			return stats, err
		}
		stats.Snapshots++
	}

	deleted := make(map[string]bool)
	paths := s.wal.segmentPaths()
	for i, path := range paths {
		_, _, err := scanSegment(s.fs, path, i == len(paths)-1, func(rec record) error {
			return s.replayRecord(reg, rr, rec, snapLSN, deleted, stats)
		})
		if err != nil {
			return stats, err
		}
	}

	// Reconcile bookkeeping with what actually survived: workflows the
	// registry holds keep their snapshot coverage. A snapshot file is
	// removed only when a replayed delete record explains its absence —
	// never merely because the workflow is missing from the registry —
	// so no recovery path can silently destroy durable state.
	live := make(map[string]bool)
	for _, id := range reg.IDs() {
		live[id] = true
		stats.Workflows++
	}
	for _, info := range reg.Infos() {
		stats.Views += len(info.Views)
	}
	s.mu.Lock()
	s.wfs = make(map[string]*wfState, len(live))
	for id := range live {
		// Seed lastSnapBytes from the restored snapshot so the
		// size-proportional trigger survives restarts; a workflow
		// restored from WAL records alone starts at the floor and
		// self-corrects on its first snapshot.
		s.wfs[id] = &wfState{snapLSN: snapLSN[id], lastSnapBytes: snapSize[id]}
	}
	s.recovered = true
	s.mu.Unlock()
	for _, ls := range snaps {
		if !live[ls.doc.ID] && deleted[ls.doc.ID] {
			s.fs.Remove(ls.path)
		}
	}
	return stats, nil
}

// peakPopulation simulates the ID-level lifecycle the replay will
// perform — snapshot-restored workflows plus uncovered register/delete
// records in log order — and returns the maximum number of workflows
// alive at any point.
func (s *Store) peakPopulation(snapLSN map[string]uint64) (int, error) {
	alive := make(map[string]bool, len(snapLSN))
	for id := range snapLSN {
		alive[id] = true
	}
	peak := len(alive)
	paths := s.wal.segmentPaths()
	for i, path := range paths {
		_, _, err := scanSegment(s.fs, path, i == len(paths)-1, func(rec record) error {
			if rec.typ != recRegister && rec.typ != recDelete {
				return nil
			}
			var body struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.body, &body); err != nil {
				return fmt.Errorf("storage: replay pre-pass lsn %d: %w", rec.lsn, err)
			}
			if rec.lsn <= snapLSN[body.ID] {
				return nil
			}
			if rec.typ == recRegister {
				if !alive[body.ID] {
					alive[body.ID] = true
					if len(alive) > peak {
						peak = len(alive)
					}
				}
			} else {
				delete(alive, body.ID)
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return peak, nil
}

// decodeError marks snapshot/record payloads that fail to decode.
type decodeError struct{ err error }

func (e *decodeError) Error() string { return e.err.Error() }
func (e *decodeError) Unwrap() error { return e.err }

// restoreSnapshot registers one snapshot document into reg and
// re-ingests its embedded runs.
func restoreSnapshot(reg *engine.Registry, rr RunRestorer, doc *snapshotDoc, stats *RecoveryStats) error {
	wf, err := workflow.DecodeJSON(bytes.NewReader(doc.Workflow))
	if err != nil {
		return &decodeError{fmt.Errorf("snapshot %q: %w", doc.ID, err)}
	}
	views := make([]engine.RestoredView, 0, len(doc.Views))
	for _, sv := range doc.Views {
		raw := sv.View
		views = append(views, engine.RestoredView{ID: sv.ID, Build: func(wf *workflow.Workflow) (*view.View, error) {
			return view.DecodeJSON(wf, bytes.NewReader(raw))
		}})
	}
	if _, err := reg.Restore(doc.ID, doc.Version, wf, views); err != nil {
		return &decodeError{fmt.Errorf("snapshot %q: %w", doc.ID, err)}
	}
	if rr == nil {
		return nil
	}
	for _, sr := range doc.Runs {
		if err := rr.RestoreRun(doc.ID, sr.ID, sr.Doc); err != nil {
			// A run that no longer validates against its own snapshot is a
			// half-written document from an unsynced crash: treat it like a
			// corrupt snapshot and fall back to the WAL's history.
			return &decodeError{fmt.Errorf("snapshot %q: run %q: %w", doc.ID, sr.ID, err)}
		}
		stats.Runs++
	}
	return nil
}

// replayRecord applies one WAL record to reg, honoring snapshot
// coverage and tracking applied deletions in deleted (a later register
// for the same ID clears the mark). Unknown-workflow lookups are
// tolerated (the workflow was evicted during restore, or a delete raced
// the crash); anything else a clean log cannot produce is an error.
func (s *Store) replayRecord(reg *engine.Registry, rr RunRestorer, rec record, snapLSN map[string]uint64, deleted map[string]bool, stats *RecoveryStats) error {
	fail := func(err error) error {
		return fmt.Errorf("storage: replay lsn %d: %w", rec.lsn, err)
	}
	switch rec.typ {
	case recRegister:
		var body registerBody
		if err := json.Unmarshal(rec.body, &body); err != nil {
			return fail(err)
		}
		if rec.lsn <= snapLSN[body.ID] {
			stats.Skipped++
			return nil
		}
		wf, err := workflow.DecodeJSON(bytes.NewReader(body.Workflow))
		if err != nil {
			return fail(err)
		}
		if _, err := reg.Restore(body.ID, body.Version, wf, nil); err != nil {
			return fail(err)
		}
		delete(deleted, body.ID)
	case recMutate:
		var body mutateBody
		if err := json.Unmarshal(rec.body, &body); err != nil {
			return fail(err)
		}
		if rec.lsn <= snapLSN[body.ID] {
			stats.Skipped++
			return nil
		}
		lw, err := reg.Get(body.ID)
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		m := engine.Mutation{Edges: body.Edges}
		for _, t := range body.Tasks {
			m.Tasks = append(m.Tasks, workflow.Task{ID: t.ID, Name: t.Name, Kind: t.Kind})
		}
		res, err := lw.Mutate(m)
		if err != nil {
			return fail(err)
		}
		if res.Version != body.Version {
			return fail(fmt.Errorf("workflow %q replayed to version %d, log says %d",
				body.ID, res.Version, body.Version))
		}
	case recAttach:
		var body attachBody
		if err := json.Unmarshal(rec.body, &body); err != nil {
			return fail(err)
		}
		if rec.lsn <= snapLSN[body.ID] {
			stats.Skipped++
			return nil
		}
		lw, err := reg.Get(body.ID)
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		_, _, err = lw.AttachView(body.VID, func(wf *workflow.Workflow) (*view.View, error) {
			return view.DecodeJSON(wf, bytes.NewReader(body.View))
		})
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
	case recDetach:
		var body detachBody
		if err := json.Unmarshal(rec.body, &body); err != nil {
			return fail(err)
		}
		if rec.lsn <= snapLSN[body.ID] {
			stats.Skipped++
			return nil
		}
		lw, err := reg.Get(body.ID)
		if err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		if err := lw.DetachView(body.VID); err != nil &&
			!engine.IsCode(err, engine.ErrUnknownView) && !engine.IsCode(err, engine.ErrUnknownWorkflow) {
			return fail(err)
		}
	case recDelete:
		var body deleteBody
		if err := json.Unmarshal(rec.body, &body); err != nil {
			return fail(err)
		}
		if rec.lsn <= snapLSN[body.ID] {
			stats.Skipped++
			return nil
		}
		if err := reg.Delete(body.ID); err != nil && !engine.IsCode(err, engine.ErrUnknownWorkflow) {
			return fail(err)
		}
		deleted[body.ID] = true
	case recRun:
		var body runBody
		if err := json.Unmarshal(rec.body, &body); err != nil {
			return fail(err)
		}
		if rec.lsn <= snapLSN[body.ID] || rr == nil {
			stats.Skipped++
			return nil
		}
		if err := rr.RestoreRun(body.ID, body.Run, body.Doc); err != nil {
			if engine.IsCode(err, engine.ErrUnknownWorkflow) {
				stats.Skipped++
				return nil
			}
			return fail(err)
		}
		stats.Runs++
	default:
		return fail(fmt.Errorf("unknown record type %d", rec.typ))
	}
	stats.Replayed++
	return nil
}
