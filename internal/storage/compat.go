// The designated compat codec: every encoding/json touch of WAL record
// bodies and of the workflow/view documents they embed lives in this
// file (snapshot documents, which are JSON by design, live in
// snapshot.go). The jsonseam analyzer fences the rest of the package,
// which keeps the binary write path of PR 9 honest — a hot-path
// json.Marshal cannot creep back in unnoticed.
//
// The JSON shapes are frozen: they are what every WAL written before
// PR 9 contains, and the sniffing decoders in binary.go fall back to
// them whenever a record body does not open with the binary version
// tag (JSON object bodies always open with '{', so the two encodings
// are disjoint on the first byte). The cold record kinds — register,
// attach, detach, delete — still write JSON: they carry workflow/view
// documents that are JSON anyway, or are too rare to matter.
package storage

import (
	"encoding/json"

	"wolves/internal/engine"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// taskBody is one task addition inside a mutateBody, mirroring the
// registry's workflow.Task (an empty Name defaults to the ID on replay,
// exactly as it did on the original apply).
type taskBody struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

// registerBody records a workflow registration (or same-ID replacement).
type registerBody struct {
	ID       string          `json:"id"`
	Version  uint64          `json:"version"`
	Workflow json.RawMessage `json:"workflow"`
}

// mutateBody records a committed mutation batch: the applied tasks and
// edges plus the post-batch version, checked against the replayed
// Mutate's result to catch divergence.
type mutateBody struct {
	ID      string      `json:"id"`
	Version uint64      `json:"version"`
	Tasks   []taskBody  `json:"tasks,omitempty"`
	Edges   [][2]string `json:"edges,omitempty"`
}

// attachBody records a view attach/replace.
type attachBody struct {
	ID      string          `json:"id"`
	VID     string          `json:"vid"`
	Version uint64          `json:"version"`
	View    json.RawMessage `json:"view"`
}

// detachBody records a view detach.
type detachBody struct {
	ID      string `json:"id"`
	VID     string `json:"vid"`
	Version uint64 `json:"version"`
}

// deleteBody records a workflow deletion (explicit or by eviction).
type deleteBody struct {
	ID string `json:"id"`
}

// runBody records one ingested (or replaced) execution trace: the
// canonical run document as produced by the run store. Replay re-ingests
// the document; ingestion is idempotent by run ID, so a record also
// covered by a snapshot replays harmlessly. In the binary body form the
// Doc bytes may themselves be a binary run document — the run store's
// decoder sniffs, exactly like this package's.
type runBody struct {
	ID  string          `json:"id"`  // workflow ID
	Run string          `json:"run"` // run ID
	Doc json.RawMessage `json:"doc"`
}

// --- encoders (cold kinds + the legacy knob) ----------------------------------

func encodeRegisterBody(id string, version uint64, wfRaw json.RawMessage) ([]byte, error) {
	return json.Marshal(registerBody{ID: id, Version: version, Workflow: wfRaw})
}

func encodeAttachBody(id, vid string, version uint64, viewRaw json.RawMessage) ([]byte, error) {
	return json.Marshal(attachBody{ID: id, VID: vid, Version: version, View: viewRaw})
}

func encodeDetachBody(id, vid string, version uint64) ([]byte, error) {
	return json.Marshal(detachBody{ID: id, VID: vid, Version: version})
}

func encodeDeleteBody(id string) ([]byte, error) {
	return json.Marshal(deleteBody{ID: id})
}

// encodeMutateJSON is the pre-PR-9 mutate body encoding, kept for
// Options.LegacyJSONBodies (benchmark baselines and compat tests that
// write old-format directories on purpose).
func encodeMutateJSON(id string, version uint64, batch *engine.AppliedBatch) ([]byte, error) {
	body := mutateBody{ID: id, Version: version, Edges: batch.Edges}
	for _, t := range batch.Tasks {
		body.Tasks = append(body.Tasks, taskBody{ID: t.ID, Name: t.Name, Kind: t.Kind})
	}
	return json.Marshal(body)
}

// encodeRunJSON is the pre-PR-9 run body encoding; doc must be a JSON
// document (the RawMessage embeds it verbatim).
func encodeRunJSON(workflowID, runID string, doc []byte) ([]byte, error) {
	return json.Marshal(runBody{ID: workflowID, Run: runID, Doc: doc})
}

// --- decoders (always-JSON kinds + the compat halves of the sniffers) ---------

func decodeRegisterBody(b []byte) (registerBody, error) {
	var body registerBody
	err := json.Unmarshal(b, &body)
	return body, err
}

func decodeAttachBody(b []byte) (attachBody, error) {
	var body attachBody
	err := json.Unmarshal(b, &body)
	return body, err
}

func decodeDetachBody(b []byte) (detachBody, error) {
	var body detachBody
	err := json.Unmarshal(b, &body)
	return body, err
}

func decodeDeleteBody(b []byte) (deleteBody, error) {
	var body deleteBody
	err := json.Unmarshal(b, &body)
	return body, err
}

func decodeMutateJSON(b []byte) (mutateBody, error) {
	var body mutateBody
	err := json.Unmarshal(b, &body)
	return body, err
}

func decodeRunJSON(b []byte) (runBody, error) {
	var body runBody
	err := json.Unmarshal(b, &body)
	return body, err
}

// --- document marshals --------------------------------------------------------

// marshalWorkflowJSON renders the canonical workflow document embedded
// in register records and snapshots.
func marshalWorkflowJSON(wf *workflow.Workflow) (json.RawMessage, error) {
	return json.Marshal(wf)
}

// marshalViewJSON renders the canonical view document embedded in
// attach records and snapshots.
func marshalViewJSON(v *view.View) (json.RawMessage, error) {
	return json.Marshal(v)
}
