package storage

import (
	"bytes"
	"fmt"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/runs"
)

// buildMixedDir journals a multi-workflow stream — mutations, run
// ingestions, a mid-stream delete + re-register — into dir and
// hard-kills the store (no checkpoint), leaving snapshots, sealed
// segments and a live WAL suffix behind. Returns the workload
// generators and the workflow IDs.
func buildMixedDir(t *testing.T, dir string, opts Options) ([]string, map[string]*mutationWorkload) {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	rsOpts := []runs.Option{runs.WithJournal(st)}
	if opts.LegacyJSONBodies {
		rsOpts = append(rsOpts, runs.WithLegacyJSONDocs())
	}
	rs := runs.New(reg, rsOpts...)
	st.SetRunProvider(rs)

	ids := []string{"wf-a", "wf-b", "wf-c"}
	wls := make(map[string]*mutationWorkload, len(ids))
	lws := make(map[string]*engine.LiveWorkflow, len(ids))
	for k, id := range ids {
		wl := newMutationWorkload(t, 48+8*k, 512, int64(100+k))
		wls[id] = wl
		lws[id] = wl.register(t, reg, id)
	}
	for i := 0; i < 240; i++ {
		id := ids[i%len(ids)]
		if _, err := lws[id].Mutate(wls[id].mutation(i)); err != nil {
			t.Fatalf("mutation %d (%s): %v", i, id, err)
		}
		if i%4 == 0 {
			_, doc := wls[id].runDoc(i)
			if _, err := rs.Ingest(id, doc); err != nil {
				t.Fatalf("ingest %d (%s): %v", i, id, err)
			}
		}
		if i == 120 {
			// A delete and a re-registration mid-stream: replay must apply
			// them in per-workflow order even when records of the other
			// workflows interleave on other partitions.
			if err := reg.Delete("wf-b"); err != nil {
				t.Fatal(err)
			}
			lws["wf-b"] = wls["wf-b"].register(t, reg, "wf-b")
		}
	}
	st.Close() // hard kill: no checkpoint
	return ids, wls
}

// recoverDirAt copies dir aside and recovers it with the given worker
// count into a fresh registry + run store.
func recoverDirAt(t *testing.T, dir string, workers int) (*engine.Registry, *runs.Store, *RecoveryStats) {
	t.Helper()
	sub := t.TempDir()
	copyDir(t, dir, sub)
	opts := testOpts()
	opts.RecoveryWorkers = workers
	st, err := Open(sub, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := engine.NewRegistry(engine.New())
	rs := runs.New(reg)
	stats, err := st.RecoverWithRuns(reg, rs)
	if err != nil {
		t.Fatalf("recover with workers=%d: %v", workers, err)
	}
	return reg, rs, stats
}

// TestParallelRecoveryEquivalence pins the parallel recovery pipeline
// against the sequential reference: the same crashed directory is
// recovered at several worker counts, and every result must match
// workers=1 exactly — registry fingerprints, canonical documents, view
// reports, run lists, audited lineage answers, and the replay counters
// themselves.
func TestParallelRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	ids, _ := buildMixedDir(t, dir, testOpts())

	refReg, refRuns, refStats := recoverDirAt(t, dir, 1)
	if refStats.Workers != 1 {
		t.Fatalf("sequential reference ran with workers=%d", refStats.Workers)
	}
	for _, workers := range []int{2, 4, 8} {
		gotReg, gotRuns, gotStats := recoverDirAt(t, dir, workers)
		if gotStats.Workers != workers {
			t.Fatalf("requested workers=%d but replay ran with %d", workers, gotStats.Workers)
		}
		assertRegistriesEqual(t, gotReg, refReg)
		if got, want := mustRegistryFingerprint(t, gotReg), mustRegistryFingerprint(t, refReg); got != want {
			t.Fatalf("workers=%d: registry fingerprints diverge:\ngot:  %s\nwant: %s", workers, got, want)
		}
		for _, id := range ids {
			assertRunsEqual(t, id, gotRuns, refRuns)
		}
		if gotStats.Replayed != refStats.Replayed || gotStats.Skipped != refStats.Skipped ||
			gotStats.Runs != refStats.Runs || gotStats.Snapshots != refStats.Snapshots ||
			gotStats.Workflows != refStats.Workflows || gotStats.Views != refStats.Views ||
			gotStats.Segments != refStats.Segments {
			t.Fatalf("workers=%d: stats diverge:\ngot:  %+v\nwant: %+v", workers, gotStats, refStats)
		}
	}
}

// TestRecoverJSONEraDataDir pins backward compatibility with data dirs
// written before the binary WAL bodies existed: a directory journaled
// entirely with the legacy JSON encodings (record bodies and canonical
// run documents alike) must recover under the current defaults —
// binary-capable decoders, parallel replay — to the exact same state,
// with every recovered run document byte-identical to the pre-crash
// one. New traffic journaled after the recovery then mixes binary
// records into the JSON-era log, and a second crash + recovery must
// replay across the era seam.
func TestRecoverJSONEraDataDir(t *testing.T) {
	dir := t.TempDir()
	legacy := testOpts()
	legacy.LegacyJSONBodies = true
	ids, wls := buildMixedDir(t, dir, legacy)

	// The on-disk docs are the reference: capture them from a pure
	// legacy-mode recovery (knobs identical to the writer's).
	sub := t.TempDir()
	copyDir(t, dir, sub)
	lst, err := Open(sub, legacy)
	if err != nil {
		t.Fatal(err)
	}
	legacyReg := engine.NewRegistry(engine.New())
	legacyRuns := runs.New(legacyReg, runs.WithLegacyJSONDocs())
	if _, err := lst.RecoverWithRuns(legacyReg, legacyRuns); err != nil {
		t.Fatal(err)
	}
	lst.Close()

	// Recover the same bytes with the current defaults.
	opts := testOpts()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New())
	rs := runs.New(reg)
	stats, err := st.RecoverWithRuns(reg, rs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs == 0 || stats.Workflows != len(ids) {
		t.Fatalf("JSON-era recovery stats: %+v", stats)
	}
	assertRegistriesEqual(t, reg, legacyReg)
	for _, id := range ids {
		assertRunsEqual(t, id, rs, legacyRuns)
		gotIDs, gotDocs := rs.SnapshotRuns(id)
		wantIDs, wantDocs := legacyRuns.SnapshotRuns(id)
		if len(gotIDs) == 0 || len(gotIDs) != len(wantIDs) {
			t.Fatalf("workflow %q: recovered %d runs, want %d", id, len(gotIDs), len(wantIDs))
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] || !bytes.Equal(gotDocs[i], wantDocs[i]) {
				t.Fatalf("workflow %q run %q: recovered document not byte-identical", id, gotIDs[i])
			}
			if len(gotDocs[i]) == 0 || gotDocs[i][0] != '{' {
				t.Fatalf("workflow %q run %q: JSON-era document was re-encoded: %q...", id, gotIDs[i], gotDocs[i][:1])
			}
		}
	}

	// Mixed era: journal binary-bodied traffic on top of the JSON-era
	// log, crash again, recover across the seam.
	reg.SetJournal(st)
	rs.SetJournal(st)
	st.SetRunProvider(rs)
	lw, err := reg.Get("wf-a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := lw.Mutate(wls["wf-a"].mutation(1000 + i)); err != nil {
			t.Fatalf("post-recovery mutation %d: %v", i, err)
		}
		if i%4 == 0 {
			_, doc := wls["wf-a"].runDoc(1000 + i)
			if _, err := rs.Ingest("wf-a", doc); err != nil {
				t.Fatalf("post-recovery ingest %d: %v", i, err)
			}
		}
	}
	st.Close() // hard kill again

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	reg2 := engine.NewRegistry(engine.New())
	rs2 := runs.New(reg2)
	if _, err := st2.RecoverWithRuns(reg2, rs2); err != nil {
		t.Fatalf("mixed-era recovery: %v", err)
	}
	assertRegistriesEqual(t, reg2, reg)
	for _, id := range ids {
		assertRunsEqual(t, id, rs2, rs)
	}
}

// TestRunsIngestedBatch covers the batch journal path end to end: a
// batch append must land every record (contiguously), survive a hard
// kill, and replay identically to individually appended runs.
func TestRunsIngestedBatch(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 48, 256, 77)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	wl.register(t, reg, "wf")
	rs := runs.New(reg, runs.WithJournal(st))
	st.SetRunProvider(rs)

	reference := engine.NewRegistry(engine.New())
	wl.register(t, reference, "wf")
	refRuns := runs.New(reference)

	var docs [][]byte
	for i := 0; i < 24; i++ {
		_, doc := wl.runDoc(i)
		docs = append(docs, doc)
		if _, err := refRuns.Ingest("wf", doc); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := rs.IngestBatch("wf", docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(docs) {
		t.Fatalf("batch returned %d infos for %d docs", len(infos), len(docs))
	}
	for i, info := range infos {
		if info.Run != fmt.Sprintf("run-%d", i) {
			t.Fatalf("info %d out of order: %+v", i, info)
		}
	}
	assertRunsEqual(t, "wf", rs, refRuns)

	st.Close() // hard kill
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recovered := engine.NewRegistry(engine.New())
	recRuns := runs.New(recovered)
	stats, err := st2.RecoverWithRuns(recovered, recRuns)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != int64(len(docs)) {
		t.Fatalf("recovered %d runs, want %d (stats %+v)", stats.Runs, len(docs), stats)
	}
	assertRunsEqual(t, "wf", recRuns, refRuns)
}
