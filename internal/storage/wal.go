package storage

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"wolves/internal/obs"
	"wolves/internal/storage/vfs"
)

// FsyncMode selects the WAL's durability/latency trade-off.
type FsyncMode int

const (
	// FsyncBatch (the zero value, and the default) group-commits: each
	// append is written immediately, then waits for one fsync that is
	// shared with every other append in flight — concurrent commits pay
	// one disk flush between them, not one each.
	FsyncBatch FsyncMode = iota
	// FsyncNone writes each record to the OS (one write syscall) but
	// never fsyncs: a process crash loses nothing, a machine crash can
	// lose the records the OS had not flushed.
	FsyncNone
	// FsyncAlways fsyncs inside every append, serializing commits behind
	// the disk. Strongest guarantee, lowest throughput.
	FsyncAlways
)

// ParseFsyncMode parses the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch strings.ToLower(s) {
	case "batch", "":
		return FsyncBatch, nil
	case "none", "off", "never":
		return FsyncNone, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync mode %q (want none|batch|always)", s)
}

// String renders the flag spelling.
func (m FsyncMode) String() string {
	switch m {
	case FsyncBatch:
		return "batch"
	case FsyncNone:
		return "none"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// sealedSegment is a rotated-out, read-only WAL segment.
type sealedSegment struct {
	seq    uint64
	path   string
	maxLSN uint64 // highest LSN in the segment; 0 when empty
}

// wal owns the segment files of a Store: one append handle on the
// current segment plus the list of sealed predecessors. Appends are
// serialized by mu; fsync batching runs on top (syncMu) so waiting for
// durability never blocks the next writer's append.
type wal struct {
	fs       vfs.FS
	dir      string
	segBytes int64
	mode     FsyncMode

	mu       sync.Mutex
	f        vfs.File
	seq      uint64
	size     int64
	maxLSN   uint64
	sealed   []sealedSegment
	buf      []byte // reusable encode buffer
	writeSeq uint64 // count of appended records (group-commit ticket)
	werr     error  // sticky write/rotate/fsync failure
	torn     bool   // a failed write left bytes we could not truncate away
	goodSize int64  // last clean record boundary, for reopen's truncate

	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	syncedSeq uint64 // highest writeSeq known durable
	syncErr   error  // sticky fsync failure
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// segSeq parses a segment file name; ok is false for foreign files.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable. Failures degrade durability, not correctness; callers ignore
// them on best-effort paths.
func syncDir(fsys vfs.FS, dir string) error {
	return vfs.SyncDir(fsys, dir)
}

// createSegment creates and magic-stamps a fresh segment file. On any
// failure after the create, the partial file is removed (best-effort) so
// a retry can O_EXCL-create the same sequence number again.
func createSegment(fsys vfs.FS, dir string, seq uint64, mode FsyncMode) (vfs.File, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	if mode != FsyncNone {
		if err := syncDir(fsys, dir); err != nil {
			f.Close()
			fsys.Remove(path)
			return nil, err
		}
	}
	return f, nil
}

// walWriteError reports a failed record write. clean means the partial
// bytes were truncated away and the segment still ends on a record
// boundary — the store may retry the append (it does for ENOSPC, after
// compacting); a non-clean failure leaves a torn tail that only reopen
// can repair.
type walWriteError struct {
	err   error
	clean bool
}

func (e *walWriteError) Error() string { return e.err.Error() }
func (e *walWriteError) Unwrap() error { return e.err }

// append encodes and writes rec to the current segment, rotating first
// when the segment is full, and returns the group-commit ticket to pass
// to waitDurable. The write syscall happens here; the fsync (if any)
// happens in waitDurable so callers can release their own locks first.
//
// A failed write syscall is rolled back by truncating the segment to the
// previous record boundary (segments are opened O_APPEND, so the next
// write lands exactly at the truncated end); if even the truncate fails
// the wal is poisoned until reopen. A failed fsync always poisons:
// the kernel may have dropped the dirty pages, so retrying fsync over
// them could succeed while the data is gone (fsyncgate) — the only safe
// continuation is a fresh segment, which reopen provides.
func (w *wal) append(rec record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.werr != nil {
		return 0, w.werr
	}
	w.buf = appendRecord(w.buf[:0], rec)
	if w.size+int64(len(w.buf)) > w.segBytes && w.size > int64(len(segMagic)) {
		if err := w.rotateLocked(); err != nil {
			w.werr = err
			return 0, err
		}
	}
	prevSize := w.size
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		if terr := w.fs.Truncate(filepath.Join(w.dir, segName(w.seq)), prevSize); terr == nil {
			w.size = prevSize
			return 0, &walWriteError{err: err, clean: true}
		}
		w.torn = true
		w.goodSize = prevSize
		w.werr = err
		return 0, &walWriteError{err: err}
	}
	if w.mode == FsyncAlways {
		obs.MWALFsyncs.Inc()
		if err := w.f.Sync(); err != nil {
			// The write landed but its fsync failed: the record's pages may
			// already be dropped (fsyncgate), and the store never assigned
			// its LSN (the append errors out). Mark the tail torn at the
			// pre-record boundary so reopen truncates the suspect bytes
			// away — otherwise the sealed segment would advertise an LSN
			// the store reuses, blocking compaction forever and replaying
			// the unacknowledged record on top of the resync snapshot.
			w.torn = true
			w.goodSize = prevSize
			w.werr = err
			return 0, err
		}
	}
	w.maxLSN = rec.lsn
	w.writeSeq++
	obs.MWALAppends.Inc()
	obs.MWALAppendBytes.Add(uint64(n))
	return w.writeSeq, nil
}

// waitDurable blocks until the append identified by ticket is durable
// under the configured mode. For FsyncBatch the first waiter becomes the
// group leader: it fsyncs everything written so far on behalf of every
// other waiter, which merely sleeps on the condition variable.
func (w *wal) waitDurable(ticket uint64) error {
	switch w.mode {
	case FsyncNone, FsyncAlways:
		return nil // none: nothing to wait for; always: synced in append
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for w.syncedSeq < ticket {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()
		w.mu.Lock()
		f := w.f
		top := w.writeSeq
		w.mu.Unlock()
		obs.MWALFsyncs.Inc()
		err := f.Sync()
		w.syncMu.Lock()
		w.syncing = false
		if err != nil && !errors.Is(err, os.ErrClosed) {
			// ErrClosed means the segment rotated under us; rotation
			// fsyncs before sealing, so those records are already safe.
			w.syncErr = err
		} else if top > w.syncedSeq {
			// The leader's fsync covered every record up to top: that is
			// the group-commit batch riding this one flush.
			obs.MWALGroupCommit.Observe(float64(top - w.syncedSeq))
			w.syncedSeq = top
		}
		w.syncCond.Broadcast()
	}
	return nil
}

// rotateLocked seals the current segment (fsyncing it unless FsyncNone)
// and opens the next one. Callers hold w.mu.
func (w *wal) rotateLocked() error {
	if w.mode != FsyncNone {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, sealedSegment{
		seq:    w.seq,
		path:   filepath.Join(w.dir, segName(w.seq)),
		maxLSN: w.maxLSN,
	})
	// Everything written so far now lives in a sealed, fsynced segment:
	// let group-commit waiters go without another flush.
	if w.mode == FsyncBatch {
		w.syncMu.Lock()
		if w.writeSeq > w.syncedSeq {
			w.syncedSeq = w.writeSeq
		}
		w.syncCond.Broadcast()
		w.syncMu.Unlock()
	}
	f, err := createSegment(w.fs, w.dir, w.seq+1, w.mode)
	if err != nil {
		return err
	}
	w.seq++
	w.f = f
	w.size = int64(len(segMagic))
	w.maxLSN = 0
	obs.MWALRotations.Inc()
	return nil
}

// reopen repairs a poisoned wal for Store.Probe: it restores a clean
// tail on the current segment if a failed write left a torn one, then
// seals that segment WITHOUT fsyncing it — after an fsync failure the
// kernel may have dropped the dirty pages, and re-fsyncing could report
// success over lost data (fsyncgate), so the suspect segment is never
// flushed again — and opens a fresh segment for future appends. Sticky
// write and sync errors are cleared only once the fresh segment exists.
//
// The records in the suspect segment are intact on-disk bytes of
// already-acknowledged-or-failed operations; the caller (Store.Resync)
// immediately re-snapshots every live workflow so the segment is fully
// covered and compacted away before the store accepts new appends.
//
// reopen is idempotent on failure: nothing is mutated until the fresh
// segment has been created.
func (w *wal) reopen() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("storage: wal closed")
	}
	if w.torn {
		if err := w.fs.Truncate(filepath.Join(w.dir, segName(w.seq)), w.goodSize); err != nil {
			return err
		}
		w.torn = false
		w.size = w.goodSize
	}
	f, err := createSegment(w.fs, w.dir, w.seq+1, w.mode)
	if errors.Is(err, os.ErrExist) {
		// A previous reopen created the next segment and then failed
		// before adopting it; clear the debris and try once more.
		if rerr := w.fs.Remove(filepath.Join(w.dir, segName(w.seq+1))); rerr != nil {
			return rerr
		}
		f, err = createSegment(w.fs, w.dir, w.seq+1, w.mode)
	}
	if err != nil {
		return err
	}
	w.f.Close() // suspect segment: close unsynced, never fsync again
	w.sealed = append(w.sealed, sealedSegment{
		seq:    w.seq,
		path:   filepath.Join(w.dir, segName(w.seq)),
		maxLSN: w.maxLSN,
	})
	w.seq++
	w.f = f
	w.size = int64(len(segMagic))
	w.maxLSN = 0
	obs.MWALRotations.Inc()
	w.werr = nil
	w.syncMu.Lock()
	w.syncErr = nil
	w.syncedSeq = w.writeSeq
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return nil
}

// seal rotates unconditionally (checkpointing uses it so compaction can
// reclaim the current segment too). A segment holding no records is left
// in place.
func (w *wal) seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.werr != nil {
		return w.werr
	}
	if w.size <= int64(len(segMagic)) {
		return nil
	}
	if err := w.rotateLocked(); err != nil {
		w.werr = err
		return err
	}
	return nil
}

// compact deletes sealed segments whose every record is covered by
// snapshots (maxLSN <= coveredLSN).
func (w *wal) compact(coveredLSN uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.sealed[:0]
	removed := false
	for _, seg := range w.sealed {
		if seg.maxLSN <= coveredLSN {
			// Best-effort: a segment that refuses to die only delays
			// compaction, it never corrupts state.
			if err := w.fs.Remove(seg.path); err == nil || os.IsNotExist(err) {
				removed = true
				continue
			}
		}
		kept = append(kept, seg)
	}
	w.sealed = kept
	if removed && w.mode != FsyncNone {
		_ = syncDir(w.fs, w.dir)
	}
}

// segmentPaths returns every segment path in replay order (sealed then
// current). Only safe before concurrent appends start or under external
// serialization; recovery runs single-threaded before traffic.
func (w *wal) segmentPaths() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	paths := make([]string, 0, len(w.sealed)+1)
	for _, seg := range w.sealed {
		paths = append(paths, seg.path)
	}
	paths = append(paths, filepath.Join(w.dir, segName(w.seq)))
	return paths
}

// close flushes and closes the current segment.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.mode != FsyncNone && w.werr == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// scanSegment validates one segment file, invoking fn per record, and
// returns the byte offset after the last valid record plus whether the
// tail was torn. isLast controls torn-tail tolerance: a short or
// corrupt record at the tail of the last segment is where the crash
// happened; anywhere else it is unrecoverable corruption.
func scanSegment(fsys vfs.FS, path string, isLast bool, fn func(rec record) error) (int64, bool, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if isLast && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			return 0, true, nil // crash before the magic finished
		}
		return 0, false, fmt.Errorf("storage: %s: unreadable header: %w", path, err)
	}
	if !bytes.Equal(magic[:], segMagic) {
		return 0, false, fmt.Errorf("storage: %s: not a WOLVES WAL segment", path)
	}
	off := int64(len(segMagic))
	for {
		rec, n, err := readRecord(br)
		if err == io.EOF {
			return off, false, nil
		}
		if errors.Is(err, errTorn) {
			if isLast {
				return off, true, nil
			}
			return off, false, fmt.Errorf("storage: %s: corrupt record at offset %d", path, off)
		}
		if err != nil {
			return off, false, fmt.Errorf("storage: %s: offset %d: %w", path, off, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, false, err
			}
		}
		off += n
	}
}

// listSegments returns the segment files of dir sorted by sequence.
func listSegments(fsys vfs.FS, dir string) ([]sealedSegment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []sealedSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := segSeq(e.Name()); ok {
			segs = append(segs, sealedSegment{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq != segs[i-1].seq+1 {
			return nil, fmt.Errorf("storage: segment gap: %s jumps to %s",
				filepath.Base(segs[i-1].path), filepath.Base(segs[i].path))
		}
	}
	return segs, nil
}
