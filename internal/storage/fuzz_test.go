package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/workflow"
)

// FuzzReadRecord throws arbitrary bytes at the WAL record scanner. The
// framing invariants under test:
//
//  1. readRecord never panics and never allocates a payload buffer
//     beyond maxRecordLen, no matter what the length field claims.
//  2. Anything readRecord accepts survives a decode → re-encode →
//     decode round trip byte-for-byte: the scanner only admits records
//     appendRecord could have written.
//  3. The consumed-byte count is exact, so the torn-tail truncation
//     logic (which trusts it) cannot cut mid-record.
func FuzzReadRecord(f *testing.F) {
	// A valid record of every type, an empty-body record, and classic
	// corruptions: flipped CRC, truncated payload, oversized length.
	for typ := recRegister; typ <= recRun; typ++ {
		f.Add(appendRecord(nil, record{typ: typ, lsn: uint64(typ) * 7, body: []byte(`{"id":"wf"}`)}))
	}
	f.Add(appendRecord(nil, record{typ: recRegister, lsn: 1}))
	// Binary-bodied hot records (PR 9): a mutate batch and a run record
	// in the binwire encoding, plus a run record wrapping a binary
	// canonical document (first byte 0xD1, not valid JSON either).
	mutBin := appendMutateBinary(nil, "wf", 9, &engine.AppliedBatch{
		Tasks: []workflow.Task{{ID: "t1", Name: "align", Kind: "exec"}},
		Edges: [][2]string{{"t0", "t1"}},
	})
	f.Add(appendRecord(nil, record{typ: recMutate, lsn: 10, body: mutBin}))
	f.Add(appendRecord(nil, record{typ: recRun, lsn: 11,
		body: appendRunBinary(nil, "wf", "r1", []byte(`{"run":"r1"}`))}))
	f.Add(appendRecord(nil, record{typ: recRun, lsn: 12,
		body: appendRunBinary(nil, "wf", "r2", []byte{0xD1, 0x02, 'r', '2', 0x00, 0x00, 0x00})}))
	truncBin := appendRecord(nil, record{typ: recMutate, lsn: 13, body: mutBin[:len(mutBin)-2]})
	f.Add(truncBin)
	valid := appendRecord(nil, record{typ: recMutate, lsn: 2, body: []byte(`{"id":"x","version":3}`)})
	flipped := append([]byte(nil), valid...)
	flipped[4] ^= 0xff // CRC byte
	f.Add(flipped)
	f.Add(valid[:len(valid)-3])
	huge := binary.LittleEndian.AppendUint32(nil, maxRecordLen+1)
	f.Add(append(huge, valid[4:]...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		consumed := int64(0)
		for {
			rec, n, err := readRecord(r)
			if err != nil {
				// The only sanctioned failures: clean end of input, a torn
				// record, or a well-framed record of an unknown type.
				if err == io.EOF || errors.Is(err, errTorn) ||
					strings.HasPrefix(err.Error(), "storage: unknown record type") {
					break
				}
				t.Fatalf("readRecord: unexpected error shape: %v", err)
			}
			if rec.typ < recRegister || rec.typ > recRun {
				t.Fatalf("accepted record with unknown type %d", rec.typ)
			}
			if n != int64(recHeaderLen+recPrefixLen+len(rec.body)) {
				t.Fatalf("consumed %d bytes for a %d-byte body", n, len(rec.body))
			}
			// Round trip: re-encoding the accepted record must reproduce
			// the exact bytes the scanner consumed.
			reenc := appendRecord(nil, rec)
			if int64(len(reenc)) != n {
				t.Fatalf("re-encode length %d != consumed %d", len(reenc), n)
			}
			if !bytes.Equal(reenc, data[consumed:consumed+n]) {
				t.Fatalf("re-encode diverges from accepted input at offset %d", consumed)
			}
			if crc32.Checksum(reenc[recHeaderLen:], crcTable) != binary.LittleEndian.Uint32(reenc[4:8]) {
				t.Fatal("re-encoded record carries a bad CRC")
			}
			consumed += n
		}
	})
}
