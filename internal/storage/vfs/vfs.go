// Package vfs is the filesystem seam under internal/storage: every disk
// operation the WAL, snapshot and recovery code performs goes through an
// FS, so tests can inject faults at any I/O site (see FaultFS) while
// production uses the os-backed implementation returned by OS.
//
// The seam deliberately mirrors the handful of os calls the store makes
// (open/write/fsync/rename/remove/truncate/stat/readdir/mkdir) instead
// of io/fs: the store needs writes, syncs and renames, which io/fs does
// not model.
package vfs

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// File is the subset of *os.File the storage layer uses. Directory
// handles opened read-only also satisfy it (Sync on a directory handle
// is how directory entries are made durable).
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of a Store's data directory.
// All paths are passed through verbatim; implementations must preserve
// os error semantics (os.IsNotExist, os.ErrClosed, syscall errnos) so
// the store's error classification keeps working.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(name string, perm os.FileMode) error
	// Lock opens (creating if missing) name and takes an exclusive,
	// non-blocking advisory lock on it. Closing the returned handle
	// releases the lock. A second Lock on a file held by another
	// process fails with an error mentioning the holder.
	Lock(name string) (File, error)
}

// OS returns the production FS backed by the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Lock(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("vfs: %s is already locked by another process: %w", name, err)
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// ReadFile reads name in full through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to name through fsys, truncating any previous
// contents, with os.WriteFile semantics.
func WriteFile(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// SyncDir fsyncs a directory through fsys so renames/creates/removes
// inside it are durable.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
