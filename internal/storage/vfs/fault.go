package vfs

import (
	"errors"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// Op identifies one class of filesystem operation for fault scheduling.
type Op uint8

const (
	OpOpen Op = iota // OpenFile, for files and directory handles alike
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpTruncate
	OpStat
	OpReadDir
	OpMkdir
	OpLock
	opCount
)

var opNames = [opCount]string{"open", "read", "write", "sync", "close", "rename", "remove", "truncate", "stat", "readdir", "mkdir", "lock"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Fault describes one injected failure.
type Fault struct {
	// Err is the error returned to the caller. Defaults to EIO.
	Err error
	// Short makes an OpWrite fault a short write: half the buffer is
	// written through to the underlying file before Err is returned, so
	// the file holds a torn record.
	Short bool
	// TornRename makes an OpRename fault remove the source file before
	// returning Err — modeling a crash window where the temp file is
	// gone but the destination never appeared.
	TornRename bool
}

func (f Fault) err() error {
	if f.Err == nil {
		return syscall.EIO
	}
	return f.Err
}

// ErrInjected wraps every injected error so tests can assert a failure
// came from the harness and not from the real disk.
var ErrInjected = errors.New("vfs: injected fault")

type injectedError struct {
	op  Op
	err error
}

func (e *injectedError) Error() string {
	return "vfs: injected " + e.op.String() + " fault: " + e.err.Error()
}
func (e *injectedError) Unwrap() error { return e.err }
func (e *injectedError) Is(target error) bool {
	return target == ErrInjected || errors.Is(e.err, target)
}

type rule struct {
	op  Op
	nth uint64 // 1-based occurrence count that trips the rule
	f   Fault
}

// FaultFS wraps an FS and injects scheduled faults. Three schedules
// compose, checked in order for every operation:
//
//  1. FailNth rules — deterministic one-shot faults on the n-th
//     occurrence of an op (counted from the rule's installation).
//  2. Deny — every occurrence of an op fails until Allow.
//  3. Chaos — a seeded random schedule failing each matching op with a
//     fixed probability, choosing among error kinds (EIO, ENOSPC, short
//     writes, torn renames) pseudo-randomly.
//
// All methods are safe for concurrent use; tests flip faults on and off
// while a store is serving traffic.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	counts   [opCount]uint64
	rules    []rule
	deny     [opCount]*Fault
	rng      *rand.Rand
	prob     float64
	chaosOps [opCount]bool
	injected uint64
}

// NewFault wraps inner with a fault injector that (until scheduled
// otherwise) passes every operation through.
func NewFault(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// FailNth schedules flt on the n-th occurrence (1-based, counted from
// now) of op. The rule fires once and is discarded.
func (f *FaultFS) FailNth(op Op, n uint64, flt Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rule{op: op, nth: f.counts[op] + n, f: flt})
}

// Deny fails every subsequent occurrence of op with flt until Allow.
func (f *FaultFS) Deny(op Op, flt Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := flt
	f.deny[op] = &c
}

// Allow clears a Deny on op.
func (f *FaultFS) Allow(op Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deny[op] = nil
}

// Chaos enables the seeded random schedule: each matching op fails with
// probability prob. An empty ops list matches every operation kind.
func (f *FaultFS) Chaos(seed int64, prob float64, ops ...Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
	f.prob = prob
	f.chaosOps = [opCount]bool{}
	if len(ops) == 0 {
		for i := range f.chaosOps {
			f.chaosOps[i] = true
		}
		return
	}
	for _, op := range ops {
		f.chaosOps[op] = true
	}
}

// Heal clears every schedule: pending FailNth rules, denies and chaos.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.deny = [opCount]*Fault{}
	f.rng = nil
	f.prob = 0
}

// Count reports how many operations of kind op have been attempted.
func (f *FaultFS) Count(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Injected reports how many faults have fired so far.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// check counts one occurrence of op and returns the fault to inject, or
// nil to pass the operation through.
func (f *FaultFS) check(op Op) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	n := f.counts[op]
	for i, r := range f.rules {
		if r.op == op && r.nth == n {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
			f.injected++
			flt := r.f
			return &flt
		}
	}
	if flt := f.deny[op]; flt != nil {
		f.injected++
		c := *flt
		return &c
	}
	if f.rng != nil && f.chaosOps[op] && f.rng.Float64() < f.prob {
		f.injected++
		return f.chaosFault(op)
	}
	return nil
}

// chaosFault picks an error kind for op; callers hold f.mu.
func (f *FaultFS) chaosFault(op Op) *Fault {
	switch op {
	case OpWrite:
		switch f.rng.Intn(3) {
		case 0:
			return &Fault{Err: syscall.EIO}
		case 1:
			return &Fault{Err: syscall.ENOSPC}
		default:
			return &Fault{Err: syscall.EIO, Short: true}
		}
	case OpRename:
		switch f.rng.Intn(3) {
		case 0:
			return &Fault{Err: syscall.EIO}
		case 1:
			return &Fault{Err: syscall.ENOSPC}
		default:
			return &Fault{Err: syscall.EIO, TornRename: true}
		}
	default:
		if f.rng.Intn(2) == 0 {
			return &Fault{Err: syscall.ENOSPC}
		}
		return &Fault{Err: syscall.EIO}
	}
}

func (f *FaultFS) fire(op Op) error {
	if flt := f.check(op); flt != nil {
		return &injectedError{op: op, err: flt.err()}
	}
	return nil
}

// --- FS -----------------------------------------------------------------------

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.fire(OpOpen); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Lock(name string) (File, error) {
	if err := f.fire(OpLock); err != nil {
		return nil, err
	}
	inner, err := f.inner.Lock(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if flt := f.check(OpRename); flt != nil {
		if flt.TornRename {
			f.inner.Remove(oldpath)
		}
		return &injectedError{op: OpRename, err: flt.err()}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.fire(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.fire(OpTruncate); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if err := f.fire(OpStat); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.fire(OpReadDir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	if err := f.fire(OpMkdir); err != nil {
		return err
	}
	return f.inner.MkdirAll(name, perm)
}

// --- File ---------------------------------------------------------------------

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.fire(OpRead); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if flt := f.fs.check(OpWrite); flt != nil {
		n := 0
		if flt.Short && len(p) > 1 {
			n, _ = f.inner.Write(p[:len(p)/2])
		}
		return n, &injectedError{op: OpWrite, err: flt.err()}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.fire(OpSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if err := f.fs.fire(OpClose); err != nil {
		f.inner.Close() // don't leak the descriptor; the caller sees the fault
		return err
	}
	return f.inner.Close()
}
