package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFailNthIsDeterministicAndOneShot(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS())
	ffs.FailNth(OpWrite, 2, Fault{Err: syscall.EIO})

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("1st write: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("2nd write: want injected EIO, got %v", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("3rd write after one-shot rule: %v", err)
	}
	if got := ffs.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestShortWriteLeavesTornBytes(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS())
	path := filepath.Join(dir, "torn")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.FailNth(OpWrite, 1, Fault{Err: syscall.EIO, Short: true})
	n, err := f.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("short write reported success")
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("file holds %q, want torn prefix %q", data, "01234")
	}
}

func TestTornRenameRemovesSource(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS())
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs.FailNth(OpRename, 1, Fault{Err: syscall.EIO, TornRename: true})
	if err := ffs.Rename(src, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: want injected fault, got %v", err)
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatalf("source survived torn rename: %v", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination appeared despite torn rename: %v", err)
	}
}

func TestDenyUntilAllow(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS())
	ffs.Deny(OpOpen, Fault{Err: syscall.ENOSPC})
	if _, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("denied open: want ENOSPC, got %v", err)
	}
	ffs.Allow(OpOpen)
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open after Allow: %v", err)
	}
	f.Close()
}

func TestChaosIsSeedDeterministicAndHealable(t *testing.T) {
	run := func(seed int64) []uint64 {
		dir := t.TempDir()
		ffs := NewFault(OS())
		ffs.Chaos(seed, 0.5, OpWrite, OpSync)
		f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var marks []uint64
		for i := 0; i < 64; i++ {
			if _, err := f.Write([]byte("x")); err != nil {
				marks = append(marks, uint64(i))
			}
		}
		return marks
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("chaos at p=0.5 injected nothing in 64 writes")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}

	dir := t.TempDir()
	ffs := NewFault(OS())
	ffs.Chaos(7, 1.0)
	if _, err := ffs.Stat(dir); err == nil {
		t.Fatal("chaos at p=1 let a stat through")
	}
	ffs.Heal()
	if _, err := ffs.Stat(dir); err != nil {
		t.Fatalf("stat after Heal: %v", err)
	}
}
