package storage

import (
	"testing"

	"wolves/internal/engine"
	"wolves/internal/runs"
)

// benchRecoverDir builds a run-heavy crashed data dir: four workflows,
// each with a trickle of mutations and a flood of ingested runs — the
// record mix of a provenance store doing its job (PR 9's motivating
// profile). legacy selects the pre-PR-9 encodings (JSON record bodies,
// JSON canonical run documents) for the baseline config. Snapshots are
// disabled so recovery replays every record.
func benchRecoverDir(b *testing.B, legacy bool) (string, int64) {
	b.Helper()
	dir := b.TempDir()
	opts := Options{Fsync: FsyncNone, SnapshotBytes: 1 << 40, LegacyJSONBodies: legacy}
	st, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	rsOpts := []runs.Option{runs.WithJournal(st)}
	if legacy {
		rsOpts = append(rsOpts, runs.WithLegacyJSONDocs())
	}
	rs := runs.New(reg, rsOpts...)
	st.SetRunProvider(rs)

	var records int64
	for k, id := range []string{"wf-a", "wf-b", "wf-c", "wf-d"} {
		wl := newMutationWorkload(b, 128, 1024, int64(300+k))
		lw := wl.register(b, reg, id)
		for i := 0; i < 64; i++ {
			if _, err := lw.Mutate(wl.mutation(i)); err != nil {
				b.Fatal(err)
			}
			records++
		}
		for i := 0; i < 512; i++ {
			_, doc := wl.runDoc(i)
			if _, err := rs.Ingest(id, doc); err != nil {
				b.Fatal(err)
			}
			records++
		}
	}
	if err := st.Close(); err != nil { // hard kill: no checkpoint
		b.Fatal(err)
	}
	return dir, records
}

// BenchmarkRecover measures end-to-end cold-boot recovery throughput —
// Open + RecoverWithRuns + Close over a run-heavy WAL — in the three
// configurations PR 9 compares:
//
//	json/workers=1      the pre-PR-9 baseline: JSON record bodies, JSON
//	                    canonical run documents, sequential replay
//	binary/workers=1    binary bodies + binary run documents, sequential
//	binary/workers=N    same bytes through the parallel replay pipeline
//
// Reported as records/sec. The acceptance bar is binary ≥ 3x json.
func BenchmarkRecover(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		legacy  bool
		workers int
	}{
		{"json/workers=1", true, 1},
		{"binary/workers=1", false, 1},
		{"binary/workers=max", false, 0}, // 0 = GOMAXPROCS
	} {
		b.Run(cfg.name, func(b *testing.B) {
			dir, records := benchRecoverDir(b, cfg.legacy)
			b.ReportAllocs()
			b.ResetTimer()
			var replayed int64
			for i := 0; i < b.N; i++ {
				st, err := Open(dir, Options{Fsync: FsyncNone, RecoveryWorkers: cfg.workers})
				if err != nil {
					b.Fatal(err)
				}
				reg := engine.NewRegistry(engine.New())
				rs := runs.New(reg)
				stats, err := st.RecoverWithRuns(reg, rs)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Replayed < records {
					b.Fatalf("replayed %d records, want >= %d", stats.Replayed, records)
				}
				replayed += stats.Replayed
				st.Close()
			}
			b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}
