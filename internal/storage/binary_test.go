package storage

import (
	"bytes"
	"reflect"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/workflow"
)

// TestBinaryBodyRoundTrip pins the binary WAL body codecs against the
// JSON compat codecs: the same logical record must decode to the same
// body regardless of which encoding carried it, and the two encodings
// must stay byte-sniff disjoint (binary opens bodyBinV1, JSON opens
// '{').
func TestBinaryBodyRoundTrip(t *testing.T) {
	batch := &engine.AppliedBatch{
		Tasks: []workflow.Task{
			{ID: "t1", Name: "align", Kind: "exec"},
			{ID: "t2", Name: "", Kind: ""}, // empty optional fields survive
		},
		Edges: [][2]string{{"t1", "t2"}, {"t0", "t1"}},
	}
	bin := appendMutateBinary(nil, "wf/α", 41, batch)
	if bin[0] != bodyBinV1 {
		t.Fatalf("binary mutate body opens 0x%02x", bin[0])
	}
	jsonBody, err := encodeMutateJSON("wf/α", 41, batch)
	if err != nil {
		t.Fatal(err)
	}
	if jsonBody[0] != '{' {
		t.Fatalf("JSON mutate body opens 0x%02x", jsonBody[0])
	}
	fromBin, err := decodeMutateBody(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := decodeMutateBody(jsonBody)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin, fromJSON) {
		t.Fatalf("decoded bodies diverge:\nbinary: %+v\njson:   %+v", fromBin, fromJSON)
	}
	if !reflect.DeepEqual(fromBin.mutation().Edges, batch.Edges) || len(fromBin.mutation().Tasks) != 2 {
		t.Fatalf("mutation reconstruction: %+v", fromBin.mutation())
	}

	// Run bodies: the embedded document is opaque — JSON or the run
	// store's binary form must pass through verbatim.
	for _, doc := range [][]byte{[]byte(`{"run":"r1"}`), {0xD1, 0x05, 0x02, 'r', '1', 0x00, 0x00, 0x00}, {}} {
		body := appendRunBinary(nil, "wf", "r1", doc)
		got, err := decodeRunBody(body)
		if err != nil {
			t.Fatalf("doc %v: %v", doc, err)
		}
		if got.ID != "wf" || got.Run != "r1" || !bytes.Equal(got.Doc, doc) {
			t.Fatalf("doc %v round-tripped to %+v", doc, got)
		}
	}

	// Every truncation of a binary body must error, never panic or
	// decode to a half-filled body.
	for cut := 0; cut < len(bin); cut++ {
		if _, err := decodeMutateBody(bin[:cut]); err == nil {
			t.Fatalf("mutate body truncated to %d bytes decoded clean", cut)
		}
	}
	runBin := appendRunBinary(nil, "wf", "r1", []byte(`{"run":"r1"}`))
	for cut := 0; cut < len(runBin); cut++ {
		if _, err := decodeRunBody(runBin[:cut]); err == nil {
			t.Fatalf("run body truncated to %d bytes decoded clean", cut)
		}
	}

	// Trailing garbage after a well-formed body is corruption, not
	// silently ignored bytes.
	if _, err := decodeMutateBody(append(append([]byte{}, bin...), 0x00)); err == nil {
		t.Fatal("mutate body with trailing byte decoded clean")
	}
	if _, err := decodeRunBody(append(append([]byte{}, runBin...), 0x00)); err == nil {
		t.Fatal("run body with trailing byte decoded clean")
	}
}
