package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"wolves/internal/engine"
	"wolves/internal/storage/vfs"
)

// Targeted fault tests: one injected failure per I/O site, asserting the
// exact hardening behavior (retry, compact-and-retry, poison-and-probe)
// the chaos test exercises statistically.

// TestRecoverCleansDebris boots from a directory holding the two classic
// crash leftovers: a zero-length WAL segment (rotation died between
// create and magic) and an orphaned snapshot temp file (snapshot died
// between write and rename). Recovery must clean both up and proceed.
func TestRecoverCleansDebris(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	wl := newMutationWorkload(t, 96, 1024, 77)
	durable := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	reference := engine.NewRegistry(engine.New())
	dlw := wl.register(t, durable, "phylo")
	rlw := wl.register(t, reference, "phylo")
	for i := 0; i < 40; i++ {
		m := wl.mutation(i)
		if _, err := dlw.Mutate(m); err != nil {
			t.Fatal(err)
		}
		if _, err := rlw.Mutate(m); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Plant the debris: the next segment in sequence, zero bytes long,
	// and a torn snapshot temp file.
	maxSeq := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
	}
	if maxSeq == 0 {
		t.Fatal("no WAL segments found")
	}
	empty := filepath.Join(dir, fmt.Sprintf("wal-%08d.log", maxSeq+1))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "snap-deadbeef.json.tmp")
	if err := os.WriteFile(orphan, []byte(`{"torn":`), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("open over debris: %v", err)
	}
	defer st2.Close()
	recovered := engine.NewRegistry(engine.New())
	if _, err := st2.Recover(recovered); err != nil {
		t.Fatalf("recover over debris: %v", err)
	}
	assertRegistriesEqual(t, recovered, reference)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("snapshot temp orphan survived recovery: %v", err)
	}

	// The cleaned store must accept journaled traffic again.
	recovered.SetJournal(st2)
	lw, err := recovered.Get("phylo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lw.Mutate(wl.mutation(40)); err != nil {
		t.Fatalf("mutate after debris recovery: %v", err)
	}
}

// TestSnapshotRenameRetries injects a single transient rename failure on
// the snapshot publish and expects the capped-backoff retry to absorb
// it: the mutation succeeds and the store stays healthy.
// TestDeniedLockOpen injects a fault on LOCK acquisition: Open must
// fail loudly with the injected error, and succeed once the fault is
// lifted — proving the directory flock sits behind the vfs seam like
// every other I/O site.
func TestDeniedLockOpen(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS())
	ffs.Deny(vfs.OpLock, vfs.Fault{Err: syscall.EACCES})

	if _, err := Open(dir, Options{FS: ffs, Fsync: FsyncNone}); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Open under denied lock = %v, want vfs.ErrInjected", err)
	}
	if !errors.Is(func() error { _, err := Open(dir, Options{FS: ffs, Fsync: FsyncNone}); return err }(), syscall.EACCES) {
		t.Fatal("injected lock fault must preserve the scheduled errno")
	}

	ffs.Allow(vfs.OpLock)
	st, err := Open(dir, Options{FS: ffs, Fsync: FsyncNone})
	if err != nil {
		t.Fatalf("Open after Allow: %v", err)
	}
	defer st.Close()
	if got := ffs.Count(vfs.OpLock); got != 3 {
		t.Fatalf("lock attempts = %d, want 3", got)
	}
}

func TestSnapshotRenameRetries(t *testing.T) {
	ffs := vfs.NewFault(vfs.OS())
	st, err := Open(t.TempDir(), Options{FS: ffs, Fsync: FsyncNone, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wl := newMutationWorkload(t, 96, 1024, 78)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	lw := wl.register(t, reg, "phylo")

	ffs.FailNth(vfs.OpRename, 1, vfs.Fault{})
	if _, err := lw.Mutate(wl.mutation(0)); err != nil {
		t.Fatalf("mutation must survive one transient rename fault: %v", err)
	}
	if ffs.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1", ffs.Injected())
	}
	if reg.Degraded() {
		t.Fatal("a retried transient fault degraded the registry")
	}
	if _, err := lw.Mutate(wl.mutation(1)); err != nil {
		t.Fatalf("follow-up mutation: %v", err)
	}
}

// TestAppendENOSPCCompactsAndRetries injects one ENOSPC on a WAL append.
// The write is rolled back cleanly (the segment still ends on a record
// boundary), covered segments are compacted to free space, and the
// append retries in place — the client never sees the hiccup.
func TestAppendENOSPCCompactsAndRetries(t *testing.T) {
	ffs := vfs.NewFault(vfs.OS())
	st, err := Open(t.TempDir(), Options{FS: ffs, Fsync: FsyncNone, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wl := newMutationWorkload(t, 96, 1024, 79)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st))
	lw := wl.register(t, reg, "phylo")

	ffs.FailNth(vfs.OpWrite, 1, vfs.Fault{Err: syscall.ENOSPC})
	if _, err := lw.Mutate(wl.mutation(0)); err != nil {
		t.Fatalf("mutation must survive a clean ENOSPC (compact + retry): %v", err)
	}
	if ffs.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1", ffs.Injected())
	}
	if reg.Degraded() {
		t.Fatal("a compact-and-retried ENOSPC degraded the registry")
	}
}

// TestFsyncFailurePoisonsThenProbeRecovers is the fsyncgate contract at
// the store level: a failed fsync poisons the store (never re-fsync over
// possibly-dropped dirty pages), the registry degrades, and the probe
// loop reopens onto a fresh segment, resyncs and flips back healthy.
func TestFsyncFailurePoisonsThenProbeRecovers(t *testing.T) {
	ffs := vfs.NewFault(vfs.OS())
	dir := t.TempDir()
	st, err := Open(dir, Options{FS: ffs, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wl := newMutationWorkload(t, 96, 1024, 80)
	reg := engine.NewRegistry(engine.New(), engine.WithJournal(st),
		engine.WithProbeBackoff(2*time.Millisecond, 20*time.Millisecond))
	lw := wl.register(t, reg, "phylo")
	preVer := lw.Version()

	ffs.Deny(vfs.OpSync, vfs.Fault{})
	_, err = lw.Mutate(wl.mutation(0))
	if !engine.IsCode(err, engine.ErrDegraded) {
		t.Fatalf("mutation over failed fsync: want degraded, got %v", err)
	}
	if lw.Version() != preVer+1 {
		t.Fatal("mutation must stay applied in memory")
	}
	// The poison is sticky: the store reports unavailable without ever
	// re-fsyncing the suspect segment.
	var ju interface{ JournalUnavailable() bool }
	if _, jerr := st.RunIngested(context.Background(), "phylo", "r", []byte("{}")); !errors.As(jerr, &ju) {
		t.Fatalf("poisoned store must report JournalUnavailable, got %v", jerr)
	}

	ffs.Allow(vfs.OpSync)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("registry never recovered: %+v", reg.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Recovery rotated to a fresh segment (fsyncgate: the suspect one is
	// sealed, then compacted away by the resync snapshot).
	segs, err := listSegments(vfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if strings.HasSuffix(seg.path, "wal-00000001.log") {
			t.Fatal("suspect segment was not rotated away")
		}
	}
	if _, err := lw.Mutate(wl.mutation(1)); err != nil {
		t.Fatalf("mutate after probe recovery: %v", err)
	}

	// The durable history equals memory: a cold recovery reproduces the
	// registry including the mutation whose fsync failed.
	st.Close()
	st2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recovered := engine.NewRegistry(engine.New())
	if _, err := st2.Recover(recovered); err != nil {
		t.Fatal(err)
	}
	assertRegistriesEqual(t, recovered, reg)
}
