package storage

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wolves/internal/engine"
	"wolves/internal/storage/vfs"
)

// snapshotView is one attached view inside a snapshot document.
type snapshotView struct {
	ID   string          `json:"id"`
	View json.RawMessage `json:"view"`
}

// docBytes carries a canonical run document inside the JSON snapshot.
// JSON-era documents embed verbatim — snapshots of pre-PR-9 stores stay
// byte-compatible and legacy snapshots (plain embedded objects) decode
// unchanged — while binary canonical documents, which are not valid
// JSON, ride as a base64 JSON string. The two are disjoint on the JSON
// kind ('{' vs '"'), so decoding needs no version field.
type docBytes []byte

func (d docBytes) MarshalJSON() ([]byte, error) {
	if len(d) > 0 && d[0] == '{' {
		return d, nil
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(d))
}

func (d *docBytes) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return err
		}
		*d = raw
		return nil
	}
	*d = append([]byte(nil), b...)
	return nil
}

// snapshotRun is one ingested run inside a snapshot document, carrying
// the run store's canonical bytes.
type snapshotRun struct {
	ID  string   `json:"id"`
	Doc docBytes `json:"doc"`
}

// snapshotDoc is the on-disk JSON shape of one workflow's snapshot: the
// canonical workflow, view and run documents plus the LSN the snapshot
// covers — every WAL record for this workflow with lsn <= LSN is
// subsumed and skipped on replay.
type snapshotDoc struct {
	LSN      uint64          `json:"lsn"`
	ID       string          `json:"id"`
	Version  uint64          `json:"version"`
	Workflow json.RawMessage `json:"workflow"`
	Views    []snapshotView  `json:"views,omitempty"`
	Runs     []snapshotRun   `json:"runs,omitempty"`
}

// snapName derives the snapshot file name for a workflow ID. IDs come
// from URL paths and may hold anything; hashing keeps the file name safe
// and fixed-length, and the document itself carries the real ID.
func snapName(id string) string {
	sum := sha256.Sum256([]byte(id))
	return fmt.Sprintf("snap-%x.json", sum[:8])
}

// encodeSnapshot turns a live state into its snapshot document. wfRaw
// may carry a pre-marshaled workflow document (the register path has one
// in hand); pass nil to marshal here. runIDs/runDocs carry the run
// store's documents for this workflow (snapshots subsume run records the
// same way they subsume mutation records).
func encodeSnapshot(st *engine.LiveState, lsn uint64, wfRaw json.RawMessage, runIDs []string, runDocs [][]byte) (*snapshotDoc, error) {
	var err error
	if wfRaw == nil {
		if wfRaw, err = json.Marshal(st.Workflow); err != nil {
			return nil, fmt.Errorf("storage: snapshot %q: encode workflow: %w", st.ID, err)
		}
	}
	doc := &snapshotDoc{LSN: lsn, ID: st.ID, Version: st.Version, Workflow: wfRaw}
	for _, av := range st.Views {
		raw, err := json.Marshal(av.View)
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot %q: encode view %q: %w", st.ID, av.ID, err)
		}
		doc.Views = append(doc.Views, snapshotView{ID: av.ID, View: raw})
	}
	for i, rid := range runIDs {
		doc.Runs = append(doc.Runs, snapshotRun{ID: rid, Doc: runDocs[i]})
	}
	return doc, nil
}

// writeSnapshotFile persists doc atomically and returns its encoded
// size: write to a temp file, sync it (unless FsyncNone), rename over
// the final name, sync the directory. A crash at any point leaves either
// the old snapshot or the new one, never a torn hybrid. Every failure
// path removes the temp file (best-effort) so a retry starts from a
// fresh inode instead of appending to torn bytes.
func writeSnapshotFile(fsys vfs.FS, dir string, doc *snapshotDoc, mode FsyncMode) (int64, error) {
	data, err := json.Marshal(doc)
	if err != nil {
		return 0, fmt.Errorf("storage: snapshot %q: %w", doc.ID, err)
	}
	final := filepath.Join(dir, snapName(doc.ID))
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if mode != FsyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return 0, err
		}
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	if mode != FsyncNone {
		return int64(len(data)), syncDir(fsys, dir)
	}
	return int64(len(data)), nil
}

// loadedSnapshot pairs a decoded snapshot with its file path and
// encoded size (recovery seeds the size-proportional snapshot trigger
// with it, so a restart does not collapse the trigger to its floor and
// rewrite a huge snapshot after a trickle of post-boot records).
type loadedSnapshot struct {
	doc  snapshotDoc
	path string
	size int64
}

// loadSnapshots reads every snapshot document in dir, in ascending LSN
// order (so when the registry's capacity forces evictions during
// recovery, the most recently snapshotted workflows survive). Corrupt
// documents are set aside, not fatal: the WAL may still hold the
// workflow's history, and if it does not, dropping a half-written
// snapshot from an unsynced crash is the correct reading of the disk.
func loadSnapshots(fsys vfs.FS, dir string) (snaps []loadedSnapshot, corrupt []string, err error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := vfs.ReadFile(fsys, path)
		if err != nil {
			return nil, nil, err
		}
		var doc snapshotDoc
		if err := json.Unmarshal(data, &doc); err != nil || doc.ID == "" {
			corrupt = append(corrupt, path)
			continue
		}
		snaps = append(snaps, loadedSnapshot{doc: doc, path: path, size: int64(len(data))})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].doc.LSN < snaps[j].doc.LSN })
	return snaps, corrupt, nil
}
