package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestE1PinsThePaperNarrative(t *testing.T) {
	tab := E1Figure1()
	got := map[string]string{}
	for _, row := range tab.Rows {
		got[row[0]] = row[1]
	}
	if got["view sound?"] != "false" {
		t.Fatalf("E1 rows: %v", tab.Rows)
	}
	if got["unsound composites"] != "16" {
		t.Fatalf("unsound composites = %q", got["unsound composites"])
	}
	if got["view provenance of (18)"] != "13,14,15,16" {
		t.Fatalf("view provenance = %q", got["view provenance of (18)"])
	}
	if got["false pairs after correction"] != "0" {
		t.Fatalf("correction did not clean the audit: %v", tab.Rows)
	}
	if !strings.Contains(got["witness"], "4") || !strings.Contains(got["witness"], "7") {
		t.Fatalf("witness = %q", got["witness"])
	}
	// The corrected provenance of 18 must drop 14.
	if strings.Contains(got["corrected provenance of (18)"], "14") {
		t.Fatalf("corrected provenance still contains 14: %q", got["corrected provenance of (18)"])
	}
}

func TestE2PinsFigure3(t *testing.T) {
	tab := E2Figure3()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	counts := map[string]string{}
	for _, row := range tab.Rows {
		counts[row[0]] = row[1]
	}
	if counts["weak-local-optimal"] != "8" || counts["strong-local-optimal"] != "5" || counts["optimal"] != "5" {
		t.Fatalf("block counts = %v", counts)
	}
}

func TestE3QualityOrdering(t *testing.T) {
	tab := E3Quality(true)
	for _, row := range tab.Rows {
		qw, err1 := strconv.ParseFloat(row[5], 64)
		qs, err2 := strconv.ParseFloat(row[6], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad quality cells in %v", row)
		}
		if qs < qw-1e-9 {
			t.Fatalf("strong quality below weak in %v", row)
		}
		if qs > 1.0+1e-9 || qw > 1.0+1e-9 {
			t.Fatalf("quality above 1 in %v", row)
		}
	}
}

func TestE8SurveyFindsUnsoundViews(t *testing.T) {
	tab := E8Survey()
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	unsound := 0
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[3])
		unsound += n
	}
	if unsound < 5 {
		t.Fatalf("survey found only %d unsound views", unsound)
	}
}

func TestAllFastRunsAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	start := time.Now()
	tabs := All(true)
	if len(tabs) != 11 {
		t.Fatalf("tables = %d", len(tabs))
	}
	var buf bytes.Buffer
	for _, tab := range tabs {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tab.Markdown(&buf); err != nil {
			t.Fatal(err)
		}
		if tab.ID == "" || tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("incomplete table %+v", tab)
		}
	}
	for _, want := range []string{"== E1:", "== A2:", "### E4:", "| n |"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
	t.Logf("fast harness took %v", time.Since(start))
}

func TestByID(t *testing.T) {
	for _, id := range []string{"e1", "E2", "e8", "a2"} {
		tab, err := ByID(id, true)
		if err != nil || tab == nil {
			t.Fatalf("ByID(%s) = %v", id, err)
		}
	}
	if _, err := ByID("zz", true); err == nil {
		t.Fatal("unknown id must error")
	}
}
