package experiments

import (
	"fmt"
	"strings"
	"time"

	"wolves/internal/core"
	"wolves/internal/estimate"
	"wolves/internal/gen"
	"wolves/internal/provenance"
	"wolves/internal/repo"
	"wolves/internal/soundness"
)

// All runs every experiment in order. fast trims the sweeps (used by the
// test suite); the full harness takes a couple of minutes.
func All(fast bool) []*Table {
	return []*Table{
		E1Figure1(),
		E2Figure3(),
		E3Quality(fast),
		E4Runtime(fast),
		E5StrongVsWeak(fast),
		E6Validator(fast),
		E7Provenance(fast),
		E8Survey(),
		E9Estimator(fast),
		A1Phases(fast),
		A2MergeVsSplit(),
	}
}

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string, fast bool) (*Table, error) {
	switch strings.ToLower(id) {
	case "e1":
		return E1Figure1(), nil
	case "e2":
		return E2Figure3(), nil
	case "e3":
		return E3Quality(fast), nil
	case "e4":
		return E4Runtime(fast), nil
	case "e5":
		return E5StrongVsWeak(fast), nil
	case "e6":
		return E6Validator(fast), nil
	case "e7":
		return E7Provenance(fast), nil
	case "e8":
		return E8Survey(), nil
	case "e9":
		return E9Estimator(fast), nil
	case "a1":
		return A1Phases(fast), nil
	case "a2":
		return A2MergeVsSplit(), nil
	}
	return nil, fmt.Errorf("experiments: unknown id %q (e1..e9, a1, a2)", id)
}

// E1Figure1 reproduces the Figure 1 case study: detection, witness,
// spurious provenance, correction.
func E1Figure1() *Table {
	wf, v := repo.Figure1()
	o := soundness.NewOracle(wf)
	rep := soundness.ValidateView(o, v)
	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 phylogenomics case study",
		Claim:   "view composite (16) is unsound (4 ∈ in cannot reach 7 ∈ out); provenance of (18) wrongly includes (14); correction repairs it",
		Columns: []string{"check", "result"},
	}
	add := func(k, val string) { t.Rows = append(t.Rows, []string{k, val}) }

	add("view sound?", fmt.Sprintf("%v", rep.Sound))
	var unsoundIDs []string
	for _, ci := range rep.Unsound {
		unsoundIDs = append(unsoundIDs, v.Composite(ci).ID)
	}
	add("unsound composites", strings.Join(unsoundIDs, ","))
	if len(rep.Unsound) > 0 {
		viol := rep.Composites[rep.Unsound[0]].Violations[0]
		add("witness", soundness.DescribeViolation(wf, viol))
	}
	e := provenance.NewEngine(wf)
	ve := provenance.NewViewEngine(v)
	t18, _ := v.CompIndex("18")
	var anc []string
	for _, c := range ve.CompositeLineage(t18) {
		anc = append(anc, v.Composite(c).ID)
	}
	add("view provenance of (18)", strings.Join(anc, ","))
	audit := provenance.AuditView(e, v)
	add("false provenance pairs", itoa(audit.FalsePairs))
	add("provenance precision", f2(audit.Precision))

	vc, err := core.CorrectView(o, v, core.Strong, nil)
	if err != nil {
		panic(err)
	}
	add("corrected composites", fmt.Sprintf("%d → %d", vc.CompositesBefore, vc.CompositesAfter))
	audit2 := provenance.AuditView(e, vc.Corrected)
	add("false pairs after correction", itoa(audit2.FalsePairs))
	ve2 := provenance.NewViewEngine(vc.Corrected)
	c18, _ := vc.Corrected.CompIndex("18")
	anc = anc[:0]
	for _, c := range ve2.CompositeLineage(c18) {
		anc = append(anc, vc.Corrected.Composite(c).ID)
	}
	add("corrected provenance of (18)", strings.Join(anc, ","))
	return t
}

// E2Figure3 reproduces the running example: weak = 8 blocks, strong = 5.
func E2Figure3() *Table {
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	t := &Table{
		ID:      "E2",
		Title:   "Figure 3 running example",
		Claim:   "(b) splits the unsound task into 8 composite tasks, (c) into 5; {c,d,f,g} merges soundly; {f,g} does not (g ∈ in cannot reach f ∈ out)",
		Columns: []string{"corrector", "blocks", "split"},
	}
	describe := func(blocks [][]int) string {
		var parts []string
		for _, blk := range blocks {
			var ids []string
			for _, x := range blk {
				ids = append(ids, f.Workflow.Task(x).ID)
			}
			parts = append(parts, "{"+strings.Join(ids, ",")+"}")
		}
		return strings.Join(parts, " ")
	}
	for _, crit := range []core.Criterion{core.Weak, core.Strong, core.Optimal} {
		res, err := core.SplitTask(o, f.T, crit, nil)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{crit.String(), itoa(len(res.Blocks)), describe(res.Blocks)})
	}
	fg := []int{f.Workflow.MustIndex("f"), f.Workflow.MustIndex("g")}
	okFG, _ := o.SoundSlice(fg)
	gReachesF := o.Reach().Reaches(f.Workflow.MustIndex("g"), f.Workflow.MustIndex("f"))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"merge {f,g} sound? %v (paper witness: path g→f exists? %v — \"no path from g ∈ T.in to f ∈ T.out\")",
		okFG, gReachesF))
	cdfg := []int{f.Workflow.MustIndex("c"), f.Workflow.MustIndex("d"),
		f.Workflow.MustIndex("f"), f.Workflow.MustIndex("g")}
	okCDFG, _ := o.SoundSlice(cdfg)
	t.Notes = append(t.Notes, fmt.Sprintf("merge {c,d,f,g} sound? %v", okCDFG))
	return t
}

// E3Quality measures the paper's quality ratio (optimal blocks / blocks)
// for the weak and strong correctors across workload suites.
func E3Quality(fast bool) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Correction quality vs the optimal corrector",
		Claim:   "the strongly local optimal corrector is often able to produce views with similar quality to the one produced by the optimal corrector",
		Columns: []string{"suite", "n", "weak", "strong", "optimal", "q(weak)", "q(strong)"},
	}
	sizes := []int{8, 10, 12, 14, 16}
	seeds := []int64{1, 2, 3}
	if fast {
		sizes = []int{8, 10}
		seeds = []int64{1}
	}
	for _, n := range sizes {
		sumW, sumS, sumO := 0, 0, 0
		for _, seed := range seeds {
			wf, members := gen.UnsoundTask(n, seed)
			o := soundness.NewOracle(wf)
			w, _ := core.SplitTask(o, members, core.Weak, nil)
			s, _ := core.SplitTask(o, members, core.Strong, nil)
			opt, err := core.SplitTask(o, members, core.Optimal, nil)
			if err != nil {
				panic(err)
			}
			sumW += len(w.Blocks)
			sumS += len(s.Blocks)
			sumO += len(opt.Blocks)
		}
		t.Rows = append(t.Rows, []string{
			"gen-unsound", itoa(n),
			f2(float64(sumW) / float64(len(seeds))),
			f2(float64(sumS) / float64(len(seeds))),
			f2(float64(sumO) / float64(len(seeds))),
			f2(core.Quality(sumO, sumW)),
			f2(core.Quality(sumO, sumS)),
		})
	}
	// The Figure 3 biclique family, scaled: the structural worst case
	// for the weak corrector.
	bics := []int{2, 3, 4, 5}
	if fast {
		bics = bics[:2]
	}
	for _, k := range bics {
		wf, members := gen.BicliqueTask(k)
		o := soundness.NewOracle(wf)
		w, _ := core.SplitTask(o, members, core.Weak, nil)
		s, _ := core.SplitTask(o, members, core.Strong, nil)
		optBlocks := 5 // proven by the family's construction; DP confirms up to n=18
		if len(members) <= 18 {
			opt, err := core.SplitTask(o, members, core.Optimal, nil)
			if err != nil {
				panic(err)
			}
			optBlocks = len(opt.Blocks)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("biclique-k%d", k), itoa(len(members)),
			itoa(len(w.Blocks)), itoa(len(s.Blocks)), itoa(optBlocks),
			f2(core.Quality(optBlocks, len(w.Blocks))),
			f2(core.Quality(optBlocks, len(s.Blocks))),
		})
	}
	// Repository unsound composites.
	for _, e := range repo.Catalog() {
		o := soundness.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			if vs.WantSound {
				continue
			}
			rep := soundness.ValidateView(o, vs.View)
			for _, ci := range rep.Unsound {
				members := vs.View.Composite(ci).Members()
				if len(members) > 18 {
					continue
				}
				w, _ := core.SplitTask(o, members, core.Weak, nil)
				s, _ := core.SplitTask(o, members, core.Strong, nil)
				opt, _ := core.SplitTask(o, members, core.Optimal, nil)
				t.Rows = append(t.Rows, []string{
					e.Key + "/" + vs.View.Composite(ci).ID, itoa(len(members)),
					itoa(len(w.Blocks)), itoa(len(s.Blocks)), itoa(len(opt.Blocks)),
					f2(core.Quality(len(opt.Blocks), len(w.Blocks))),
					f2(core.Quality(len(opt.Blocks), len(s.Blocks))),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "quality = optimal blocks / produced blocks (1.00 is best), the demo's §3.2 metric")
	return t
}

// E4Runtime sweeps the unsound-task size and times all three correctors.
func E4Runtime(fast bool) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Corrector runtime vs composite size (with optimal)",
		Claim:   "the strongly local optimal corrector is several orders of magnitude faster than the optimal corrector",
		Columns: []string{"n", "weak", "strong", "optimal", "optimal/strong"},
	}
	sizes := []int{8, 10, 12, 14, 16, 18}
	reps := 3
	if fast {
		sizes = []int{8, 10, 12}
		reps = 1
	}
	for _, n := range sizes {
		wf, members := gen.UnsoundTask(n, 1)
		o := soundness.NewOracle(wf)
		var tw, ts, topt time.Duration
		tw = medianDuration(reps, func() { core.SplitTask(o, members, core.Weak, nil) })
		ts = medianDuration(reps, func() { core.SplitTask(o, members, core.Strong, nil) })
		topt = medianDuration(reps, func() {
			if _, err := core.SplitTask(o, members, core.Optimal, nil); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			itoa(n), fdur(tw), fdur(ts), fdur(topt), fratio(topt, ts),
		})
	}
	t.Notes = append(t.Notes, "optimal is a 3^n subset DP: exact but exponential (Theorem 2.2: the problem is NP-hard)")
	return t
}

// E5StrongVsWeak extends the sweep beyond optimal's reach.
func E5StrongVsWeak(fast bool) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Strong vs weak corrector at scale",
		Claim:   "the efficiency of the strongly local optimal corrector is comparable with that of the weakly local optimal corrector",
		Columns: []string{"n", "weak", "strong", "strong/weak", "blocks(weak)", "blocks(strong)"},
	}
	sizes := []int{32, 64, 128, 256}
	reps := 3
	if fast {
		sizes = []int{24, 48}
		reps = 1
	}
	for _, n := range sizes {
		wf, members := gen.UnsoundTask(n, 1)
		o := soundness.NewOracle(wf)
		var bw, bs int
		tw := medianDuration(reps, func() {
			r, _ := core.SplitTask(o, members, core.Weak, nil)
			bw = len(r.Blocks)
		})
		ts := medianDuration(reps, func() {
			r, _ := core.SplitTask(o, members, core.Strong, nil)
			bs = len(r.Blocks)
		})
		t.Rows = append(t.Rows, []string{
			itoa(n), fdur(tw), fdur(ts), fratio(ts, tw), itoa(bw), itoa(bs),
		})
	}
	return t
}

// E6Validator compares the polynomial validators with the exponential
// path-enumeration strawman.
func E6Validator(fast bool) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Validator: polynomial vs path enumeration",
		Claim:   "checking soundness can take exponential time if Definition 2.1 is applied by checking all possible paths; WOLVES validates in polynomial time",
		Columns: []string{"tasks", "task-level", "def-2.1 closures", "naive paths", "naive steps"},
	}
	sizes := []int{16, 24, 32, 40}
	if fast {
		sizes = []int{16, 24}
	}
	const budget = 40_000_000
	for _, n := range sizes {
		wf := gen.Layered(gen.LayeredConfig{
			Name: "v", Tasks: n, Layers: n / 4, EdgeProb: 0.5, SkipProb: 0.1, Seed: 5,
		})
		o := soundness.NewOracle(wf)
		v := gen.IntervalView(wf, n/4, "bands")
		tFast := medianDuration(3, func() { soundness.ValidateView(o, v) })
		tPath := medianDuration(3, func() { soundness.ValidateViewPaths(o, v) })
		nv := soundness.NewNaiveValidator(o, budget)
		start := time.Now()
		_, err := nv.ValidateView(v)
		tNaive := time.Since(start)
		naive := fdur(tNaive)
		steps := itoa(nv.Steps())
		if err != nil {
			naive = "> " + fdur(tNaive) + " (budget hit)"
			steps = "> " + steps
		}
		t.Rows = append(t.Rows, []string{itoa(n), fdur(tFast), fdur(tPath), naive, steps})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("naive validator capped at %d DFS steps", budget))
	return t
}

// E7Provenance quantifies the motivation: view-level provenance is much
// smaller and faster than workflow-level provenance.
func E7Provenance(fast bool) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Provenance at workflow vs view level",
		Claim:   "a view can hide irrelevant details and be much smaller; analyzing transitive-closure queries at the view level can be more efficient",
		Columns: []string{"tasks", "composites", "wf pairs", "view pairs", "wf closure", "view closure", "speedup"},
	}
	sizes := []int{128, 256, 512, 1024}
	if fast {
		sizes = []int{64, 128}
	}
	for _, n := range sizes {
		wf := gen.Layered(gen.LayeredConfig{
			Name: "p", Tasks: n, Layers: n / 8, EdgeProb: 0.3, SkipProb: 0.02, Seed: 3,
		})
		k := n / 16
		v := gen.IntervalView(wf, k, "bands")
		var e *provenance.Engine
		var ve *provenance.ViewEngine
		tWF := medianDuration(3, func() {
			e = provenance.NewEngine(wf)
			e.Lineage(n - 1)
		})
		tView := medianDuration(3, func() {
			ve = provenance.NewViewEngine(v)
			ve.CompositeLineage(k - 1)
		})
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(k),
			itoa(e.ClosurePairs()), itoa(ve.ClosurePairs()),
			fdur(tWF), fdur(tView), fratio(tWF, tView),
		})
	}
	return t
}

// E8Survey reproduces the survey finding over the simulated repository.
func E8Survey() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Repository survey",
		Claim:   "our survey of workflow designs in a well-curated workflow repository revealed unsound views",
		Columns: []string{"workflow", "source", "views", "unsound views", "unsound composites", "example witness"},
	}
	totalViews, totalUnsound := 0, 0
	for _, e := range repo.Catalog() {
		o := soundness.NewOracle(e.Workflow)
		unsoundViews, unsoundComps := 0, 0
		witness := ""
		for _, vs := range e.Views {
			rep := soundness.ValidateView(o, vs.View)
			if !rep.Sound {
				unsoundViews++
				unsoundComps += len(rep.Unsound)
				if witness == "" {
					cr := rep.Composites[rep.Unsound[0]]
					witness = cr.ID + ": " + soundness.DescribeViolation(e.Workflow, cr.Violations[0])
				}
			}
		}
		totalViews += len(e.Views)
		totalUnsound += unsoundViews
		t.Rows = append(t.Rows, []string{
			e.Key, e.Source, itoa(len(e.Views)), itoa(unsoundViews), itoa(unsoundComps), witness,
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d of %d repository views are unsound", totalUnsound, totalViews))
	return t
}

// E9Estimator trains the §3.2 estimator on part of a corpus and checks
// its predictions on held-out instances.
func E9Estimator(fast bool) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Correction-time/quality estimator accuracy",
		Claim:   "to assist users ... we provide the estimated time and quality for each approach (grouping corrected workflows by sizes and substructures)",
		Columns: []string{"criterion", "group samples", "pred time", "actual time", "time err", "pred quality", "actual quality"},
	}
	est := estimate.New()
	trainSeeds := []int64{0, 1, 2, 3, 4}
	testSeeds := []int64{5, 6}
	sizes := []int{8, 10, 12, 14}
	if fast {
		trainSeeds = trainSeeds[:2]
		testSeeds = testSeeds[:1]
		sizes = sizes[:2]
	}
	type obs struct {
		crit    string
		n, edge int
		dur     time.Duration
		quality float64
	}
	measure := func(n int, seed int64) []obs {
		wf, members := gen.UnsoundTask(n, seed)
		o := soundness.NewOracle(wf)
		inner := 0
		memberSet := map[int]bool{}
		for _, m := range members {
			memberSet[m] = true
		}
		wf.Graph().Edges(func(u, v int) {
			if memberSet[u] && memberSet[v] {
				inner++
			}
		})
		opt, err := core.SplitTask(o, members, core.Optimal, nil)
		if err != nil {
			panic(err)
		}
		var out []obs
		for _, crit := range []core.Criterion{core.Weak, core.Strong} {
			res, _ := core.SplitTask(o, members, crit, nil)
			out = append(out, obs{
				crit: crit.String(), n: n, edge: inner,
				dur:     res.Stats.Elapsed,
				quality: core.Quality(len(opt.Blocks), len(res.Blocks)),
			})
		}
		return out
	}
	for _, n := range sizes {
		for _, seed := range trainSeeds {
			for _, ob := range measure(n, seed) {
				est.Record(ob.n, ob.edge, ob.crit, ob.dur, ob.quality)
			}
		}
	}
	// Held-out evaluation. A test instance can land in a density bucket
	// with no history (the estimator then abstains, as the demo would);
	// testing across all sizes keeps the table populated.
	misses := 0
	for _, n := range sizes {
		for _, seed := range testSeeds {
			for _, ob := range measure(n, seed) {
				pred, ok := est.Predict(ob.n, ob.edge, ob.crit)
				if !ok {
					misses++
					continue
				}
				errPct := "n/a"
				if ob.dur > 0 {
					errPct = fmt.Sprintf("%.0f%%", 100*abs(float64(pred.AvgTime-ob.dur))/float64(ob.dur))
				}
				t.Rows = append(t.Rows, []string{
					ob.crit, itoa(pred.Samples),
					fdur(pred.AvgTime), fdur(ob.dur), errPct,
					f2(pred.AvgQuality), f2(ob.quality),
				})
			}
		}
	}
	if len(t.Rows) == 0 {
		// Degenerate fast-mode corpus: fall back to self-prediction so
		// the table always demonstrates the mechanism.
		for _, ob := range measure(sizes[0], trainSeeds[0]) {
			if pred, ok := est.Predict(ob.n, ob.edge, ob.crit); ok {
				t.Rows = append(t.Rows, []string{
					ob.crit, itoa(pred.Samples),
					fdur(pred.AvgTime), fdur(ob.dur), "in-sample",
					f2(pred.AvgQuality), f2(ob.quality),
				})
			}
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"trained on %d seeds per size, tested on held-out seeds; %d held-out instances had no matching group (estimator abstains)",
		len(trainSeeds), misses))
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// A1Phases ablates the strong corrector's phases.
func A1Phases(fast bool) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: strong corrector phases",
		Claim:   "(design) the seeded conflict-closure search is what lifts pair merging to strong local optimality",
		Columns: []string{"n", "seed", "pairs only", "+closures", "+seeded (full)", "optimal"},
	}
	sizes := []int{10, 12, 14}
	seeds := []int64{1, 2, 3}
	if fast {
		sizes = sizes[:1]
		seeds = seeds[:1]
	}
	// The Figure 3 instance first: the headline gap.
	f := repo.Figure3()
	o := soundness.NewOracle(f.Workflow)
	p1, _ := core.SplitTaskPhases(o, f.T, false, false)
	p2, _ := core.SplitTaskPhases(o, f.T, true, false)
	p3, _ := core.SplitTaskPhases(o, f.T, true, true)
	opt, _ := core.SplitTask(o, f.T, core.Optimal, nil)
	t.Rows = append(t.Rows, []string{"fig3", "-",
		itoa(len(p1.Blocks)), itoa(len(p2.Blocks)), itoa(len(p3.Blocks)), itoa(len(opt.Blocks))})
	// Scaled biclique instances: the gap grows linearly with k.
	for _, k := range []int{3, 4, 5} {
		wf, members := gen.BicliqueTask(k)
		ob := soundness.NewOracle(wf)
		b1, _ := core.SplitTaskPhases(ob, members, false, false)
		b2, _ := core.SplitTaskPhases(ob, members, true, false)
		b3, _ := core.SplitTaskPhases(ob, members, true, true)
		optB := "5"
		if len(members) <= 18 {
			ores, err := core.SplitTask(ob, members, core.Optimal, nil)
			if err != nil {
				panic(err)
			}
			optB = itoa(len(ores.Blocks))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("biclique-k%d", k), "-",
			itoa(len(b1.Blocks)), itoa(len(b2.Blocks)), itoa(len(b3.Blocks)), optB})
	}
	for _, n := range sizes {
		for _, seed := range seeds {
			wf, members := gen.UnsoundTask(n, seed)
			o := soundness.NewOracle(wf)
			p1, _ := core.SplitTaskPhases(o, members, false, false)
			p2, _ := core.SplitTaskPhases(o, members, true, false)
			p3, _ := core.SplitTaskPhases(o, members, true, true)
			opt, err := core.SplitTask(o, members, core.Optimal, nil)
			if err != nil {
				panic(err)
			}
			t.Rows = append(t.Rows, []string{itoa(n), itoa(int(seed)),
				itoa(len(p1.Blocks)), itoa(len(p2.Blocks)), itoa(len(p3.Blocks)), itoa(len(opt.Blocks))})
		}
	}
	return t
}

// A2MergeVsSplit compares split-based correction with the merge-based
// extension on every unsound repository view.
func A2MergeVsSplit() *Table {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: split-based vs merge-based correction",
		Claim: "splitting composite tasks refines the initial view and provides more provenance information; in contrast, merging tasks loses information",
		Columns: []string{"view", "composites", "after split", "split+compact",
			"after merge-up", "split retains", "merge retains"},
	}
	for _, e := range repo.Catalog() {
		o := soundness.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			if vs.WantSound {
				continue
			}
			split, err := core.CorrectView(o, vs.View, core.Strong, nil)
			if err != nil {
				panic(err)
			}
			compacted, _, err := core.Compact(o, split.Corrected, 0)
			if err != nil {
				panic(err)
			}
			merged, err := core.MergeUp(o, vs.View)
			if err != nil {
				panic(err)
			}
			before := vs.View.N()
			t.Rows = append(t.Rows, []string{
				e.Key + "/" + vs.View.Name(), itoa(before),
				itoa(split.CompositesAfter), itoa(compacted.N()),
				itoa(merged.CompositesAfter),
				fmt.Sprintf("%.0f%%", 100*float64(split.CompositesAfter)/float64(before)),
				fmt.Sprintf("%.0f%%", 100*float64(merged.CompositesAfter)/float64(before)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"retention >100% means the corrected view exposes more provenance structure than the input; merge-up always coarsens")
	t.Notes = append(t.Notes,
		"split+compact = strong split followed by UNBOUNDED sound pair re-merging: it degenerates to the trivial 1-composite view, demonstrating why the paper flags the split/merge interaction as an open problem — soundness alone does not bound information loss")
	return t
}
