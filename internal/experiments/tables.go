// Package experiments regenerates every table and figure-series of the
// WOLVES evaluation (see DESIGN.md §3 for the experiment index E1–E9,
// A1–A2). Each experiment returns a Table; cmd/wolvestables renders them
// and EXPERIMENTS.md records paper-claim vs. measured.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper sentence this experiment tests
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("   ")
		for i, cell := range cells {
			pad := widths[i] - len([]rune(cell))
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad+2))
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "Paper claim: %s\n\n", t.Claim)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// medianDuration measures fn reps times and returns the median.
func medianDuration(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[reps/2]
}

func fdur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fratio(a, b time.Duration) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func itoa(x int) string { return fmt.Sprintf("%d", x) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
