package runs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// TestLabelAnswersMatchClosureRows is the equivalence property behind
// the label-indexed serve path: over a long random mutation history —
// edge insertions (including rejected cycles), task growth, view
// attach/detach, runs ingested mid-stream — every lineage query must
// produce byte-identical answers from the epoch/label path and the
// locked closure-row path, at every level and direction, witness
// included. The wire bytes (AppendJSON) are compared, so field-order,
// omitempty and pointer-bool behaviour are pinned too.
func TestLabelAnswersMatchClosureRows(t *testing.T) {
	const (
		tasks     = 90
		mutations = 1100
	)
	rng := rand.New(rand.NewSource(7))
	wf := gen.Layered(gen.LayeredConfig{
		Name: "equiv", Tasks: tasks, Layers: 9, EdgeProb: 0.08, SkipProb: 0.02, Seed: 7,
	})
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("wf", wf)
	if err != nil {
		t.Fatal(err)
	}
	s := New(reg)

	ids := make([]string, 0, tasks+mutations)
	for i := 0; i < wf.N(); i++ {
		ids = append(ids, wf.Task(i).ID)
	}

	// Two resident views: a clean partition and one with injected
	// unsound merges, so the quotient labels also cover cyclic
	// condensations and spurious/missing audit deltas.
	viewSeq := 0
	attach := func(unsound bool) string {
		vid := fmt.Sprintf("v%d", viewSeq)
		seed := int64(viewSeq)
		viewSeq++
		if _, _, err := lw.AttachView(vid, func(wf *workflow.Workflow) (*view.View, error) {
			v := gen.RandomView(wf, 8+int(seed)%5, seed, vid)
			if unsound {
				v = gen.InjectUnsound(v, 3, seed)
			}
			return v, nil
		}); err != nil {
			t.Fatal(err)
		}
		return vid
	}
	views := []string{attach(false), attach(true)}

	// runDoc invokes a random subset of the current tasks, one artifact
	// each, a used edge per consecutive invoked pair, plus one external
	// input artifact (never generated) to exercise the gen<0 branch.
	runSeq := 0
	ingest := func() (string, []string) {
		runID := fmt.Sprintf("r%d", runSeq)
		runSeq++
		doc := struct {
			Run       string           `json:"run"`
			Artifacts []map[string]any `json:"artifacts"`
			Used      []map[string]any `json:"used"`
		}{Run: runID}
		var arts []string
		var prev string
		for _, id := range ids {
			if rng.Intn(3) == 0 {
				continue
			}
			art := "a:" + runID + ":" + id
			doc.Artifacts = append(doc.Artifacts, map[string]any{"id": art, "generated_by": id})
			if prev != "" && rng.Intn(2) == 0 {
				doc.Used = append(doc.Used, map[string]any{"process": id, "artifact": prev})
			}
			prev = art
			arts = append(arts, art)
		}
		if prev != "" {
			// The last producer also consumes an external input (declared
			// with no generated_by).
			ext := "ext:" + runID
			doc.Artifacts = append(doc.Artifacts, map[string]any{"id": ext})
			doc.Used = append(doc.Used, map[string]any{
				"process": doc.Artifacts[len(doc.Artifacts)-2]["generated_by"], "artifact": ext})
			arts = append(arts, ext)
		}
		raw, merr := json.Marshal(doc)
		if merr != nil {
			t.Fatal(merr)
		}
		if _, ierr := s.Ingest("wf", raw); ierr != nil {
			t.Fatal(ierr)
		}
		return runID, arts
	}
	runID, arts := ingest()

	var gotBuf, wantBuf []byte
	compared := 0
	check := func(step int) {
		_, run, lerr := s.lookup("wf", runID)
		if lerr != nil {
			t.Fatal(lerr)
		}
		art := arts[rng.Intn(len(arts))]
		ai := run.artIdx[art]
		qs := []Query{
			{Run: runID, Artifact: art},
			{Run: runID, Artifact: art, Direction: DirDescendants},
			{Run: runID, Artifact: art, Witness: true},
		}
		for _, vid := range views {
			for _, level := range []string{LevelView, LevelAudited} {
				qs = append(qs,
					Query{Run: runID, Artifact: art, Level: level, View: vid},
					Query{Run: runID, Artifact: art, Level: level, View: vid, Direction: DirDescendants},
					Query{Run: runID, Artifact: art, Level: level, View: vid, Witness: true},
				)
			}
		}
		for _, q := range qs {
			level, dir := q.Level, q.Direction
			if level == "" {
				level = LevelExact
			}
			if dir == "" {
				dir = DirAncestors
			}
			want, werr := s.lineageRows(lw, run, q, ai, level, dir)
			got, qerr, served := s.lineageLabels(lw, run, q, ai, level, dir)
			if !served {
				t.Fatalf("step %d %+v: label path unavailable (quiesced store must always serve labels)", step, q)
			}
			if qerr != nil || werr != nil {
				t.Fatalf("step %d %+v: label err %v, rows err %v", step, q, qerr, werr)
			}
			gotBuf = got.AppendJSON(gotBuf[:0])
			wantBuf = want.AppendJSON(wantBuf[:0])
			if string(gotBuf) != string(wantBuf) {
				t.Fatalf("step %d %+v:\nlabels: %s\nrows:   %s", step, q, gotBuf, wantBuf)
			}
			got.Release()
			want.Release()
			compared++
		}
	}

	grown := 0
	for step := 0; step < mutations; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // random edge; cycle rejections roll back (also covered)
			u, v := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if _, merr := lw.Mutate(engine.Mutation{Edges: [][2]string{{u, v}}}); merr != nil {
				var ee *engine.Error
				if !errors.As(merr, &ee) || (ee.Code != engine.ErrCycleRejected && ee.Code != engine.ErrBadInput) {
					t.Fatalf("step %d: mutate(%s->%s): %v", step, u, v, merr)
				}
			}
		case op < 80: // grow the task space, usually wired to an existing task
			id := fmt.Sprintf("g%d", grown)
			grown++
			m := engine.Mutation{Tasks: []workflow.Task{{ID: id}}}
			if rng.Intn(4) > 0 {
				m.Edges = [][2]string{{ids[rng.Intn(len(ids))], id}}
			}
			if _, merr := lw.Mutate(m); merr != nil {
				t.Fatalf("step %d: grow %s: %v", step, id, merr)
			}
			ids = append(ids, id)
		case op < 88: // churn a view: detach the oldest, attach a fresh one
			if derr := lw.DetachView(views[0]); derr != nil {
				t.Fatalf("step %d: detach %s: %v", step, views[0], derr)
			}
			views = append(views[1:], attach(rng.Intn(2) == 0))
		default: // ingest a fresh run over the grown task space
			runID, arts = ingest()
		}
		if step%3 == 0 {
			check(step)
		}
	}
	if compared == 0 {
		t.Fatal("no comparisons ran")
	}
	t.Logf("compared %d answers over %d mutations", compared, mutations)
}

// TestEpochReadsUnderMutation hammers the public lineage path from
// concurrent readers while a writer churns edges, tasks and views —
// the race detector checks the epoch publication protocol, and every
// read must still come back well-formed (or ErrUnknownView during a
// detach window).
func TestEpochReadsUnderMutation(t *testing.T) {
	wf := gen.Layered(gen.LayeredConfig{
		Name: "epoch", Tasks: 64, Layers: 8, EdgeProb: 0.1, Seed: 11,
	})
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("wf", wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lw.AttachView("iv", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.IntervalView(wf, 8, "iv"), nil
	}); err != nil {
		t.Fatal(err)
	}
	s := New(reg)
	doc := struct {
		Run       string           `json:"run"`
		Artifacts []map[string]any `json:"artifacts"`
		Used      []map[string]any `json:"used"`
	}{Run: "r"}
	for i := 0; i < wf.N(); i++ {
		doc.Artifacts = append(doc.Artifacts, map[string]any{
			"id": "a" + wf.Task(i).ID, "generated_by": wf.Task(i).ID})
	}
	raw, _ := json.Marshal(doc)
	if _, err := s.Ingest("wf", raw); err != nil {
		t.Fatal(err)
	}

	// Snapshot the queryable artifacts up front: the mutator grows wf in
	// place, so readers must not touch it concurrently.
	artNames := make([]string, wf.N())
	for i := range artNames {
		artNames[i] = "a" + wf.Task(i).ID
	}
	taskIDs := make([]string, wf.N())
	for i := range taskIDs {
		taskIDs[i] = wf.Task(i).ID
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				q := Query{Run: "r", Artifact: artNames[rng.Intn(len(artNames))]}
				switch rng.Intn(3) {
				case 1:
					q.Level, q.View = LevelView, "iv"
				case 2:
					q.Level, q.View = LevelAudited, "iv"
				}
				ans, qerr := s.Lineage("wf", q)
				if qerr != nil {
					var ee *engine.Error
					if errors.As(qerr, &ee) && ee.Code == engine.ErrUnknownView {
						continue // detach window
					}
					errs <- fmt.Errorf("reader %d: %w", g, qerr)
					return
				}
				if ans.Run != "r" || ans.Level == "" {
					errs <- fmt.Errorf("reader %d: torn answer %+v", g, ans)
					return
				}
				ans.Release()
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0:
			_ = lw.DetachView("iv")
			if _, _, err := lw.AttachView("iv", func(wf *workflow.Workflow) (*view.View, error) {
				return gen.IntervalView(wf, 8, "iv"), nil
			}); err != nil {
				t.Fatal(err)
			}
		case 1:
			id := fmt.Sprintf("m%d", step)
			if _, err := lw.Mutate(engine.Mutation{Tasks: []workflow.Task{{ID: id}}}); err != nil {
				t.Fatal(err)
			}
		default:
			u := taskIDs[rng.Intn(len(taskIDs))]
			v := taskIDs[rng.Intn(len(taskIDs))]
			_, _ = lw.Mutate(engine.Mutation{Edges: [][2]string{{u, v}}}) // cycles roll back
		}
	}
	close(stop)
	for g := 0; g < 4; g++ {
		if rerr := <-errs; rerr != nil {
			t.Fatal(rerr)
		}
	}
}
