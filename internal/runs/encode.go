package runs

import (
	"strconv"
	"unicode/utf8"
)

// This file is the allocation-free wire encoder for lineage answers.
// AppendJSON produces bytes identical to encoding/json.Marshal on the
// same Answer — field order, omitempty behaviour, HTML-escaping and
// all (TestAppendJSONMatchesMarshal pins that, including the nasty
// string cases) — while appending into a caller-owned buffer so the
// serve path never round-trips through reflection or an intermediate
// []byte per response.

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with the exact
// escaping rules of encoding/json's default (HTML-escaping) encoder:
// `"`/`\`/control bytes escaped, `<` `>` `&` as \u00xx, invalid UTF-8
// as �, and U+2028/U+2029 escaped for JSONP safety.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendStringArray appends xs as a JSON array of strings; a nil slice
// encodes as null, matching encoding/json.
func appendStringArray(dst []byte, xs []string) []byte {
	if xs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, x)
	}
	return append(dst, ']')
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// AppendJSON appends the answer's JSON encoding to dst and returns the
// extended buffer. The output is byte-identical to json.Marshal(a).
func (a *Answer) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"workflow":`...)
	dst = appendJSONString(dst, a.Workflow)
	dst = append(dst, `,"run":`...)
	dst = appendJSONString(dst, a.Run)
	dst = append(dst, `,"artifact":`...)
	dst = appendJSONString(dst, a.Artifact)
	if a.Producer != "" {
		dst = append(dst, `,"producer":`...)
		dst = appendJSONString(dst, a.Producer)
	}
	dst = append(dst, `,"level":`...)
	dst = appendJSONString(dst, a.Level)
	dst = append(dst, `,"direction":`...)
	dst = appendJSONString(dst, a.Direction)
	dst = append(dst, `,"version":`...)
	dst = strconv.AppendUint(dst, a.Version, 10)
	dst = append(dst, `,"tasks":`...)
	dst = appendStringArray(dst, a.Tasks)
	dst = append(dst, `,"artifacts":`...)
	dst = appendStringArray(dst, a.Artifacts)
	if a.View != "" {
		dst = append(dst, `,"view":`...)
		dst = appendJSONString(dst, a.View)
	}
	if a.ViewSound != nil {
		dst = append(dst, `,"view_sound":`...)
		dst = appendBool(dst, *a.ViewSound)
	}
	if len(a.Composites) > 0 {
		dst = append(dst, `,"composites":`...)
		dst = appendStringArray(dst, a.Composites)
	}
	if a.Sound != nil {
		dst = append(dst, `,"sound":`...)
		dst = appendBool(dst, *a.Sound)
	}
	if len(a.Spurious) > 0 {
		dst = append(dst, `,"spurious_composites":`...)
		dst = appendStringArray(dst, a.Spurious)
	}
	if len(a.Missing) > 0 {
		dst = append(dst, `,"missing_composites":`...)
		dst = appendStringArray(dst, a.Missing)
	}
	if len(a.SpuriousTasks) > 0 {
		dst = append(dst, `,"spurious_tasks":`...)
		dst = appendStringArray(dst, a.SpuriousTasks)
	}
	if len(a.Witness) > 0 {
		dst = append(dst, `,"witness":[`...)
		for i := range a.Witness {
			if i > 0 {
				dst = append(dst, ',')
			}
			e := &a.Witness[i]
			dst = append(dst, `{"relation":`...)
			dst = appendJSONString(dst, e.Relation)
			dst = append(dst, `,"process":`...)
			dst = appendJSONString(dst, e.Process)
			dst = append(dst, `,"artifact":`...)
			dst = appendJSONString(dst, e.Artifact)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}
