package runs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// decodeEquiv decodes data with both decoders (encoding/json and the
// hand-rolled one) into both wire shapes and fails unless acceptance
// and the decoded values agree exactly.
func decodeEquiv(t *testing.T, data []byte) {
	t.Helper()

	var want, got wireRun
	werr := json.Unmarshal(data, &want)
	var d jdec
	gerr := d.decodeRunDocJSON(&got, data)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("wireRun acceptance diverges on %q:\n  encoding/json: %v\n  jdec:          %v", data, werr, gerr)
	}
	if werr == nil && !reflect.DeepEqual(want, got) {
		t.Fatalf("wireRun value diverges on %q:\n  encoding/json: %+v\n  jdec:          %+v", data, want, got)
	}

	var wantL, gotL wireLine
	wlerr := json.Unmarshal(data, &wantL)
	glerr := d.decodeWireLineJSON(&gotL, data, nil)
	if (wlerr == nil) != (glerr == nil) {
		t.Fatalf("wireLine acceptance diverges on %q:\n  encoding/json: %v\n  jdec:          %v", data, wlerr, glerr)
	}
	if wlerr == nil && !reflect.DeepEqual(wantL, gotL) {
		t.Fatalf("wireLine value diverges on %q:\n  encoding/json: %+v\n  jdec:          %+v", data, wantL, gotL)
	}
}

// jsonDecSeeds are the corner cases the hand decoder must hit exactly:
// escapes, surrogates, invalid UTF-8, case-folded keys, duplicate keys,
// nulls at every position, numbers at the uint64 boundary, unknown
// fields of every shape, and whitespace.
var jsonDecSeeds = []string{
	`null`,
	`{}`,
	` { } `,
	`{"run":"r1","version":7,"invocations":[{"id":"i1","task":"align"}],"artifacts":[{"id":"a1","generated_by":"i1"}],"used":[{"process":"i1","artifact":"a1"}]}`,
	`{"run":"a\u0062c\n\t\"\\\/"}`,
	`{"run":"\ud834\udd1e"}`,
	`{"run":"\ud834"}`,
	`{"run":"\ud834\ud834"}`,
	`{"run":"\udd1e tail"}`,
	"{\"run\":\"\xff\xfe\"}",
	"{\"r\xc3\xbcn\":\"x\"}",
	`{"RUN":"x","Version":3}`,
	`{"ru\u006e":"exact-after-unquote"}`,
	`{"tas\u212a":"kelvin"}`,
	`{"run":"a","run":"b"}`,
	`{"run":"a","run":null}`,
	`{"artifacts":[{"id":"a","generated_by":"g"}],"artifacts":[{"id":"b"}]}`,
	`{"artifacts":[{"id":"a"}],"artifacts":null}`,
	`{"artifacts":[],"invocations":[]}`,
	`{"invocations":[null,{"id":"i"},null]}`,
	`{"version":0}`,
	`{"version":18446744073709551615}`,
	`{"version":18446744073709551616}`,
	`{"version":-1}`,
	`{"version":1.5}`,
	`{"version":1e3}`,
	`{"version":null}`,
	`{"version":"7"}`,
	`{"unknown":{"a":[1,2.5,-3e-7,true,false,null,"s",{"k":[]}]}}`,
	`{"used":[{"process":"p","artifact":"a","extra":[[[{"x":1}]]]}]}`,
	`{"run":123}`,
	`{"run":"a"} `,
	`{"run":"a"}x`,
	`{"run":"a",}`,
	`{"run" "a"}`,
	`{"run":}`,
	`{run:"a"}`,
	`{"run":"a"`,
	`"top-level string"`,
	`[{"run":"a"}]`,
	`true`,
	`12`,
	`nul`,
	`{"invocation":{"id":"i1","task":"t"},"artifact":{"id":"a"},"used":{"process":"p","artifact":"a"}}`,
	`{"invocation":{"id":"a"},"invocation":{"task":"t"}}`,
	`{"invocation":{"id":"a"},"invocation":null}`,
	`{"invocation":null}`,
	`{"invocation":[]}`,
	`{"run":"\u0041\u00e9"}`,
	"{\"run\":\"caf\xc3\xa9\"}",
	`{"version": 0010}`,
	`{"version": 10 }`,
	"\ufeff{}",
}

func TestJSONDecodeEquivalence(t *testing.T) {
	for _, s := range jsonDecSeeds {
		decodeEquiv(t, []byte(s))
	}
	// The scanner's nesting cap: 9999 open containers inside the object
	// pass, 10001 fail — on both decoders.
	deep := func(n int) []byte {
		return []byte(`{"x":` + strings.Repeat("[", n) + strings.Repeat("]", n) + `}`)
	}
	decodeEquiv(t, deep(jsonMaxDepth-1))
	decodeEquiv(t, deep(jsonMaxDepth+1))
}

// TestJSONDecodePooledReuse pins the scratch-reuse contract: a document
// decoded into a pooled wireRun whose slices carry stale capacity from
// a previous, larger decode must come out exactly as a fresh decode —
// nothing stale may leak through omitted fields.
func TestJSONDecodePooledReuse(t *testing.T) {
	sc := &ingestScratch{}
	big := []byte(`{"run":"big","invocations":[{"id":"i1","task":"t1"},{"id":"i2","task":"t2"}],` +
		`"artifacts":[{"id":"a1","generated_by":"i1"},{"id":"a2","generated_by":"i2"}],` +
		`"used":[{"process":"i1","artifact":"a1"},{"process":"i2","artifact":"a2"}]}`)
	if err := sc.decodeDoc(sc.wire(), big); err != nil {
		t.Fatalf("decode big: %v", err)
	}
	small := []byte(`{"run":"small","artifacts":[{"id":"b1"}]}`)
	w := sc.wire()
	if err := sc.decodeDoc(w, small); err != nil {
		t.Fatalf("decode small: %v", err)
	}
	var fresh wireRun
	if err := json.Unmarshal(small, &fresh); err != nil {
		t.Fatalf("fresh decode: %v", err)
	}
	if w.Run != fresh.Run || w.Version != fresh.Version ||
		len(w.Invocations) != len(fresh.Invocations) ||
		len(w.Used) != len(fresh.Used) ||
		!reflect.DeepEqual(append([]wireArtifact{}, w.Artifacts...), fresh.Artifacts) {
		t.Fatalf("pooled decode diverges from fresh decode:\n  pooled: %+v\n  fresh:  %+v", w, fresh)
	}
	if w.Artifacts[0].GeneratedBy != "" {
		t.Fatalf("stale generated_by leaked through pooled reuse: %+v", w.Artifacts[0])
	}
}

// TestJSONDecodeLineBufs pins the pooled NDJSON line decode: pointer
// fields alias the scratch buffers, values match encoding/json, and a
// second decode does not disturb values copied out of the first.
func TestJSONDecodeLineBufs(t *testing.T) {
	var d jdec
	var bufs wireLineBufs
	var l wireLine
	if err := d.decodeWireLineJSON(&l, []byte(`{"invocation":{"id":"i1","task":"t1"}}`), &bufs); err != nil {
		t.Fatalf("decode line: %v", err)
	}
	if l.Invocation != &bufs.inv {
		t.Fatalf("pooled line decode did not alias the scratch buffer")
	}
	first := *l.Invocation
	l = wireLine{}
	if err := d.decodeWireLineJSON(&l, []byte(`{"invocation":{"id":"i2","task":"t2"}}`), &bufs); err != nil {
		t.Fatalf("decode second line: %v", err)
	}
	if first.ID != "i1" || first.Task != "t1" {
		t.Fatalf("copied-out record disturbed by the next decode: %+v", first)
	}
	if l.Invocation.ID != "i2" || l.Invocation.Task != "t2" {
		t.Fatalf("second decode wrong: %+v", l.Invocation)
	}
}

// FuzzJSONDecodeEquivalence differentially fuzzes the hand-rolled
// decoder against encoding/json over both wire shapes: any input where
// acceptance or the decoded struct diverges is a bug in jsondec.go.
func FuzzJSONDecodeEquivalence(f *testing.F) {
	for _, s := range jsonDecSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeEquiv(t, data)
	})
}
