package runs

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// nastyStrings exercise every branch of the string escaper: HTML
// metacharacters, control bytes, quotes/backslashes, invalid UTF-8,
// multi-byte runes and the JSONP line separators.
var nastyStrings = []string{
	"",
	"plain",
	`quote " and backslash \`,
	"<script>&amp;</script>",
	"ctrl \x00\x01\x1f tab\tnl\ncr\rbs\bff\f",
	"invalid \xff\xfe utf8 \xc3\x28",
	"runes: héllo 世界 🦊",
	"line seps   and  ",
	"mixed <\xffé \t>",
}

func randString(rng *rand.Rand) string {
	if rng.Intn(3) == 0 {
		return nastyStrings[rng.Intn(len(nastyStrings))]
	}
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

func randAnswer(rng *rand.Rand) *Answer {
	a := &Answer{
		Workflow:  randString(rng),
		Run:       randString(rng),
		Artifact:  randString(rng),
		Level:     LevelExact,
		Direction: DirAncestors,
		Version:   rng.Uint64(),
		Tasks:     []string{},
		Artifacts: []string{},
	}
	if rng.Intn(2) == 0 {
		a.Producer = randString(rng)
	}
	for i := rng.Intn(4); i > 0; i-- {
		a.Tasks = append(a.Tasks, randString(rng))
	}
	for i := rng.Intn(4); i > 0; i-- {
		a.Artifacts = append(a.Artifacts, randString(rng))
	}
	if rng.Intn(2) == 0 {
		a.View = "v-" + randString(rng)
		a.viewSoundVal = rng.Intn(2) == 0
		a.ViewSound = &a.viewSoundVal
		for i := rng.Intn(3); i > 0; i-- {
			a.Composites = append(a.Composites, randString(rng))
		}
		if rng.Intn(2) == 0 {
			a.soundVal = rng.Intn(2) == 0
			a.Sound = &a.soundVal
			for i := rng.Intn(3); i > 0; i-- {
				a.Spurious = append(a.Spurious, randString(rng))
			}
			for i := rng.Intn(2); i > 0; i-- {
				a.Missing = append(a.Missing, randString(rng))
			}
			for i := rng.Intn(3); i > 0; i-- {
				a.SpuriousTasks = append(a.SpuriousTasks, randString(rng))
			}
		}
	}
	for i := rng.Intn(3); i > 0; i-- {
		a.Witness = append(a.Witness, WhyEdge{
			Relation: "used", Process: randString(rng), Artifact: randString(rng)})
	}
	return a
}

// TestAppendJSONMatchesMarshal pins the hand encoder to encoding/json:
// every random answer — including ones stuffed with control bytes,
// invalid UTF-8 and HTML metacharacters — must encode to the exact
// bytes json.Marshal produces.
func TestAppendJSONMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf []byte
	for i := 0; i < 2000; i++ {
		a := randAnswer(rng)
		want, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		buf = a.AppendJSON(buf[:0])
		if string(buf) != string(want) {
			t.Fatalf("iteration %d: encoder diverges\n got: %q\nwant: %q", i, buf, want)
		}
	}
}

// TestAppendJSONNilSlices pins the nil-slice behaviour (null, not []),
// so the encoder stays honest even for answers built outside the pool.
func TestAppendJSONNilSlices(t *testing.T) {
	a := &Answer{Workflow: "w", Run: "r", Artifact: "a", Level: LevelExact, Direction: DirAncestors}
	want, _ := json.Marshal(a)
	if got := a.AppendJSON(nil); string(got) != string(want) {
		t.Fatalf("nil slices: got %q want %q", got, want)
	}
}
