//go:build !race

package runs

import "testing"

// TestLineageAllocationCeiling is the CI allocation-regression guard
// for the serve path: a warm view-level (and audited, and exact)
// lineage query over a pooled, label-indexed store must stay under a
// hard allocs-per-op ceiling. The label rewrite brought view/audited
// answers from ~47 heap allocations to ~zero; this test fails the
// build if a change quietly reintroduces per-query garbage. Under
// -race the ceiling is meaningless (the race runtime allocates on its
// own instrumentation), so alloc_race_test.go substitutes a
// behavioral pass over the same fixture.
func TestLineageAllocationCeiling(t *testing.T) {
	s, cases := lineageAllocStore(t)
	var encBuf []byte
	for _, tc := range cases {
		q := tc.q
		// Warm: fill pools, the audit cache and slice capacities.
		for i := 0; i < 4; i++ {
			ans, qerr := s.Lineage("wf", q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			encBuf = ans.AppendJSON(encBuf[:0])
			ans.Release()
		}
		got := testing.AllocsPerRun(100, func() {
			ans, qerr := s.Lineage("wf", q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			encBuf = ans.AppendJSON(encBuf[:0])
			ans.Release()
		})
		if got > tc.ceiling {
			t.Errorf("%s: %v allocs/op, ceiling %v — the serve path regressed",
				tc.name, got, tc.ceiling)
		} else {
			t.Logf("%s: %v allocs/op (ceiling %v)", tc.name, got, tc.ceiling)
		}
	}
}
