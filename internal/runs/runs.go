// Package runs is the multi-run provenance store and query engine of
// wolvesd: the subsystem that turns the WOLVES view machinery into a
// provenance *service*. Clients ingest OPM-style execution traces
// (invocations + artifacts + used/wasGeneratedBy edges, JSON or NDJSON
// streaming) against a workflow registered in the live registry; every
// record is validated against the workflow's task space, artifact and
// invocation IDs are interned into dense indices, and the run is indexed
// under its workflow so it costs O(edges) machine words. Lineage,
// descendant and why-provenance queries are then served at three levels:
//
//   - exact: the task-level closure, read from the registry's
//     incrementally maintained IncrementalClosure rows;
//   - view: the composite-level closure of an attached view — the
//     paper's cheap answer, correct only for sound views;
//   - audited: the view-level answer plus the provenance-audit delta,
//     so every response carries a soundness flag and the exact set of
//     spurious/missing composites (the paper's 14→18 example).
//
// Concurrency: the store holds one shard per workflow with its own
// RWMutex, so ingestion into one workflow never stalls queries on
// another; individual runs are immutable after ingestion, so queries
// hold no shard lock while computing. Shards are anchored to the
// registry's live-workflow handle — when a workflow is deleted, replaced
// or evicted, its runs die with it (lazily, on the next touch).
//
// Durability: with a Journal installed (internal/storage implements it),
// every ingested run is appended to the registry's WAL and folded into
// the workflow's snapshots, so a daemon restart recovers every run
// byte-identically (see storage.RecoverWithRuns).
package runs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"wolves/internal/bitset"
	"wolves/internal/engine"
)

// Journal receives every committed run ingestion. The storage package's
// Store implements it next to engine.Journal: RunIngested appends one
// WAL record and reports whether the workflow's WAL growth passed the
// snapshot trigger; the store then follows up with SnapshotWorkflow
// under the workflow's read lock. A nil Journal means purely in-memory.
// Like engine.Journal, every method takes the operation's context first:
// it carries the request's trace span (internal/obs) into the storage
// layer and is observability-only — appends are never abandoned on
// cancellation.
type Journal interface {
	// RunIngested journals one ingested (or replaced) run document.
	RunIngested(ctx context.Context, workflowID, runID string, doc []byte) (wantSnapshot bool, err error)
	// RunsIngested journals a batch of run documents for one workflow as
	// contiguous records with a single durability wait, so one
	// group-commit fsync covers the whole burst (IngestBatch).
	RunsIngested(ctx context.Context, workflowID string, runIDs []string, docs [][]byte) (wantSnapshot bool, err error)
	// SnapshotWorkflow folds the workflow into a fresh snapshot covering
	// everything journaled so far (runs included, via the run provider).
	SnapshotWorkflow(ctx context.Context, st *engine.LiveState) error
}

// Store is the concurrent multi-run provenance store, layered on the
// live workflow registry. Construct with New; all methods are safe for
// concurrent use.
type Store struct {
	reg     *engine.Registry
	workers int
	// journal is set at construction (WithJournal) or during setup
	// (SetJournal) — not synchronized with live traffic, exactly like
	// the registry's journal seam.
	journal Journal
	// legacyDocs forces the pre-PR-9 JSON canonical document encoding
	// (WithLegacyJSONDocs) — for benchmark baselines and compat tests
	// that write old-format state on purpose. Decoding always accepts
	// both encodings.
	legacyDocs bool

	mu     sync.Mutex // guards shards map only
	shards map[string]*shard

	ingested       atomic.Int64
	queries        atomic.Int64
	journaledBytes atomic.Int64
}

// Option configures a Store at construction time.
type Option func(*Store)

// WithJournal installs the durability journal (see Journal).
func WithJournal(j Journal) Option {
	return func(s *Store) { s.journal = j }
}

// WithLegacyJSONDocs forces the pre-PR-9 JSON canonical run documents
// instead of the binary form. For benchmark baselines and compat tests;
// decoding always accepts both encodings regardless of this knob.
func WithLegacyJSONDocs() Option {
	return func(s *Store) { s.legacyDocs = true }
}

// WithWorkers sets the default fan-out width of LineageBatch. n <= 0
// (the default) means 8.
func WithWorkers(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.workers = n
		}
	}
}

// New returns an empty run store over reg.
func New(reg *engine.Registry, opts ...Option) *Store {
	s := &Store{reg: reg, workers: 8, shards: make(map[string]*shard)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetJournal installs (or clears) the store's journal. Call during
// setup — after recovery, before serving traffic.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// shard holds every run of one workflow registration. The anchor lw
// pins the registration the runs belong to: when the registry hands out
// a different handle for the same ID (delete + re-register, replace,
// eviction), the stale shard is discarded on the next touch — runs never
// outlive the workflow they were validated against.
type shard struct {
	lw *engine.LiveWorkflow

	mu    sync.RWMutex
	runs  map[string]*Run
	order []string // ingestion order
}

// shardFor returns (creating or re-anchoring as needed) the shard of the
// given live registration.
func (s *Store) shardFor(lw *engine.LiveWorkflow) *shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[lw.ID()]
	if !ok || sh.lw != lw {
		sh = &shard{lw: lw, runs: make(map[string]*Run)}
		s.shards[lw.ID()] = sh
	}
	return sh
}

// shardRead returns the shard anchored to exactly this registration, or
// nil when no runs were ingested for it (read paths never create
// shards, and never resurrect a stale one).
func (s *Store) shardRead(lw *engine.LiveWorkflow) *shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[lw.ID()]
	if sh == nil || sh.lw != lw {
		return nil
	}
	return sh
}

// Run is one ingested execution trace in dense interned form. Runs are
// immutable after ingestion (replacement swaps the whole pointer), so
// queries read them without any lock.
type Run struct {
	id      string
	version uint64 // workflow version at ingestion
	n       int    // workflow task count at ingestion

	procID   []string // invocation IDs, dense
	procTask []int32  // invocation → workflow task index

	artID  []string
	artGen []int32 // artifact → generating invocation, -1 = external input
	artIdx map[string]int32

	used      [][2]int32 // (invocation, artifact), ingestion order
	usedStart []int32    // CSR offsets: artifacts used by each invocation
	usedArt   []int32

	invoked *bitset.Set // tasks with at least one invocation
	// invokedList mirrors invoked as a sorted dense slice: the label
	// query path enumerates candidate tasks by walking it (O(invoked))
	// instead of scanning an O(n) closure row per query.
	invokedList []int32

	doc []byte // canonical JSON document (journal, snapshots, export)
}

// ID returns the run ID.
func (r *Run) ID() string { return r.id }

// Doc returns the canonical JSON document of the run. Shared; do not
// mutate.
func (r *Run) Doc() []byte { return r.doc }

// RunInfo is the wire metadata of one ingested run.
type RunInfo struct {
	Run          string `json:"run"`
	Workflow     string `json:"workflow"`
	Version      uint64 `json:"version"` // workflow version at ingestion
	Invocations  int    `json:"invocations"`
	Artifacts    int    `json:"artifacts"`
	UsedEdges    int    `json:"used_edges"`
	TasksInvoked int    `json:"tasks_invoked"`
	Bytes        int64  `json:"bytes"`
	Replaced     bool   `json:"replaced,omitempty"`
}

func (r *Run) info(workflowID string) *RunInfo {
	return &RunInfo{
		Run:          r.id,
		Workflow:     workflowID,
		Version:      r.version,
		Invocations:  len(r.procID),
		Artifacts:    len(r.artID),
		UsedEdges:    len(r.used),
		TasksInvoked: r.invoked.Count(),
		Bytes:        int64(len(r.doc)),
	}
}

// Runs lists the ingested runs of a workflow in ingestion order.
func (s *Store) Runs(workflowID string) ([]RunInfo, error) {
	lw, err := s.reg.Get(workflowID)
	if err != nil {
		return nil, wrapErr("runs", err)
	}
	infos := []RunInfo{}
	sh := s.shardRead(lw)
	if sh == nil {
		return infos, nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, id := range sh.order {
		infos = append(infos, *sh.runs[id].info(workflowID))
	}
	return infos, nil
}

// Info returns the metadata of one run.
func (s *Store) Info(workflowID, runID string) (*RunInfo, error) {
	_, run, err := s.lookup(workflowID, runID)
	if err != nil {
		return nil, err
	}
	return run.info(workflowID), nil
}

// lookup resolves a (workflow, run) pair to the live handle and the
// immutable run object.
func (s *Store) lookup(workflowID, runID string) (*engine.LiveWorkflow, *Run, error) {
	lw, err := s.reg.Get(workflowID)
	if err != nil {
		return nil, nil, wrapErr("lineage", err)
	}
	sh := s.shardRead(lw)
	if sh == nil {
		return nil, nil, errf(engine.ErrUnknownRun, "lineage", "no run %q on workflow %q", runID, workflowID)
	}
	sh.mu.RLock()
	run := sh.runs[runID]
	sh.mu.RUnlock()
	if run == nil {
		return nil, nil, errf(engine.ErrUnknownRun, "lineage", "no run %q on workflow %q", runID, workflowID)
	}
	return lw, run, nil
}

// Stats is a snapshot of the store's counters for the /v1/stats
// endpoint. Resident numbers (Workflows … DocBytes) count what the
// store currently holds; Ingested/Queries/JournaledBytes are lifetime
// totals since boot.
type Stats struct {
	Workflows      int   `json:"workflows"`
	Runs           int   `json:"runs"`
	Invocations    int64 `json:"invocations"`
	Artifacts      int64 `json:"artifacts"`
	UsedEdges      int64 `json:"used_edges"`
	DocBytes       int64 `json:"doc_bytes"`
	JournaledBytes int64 `json:"journaled_bytes"`
	Ingested       int64 `json:"ingested_total"`
	Queries        int64 `json:"queries_total"`
}

// Stats sweeps the shards (pruning those whose registration died) and
// returns aggregate counters. The sweep uses Peek, not Get, so
// observability never reorders the registry's LRU eviction queue.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	shards := make(map[string]*shard, len(s.shards))
	for id, sh := range s.shards {
		shards[id] = sh
	}
	s.mu.Unlock()

	st := Stats{
		Ingested:       s.ingested.Load(),
		Queries:        s.queries.Load(),
		JournaledBytes: s.journaledBytes.Load(),
	}
	for id, sh := range shards {
		if lw, err := s.reg.Peek(id); err != nil || lw != sh.lw {
			s.mu.Lock()
			if s.shards[id] == sh {
				delete(s.shards, id)
			}
			s.mu.Unlock()
			continue
		}
		sh.mu.RLock()
		if len(sh.runs) > 0 {
			st.Workflows++
		}
		for _, r := range sh.runs {
			st.Runs++
			st.Invocations += int64(len(r.procID))
			st.Artifacts += int64(len(r.artID))
			st.UsedEdges += int64(len(r.used))
			st.DocBytes += int64(len(r.doc))
		}
		sh.mu.RUnlock()
	}
	return st
}

// SnapshotRuns implements the storage package's run provider: the
// canonical documents of every run currently held for workflowID, in
// ingestion order. The docs are immutable and safe to retain.
func (s *Store) SnapshotRuns(workflowID string) (ids []string, docs [][]byte) {
	lw, err := s.reg.Peek(workflowID)
	if err != nil {
		return nil, nil
	}
	sh := s.shardRead(lw)
	if sh == nil {
		return nil, nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, id := range sh.order {
		ids = append(ids, id)
		docs = append(docs, sh.runs[id].doc)
	}
	return ids, docs
}

// RestoreRun implements the storage package's run restorer: re-ingest a
// recovered run document, bypassing the journal (the record being
// replayed is already durable). Replay of a record for a workflow that
// did not survive recovery returns an ErrUnknownWorkflow-coded error,
// which the replayer tolerates.
func (s *Store) RestoreRun(workflowID, runID string, doc []byte) error {
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)
	w := sc.wire()
	if err := decodeRunDocInto(w, doc); err != nil {
		return errf(engine.ErrInvalidTrace, "restore", "run %q of workflow %q: %v", runID, workflowID, err)
	}
	// The recovered document is already canonical: retain its bytes
	// verbatim (no re-encode), so the restored run — and every snapshot
	// and WAL record derived from it later — is byte-identical to the
	// pre-crash one, whichever encoding it was written with.
	raw := doc
	if w.Run == "" {
		w.Run = runID // pre-canonical document: re-encode below instead
		raw = nil
	}
	ctx := context.Background() //lint:allow ctxpass replay of durable state: journaling is off, nothing downstream to trace or cancel
	_, ierr := s.ingestWire(ctx, workflowID, w, false, raw, sc)
	if ierr != nil {
		return ierr
	}
	return nil
}

// --- error helpers ------------------------------------------------------------

func errf(code engine.Code, op, format string, args ...any) *engine.Error {
	return &engine.Error{Code: code, Op: op, Message: fmt.Sprintf(format, args...)}
}

// wrapErr reuses the engine's error classification: engine errors pass
// through untouched, everything else becomes internal.
func wrapErr(op string, err error) *engine.Error {
	if err == nil {
		return nil
	}
	var ee *engine.Error
	if errors.As(err, &ee) {
		return ee
	}
	return &engine.Error{Code: engine.ErrInternal, Op: op, Message: err.Error(), Err: err}
}
