package runs

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/repo"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// figure1Store registers the Figure 1 workflow (with the fig1b view
// attached) into a fresh registry and returns a run store over it.
func figure1Store(t *testing.T) (*Store, *engine.Registry) {
	t.Helper()
	wf, v := repo.Figure1()
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("phylo", wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lw.AttachView("fig1b", func(*workflow.Workflow) (*view.View, error) {
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
	return New(reg), reg
}

// figure1RunDoc builds the canonical test trace: one artifact a<i> per
// task, used edges along the workflow edges, processes named by task
// (implicit invocations).
func figure1RunDoc(runID string) []byte {
	wf, _ := repo.Figure1()
	w := struct {
		Run       string           `json:"run"`
		Artifacts []map[string]any `json:"artifacts"`
		Used      []map[string]any `json:"used"`
	}{Run: runID}
	for i := 0; i < wf.N(); i++ {
		w.Artifacts = append(w.Artifacts, map[string]any{
			"id": "a" + wf.Task(i).ID, "generated_by": wf.Task(i).ID,
		})
	}
	for _, e := range wf.Edges() {
		w.Used = append(w.Used, map[string]any{"process": e[1], "artifact": "a" + e[0]})
	}
	doc, err := json.Marshal(w)
	if err != nil {
		panic(err)
	}
	return doc
}

func TestIngestAndLineageLevels(t *testing.T) {
	s, _ := figure1Store(t)
	info, err := s.Ingest("phylo", figure1RunDoc("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Run != "r1" || info.Artifacts != 12 || info.Invocations != 12 ||
		info.UsedEdges != 12 || info.TasksInvoked != 12 || info.Replaced {
		t.Fatalf("info = %+v", info)
	}

	// Exact: the provenance of a8 is the outputs of tasks 1,2,6,7 — and
	// NOT a3, the paper's point.
	ans, err := s.Lineage("phylo", Query{Run: "r1", Artifact: "a8"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Producer != "8" || ans.Level != LevelExact || ans.Direction != DirAncestors {
		t.Fatalf("answer header = %+v", ans)
	}
	if !reflect.DeepEqual(ans.Tasks, []string{"1", "2", "6", "7"}) {
		t.Fatalf("exact tasks = %v", ans.Tasks)
	}
	if !reflect.DeepEqual(ans.Artifacts, []string{"a1", "a2", "a6", "a7"}) {
		t.Fatalf("exact artifacts = %v", ans.Artifacts)
	}
	if ans.Sound != nil || ans.ViewSound != nil || len(ans.Spurious) != 0 {
		t.Fatalf("exact answer must carry no view fields: %+v", ans)
	}

	// View level: the fig1b user wrongly sees a3 upstream of a8.
	ans, err = s.Lineage("phylo", Query{Run: "r1", Artifact: "a8", Level: LevelView, View: "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.ViewSound == nil || *ans.ViewSound {
		t.Fatalf("fig1b must be unsound: %+v", ans)
	}
	if !reflect.DeepEqual(ans.Composites, []string{"13", "14", "15", "16"}) {
		t.Fatalf("view composites = %v", ans.Composites)
	}
	if !contains(ans.Tasks, "3") || !contains(ans.Artifacts, "a3") {
		t.Fatalf("view answer must contain the false positive 3/a3: %v %v", ans.Tasks, ans.Artifacts)
	}

	// Audited: the same answer now names composite 14 as spurious.
	ans, err = s.Lineage("phylo", Query{Run: "r1", Artifact: "a8", Level: LevelAudited, View: "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Sound == nil || *ans.Sound {
		t.Fatalf("audited answer must be unsound: %+v", ans)
	}
	if !reflect.DeepEqual(ans.Spurious, []string{"14"}) {
		t.Fatalf("spurious = %v, want [14]", ans.Spurious)
	}
	if !reflect.DeepEqual(ans.SpuriousTasks, []string{"3"}) {
		t.Fatalf("spurious tasks = %v, want [3]", ans.SpuriousTasks)
	}
	if len(ans.Missing) != 0 {
		t.Fatalf("quotient views never miss provenance: %v", ans.Missing)
	}

	// Audited on a composite with no spurious upstream answers sound:
	// every composite truly feeds 19 (task 12 is the global sink).
	ans, err = s.Lineage("phylo", Query{Run: "r1", Artifact: "a12", Level: LevelAudited, View: "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Sound == nil || !*ans.Sound {
		t.Fatalf("lineage of a12 should have no spurious composites: %+v", ans)
	}
}

func TestLineageDescendantsAndWitness(t *testing.T) {
	s, _ := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	ans, err := s.Lineage("phylo", Query{Run: "r1", Artifact: "a9", Direction: DirDescendants})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Tasks, []string{"10", "11", "12"}) {
		t.Fatalf("descendants of a9 = %v", ans.Tasks)
	}

	ans, err = s.Lineage("phylo", Query{Run: "r1", Artifact: "a8", Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	// Why-provenance of a8: the chain 1→2→6→7→8 — 5 generated + 4 used.
	var gen, used int
	for _, e := range ans.Witness {
		switch e.Relation {
		case "wasGeneratedBy":
			gen++
		case "used":
			used++
		default:
			t.Fatalf("unknown relation %q", e.Relation)
		}
	}
	if gen != 5 || used != 4 {
		t.Fatalf("witness = %d generated + %d used, want 5 + 4 (%v)", gen, used, ans.Witness)
	}

	// View-level descendants: composite impact of a2's home (13).
	ans, err = s.Lineage("phylo", Query{Run: "r1", Artifact: "a2", Level: LevelView, View: "fig1b", Direction: DirDescendants})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ans.Composites, "19") || contains(ans.Composites, "13") {
		t.Fatalf("view descendants of a2 = %v", ans.Composites)
	}
}

func TestExternalInputArtifact(t *testing.T) {
	s, _ := figure1Store(t)
	doc := []byte(`{"run":"r2","artifacts":[{"id":"input"},{"id":"out","generated_by":"1"}],
		"used":[{"process":"1","artifact":"input"}]}`)
	if _, err := s.Ingest("phylo", doc); err != nil {
		t.Fatal(err)
	}
	ans, err := s.Lineage("phylo", Query{Run: "r2", Artifact: "input", Level: LevelAudited, View: "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Producer != "" || len(ans.Tasks) != 0 || len(ans.Artifacts) != 0 {
		t.Fatalf("external input must answer empty: %+v", ans)
	}
	if ans.ViewSound == nil || ans.Sound == nil || !*ans.Sound {
		t.Fatalf("external input audited flags: %+v", ans)
	}
	// The produced artifact's witness reaches back to the external input.
	ans, err = s.Lineage("phylo", Query{Run: "r2", Artifact: "out", Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ans.Witness {
		if e.Relation == "used" && e.Artifact == "input" {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness must include the external input: %v", ans.Witness)
	}
}

func TestReplaceAndList(t *testing.T) {
	s, _ := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	info, err := s.Ingest("phylo", figure1RunDoc("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Replaced {
		t.Fatal("second ingestion of r1 must report Replaced")
	}
	if _, err := s.Ingest("phylo", figure1RunDoc("r2")); err != nil {
		t.Fatal(err)
	}
	infos, err := s.Runs("phylo")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Run != "r1" || infos[1].Run != "r2" {
		t.Fatalf("runs = %+v", infos)
	}
	st := s.Stats()
	if st.Workflows != 1 || st.Runs != 2 || st.Ingested != 3 || st.Artifacts != 24 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunsDieWithRegistration(t *testing.T) {
	s, reg := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	// Re-register the same ID: the old registration's runs must not
	// survive onto the new one.
	wf2, _ := repo.Figure1()
	if _, err := reg.Register("phylo", wf2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lineage("phylo", Query{Run: "r1", Artifact: "a8"}); !engine.IsCode(err, engine.ErrUnknownRun) {
		t.Fatalf("stale run must be unknown after re-registration, got %v", err)
	}
	if infos, err := s.Runs("phylo"); err != nil || len(infos) != 0 {
		t.Fatalf("runs after re-registration = %v, %v", infos, err)
	}
	if st := s.Stats(); st.Runs != 0 || st.Workflows != 0 {
		t.Fatalf("stats must prune dead shards: %+v", st)
	}
	// Deleting the workflow makes even the list 404.
	if err := reg.Delete("phylo"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Runs("phylo"); !engine.IsCode(err, engine.ErrUnknownWorkflow) {
		t.Fatalf("runs list after delete: %v", err)
	}
}

func TestLineageBatch(t *testing.T) {
	s, _ := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	qs := []Query{
		{Run: "r1", Artifact: "a8"},
		{Run: "r1", Artifact: "a8", Level: LevelAudited, View: "fig1b"},
		{Run: "r1", Artifact: "ghost"},
		{Run: "nope", Artifact: "a8"},
		{Run: "r1", Artifact: "a8", Level: "bogus"},
	}
	results, err := s.LineageBatch(context.Background(), "phylo", qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Answer == nil {
		t.Fatalf("result 0 = %+v", results[0])
	}
	if results[1].Answer == nil || results[1].Answer.Sound == nil || *results[1].Answer.Sound {
		t.Fatalf("result 1 = %+v", results[1])
	}
	if results[2].Err == nil || results[2].Err.Code != engine.ErrUnknownArtifact {
		t.Fatalf("result 2 = %+v", results[2])
	}
	if results[3].Err == nil || results[3].Err.Code != engine.ErrUnknownRun {
		t.Fatalf("result 3 = %+v", results[3])
	}
	if results[4].Err == nil || results[4].Err.Code != engine.ErrBadInput {
		t.Fatalf("result 4 = %+v", results[4])
	}
	// Batch-level failures: unknown workflow, empty batch.
	if _, err := s.LineageBatch(context.Background(), "ghost", qs, 0); !engine.IsCode(err, engine.ErrUnknownWorkflow) {
		t.Fatalf("unknown workflow batch: %v", err)
	}
	if _, err := s.LineageBatch(context.Background(), "phylo", nil, 0); !engine.IsCode(err, engine.ErrBadInput) {
		t.Fatalf("empty batch: %v", err)
	}
	// A canceled context marks every result ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err = s.LineageBatch(ctx, "phylo", qs[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err == nil || r.Err.Code != engine.ErrCanceled {
			t.Fatalf("canceled result %d = %+v", i, r)
		}
	}
}

func TestNDJSONEquivalence(t *testing.T) {
	s, _ := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("doc")); err != nil {
		t.Fatal(err)
	}

	// The same trace as an NDJSON stream.
	wf, _ := repo.Figure1()
	var sb strings.Builder
	sb.WriteString(`{"run":"nd"}` + "\n")
	for i := 0; i < wf.N(); i++ {
		fmt.Fprintf(&sb, `{"artifact":{"id":"a%s","generated_by":"%s"}}`+"\n", wf.Task(i).ID, wf.Task(i).ID)
	}
	for _, e := range wf.Edges() {
		fmt.Fprintf(&sb, `{"used":{"process":"%s","artifact":"a%s"}}`+"\n", e[1], e[0])
	}
	info, err := s.IngestNDJSON("phylo", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Run != "nd" || info.Artifacts != 12 || info.UsedEdges != 12 {
		t.Fatalf("ndjson info = %+v", info)
	}

	// Answers over both ingestion paths must be identical (modulo run ID).
	a1, err := s.Lineage("phylo", Query{Run: "doc", Artifact: "a8", Level: LevelAudited, View: "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Lineage("phylo", Query{Run: "nd", Artifact: "a8", Level: LevelAudited, View: "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	a2.Run = a1.Run
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("NDJSON answer diverges:\n%+v\n%+v", a1, a2)
	}
}

// TestLineageTracksMutation pins that answers read the live closure: a
// mutation changing reachability immediately changes lineage answers,
// including the audited delta.
func TestLineageTracksMutation(t *testing.T) {
	wf, _ := repo.Figure1()
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("phylo", wf)
	if err != nil {
		t.Fatal(err)
	}
	s := New(reg)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	ans, err := s.Lineage("phylo", Query{Run: "r1", Artifact: "a8"})
	if err != nil {
		t.Fatal(err)
	}
	if contains(ans.Tasks, "3") {
		t.Fatal("3 must not reach 8 before the mutation")
	}
	if _, err := lw.Mutate(engine.Mutation{Edges: [][2]string{{"3", "7"}}}); err != nil {
		t.Fatal(err)
	}
	ans, err = s.Lineage("phylo", Query{Run: "r1", Artifact: "a8"})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ans.Tasks, "3") || ans.Version != 2 {
		t.Fatalf("after 3→7 the exact lineage of a8 must include 3 at version 2: %+v", ans)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
