// Binary canonical run documents (PR 9). The canonical document of an
// ingested run — the bytes the WAL and snapshots carry, and recovery
// replays — used to be the JSON re-encoding of the normalized wire
// shape; for a dense interned run that is pure overhead: field names,
// quoting, and a reflective json.Marshal per ingest. The binary form
// below writes the same normalized content (implicit invocations
// materialized, everything in dense order) as length-prefixed binwire,
// straight from the interned representation.
//
// Binary documents open with the version tag docBinV1 (0xD1), which can
// never open a JSON document (JSON docs start with '{'), so
// decodeRunDoc sniffs the first byte and both forms decode through the
// same path — JSON-era data dirs restore unchanged, byte for byte, and
// restored documents keep whichever encoding they were written with.
package runs

import (
	"fmt"

	"wolves/internal/binwire"
	"wolves/internal/workflow"
)

// docBinV1 tags the first binary run-document format; unknown tags are
// rejected rather than guessed at.
const docBinV1 = 0xD1

// appendDocBinary encodes the run's canonical document:
//
//	docBinV1 | uvarint version | runID
//	| uvarint ninv  | (invocationID, taskID)*
//	| uvarint narts | (artifactID, uvarint gen+1)*   gen 0 = external input
//	| uvarint nused | (uvarint invocation, uvarint artifact)*
//
// Strings are uvarint-length-prefixed (binwire); used edges reference
// invocations and artifacts by their dense index, task references stay
// ID strings (indices are not stable across workflow versions, IDs are).
func (r *Run) appendDocBinary(dst []byte, wf *workflow.Workflow) []byte {
	dst = append(dst, docBinV1)
	dst = binwire.AppendUvarint(dst, r.version)
	dst = binwire.AppendString(dst, r.id)
	dst = binwire.AppendUvarint(dst, uint64(len(r.procID)))
	for i, id := range r.procID {
		dst = binwire.AppendString(dst, id)
		dst = binwire.AppendString(dst, wf.Task(int(r.procTask[i])).ID)
	}
	dst = binwire.AppendUvarint(dst, uint64(len(r.artID)))
	for i, id := range r.artID {
		dst = binwire.AppendString(dst, id)
		dst = binwire.AppendUvarint(dst, uint64(r.artGen[i]+1))
	}
	dst = binwire.AppendUvarint(dst, uint64(len(r.used)))
	for _, e := range r.used {
		dst = binwire.AppendUvarint(dst, uint64(e[0]))
		dst = binwire.AppendUvarint(dst, uint64(e[1]))
	}
	return dst
}

// decodeRunDocBinaryInto materializes a binary canonical document back
// into the wire shape, which then flows through the ordinary validation
// path — a recovered run is re-validated exactly like a fresh one.
func decodeRunDocBinaryInto(w *wireRun, doc []byte) error {
	r := binwire.NewReader(doc[1:])
	w.Version = r.Uvarint()
	w.Run = r.String()
	if n := r.Len(2); n > 0 {
		for i := 0; i < n; i++ {
			w.Invocations = append(w.Invocations, wireInvocation{ID: r.String(), Task: r.String()})
		}
	}
	if n := r.Len(2); n > 0 {
		for i := 0; i < n; i++ {
			a := wireArtifact{ID: r.String()}
			gen := r.Uvarint()
			if r.Err() == nil && gen > 0 {
				gi := int(gen - 1)
				if gi >= len(w.Invocations) {
					return fmt.Errorf("binary run document: artifact %q generated_by index %d out of range", a.ID, gi)
				}
				a.GeneratedBy = w.Invocations[gi].ID
			}
			w.Artifacts = append(w.Artifacts, a)
		}
	}
	if n := r.Len(2); n > 0 {
		for i := 0; i < n; i++ {
			pi, ai := r.Uvarint(), r.Uvarint()
			if r.Err() != nil {
				break
			}
			if pi >= uint64(len(w.Invocations)) || ai >= uint64(len(w.Artifacts)) {
				return fmt.Errorf("binary run document: used edge %d index out of range", i)
			}
			w.Used = append(w.Used, wireUsed{Process: w.Invocations[pi].ID, Artifact: w.Artifacts[ai].ID})
		}
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("binary run document: %w", err)
	}
	return nil
}
