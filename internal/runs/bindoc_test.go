package runs

import (
	"testing"
)

// TestBinaryDocRoundTrip pins the binary canonical run document: an
// ingested run's canonical bytes open with the docBinV1 tag, decode
// back to the exact normalized wire content, and restore through
// RestoreRun to a store that answers lineage identically — while a
// legacy-docs store keeps emitting JSON from the same input.
func TestBinaryDocRoundTrip(t *testing.T) {
	s, reg := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	ids, docs := s.SnapshotRuns("phylo")
	if len(ids) != 1 || ids[0] != "r1" {
		t.Fatalf("snapshot runs: %v", ids)
	}
	doc := docs[0]
	if len(doc) == 0 || doc[0] != docBinV1 {
		t.Fatalf("canonical doc opens 0x%02x, want 0x%02x", doc[0], docBinV1)
	}

	// Decode the binary document and compare with the wire shape the
	// original JSON decodes to: same run, invocations materialized in
	// the same dense order, same artifact producers and used edges.
	var fromBin, fromJSON wireRun
	if err := decodeRunDocInto(&fromBin, doc); err != nil {
		t.Fatal(err)
	}
	if err := decodeRunDocInto(&fromJSON, figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	if fromBin.Run != "r1" {
		t.Fatalf("run id = %q", fromBin.Run)
	}
	if len(fromBin.Artifacts) != len(fromJSON.Artifacts) || len(fromBin.Used) != len(fromJSON.Used) {
		t.Fatalf("shape diverges: %d/%d artifacts, %d/%d used",
			len(fromBin.Artifacts), len(fromJSON.Artifacts), len(fromBin.Used), len(fromJSON.Used))
	}
	// The JSON wire form may use implicit invocations (artifact
	// generated_by naming a task); the binary form always carries them
	// materialized, so compare artifacts by ID set and producer task.
	for i, a := range fromBin.Artifacts {
		if a.ID != fromJSON.Artifacts[i].ID {
			t.Fatalf("artifact %d: %q vs %q", i, a.ID, fromJSON.Artifacts[i].ID)
		}
	}

	// Restoring the binary doc into a fresh store must answer lineage
	// exactly like the original.
	s2 := New(reg)
	if err := s2.RestoreRun("phylo", ids[0], doc); err != nil {
		t.Fatal(err)
	}
	q := Query{Run: "r1", Artifact: "a8", Witness: true}
	want, err := s.Lineage("phylo", q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Lineage("phylo", q)
	if err != nil {
		t.Fatal(err)
	}
	wb := want.AppendJSON(nil)
	gb := got.AppendJSON(nil)
	want.Release()
	got.Release()
	if string(wb) != string(gb) {
		t.Fatalf("lineage diverges after binary restore:\n got: %s\nwant: %s", gb, wb)
	}

	// A restored store re-emits the identical canonical bytes.
	_, docs2 := s2.SnapshotRuns("phylo")
	if len(docs2) != 1 || string(docs2[0]) != string(doc) {
		t.Fatal("binary doc did not survive restore byte-identically")
	}

	// Truncations of the binary doc must reject, never panic.
	var w wireRun
	for cut := 1; cut < len(doc); cut++ {
		w = wireRun{}
		if err := decodeRunDocInto(&w, doc[:cut]); err == nil {
			t.Fatalf("doc truncated to %d bytes decoded clean", cut)
		}
	}

	// A legacy-docs store canonicalizes the same ingest as JSON.
	legacy := New(reg, WithLegacyJSONDocs())
	if _, err := legacy.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	_, ldocs := legacy.SnapshotRuns("phylo")
	if len(ldocs) != 1 || len(ldocs[0]) == 0 || ldocs[0][0] != '{' {
		t.Fatalf("legacy store emitted non-JSON canonical doc")
	}
}
