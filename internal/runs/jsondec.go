// Hand-rolled JSON decoding for the ingestion wire shapes (PR 9).
// encoding/json's reflective decoder dominated the ingest profile —
// ~85% of Store.Ingest was json.Unmarshal of the incoming document —
// and the wire formats are three tiny fixed structs, so a purpose-built
// decoder removes the reflection entirely. Behavior is pinned to
// encoding/json, not merely inspired by it: acceptance, rejection and
// the decoded structs agree exactly (FuzzJSONDecodeEquivalence
// differentially fuzzes the two decoders), including the obscure
// corners — case-folded key matching, duplicate-key merge semantics,
// null as leave-unchanged (but slice- and pointer-clearing), lone
// surrogate replacement, invalid-UTF-8 replacement, and the scanner's
// nesting cap — so swapping decoders is invisible on the wire.
package runs

import (
	"errors"
	"fmt"
	"math"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// jsonMaxDepth mirrors encoding/json's scanner nesting cap: a document
// may hold at most this many open containers at once. Inputs nesting
// deeper are rejected there, so they are rejected here too.
const jsonMaxDepth = 10000

var errJSONEnd = errors.New("unexpected end of JSON input")

// jdec is the decoder state: input, cursor, open-container depth, and a
// scratch buffer backing escaped-string decodes (clean strings — no
// escapes, no control bytes, pure ASCII — are sliced zero-copy). The
// zero value is ready to use; pooling one (ingestScratch) reuses the
// scratch buffer across documents.
type jdec struct {
	b     []byte
	i     int
	depth int
	buf   []byte
}

// wireLineBufs are the pointee buffers behind a decoded wireLine's
// pointer fields, so the per-line NDJSON decode allocates nothing. The
// pointers aliased into the wireLine are valid until the next decode
// with the same bufs — accumulate() copies them out line by line.
type wireLineBufs struct {
	inv  wireInvocation
	art  wireArtifact
	used wireUsed
}

// decodeRunDocJSON parses one JSON run document into w with the
// decoder's scratch. Matches json.Unmarshal(doc, w) exactly.
func (d *jdec) decodeRunDocJSON(w *wireRun, doc []byte) error {
	d.b, d.i, d.depth = doc, 0, 0
	d.ws()
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 'n':
		// Top-level null is a no-op, exactly like json.Unmarshal.
		if err := d.literal("null"); err != nil {
			return err
		}
	case '{':
		if err := d.runObject(w); err != nil {
			return err
		}
	default:
		return d.errInvalid(c, "looking for beginning of value")
	}
	return d.end()
}

// decodeWireLineJSON parses one NDJSON record into l. Pointer fields
// point into bufs when non-nil (the pooled path), or freshly allocated
// structs otherwise. Matches json.Unmarshal(line, l) exactly.
func (d *jdec) decodeWireLineJSON(l *wireLine, line []byte, bufs *wireLineBufs) error {
	d.b, d.i, d.depth = line, 0, 0
	d.ws()
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 'n':
		if err := d.literal("null"); err != nil {
			return err
		}
	case '{':
		if err := d.lineObject(l, bufs); err != nil {
			return err
		}
	default:
		return d.errInvalid(c, "looking for beginning of value")
	}
	return d.end()
}

// runObject decodes the wireRun object body; d.i is at '{'.
func (d *jdec) runObject(w *wireRun) error {
	return d.object(func(key []byte) error {
		switch string(key) { // compiler-optimized, no allocation
		case "run":
			return d.stringField(&w.Run)
		case "version":
			return d.uintField(&w.Version)
		case "invocations":
			return d.invocationsField(&w.Invocations)
		case "artifacts":
			return d.artifactsField(&w.Artifacts)
		case "used":
			return d.usedField(&w.Used)
		}
		// No exact match: case-folded match in struct field order, like
		// encoding/json's fallback; then skip as an unknown field.
		switch {
		case foldedEq(key, "RUN"):
			return d.stringField(&w.Run)
		case foldedEq(key, "VERSION"):
			return d.uintField(&w.Version)
		case foldedEq(key, "INVOCATIONS"):
			return d.invocationsField(&w.Invocations)
		case foldedEq(key, "ARTIFACTS"):
			return d.artifactsField(&w.Artifacts)
		case foldedEq(key, "USED"):
			return d.usedField(&w.Used)
		}
		return d.skipValue()
	})
}

// lineObject decodes the wireLine object body; d.i is at '{'.
func (d *jdec) lineObject(l *wireLine, bufs *wireLineBufs) error {
	// Pointer-field decode, shared across the three record kinds: null
	// clears the pointer; an object decodes into the existing pointee
	// when the pointer is already set (duplicate-key merge, exactly
	// encoding/json's indirect() reuse) or into a zeroed buffer/fresh
	// allocation when nil.
	inv := func() error {
		c, err := d.peek()
		if err != nil {
			return err
		}
		if c == 'n' {
			if err := d.literal("null"); err != nil {
				return err
			}
			l.Invocation = nil
			return nil
		}
		if c != '{' {
			return d.errInvalid(c, "decoding an invocation object")
		}
		if l.Invocation == nil {
			if bufs != nil {
				bufs.inv = wireInvocation{}
				l.Invocation = &bufs.inv
			} else {
				l.Invocation = new(wireInvocation)
			}
		}
		return d.invocationObject(l.Invocation)
	}
	art := func() error {
		c, err := d.peek()
		if err != nil {
			return err
		}
		if c == 'n' {
			if err := d.literal("null"); err != nil {
				return err
			}
			l.Artifact = nil
			return nil
		}
		if c != '{' {
			return d.errInvalid(c, "decoding an artifact object")
		}
		if l.Artifact == nil {
			if bufs != nil {
				bufs.art = wireArtifact{}
				l.Artifact = &bufs.art
			} else {
				l.Artifact = new(wireArtifact)
			}
		}
		return d.artifactObject(l.Artifact)
	}
	used := func() error {
		c, err := d.peek()
		if err != nil {
			return err
		}
		if c == 'n' {
			if err := d.literal("null"); err != nil {
				return err
			}
			l.Used = nil
			return nil
		}
		if c != '{' {
			return d.errInvalid(c, "decoding a used object")
		}
		if l.Used == nil {
			if bufs != nil {
				bufs.used = wireUsed{}
				l.Used = &bufs.used
			} else {
				l.Used = new(wireUsed)
			}
		}
		return d.usedObject(l.Used)
	}
	return d.object(func(key []byte) error {
		switch string(key) {
		case "run":
			return d.stringField(&l.Run)
		case "invocation":
			return inv()
		case "artifact":
			return art()
		case "used":
			return used()
		}
		switch {
		case foldedEq(key, "RUN"):
			return d.stringField(&l.Run)
		case foldedEq(key, "INVOCATION"):
			return inv()
		case foldedEq(key, "ARTIFACT"):
			return art()
		case foldedEq(key, "USED"):
			return used()
		}
		return d.skipValue()
	})
}

// invocationObject decodes one invocation object into el; d.i is at '{'.
// el is not zeroed: reused slice elements and merged pointees keep
// fields the JSON omits, matching encoding/json.
func (d *jdec) invocationObject(el *wireInvocation) error {
	return d.object(func(key []byte) error {
		switch string(key) {
		case "id":
			return d.stringField(&el.ID)
		case "task":
			return d.stringField(&el.Task)
		}
		switch {
		case foldedEq(key, "ID"):
			return d.stringField(&el.ID)
		case foldedEq(key, "TASK"):
			return d.stringField(&el.Task)
		}
		return d.skipValue()
	})
}

// artifactObject decodes one artifact object into el; d.i is at '{'.
func (d *jdec) artifactObject(el *wireArtifact) error {
	return d.object(func(key []byte) error {
		switch string(key) {
		case "id":
			return d.stringField(&el.ID)
		case "generated_by":
			return d.stringField(&el.GeneratedBy)
		}
		switch {
		case foldedEq(key, "ID"):
			return d.stringField(&el.ID)
		case foldedEq(key, "GENERATED_BY"):
			return d.stringField(&el.GeneratedBy)
		}
		return d.skipValue()
	})
}

// usedObject decodes one used-edge object into el; d.i is at '{'.
func (d *jdec) usedObject(el *wireUsed) error {
	return d.object(func(key []byte) error {
		switch string(key) {
		case "process":
			return d.stringField(&el.Process)
		case "artifact":
			return d.stringField(&el.Artifact)
		}
		switch {
		case foldedEq(key, "PROCESS"):
			return d.stringField(&el.Process)
		case foldedEq(key, "ARTIFACT"):
			return d.stringField(&el.Artifact)
		}
		return d.skipValue()
	})
}

// object drives one {...} body: depth accounting, key framing, comma
// discipline. field is called with the cursor on the value of each key
// and must consume exactly that value.
func (d *jdec) object(field func(key []byte) error) error {
	if err := d.push(); err != nil {
		return err
	}
	d.i++ // '{'
	d.ws()
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == '}' {
		d.i++
		d.depth--
		return nil
	}
	for {
		c, err := d.peek()
		if err != nil {
			return err
		}
		if c != '"' {
			return d.errInvalid(c, "looking for beginning of object key string")
		}
		key, err := d.readString()
		if err != nil {
			return err
		}
		d.ws()
		c, err = d.peek()
		if err != nil {
			return err
		}
		if c != ':' {
			return d.errInvalid(c, "after object key")
		}
		d.i++
		d.ws()
		if err := field(key); err != nil {
			return err
		}
		d.ws()
		c, err = d.peek()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.i++
			d.ws()
		case '}':
			d.i++
			d.depth--
			return nil
		default:
			return d.errInvalid(c, "after object key:value pair")
		}
	}
}

// stringField decodes a string value into *s; null leaves *s unchanged.
func (d *jdec) stringField(s *string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 'n':
		return d.literal("null")
	case '"':
		v, err := d.readString()
		if err != nil {
			return err
		}
		*s = string(v)
		return nil
	}
	return d.errInvalid(c, "decoding a string field")
}

// uintField decodes a JSON number into *v; null leaves *v unchanged.
// Negative, fractional, exponential and overflowing numbers are
// rejected, exactly the literals strconv.ParseUint rejects for
// encoding/json's uint64 path.
func (d *jdec) uintField(v *uint64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literal("null")
	}
	if c != '-' && (c < '0' || c > '9') {
		return d.errInvalid(c, "decoding an unsigned integer field")
	}
	lit, err := d.scanNumber()
	if err != nil {
		return err
	}
	var n uint64
	for _, c := range lit {
		if c < '0' || c > '9' {
			return fmt.Errorf("cannot unmarshal number %s into uint64 field", lit)
		}
		dgt := uint64(c - '0')
		if n > (math.MaxUint64-dgt)/10 {
			return fmt.Errorf("cannot unmarshal number %s into uint64 field: overflow", lit)
		}
		n = n*10 + dgt
	}
	*v = n
	return nil
}

// invocationsField decodes the invocations array. Null sets the slice
// nil; a duplicate key re-decodes into the existing elements in place
// (omitted fields keep their prior values) — both encoding/json's
// semantics. Elements appended past the existing length start zeroed,
// which is also what makes pooled-scratch reuse safe without clearing.
func (d *jdec) invocationsField(sp *[]wireInvocation) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*sp = nil
		return nil
	}
	if c != '[' {
		return d.errInvalid(c, "decoding the invocations array")
	}
	if err := d.push(); err != nil {
		return err
	}
	d.i++
	d.ws()
	old, n := *sp, 0
	if c, err := d.peek(); err != nil {
		return err
	} else if c == ']' {
		d.i++
		d.depth--
		if old == nil {
			*sp = []wireInvocation{}
		} else {
			*sp = old[:0]
		}
		return nil
	}
	for {
		if n == len(old) {
			old = append(old, wireInvocation{})
		}
		c, err := d.peek()
		if err != nil {
			return err
		}
		switch c {
		case 'n':
			// Null element: the element keeps its value (zero when fresh,
			// prior value when a duplicate key reuses it).
			if err := d.literal("null"); err != nil {
				return err
			}
		case '{':
			if err := d.invocationObject(&old[n]); err != nil {
				return err
			}
		default:
			return d.errInvalid(c, "decoding an invocation object")
		}
		n++
		d.ws()
		c, err = d.peek()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.i++
			d.ws()
		case ']':
			d.i++
			d.depth--
			*sp = old[:n]
			return nil
		default:
			return d.errInvalid(c, "after array element")
		}
	}
}

// artifactsField decodes the artifacts array; semantics as
// invocationsField.
func (d *jdec) artifactsField(sp *[]wireArtifact) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*sp = nil
		return nil
	}
	if c != '[' {
		return d.errInvalid(c, "decoding the artifacts array")
	}
	if err := d.push(); err != nil {
		return err
	}
	d.i++
	d.ws()
	old, n := *sp, 0
	if c, err := d.peek(); err != nil {
		return err
	} else if c == ']' {
		d.i++
		d.depth--
		if old == nil {
			*sp = []wireArtifact{}
		} else {
			*sp = old[:0]
		}
		return nil
	}
	for {
		if n == len(old) {
			old = append(old, wireArtifact{})
		}
		c, err := d.peek()
		if err != nil {
			return err
		}
		switch c {
		case 'n':
			if err := d.literal("null"); err != nil {
				return err
			}
		case '{':
			if err := d.artifactObject(&old[n]); err != nil {
				return err
			}
		default:
			return d.errInvalid(c, "decoding an artifact object")
		}
		n++
		d.ws()
		c, err = d.peek()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.i++
			d.ws()
		case ']':
			d.i++
			d.depth--
			*sp = old[:n]
			return nil
		default:
			return d.errInvalid(c, "after array element")
		}
	}
}

// usedField decodes the used array; semantics as invocationsField.
func (d *jdec) usedField(sp *[]wireUsed) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*sp = nil
		return nil
	}
	if c != '[' {
		return d.errInvalid(c, "decoding the used array")
	}
	if err := d.push(); err != nil {
		return err
	}
	d.i++
	d.ws()
	old, n := *sp, 0
	if c, err := d.peek(); err != nil {
		return err
	} else if c == ']' {
		d.i++
		d.depth--
		if old == nil {
			*sp = []wireUsed{}
		} else {
			*sp = old[:0]
		}
		return nil
	}
	for {
		if n == len(old) {
			old = append(old, wireUsed{})
		}
		c, err := d.peek()
		if err != nil {
			return err
		}
		switch c {
		case 'n':
			if err := d.literal("null"); err != nil {
				return err
			}
		case '{':
			if err := d.usedObject(&old[n]); err != nil {
				return err
			}
		default:
			return d.errInvalid(c, "decoding a used object")
		}
		n++
		d.ws()
		c, err = d.peek()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.i++
			d.ws()
		case ']':
			d.i++
			d.depth--
			*sp = old[:n]
			return nil
		default:
			return d.errInvalid(c, "after array element")
		}
	}
}

// skipValue consumes one well-formed JSON value of any shape (unknown
// fields). The whole value is validated — encoding/json's scanner
// checks unknown fields too, so a malformed unknown value must reject
// the document here as well.
func (d *jdec) skipValue() error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch {
	case c == '"':
		_, err := d.readString()
		return err
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	case c == '-' || ('0' <= c && c <= '9'):
		_, err := d.scanNumber()
		return err
	case c == '{':
		return d.object(func([]byte) error { return d.skipValue() })
	case c == '[':
		if err := d.push(); err != nil {
			return err
		}
		d.i++
		d.ws()
		if c, err := d.peek(); err != nil {
			return err
		} else if c == ']' {
			d.i++
			d.depth--
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			d.ws()
			c, err := d.peek()
			if err != nil {
				return err
			}
			switch c {
			case ',':
				d.i++
				d.ws()
			case ']':
				d.i++
				d.depth--
				return nil
			default:
				return d.errInvalid(c, "after array element")
			}
		}
	}
	return d.errInvalid(c, "looking for beginning of value")
}

// readString decodes the string at d.i (which must be '"'), returning
// its bytes. Clean ASCII is sliced zero-copy out of the input; escapes,
// control-byte errors, and non-ASCII (which may need invalid-UTF-8
// replacement) take the scratch-buffer slow path. The returned slice is
// valid only until the next readString.
func (d *jdec) readString() ([]byte, error) {
	d.i++
	start := d.i
	for d.i < len(d.b) {
		c := d.b[d.i]
		if c == '"' {
			s := d.b[start:d.i]
			d.i++
			return s, nil
		}
		if c == '\\' || c >= utf8.RuneSelf {
			return d.readStringSlow(start)
		}
		if c < 0x20 {
			return nil, d.errInvalid(c, "in string literal")
		}
		d.i++
	}
	return nil, errJSONEnd
}

// readStringSlow finishes a string decode that needs byte processing,
// mirroring encoding/json's unquote: escape table, \u with UTF-16
// surrogate pairing (lone surrogates become U+FFFD without error), and
// invalid raw UTF-8 replaced with U+FFFD.
func (d *jdec) readStringSlow(start int) ([]byte, error) {
	buf := append(d.buf[:0], d.b[start:d.i]...)
	for d.i < len(d.b) {
		c := d.b[d.i]
		switch {
		case c == '"':
			d.i++
			d.buf = buf
			return buf, nil
		case c == '\\':
			d.i++
			if d.i >= len(d.b) {
				return nil, errJSONEnd
			}
			e := d.b[d.i]
			d.i++
			switch e {
			case '"', '\\', '/':
				buf = append(buf, e)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				rr, ok := d.hex4()
				if !ok {
					return nil, fmt.Errorf("invalid \\u escape in string literal")
				}
				if utf16.IsSurrogate(rr) {
					// Try to pair with a following \uXXXX; an unpairable
					// surrogate decodes to U+FFFD and the following escape
					// (if any) is processed on its own — encoding/json's
					// exact behavior.
					if d.i+1 < len(d.b) && d.b[d.i] == '\\' && d.b[d.i+1] == 'u' {
						save := d.i
						d.i += 2
						if rr1, ok1 := d.hex4(); ok1 {
							if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
								buf = utf8.AppendRune(buf, dec)
								continue
							}
						}
						d.i = save
					}
					rr = unicode.ReplacementChar
				}
				buf = utf8.AppendRune(buf, rr)
			default:
				return nil, fmt.Errorf("invalid escape code '\\%c' in string literal", e)
			}
		case c < 0x20:
			return nil, d.errInvalid(c, "in string literal")
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			d.i++
		default:
			r, size := utf8.DecodeRune(d.b[d.i:])
			buf = utf8.AppendRune(buf, r)
			d.i += size
		}
	}
	return nil, errJSONEnd
}

// hex4 parses exactly four hex digits at d.i, advancing past them.
func (d *jdec) hex4() (rune, bool) {
	if d.i+4 > len(d.b) {
		return 0, false
	}
	var r rune
	for _, c := range d.b[d.i : d.i+4] {
		switch {
		case '0' <= c && c <= '9':
			r = r<<4 | rune(c-'0')
		case 'a' <= c && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case 'A' <= c && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, false
		}
	}
	d.i += 4
	return r, true
}

// scanNumber consumes one number per the JSON grammar and returns its
// literal bytes. The follower byte is the caller's problem: an illegal
// one fails the comma/close check that comes next, as in encoding/json.
func (d *jdec) scanNumber() ([]byte, error) {
	start := d.i
	if d.b[d.i] == '-' {
		d.i++
	}
	c, err := d.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case c == '0':
		d.i++
	case '1' <= c && c <= '9':
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	default:
		return nil, d.errInvalid(c, "in numeric literal")
	}
	if d.i < len(d.b) && d.b[d.i] == '.' {
		d.i++
		if err := d.digits(); err != nil {
			return nil, err
		}
	}
	if d.i < len(d.b) && (d.b[d.i] == 'e' || d.b[d.i] == 'E') {
		d.i++
		if d.i < len(d.b) && (d.b[d.i] == '+' || d.b[d.i] == '-') {
			d.i++
		}
		if err := d.digits(); err != nil {
			return nil, err
		}
	}
	return d.b[start:d.i], nil
}

// digits consumes one or more decimal digits.
func (d *jdec) digits() error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c < '0' || c > '9' {
		return d.errInvalid(c, "in numeric literal")
	}
	for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
		d.i++
	}
	return nil
}

// literal consumes an exact keyword (true/false/null). The character
// after it is validated by whatever parse step follows, matching the
// scanner's state machine.
func (d *jdec) literal(lit string) error {
	if len(d.b)-d.i < len(lit) {
		return errJSONEnd
	}
	if string(d.b[d.i:d.i+len(lit)]) != lit {
		return fmt.Errorf("invalid literal, expected %q", lit)
	}
	d.i += len(lit)
	return nil
}

// end verifies nothing but whitespace follows the top-level value.
func (d *jdec) end() error {
	d.ws()
	if d.i < len(d.b) {
		return d.errInvalid(d.b[d.i], "after top-level value")
	}
	return nil
}

func (d *jdec) ws() {
	for d.i < len(d.b) {
		switch d.b[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *jdec) peek() (byte, error) {
	if d.i >= len(d.b) {
		return 0, errJSONEnd
	}
	return d.b[d.i], nil
}

// push opens one container level, enforcing the nesting cap.
func (d *jdec) push() error {
	d.depth++
	if d.depth > jsonMaxDepth {
		return errors.New("exceeded max depth")
	}
	return nil
}

func (d *jdec) errInvalid(c byte, ctx string) error {
	return fmt.Errorf("invalid character %q %s", c, ctx)
}

// foldedEq reports whether key case-folds to target, where target is a
// pre-folded field name (ASCII; our tags fold to their upper-case
// forms). The fold is encoding/json's: each rune mapped to the minimum
// of its unicode.SimpleFold orbit — so exotic equivalences like the
// Kelvin sign folding to 'K' match exactly as they do there.
func foldedEq(key []byte, target string) bool {
	j := 0
	for i := 0; i < len(key); {
		if j >= len(target) {
			return false
		}
		c := key[i]
		if c < utf8.RuneSelf {
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			if c != target[j] {
				return false
			}
			i++
			j++
			continue
		}
		r, n := utf8.DecodeRune(key[i:])
		r = foldRune(r)
		if r >= utf8.RuneSelf || byte(r) != target[j] {
			return false
		}
		i += n
		j++
	}
	return j == len(target)
}

// foldRune maps r to the minimum rune of its SimpleFold orbit —
// encoding/json's canonical fold.
func foldRune(r rune) rune {
	for {
		r2 := unicode.SimpleFold(r)
		if r2 <= r {
			return r2
		}
		r = r2
	}
}
