package runs

import (
	"bytes"
	"errors"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/repo"
)

// fuzzRegistry builds the registry once per fuzz worker. Each iteration
// layers a fresh run store over it, so runs accumulated by one input
// cannot mask a crash on the next.
func fuzzRegistry(f *testing.F) *engine.Registry {
	f.Helper()
	wf, _ := repo.Figure1()
	reg := engine.NewRegistry(engine.New())
	if _, err := reg.Register("phylo", wf); err != nil {
		f.Fatal(err)
	}
	return reg
}

// checkIngestErr asserts the rejection contract malformed input must
// honor: every rejection is a typed *engine.Error carrying
// invalid_trace (422) or bad_input (400) — never internal, never
// untyped. Panics are caught by the fuzzer itself.
func checkIngestErr(t *testing.T, err error) {
	t.Helper()
	var ee *engine.Error
	if !errors.As(err, &ee) {
		t.Fatalf("ingest rejection is not a typed *engine.Error: %v", err)
	}
	if ee.Code != engine.ErrInvalidTrace && ee.Code != engine.ErrBadInput {
		t.Fatalf("ingest rejection carries code %q, want invalid_trace or bad_input: %v", ee.Code, err)
	}
}

// FuzzIngestDoc throws arbitrary bytes at the whole-document OPM ingest
// path (decode → validate → intern → canonical re-encode).
func FuzzIngestDoc(f *testing.F) {
	f.Add(figure1RunDoc("r1"))
	f.Add([]byte(`{"run":"r2","invocations":[{"id":"i1","task":"CRB"}],` +
		`"artifacts":[{"id":"a1","generated_by":"i1"}],"used":[{"process":"i1","artifact":"a1"}]}`))
	f.Add([]byte(`{"run":"r3","artifacts":[{"id":"a1"}]}`))
	f.Add([]byte(`{"run":""}`))
	f.Add([]byte(`{"run":"dup","artifacts":[{"id":"a1"},{"id":"a1"}]}`))
	f.Add([]byte(`{"run":"dangle","artifacts":[{"id":"a1"}],"used":[{"process":"CRB","artifact":"nope"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))

	reg := fuzzRegistry(f)
	f.Fuzz(func(t *testing.T, doc []byte) {
		s := New(reg)
		info, err := s.Ingest("phylo", doc)
		if err != nil {
			checkIngestErr(t, err)
			return
		}
		// An accepted run must re-ingest cleanly from its own canonical
		// document: WAL replay and snapshot restore depend on that round
		// trip.
		_, run, lerr := s.lookup("phylo", info.Run)
		if lerr != nil {
			t.Fatalf("accepted run %q not queryable: %v", info.Run, lerr)
		}
		if _, rerr := New(reg).Ingest("phylo", run.doc); rerr != nil {
			t.Fatalf("canonical document of accepted run %q rejected on re-ingest: %v", info.Run, rerr)
		}
	})
}

// FuzzIngestNDJSON throws arbitrary byte streams at the NDJSON ingest
// path, including torn final lines — which must reject the whole run
// (runs are atomic, never partially ingested).
func FuzzIngestNDJSON(f *testing.F) {
	f.Add([]byte("{\"run\":\"r1\"}\n{\"artifact\":{\"id\":\"a1\",\"generated_by\":\"CRB\"}}\n" +
		"{\"used\":{\"process\":\"CRB\",\"artifact\":\"a1\"}}\n"))
	f.Add([]byte("{\"run\":\"r2\"}\n{\"invocation\":{\"id\":\"i1\",\"task\":\"CRB\"}}\n"))
	f.Add([]byte("{\"run\":\"r3\"}\n{\"artifact\":{\"id\":\"a1\"}}")) // final line whole, just unterminated
	f.Add([]byte("{\"run\":\"r4\"}\n{\"artifact\":{\"id\":\"a1\""))   // final line torn mid-record
	f.Add([]byte("{\"run\":\"r5\"}\n{}\n"))                           // record declaring nothing
	f.Add([]byte("{\"run\":\"r6\"}\n{\"run\":\"other\"}\n"))          // conflicting run ids
	f.Add([]byte("\n\n"))
	f.Add([]byte{})

	reg := fuzzRegistry(f)
	f.Fuzz(func(t *testing.T, stream []byte) {
		s := New(reg)
		info, err := s.IngestNDJSON("phylo", bytes.NewReader(stream))
		if err != nil {
			checkIngestErr(t, err)
			return
		}
		if _, _, lerr := s.lookup("phylo", info.Run); lerr != nil {
			t.Fatalf("accepted NDJSON run %q not queryable: %v", info.Run, lerr)
		}
	})
}
