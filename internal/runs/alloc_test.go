package runs

import (
	"encoding/json"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// This file holds the shared fixture for the lineage allocation guard.
// The guard itself lives in two build-tag-gated files with the same
// test name: alloc_norace_test.go asserts the AllocsPerRun ceiling
// (the race runtime's instrumentation allocates on every barrier, so
// the ceiling only means something without -race), and
// alloc_race_test.go runs the same warm queries as a behavioral check
// so `go test -race ./...` still exercises the pooled serve path.

// lineageAllocCase is one level of the serve path under guard.
type lineageAllocCase struct {
	name    string
	q       Query
	ceiling float64
}

// lineageAllocStore builds a warm, label-indexed store with one
// ingested run over a layered workflow, and returns it with the sink
// artifact and the guarded query cases.
func lineageAllocStore(t *testing.T) (*Store, []lineageAllocCase) {
	t.Helper()
	const n = 512
	wf := gen.Layered(gen.LayeredConfig{
		Name: "alloc", Tasks: n, Layers: 16, EdgeProb: 0.05, Seed: int64(n),
	})
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("wf", wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lw.AttachView("iv", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.IntervalView(wf, 2+n/16, "iv"), nil
	}); err != nil {
		t.Fatal(err)
	}
	s := New(reg)
	doc := struct {
		Run       string           `json:"run"`
		Artifacts []map[string]any `json:"artifacts"`
		Used      []map[string]any `json:"used"`
	}{Run: "r"}
	for i := 0; i < wf.N(); i++ {
		doc.Artifacts = append(doc.Artifacts, map[string]any{
			"id": "a" + wf.Task(i).ID, "generated_by": wf.Task(i).ID})
	}
	wf.Graph().Edges(func(u, v int) {
		doc.Used = append(doc.Used, map[string]any{
			"process": wf.Task(v).ID, "artifact": "a" + wf.Task(u).ID})
	})
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("wf", raw); err != nil {
		t.Fatal(err)
	}

	sink := "a" + wf.Task(n-1).ID
	// The ceilings leave slack over the measured ~0–2 for pool misses
	// under GC pressure; 47+ is what the pre-label path cost.
	cases := []lineageAllocCase{
		{"exact", Query{Run: "r", Artifact: sink}, 8},
		{"view", Query{Run: "r", Artifact: sink, Level: LevelView, View: "iv"}, 8},
		{"audited", Query{Run: "r", Artifact: sink, Level: LevelAudited, View: "iv"}, 8},
		{"witness", Query{Run: "r", Artifact: sink, Witness: true}, 8},
	}
	return s, cases
}
