package runs

import (
	"encoding/json"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// TestLineageAllocationCeiling is the CI allocation-regression guard
// for the serve path: a warm view-level (and audited, and exact)
// lineage query over a pooled, label-indexed store must stay under a
// hard allocs-per-op ceiling. The label rewrite brought view/audited
// answers from ~47 heap allocations to ~zero; this test fails the
// build if a change quietly reintroduces per-query garbage.
func TestLineageAllocationCeiling(t *testing.T) {
	const n = 512
	wf := gen.Layered(gen.LayeredConfig{
		Name: "alloc", Tasks: n, Layers: 16, EdgeProb: 0.05, Seed: int64(n),
	})
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("wf", wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lw.AttachView("iv", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.IntervalView(wf, 2+n/16, "iv"), nil
	}); err != nil {
		t.Fatal(err)
	}
	s := New(reg)
	doc := struct {
		Run       string           `json:"run"`
		Artifacts []map[string]any `json:"artifacts"`
		Used      []map[string]any `json:"used"`
	}{Run: "r"}
	for i := 0; i < wf.N(); i++ {
		doc.Artifacts = append(doc.Artifacts, map[string]any{
			"id": "a" + wf.Task(i).ID, "generated_by": wf.Task(i).ID})
	}
	wf.Graph().Edges(func(u, v int) {
		doc.Used = append(doc.Used, map[string]any{
			"process": wf.Task(v).ID, "artifact": "a" + wf.Task(u).ID})
	})
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("wf", raw); err != nil {
		t.Fatal(err)
	}

	sink := "a" + wf.Task(n-1).ID
	var encBuf []byte
	for _, tc := range []struct {
		name    string
		q       Query
		ceiling float64
	}{
		// The ceilings leave slack over the measured ~0–2 for pool
		// misses under GC pressure; 47+ is what the pre-label path cost.
		{"exact", Query{Run: "r", Artifact: sink}, 8},
		{"view", Query{Run: "r", Artifact: sink, Level: LevelView, View: "iv"}, 8},
		{"audited", Query{Run: "r", Artifact: sink, Level: LevelAudited, View: "iv"}, 8},
		{"witness", Query{Run: "r", Artifact: sink, Witness: true}, 8},
	} {
		q := tc.q
		// Warm: fill pools, the audit cache and slice capacities.
		for i := 0; i < 4; i++ {
			ans, qerr := s.Lineage("wf", q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			encBuf = ans.AppendJSON(encBuf[:0])
			ans.Release()
		}
		got := testing.AllocsPerRun(100, func() {
			ans, qerr := s.Lineage("wf", q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			encBuf = ans.AppendJSON(encBuf[:0])
			ans.Release()
		})
		if got > tc.ceiling {
			t.Errorf("%s: %v allocs/op, ceiling %v — the serve path regressed",
				tc.name, got, tc.ceiling)
		} else {
			t.Logf("%s: %v allocs/op (ceiling %v)", tc.name, got, tc.ceiling)
		}
	}
}
