package runs

import (
	"encoding/json"
	"fmt"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/gen"
	"wolves/internal/provenance"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// benchStore registers a layered n-task workflow with an interval view
// and returns a run store over it.
func benchStore(b *testing.B, n int) (*Store, *workflow.Workflow) {
	b.Helper()
	wf := gen.Layered(gen.LayeredConfig{
		Name: fmt.Sprintf("bench-%d", n), Tasks: n, Layers: 16,
		EdgeProb: 0.05, SkipProb: 0.01, Seed: int64(n),
	})
	reg := engine.NewRegistry(engine.New())
	lw, err := reg.Register("wf", wf)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := lw.AttachView("iv", func(wf *workflow.Workflow) (*view.View, error) {
		return gen.IntervalView(wf, 2+n/16, "iv"), nil
	}); err != nil {
		b.Fatal(err)
	}
	return New(reg), wf
}

// windowRunDoc encodes a run invoking a window of tasks as a chain:
// every task produces one artifact consumed by the next.
func windowRunDoc(wf *workflow.Workflow, runID string, start, size int) []byte {
	doc := struct {
		Run       string           `json:"run"`
		Artifacts []map[string]any `json:"artifacts"`
		Used      []map[string]any `json:"used"`
	}{Run: runID}
	n := wf.N()
	for k := 0; k < size; k++ {
		task := wf.Task((start + k) % n).ID
		doc.Artifacts = append(doc.Artifacts, map[string]any{
			"id": fmt.Sprintf("%s/%d", runID, k), "generated_by": task,
		})
		if k > 0 {
			doc.Used = append(doc.Used, map[string]any{
				"process": task, "artifact": fmt.Sprintf("%s/%d", runID, k-1),
			})
		}
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return raw
}

// fullRunDoc encodes one full execution: an artifact per task, used
// edges along every workflow edge (implicit invocations).
func fullRunDoc(wf *workflow.Workflow, runID string) []byte {
	doc := struct {
		Run       string           `json:"run"`
		Artifacts []map[string]any `json:"artifacts"`
		Used      []map[string]any `json:"used"`
	}{Run: runID}
	for i := 0; i < wf.N(); i++ {
		doc.Artifacts = append(doc.Artifacts, map[string]any{
			"id": "a" + wf.Task(i).ID, "generated_by": wf.Task(i).ID,
		})
	}
	wf.Graph().Edges(func(u, v int) {
		doc.Used = append(doc.Used, map[string]any{
			"process": wf.Task(v).ID, "artifact": "a" + wf.Task(u).ID,
		})
	})
	raw, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return raw
}

// BenchmarkIngest measures steady-state trace ingestion: a pool of
// distinct run documents, cycled (so long bench runs replace instead of
// accumulating), each invoking a quarter of the workflow — the record
// count scales with n so per-op cost is comparable across sizes (a
// fixed window made n=4096 look cheaper than n=1024: same trace bytes,
// larger task space). Per-op cost covers JSON decode, task-space
// validation, dense interning and shard insertion.
func BenchmarkIngest(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, wf := benchStore(b, n)
			const pool = 1024
			docs := make([][]byte, pool)
			bytes := 0
			for i := range docs {
				docs[i] = windowRunDoc(wf, fmt.Sprintf("r%d", i), i*37, n/4)
				bytes += len(docs[i])
			}
			b.SetBytes(int64(bytes / pool))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Ingest("wf", docs[i%pool]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLineageQuery contrasts the three answer levels over one full
// run — the paper's motivation for views: the composite-level closure
// answers far cheaper than the task-level one, and the audited level
// adds only the cached per-composite delta on top.
func BenchmarkLineageQuery(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		s, wf := benchStore(b, n)
		if _, err := s.Ingest("wf", fullRunDoc(wf, "full")); err != nil {
			b.Fatal(err)
		}
		sink := "a" + wf.Task(n-1).ID
		queries := map[string]Query{
			"exact":   {Run: "full", Artifact: sink},
			"view":    {Run: "full", Artifact: sink, Level: LevelView, View: "iv"},
			"audited": {Run: "full", Artifact: sink, Level: LevelAudited, View: "iv"},
		}
		for _, level := range []string{"exact", "view", "audited"} {
			q := queries[level]
			// Warm the cached view engine / audit outside the timer.
			if _, err := s.Lineage("wf", q); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("level=%s/n=%d", level, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ans, err := s.Lineage("wf", q)
					if err != nil {
						b.Fatal(err)
					}
					ans.Release()
				}
			})
		}
	}
}

// BenchmarkLineageServe measures the full wire path per answer: query,
// stream-encode through the reusable encoder, release to the pool —
// what the HTTP handler does per request, minus the socket.
func BenchmarkLineageServe(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		s, wf := benchStore(b, n)
		if _, err := s.Ingest("wf", fullRunDoc(wf, "full")); err != nil {
			b.Fatal(err)
		}
		sink := "a" + wf.Task(n-1).ID
		for _, level := range []string{"exact", "view", "audited"} {
			q := Query{Run: "full", Artifact: sink}
			if level != "exact" {
				q.Level, q.View = level, "iv"
			}
			if _, err := s.Lineage("wf", q); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("level=%s/n=%d", level, n), func(b *testing.B) {
				var buf []byte
				for i := 0; i < b.N; i++ {
					ans, err := s.Lineage("wf", q)
					if err != nil {
						b.Fatal(err)
					}
					buf = ans.AppendJSON(buf[:0])
					ans.Release()
				}
				b.SetBytes(int64(len(buf)))
			})
		}
	}
}

// BenchmarkLineageCold isolates the paper's actual argument for views:
// answering lineage without a maintained closure. Per operation, the
// exact side builds the task-level reachability closure (O(n³/w)) and
// answers one query; the view side builds only the composite-level
// quotient closure (O(k³/w), k ≪ n) and answers the same query. The run
// store's served path (BenchmarkLineageQuery) makes both cheap by
// maintaining the closure incrementally — this benchmark is the cost a
// stateless provenance system would pay per query.
func BenchmarkLineageCold(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		wf := gen.Layered(gen.LayeredConfig{
			Name: fmt.Sprintf("cold-%d", n), Tasks: n, Layers: 16,
			EdgeProb: 0.05, SkipProb: 0.01, Seed: int64(n),
		})
		v := gen.IntervalView(wf, 2+n/16, "iv")
		t := n - 1
		b.Run(fmt.Sprintf("level=exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := provenance.NewEngine(wf)
				if len(e.Lineage(t)) == 0 {
					b.Fatal("empty lineage")
				}
			}
		})
		b.Run(fmt.Sprintf("level=view/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ve := provenance.NewViewEngine(v)
				if len(ve.TaskLineage(t)) == 0 {
					b.Fatal("empty lineage")
				}
			}
		})
	}
}

// BenchmarkLineageBatch measures the worker-pool batch endpoint: 256
// mixed-level queries per operation.
func BenchmarkLineageBatch(b *testing.B) {
	s, wf := benchStore(b, 1024)
	if _, err := s.Ingest("wf", fullRunDoc(wf, "full")); err != nil {
		b.Fatal(err)
	}
	var qs []Query
	for i := 0; i < 256; i++ {
		q := Query{Run: "full", Artifact: "a" + wf.Task((i*13)%wf.N()).ID}
		if i%2 == 1 {
			q.Level, q.View = LevelView, "iv"
		}
		qs = append(qs, q)
	}
	ctx := b.Context()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := s.LineageBatch(ctx, "wf", qs, 8)
		if err != nil {
			b.Fatal(err)
		}
		ReleaseResults(results)
	}
}
