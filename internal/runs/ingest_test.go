package runs

import (
	"errors"
	"strings"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/workflow"
)

// TestIngestEdgeCases pins the satellite requirement: every malformed
// trace maps to a typed engine.Error with code ErrInvalidTrace (the
// daemon's 422), never a panic and never an internal error.
func TestIngestEdgeCases(t *testing.T) {
	s, _ := figure1Store(t)
	cases := []struct {
		name string
		doc  string
		want string // substring of the message
	}{
		{"malformed json", `{"run":`, "malformed"},
		{"missing run id", `{"artifacts":[{"id":"a","generated_by":"1"}]}`, "missing run id"},
		{"empty run", `{"run":"r"}`, "empty"},
		{"unknown task implicit", `{"run":"r","artifacts":[{"id":"a","generated_by":"ghost"}]}`, "unknown task"},
		{"unknown task invocation", `{"run":"r","invocations":[{"id":"i1","task":"ghost"}],"artifacts":[{"id":"a","generated_by":"i1"}]}`, "unknown task"},
		{"empty invocation id", `{"run":"r","invocations":[{"id":"","task":"1"}]}`, "empty id"},
		{"duplicate invocation", `{"run":"r","invocations":[{"id":"i1","task":"1"},{"id":"i1","task":"2"}]}`, "duplicate invocation"},
		{"empty artifact id", `{"run":"r","artifacts":[{"id":"","generated_by":"1"}]}`, "empty id"},
		{"duplicate artifact", `{"run":"r","artifacts":[{"id":"a","generated_by":"1"},{"id":"a","generated_by":"2"}]}`, "duplicate artifact"},
		{"unknown invocation ref", `{"run":"r","invocations":[{"id":"i1","task":"1"}],"artifacts":[{"id":"a","generated_by":"i9"}]}`, "unknown invocation"},
		{"dangling used edge", `{"run":"r","artifacts":[{"id":"a","generated_by":"1"}],"used":[{"process":"2","artifact":"ghost"}]}`, "dangling used edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Ingest("phylo", []byte(tc.doc))
			if err == nil {
				t.Fatal("ingestion must fail")
			}
			if !engine.IsCode(err, engine.ErrInvalidTrace) {
				t.Fatalf("want invalid_trace, got %v", err)
			}
			var ee *engine.Error
			if !errors.As(err, &ee) || !strings.Contains(ee.Message, tc.want) {
				t.Fatalf("message %q must contain %q", ee.Message, tc.want)
			}
		})
	}

	// Unknown-task causes keep the workflow sentinel reachable.
	_, err := s.Ingest("phylo", []byte(`{"run":"r","artifacts":[{"id":"a","generated_by":"ghost"}]}`))
	if !errors.Is(err, workflow.ErrUnknownTask) {
		t.Fatalf("unknown-task ingestion must wrap workflow.ErrUnknownTask: %v", err)
	}

	// Unknown workflow is a 404-class error, not invalid_trace.
	if _, err := s.Ingest("ghost", figure1RunDoc("r")); !engine.IsCode(err, engine.ErrUnknownWorkflow) {
		t.Fatalf("unknown workflow: %v", err)
	}

	// Nothing above may have been ingested.
	if infos, _ := s.Runs("phylo"); len(infos) != 0 {
		t.Fatalf("failed ingestions must leave no runs: %+v", infos)
	}
}

// TestNDJSONEdgeCases covers stream-specific failures, in particular the
// torn final line of an interrupted upload.
func TestNDJSONEdgeCases(t *testing.T) {
	s, _ := figure1Store(t)
	cases := []struct {
		name   string
		stream string
		want   string
	}{
		{"torn final line",
			"{\"run\":\"r\"}\n{\"artifact\":{\"id\":\"a\",\"generated_by\":\"1\"}}\n{\"artifact\":{\"id\":\"b\",\"gen",
			"torn record"},
		{"malformed mid-stream line",
			"{\"run\":\"r\"}\nnot json\n{\"artifact\":{\"id\":\"a\",\"generated_by\":\"1\"}}\n",
			"line 2"},
		{"empty record",
			"{\"run\":\"r\"}\n{}\n",
			"declares none"},
		{"conflicting run ids",
			"{\"run\":\"r\"}\n{\"run\":\"other\"}\n",
			"conflicts"},
		{"empty stream", "", "missing run id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.IngestNDJSON("phylo", strings.NewReader(tc.stream))
			if err == nil {
				t.Fatal("ingestion must fail")
			}
			if !engine.IsCode(err, engine.ErrInvalidTrace) {
				t.Fatalf("want invalid_trace, got %v", err)
			}
			var ee *engine.Error
			if !errors.As(err, &ee) || !strings.Contains(ee.Message, tc.want) {
				t.Fatalf("message %q must contain %q", ee.Message, tc.want)
			}
		})
	}

	// A final line terminated by EOF (no trailing newline) but carrying
	// complete JSON is fine — only genuinely torn records reject.
	info, err := s.IngestNDJSON("phylo", strings.NewReader(
		"{\"run\":\"ok\"}\n{\"artifact\":{\"id\":\"a\",\"generated_by\":\"1\"}}"))
	if err != nil || info.Artifacts != 1 {
		t.Fatalf("unterminated-but-complete final line: %+v, %v", info, err)
	}
}

// TestNDJSONLineCap pins the pooled line buffer's framing limits: a
// single line longer than MaxNDJSONLineBytes rejects the whole stream
// with a typed bad_input (the daemon's 400) before any of it is
// ingested, while a long-but-legal line — larger than the pooled
// bufio buffer, so it exercises the spill path — ingests normally.
func TestNDJSONLineCap(t *testing.T) {
	s, _ := figure1Store(t)

	// One line of MaxNDJSONLineBytes+2 bytes, never newline-terminated.
	// The cap must fire while buffering, long before JSON parsing.
	over := strings.NewReader(strings.Repeat("a", MaxNDJSONLineBytes+2))
	_, err := s.IngestNDJSON("phylo", over)
	if err == nil {
		t.Fatal("over-long line must reject the stream")
	}
	if !engine.IsCode(err, engine.ErrBadInput) {
		t.Fatalf("want bad_input, got %v", err)
	}
	var ee *engine.Error
	if !errors.As(err, &ee) || !strings.Contains(ee.Message, "line cap") {
		t.Fatalf("message %q must name the line cap", ee.Message)
	}
	if infos, _ := s.Runs("phylo"); len(infos) != 0 {
		t.Fatalf("rejected stream must leave no runs: %+v", infos)
	}

	// A 128KiB run ID overflows the pooled reader's buffer but stays
	// under the cap: the spill path must reassemble it losslessly.
	longID := strings.Repeat("r", 128<<10)
	stream := "{\"run\":\"" + longID + "\"}\n{\"artifact\":{\"id\":\"a\",\"generated_by\":\"1\"}}\n"
	info, err := s.IngestNDJSON("phylo", strings.NewReader(stream))
	if err != nil {
		t.Fatalf("long-but-legal line: %v", err)
	}
	if info.Run != longID || info.Artifacts != 1 {
		t.Fatalf("spilled line ingested wrong: run len %d, artifacts %d", len(info.Run), info.Artifacts)
	}
}

// TestQueryErrorCodes pins the 404/400-class codes of the query surface.
func TestQueryErrorCodes(t *testing.T) {
	s, _ := figure1Store(t)
	if _, err := s.Ingest("phylo", figure1RunDoc("r1")); err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		q    Query
		code engine.Code
	}{
		"unknown run":      {Query{Run: "nope", Artifact: "a8"}, engine.ErrUnknownRun},
		"unknown artifact": {Query{Run: "r1", Artifact: "nope"}, engine.ErrUnknownArtifact},
		"missing artifact": {Query{Run: "r1"}, engine.ErrBadInput},
		"bad level":        {Query{Run: "r1", Artifact: "a8", Level: "huge"}, engine.ErrBadInput},
		"bad direction":    {Query{Run: "r1", Artifact: "a8", Direction: "sideways"}, engine.ErrBadInput},
		"view level needs view": {
			Query{Run: "r1", Artifact: "a8", Level: LevelView}, engine.ErrBadInput},
		"unknown view": {
			Query{Run: "r1", Artifact: "a8", Level: LevelView, View: "nope"}, engine.ErrUnknownView},
		"witness needs ancestors": {
			Query{Run: "r1", Artifact: "a8", Direction: DirDescendants, Witness: true}, engine.ErrBadInput},
	} {
		if _, err := s.Lineage("phylo", tc.q); !engine.IsCode(err, tc.code) {
			t.Fatalf("%s: want %s, got %v", name, tc.code, err)
		}
	}
	if _, err := s.Info("phylo", "nope"); !engine.IsCode(err, engine.ErrUnknownRun) {
		t.Fatalf("info of unknown run: %v", err)
	}
}
