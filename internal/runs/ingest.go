package runs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"wolves/internal/bitset"
	"wolves/internal/engine"
	"wolves/internal/obs"
	"wolves/internal/workflow"
)

// This file implements trace ingestion: decoding the OPM-style wire
// formats (one JSON document, or an NDJSON stream of records), validating
// every record against the workflow's task space, and interning the
// result into the dense Run representation. Every rejection is a typed
// engine.Error with code ErrInvalidTrace (wolvesd: 422) — malformed
// input must never panic or surface as internal.
//
// The decode and build state is pooled (ingestScratch): at steady state
// an ingest allocates only what the immutable Run retains, so a
// sustained NDJSON firehose does not churn the heap per document.

// wireInvocation is one process of the trace: an invocation of a
// workflow task.
type wireInvocation struct {
	ID   string `json:"id"`
	Task string `json:"task"`
}

// wireArtifact is one data item. GeneratedBy names the producing
// invocation (or, when the trace declares no invocations, the producing
// task); empty means an external input to the run.
type wireArtifact struct {
	ID          string `json:"id"`
	GeneratedBy string `json:"generated_by,omitempty"`
}

// wireUsed is one consumption edge: Process (an invocation — or task,
// see above) read Artifact.
type wireUsed struct {
	Process  string `json:"process"`
	Artifact string `json:"artifact"`
}

// wireRun is the JSON document shape of one run. When Invocations is
// empty, process references (generated_by, used.process) name workflow
// tasks directly and one implicit invocation is created per referenced
// task — the paper's own simplification, and the natural encoding for
// Execute-style traces.
type wireRun struct {
	Run string `json:"run"`
	// Version is ingestion metadata, not part of the trace: the workflow
	// version the run was validated against. Client-supplied values are
	// ignored on live ingestion; the canonical document records it so
	// recovery restores runs with their original version stamp.
	Version     uint64           `json:"version,omitempty"`
	Invocations []wireInvocation `json:"invocations,omitempty"`
	Artifacts   []wireArtifact   `json:"artifacts,omitempty"`
	Used        []wireUsed       `json:"used,omitempty"`
}

// NDJSON framing limits. The line cap equals the HTTP layer's request
// body cap (server.MaxBodyBytes — a compile-time assertion there ties
// the two), so no request a client can legally send is rejected by the
// cap; what the cap bounds is the spill buffer a single over-long line
// can pin, when the store is fed from a non-HTTP source.
const (
	// MaxNDJSONLineBytes caps one NDJSON line; longer lines reject the
	// run with a typed bad_input error.
	MaxNDJSONLineBytes = 8 << 20
	// ndjsonBufBytes sizes the pooled stream reader: lines that fit are
	// framed with zero copies, longer ones spill.
	ndjsonBufBytes = 64 << 10
	// ndjsonSpillKeep caps the spill capacity retained in the pool; a
	// rare multi-megabyte line must not pin its buffer forever.
	ndjsonSpillKeep = 1 << 20
)

// ingestScratch recycles the per-ingest working set: the decoded wire
// run (slice capacities survive), the build-time invocation index, the
// CSR fill cursor, the binary-doc encode buffer, and the NDJSON stream
// reader. One scratch serves one ingest at a time, whole batches
// included.
type ingestScratch struct {
	w        wireRun
	line     wireLine
	jd       jdec
	lineBufs wireLineBufs
	procIdx  map[string]int32
	fill     []int32
	enc      []byte
	br       *bufio.Reader
	spill    []byte
}

var scratchPool = sync.Pool{New: func() any {
	return &ingestScratch{
		procIdx: make(map[string]int32, 64),
		br:      bufio.NewReaderSize(nil, ndjsonBufBytes),
	}
}}

// wire resets and returns the scratch's wire run, keeping the slice
// capacities of previous decodes so the backing arrays are reused. Only
// the lengths are reset: both decoders write every field of an element
// they emit past the reset length (the JSON decoder appends explicit
// zero elements before filling them, the binary decoder appends full
// composite literals), so nothing stale from a previous document can
// leak through.
func (sc *ingestScratch) wire() *wireRun {
	sc.w = wireRun{
		Invocations: sc.w.Invocations[:0],
		Artifacts:   sc.w.Artifacts[:0],
		Used:        sc.w.Used[:0],
	}
	return &sc.w
}

// decodeRunDocInto parses one full run document — the binary canonical
// form when the first byte is its version tag, JSON otherwise — into w.
func decodeRunDocInto(w *wireRun, doc []byte) error {
	if len(doc) > 0 && doc[0] == docBinV1 {
		return decodeRunDocBinaryInto(w, doc)
	}
	var d jdec
	return d.decodeRunDocJSON(w, doc)
}

// decodeDoc is decodeRunDocInto through the pooled decoder scratch —
// the hot ingestion paths, where the unquote buffer is reused across
// documents.
func (sc *ingestScratch) decodeDoc(w *wireRun, doc []byte) error {
	if len(doc) > 0 && doc[0] == docBinV1 {
		return decodeRunDocBinaryInto(w, doc)
	}
	return sc.jd.decodeRunDocJSON(w, doc)
}

// decodeRunDoc parses one full run document of either encoding.
func decodeRunDoc(doc []byte) (*wireRun, error) {
	var w wireRun
	if err := decodeRunDocInto(&w, doc); err != nil {
		return nil, err
	}
	return &w, nil
}

// Ingest validates and stores one run document for workflowID,
// journaling it when a journal is installed. Re-ingesting an existing
// run ID replaces the run (idempotent, which is also what makes WAL
// replay safe). The returned info carries the workflow version the run
// was validated against.
func (s *Store) Ingest(workflowID string, doc []byte) (*RunInfo, error) {
	return s.IngestCtx(context.Background(), workflowID, doc) //lint:allow ctxpass compat wrapper anchors its own root
}

// IngestCtx is Ingest with the request context: ctx carries the trace
// span into the journal append and is observability-only.
func (s *Store) IngestCtx(ctx context.Context, workflowID string, doc []byte) (*RunInfo, error) {
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)
	w := sc.wire()
	if err := sc.decodeDoc(w, doc); err != nil {
		return nil, errf(engine.ErrInvalidTrace, "ingest", "malformed run document: %v", err)
	}
	return s.ingestWire(ctx, workflowID, w, true, nil, sc)
}

// wireLine is one NDJSON record: exactly one of the fields is set.
type wireLine struct {
	Run        string          `json:"run,omitempty"`
	Invocation *wireInvocation `json:"invocation,omitempty"`
	Artifact   *wireArtifact   `json:"artifact,omitempty"`
	Used       *wireUsed       `json:"used,omitempty"`
}

// IngestNDJSON streams one run from r: each line is a JSON record
// declaring the run ID, an invocation, an artifact or a used edge.
// A final line torn mid-record (a client crash or truncated upload)
// rejects the whole run with ErrInvalidTrace — runs are atomic, never
// partially ingested. A single line longer than MaxNDJSONLineBytes
// rejects the run with ErrBadInput.
func (s *Store) IngestNDJSON(workflowID string, r io.Reader) (*RunInfo, error) {
	return s.IngestNDJSONCtx(context.Background(), workflowID, r) //lint:allow ctxpass compat wrapper anchors its own root
}

// IngestNDJSONCtx is IngestNDJSON with the request context (see
// IngestCtx).
func (s *Store) IngestNDJSONCtx(ctx context.Context, workflowID string, r io.Reader) (*RunInfo, error) {
	sc := scratchPool.Get().(*ingestScratch)
	sc.br.Reset(r)
	defer func() {
		sc.br.Reset(nil) // drop the request body before pooling
		if cap(sc.spill) > ndjsonSpillKeep {
			sc.spill = nil
		}
		scratchPool.Put(sc)
	}()
	w := sc.wire()
	lineNo := 0
	for {
		// ReadSlice frames a line with zero copies when it fits the
		// reader's buffer — the overwhelmingly common case; an over-full
		// line accumulates into the capped spill buffer.
		line, err := sc.br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			sc.spill = append(sc.spill[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = sc.br.ReadSlice('\n')
				sc.spill = append(sc.spill, line...)
				if len(sc.spill) > MaxNDJSONLineBytes {
					return nil, errf(engine.ErrBadInput, "ingest",
						"NDJSON line %d exceeds the %d-byte line cap", lineNo+1, MaxNDJSONLineBytes)
				}
			}
			line = sc.spill
		}
		if err != nil && err != io.EOF {
			// A read failure (connection drop, body-size cap) is the
			// request's problem, not the trace's: bad_input → 400, matching
			// what the whole-document path reports for the same condition.
			return nil, errf(engine.ErrBadInput, "ingest", "reading NDJSON stream: %v", err)
		}
		torn := err == io.EOF && len(line) > 0 && line[len(line)-1] != '\n'
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			lineNo++
			sc.line = wireLine{}
			if jerr := sc.jd.decodeWireLineJSON(&sc.line, trimmed, &sc.lineBufs); jerr != nil {
				if torn {
					return nil, errf(engine.ErrInvalidTrace, "ingest",
						"NDJSON stream ends with a torn record at line %d: %v", lineNo, jerr)
				}
				return nil, errf(engine.ErrInvalidTrace, "ingest", "NDJSON line %d: %v", lineNo, jerr)
			}
			if aerr := accumulate(w, &sc.line, lineNo); aerr != nil {
				return nil, aerr
			}
		}
		if err == io.EOF {
			break
		}
	}
	return s.ingestWire(ctx, workflowID, w, true, nil, sc)
}

// accumulate folds one NDJSON record into the run under construction.
func accumulate(w *wireRun, rec *wireLine, lineNo int) *engine.Error {
	set := 0
	if rec.Run != "" {
		set++
		if w.Run != "" && w.Run != rec.Run {
			return errf(engine.ErrInvalidTrace, "ingest",
				"NDJSON line %d: run id %q conflicts with %q", lineNo, rec.Run, w.Run)
		}
		w.Run = rec.Run
	}
	if rec.Invocation != nil {
		set++
		w.Invocations = append(w.Invocations, *rec.Invocation)
	}
	if rec.Artifact != nil {
		set++
		w.Artifacts = append(w.Artifacts, *rec.Artifact)
	}
	if rec.Used != nil {
		set++
		w.Used = append(w.Used, *rec.Used)
	}
	if set == 0 {
		return errf(engine.ErrInvalidTrace, "ingest",
			"NDJSON line %d: record declares none of run/invocation/artifact/used", lineNo)
	}
	return nil
}

// ingestWire is the shared ingestion path: validate + intern under the
// workflow's read lock, insert into the shard, journal, snapshot.
// rawDoc, when non-nil, is an already-canonical document to retain
// verbatim (the restore path — keeps recovered runs byte-identical).
func (s *Store) ingestWire(ctx context.Context, workflowID string, w *wireRun, journal bool, rawDoc []byte, sc *ingestScratch) (*RunInfo, error) {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "runs", "ingest")
	defer span.End()
	span.SetAttr("workflow", workflowID)
	span.SetAttr("run", w.Run)
	lw, err := s.reg.Get(workflowID)
	if err != nil {
		return nil, wrapErr("ingest", err)
	}
	// Degraded gate, checked before any state is touched: an ingest
	// rejected here leaves no partial run anywhere. (Only live ingests
	// are gated; the restore path replays already-durable documents.)
	if journal {
		if gerr := s.reg.CheckWritable("ingest"); gerr != nil {
			return nil, wrapErr("ingest", gerr)
		}
	}
	if w.Run == "" {
		return nil, errf(engine.ErrInvalidTrace, "ingest", "run document missing run id")
	}
	if len(w.Artifacts) == 0 && len(w.Invocations) == 0 {
		return nil, errf(engine.ErrInvalidTrace, "ingest",
			"run %q is empty: no invocations and no artifacts", w.Run)
	}
	// Validation, shard insertion and the journal append all run inside
	// one read-locked session. The lock is what orders this ingestion
	// against a same-ID re-registration: replacing a workflow close()s
	// the old incarnation under its WRITE lock before the registry
	// journals the new registration record, so a recRun record appended
	// here can never land after the registration record that supersedes
	// its workflow — replay always re-validates the run against the
	// incarnation it was validated against live.
	var run *Run
	var replaced, wantSnap bool
	if err := lw.Query(func(ps *engine.ProvSession) error {
		version := ps.Version()
		if !journal && w.Version != 0 {
			// Restore path: keep the version stamp the run was originally
			// validated under, so recovered metadata is byte-identical.
			version = w.Version
		}
		r, berr := buildRun(ps.Workflow(), version, w, rawDoc, sc, s.legacyDocs)
		if berr != nil {
			return berr
		}
		run = r

		sh := s.shardFor(lw)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		_, replaced = sh.runs[run.id]
		sh.runs[run.id] = run
		if !replaced {
			sh.order = append(sh.order, run.id)
		}
		if journal && s.journal != nil {
			// Journaled under the shard lock so per-run records of one
			// workflow hit the WAL in ingestion order. A journal error
			// leaves the run applied in memory and flips the registry
			// into degraded read-only mode (JournalFault): every later
			// ingest is gated until the background probe resyncs the
			// store — which folds this run into a snapshot — the same
			// contract as the registry's mutations.
			ws, jerr := s.journal.RunIngested(ctx, workflowID, run.id, run.doc)
			if jerr != nil {
				return s.reg.JournalFault("ingest", jerr)
			}
			wantSnap = ws
			s.journaledBytes.Add(int64(len(run.doc)))
		}
		return nil
	}); err != nil {
		return nil, wrapErr("ingest", err)
	}
	s.ingested.Add(1)
	if journal {
		obs.MIngestRuns.Inc()
		obs.MIngestLatency.Observe(time.Since(start).Seconds())
	}

	if wantSnap {
		// The run's WAL growth passed the snapshot trigger: fold the
		// workflow (runs included, via the store's run provider) into a
		// fresh snapshot. Taken outside the shard lock — the provider
		// re-reads the shard.
		if serr := lw.State(func(st *engine.LiveState) error {
			return s.journal.SnapshotWorkflow(ctx, st)
		}); serr != nil && !engine.IsCode(serr, engine.ErrUnknownWorkflow) {
			return nil, wrapErr("ingest", s.reg.JournalFault("ingest", serr))
		}
	}
	info := run.info(workflowID)
	info.Replaced = replaced
	return info, nil
}

// IngestBatch validates and stores a batch of run documents for
// workflowID in one journaled operation: all documents are validated
// and interned first (any rejection rejects the whole batch before any
// state is touched), then inserted and journaled together — through the
// journal's batch append, so one group-commit fsync covers the burst.
// The returned infos are in document order.
func (s *Store) IngestBatch(workflowID string, docs [][]byte) ([]RunInfo, error) {
	return s.IngestBatchCtx(context.Background(), workflowID, docs) //lint:allow ctxpass compat wrapper anchors its own root
}

// IngestBatchCtx is IngestBatch with the request context (see
// IngestCtx).
func (s *Store) IngestBatchCtx(ctx context.Context, workflowID string, docs [][]byte) ([]RunInfo, error) {
	infos := make([]RunInfo, 0, len(docs))
	if len(docs) == 0 {
		return infos, nil
	}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "runs", "ingest.batch")
	defer span.End()
	span.SetAttr("workflow", workflowID)
	lw, err := s.reg.Get(workflowID)
	if err != nil {
		return nil, wrapErr("ingest", err)
	}
	if gerr := s.reg.CheckWritable("ingest"); gerr != nil {
		return nil, wrapErr("ingest", gerr)
	}
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)

	var wantSnap bool
	if err := lw.Query(func(ps *engine.ProvSession) error {
		version := ps.Version()
		built := make([]*Run, 0, len(docs))
		for i, doc := range docs {
			w := sc.wire()
			if derr := sc.decodeDoc(w, doc); derr != nil {
				return errf(engine.ErrInvalidTrace, "ingest",
					"batch document %d: malformed run document: %v", i, derr)
			}
			if w.Run == "" {
				return errf(engine.ErrInvalidTrace, "ingest",
					"batch document %d: run document missing run id", i)
			}
			if len(w.Artifacts) == 0 && len(w.Invocations) == 0 {
				return errf(engine.ErrInvalidTrace, "ingest",
					"run %q is empty: no invocations and no artifacts", w.Run)
			}
			r, berr := buildRun(ps.Workflow(), version, w, nil, sc, s.legacyDocs)
			if berr != nil {
				return berr
			}
			built = append(built, r)
		}
		ids := make([]string, len(built))
		runDocs := make([][]byte, len(built))
		var docBytes int64
		for i, r := range built {
			ids[i], runDocs[i] = r.id, r.doc
			docBytes += int64(len(r.doc))
		}
		sh := s.shardFor(lw)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for _, r := range built {
			_, replaced := sh.runs[r.id]
			sh.runs[r.id] = r
			if !replaced {
				sh.order = append(sh.order, r.id)
			}
			info := r.info(workflowID)
			info.Replaced = replaced
			infos = append(infos, *info)
		}
		if s.journal != nil {
			// One batch append: contiguous records, one durability wait.
			ws, jerr := s.journal.RunsIngested(ctx, workflowID, ids, runDocs)
			if jerr != nil {
				return s.reg.JournalFault("ingest", jerr)
			}
			wantSnap = ws
			s.journaledBytes.Add(docBytes)
		}
		return nil
	}); err != nil {
		return nil, wrapErr("ingest", err)
	}
	s.ingested.Add(int64(len(docs)))
	obs.MIngestRuns.Add(uint64(len(docs)))
	obs.MIngestLatency.Observe(time.Since(start).Seconds())

	if wantSnap {
		if serr := lw.State(func(st *engine.LiveState) error {
			return s.journal.SnapshotWorkflow(ctx, st)
		}); serr != nil && !engine.IsCode(serr, engine.ErrUnknownWorkflow) {
			return nil, wrapErr("ingest", s.reg.JournalFault("ingest", serr))
		}
	}
	return infos, nil
}

// buildRun validates the wire run against wf's task space and interns it
// into the dense representation. All errors are ErrInvalidTrace-coded
// (wrapping workflow.ErrUnknownTask where a task lookup failed). The
// canonical document is rawDoc verbatim when non-nil (restore path),
// otherwise freshly encoded — binary by default, JSON under the
// legacy-docs knob.
func buildRun(wf *workflow.Workflow, version uint64, w *wireRun, rawDoc []byte,
	sc *ingestScratch, legacyDocs bool) (*Run, *engine.Error) {
	run := &Run{
		id:      w.Run,
		version: version,
		n:       wf.N(),
		artIdx:  make(map[string]int32, len(w.Artifacts)),
		invoked: bitset.New(wf.N()),
	}
	implicit := len(w.Invocations) == 0
	clear(sc.procIdx)
	procIdx := sc.procIdx

	addProc := func(id string, task int) int32 {
		pi := int32(len(run.procID))
		procIdx[id] = pi
		run.procID = append(run.procID, id)
		run.procTask = append(run.procTask, int32(task))
		run.invoked.Set(task)
		return pi
	}
	for i, inv := range w.Invocations {
		if inv.ID == "" {
			return nil, errf(engine.ErrInvalidTrace, "ingest",
				"run %q: invocation %d has an empty id", w.Run, i)
		}
		if _, dup := procIdx[inv.ID]; dup {
			return nil, errf(engine.ErrInvalidTrace, "ingest",
				"run %q: duplicate invocation id %q", w.Run, inv.ID)
		}
		ti, ok := wf.Index(inv.Task)
		if !ok {
			return nil, traceErr(w.Run, fmt.Errorf("invocation %q: %w: %q",
				inv.ID, workflow.ErrUnknownTask, inv.Task))
		}
		addProc(inv.ID, ti)
	}
	// resolve maps a process reference onto a dense invocation index. In
	// implicit mode the reference is a task ID and the invocation is
	// created on first use. The caller's context string is built lazily
	// (whereFmt+whereArg), only on the failure paths — the success path
	// of the hot loops below must not pay a fmt.Sprintf per edge.
	resolve := func(ref, whereFmt, whereArg string) (int32, *engine.Error) {
		if pi, ok := procIdx[ref]; ok {
			return pi, nil
		}
		if !implicit {
			return 0, errf(engine.ErrInvalidTrace, "ingest",
				"run %q: %s references unknown invocation %q",
				w.Run, fmt.Sprintf(whereFmt, whereArg), ref)
		}
		ti, ok := wf.Index(ref)
		if !ok {
			return 0, traceErr(w.Run, fmt.Errorf("%s: %w: %q",
				fmt.Sprintf(whereFmt, whereArg), workflow.ErrUnknownTask, ref))
		}
		return addProc(ref, ti), nil
	}

	for i, a := range w.Artifacts {
		if a.ID == "" {
			return nil, errf(engine.ErrInvalidTrace, "ingest",
				"run %q: artifact %d has an empty id", w.Run, i)
		}
		if _, dup := run.artIdx[a.ID]; dup {
			return nil, errf(engine.ErrInvalidTrace, "ingest",
				"run %q: duplicate artifact id %q", w.Run, a.ID)
		}
		gen := int32(-1)
		if a.GeneratedBy != "" {
			pi, gerr := resolve(a.GeneratedBy, "artifact %q generated_by", a.ID)
			if gerr != nil {
				return nil, gerr
			}
			gen = pi
		}
		run.artIdx[a.ID] = int32(len(run.artID))
		run.artID = append(run.artID, a.ID)
		run.artGen = append(run.artGen, gen)
	}

	for _, u := range w.Used {
		pi, uerr := resolve(u.Process, "used edge for artifact %q", u.Artifact)
		if uerr != nil {
			return nil, uerr
		}
		ai, ok := run.artIdx[u.Artifact]
		if !ok {
			return nil, errf(engine.ErrInvalidTrace, "ingest",
				"run %q: dangling used edge: process %q consumes unknown artifact %q",
				w.Run, u.Process, u.Artifact)
		}
		run.used = append(run.used, [2]int32{pi, ai})
	}

	// Sorted invoked-task list for the label query path (invocations may
	// arrive in any order and repeat tasks; the bitset dedups).
	run.invoked.ForEach(func(u int) bool {
		run.invokedList = append(run.invokedList, int32(u))
		return true
	})

	// CSR adjacency (artifacts consumed per invocation) for why-provenance
	// walks: O(invocations + used) words, built once at ingestion. counts
	// is retained as run.usedStart; only the fill cursor is scratch.
	counts := make([]int32, len(run.procID)+1)
	for _, e := range run.used {
		counts[e[0]+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	run.usedStart = counts
	run.usedArt = make([]int32, len(run.used))
	fill := sc.fill
	if cap(fill) < len(run.procID) {
		fill = make([]int32, len(run.procID))
	} else {
		fill = fill[:len(run.procID)]
		clear(fill)
	}
	sc.fill = fill
	for _, e := range run.used {
		run.usedArt[run.usedStart[e[0]]+fill[e[0]]] = e[1]
		fill[e[0]]++
	}

	// Canonical document: the normalized wire shape (implicit invocations
	// materialized, everything in dense order). Journal records and
	// snapshots carry these bytes, so recovery rebuilds this exact run.
	switch {
	case rawDoc != nil:
		// Restore path: the document is already canonical — retain it
		// verbatim so recovered runs are byte-identical, whichever
		// encoding (JSON era or binary) they were written with.
		run.doc = rawDoc
	case legacyDocs:
		doc, err := json.Marshal(run.wireDoc(wf))
		if err != nil {
			return nil, errf(engine.ErrInternal, "ingest", "encode run %q: %v", w.Run, err)
		}
		run.doc = doc
	default:
		sc.enc = run.appendDocBinary(sc.enc[:0], wf)
		run.doc = append(make([]byte, 0, len(sc.enc)), sc.enc...)
	}
	return run, nil
}

// traceErr wraps a cause (typically workflow.ErrUnknownTask) in an
// ErrInvalidTrace-coded error, keeping errors.Is reachable.
func traceErr(runID string, cause error) *engine.Error {
	return &engine.Error{
		Code:    engine.ErrInvalidTrace,
		Op:      "ingest",
		Message: fmt.Sprintf("run %q: %v", runID, cause),
		Err:     cause,
	}
}

// wireDoc re-encodes the dense run as its normalized wire document;
// called at build time, while the workflow is lock-protected.
func (r *Run) wireDoc(wf *workflow.Workflow) *wireRun {
	w := &wireRun{Run: r.id, Version: r.version}
	for i, id := range r.procID {
		w.Invocations = append(w.Invocations, wireInvocation{ID: id, Task: wf.Task(int(r.procTask[i])).ID})
	}
	for i, id := range r.artID {
		a := wireArtifact{ID: id}
		if g := r.artGen[i]; g >= 0 {
			a.GeneratedBy = r.procID[g]
		}
		w.Artifacts = append(w.Artifacts, a)
	}
	for _, e := range r.used {
		w.Used = append(w.Used, wireUsed{Process: r.procID[e[0]], Artifact: r.artID[e[1]]})
	}
	return w
}
