package runs

import (
	"context"

	"wolves/internal/bitset"
	"wolves/internal/engine"
)

// Query levels and directions.
const (
	LevelExact   = "exact"   // task closure from the registry's incremental rows
	LevelView    = "view"    // composite (quotient) closure of an attached view
	LevelAudited = "audited" // view level + provenance-audit delta

	DirAncestors   = "ancestors"   // lineage: what produced this artifact
	DirDescendants = "descendants" // impact: what consumed it downstream
)

// Query is one lineage question against an ingested run.
type Query struct {
	Run      string `json:"run"`
	Artifact string `json:"artifact"`
	// Level selects the answer granularity: exact (default), view or
	// audited. The view levels require View.
	Level string `json:"level,omitempty"`
	// View names the attached view for the view/audited levels.
	View string `json:"view,omitempty"`
	// Direction is ancestors (default) or descendants.
	Direction string `json:"direction,omitempty"`
	// Witness additionally returns the why-provenance of the answer: the
	// run's used/wasGeneratedBy edges reachable backward from the
	// artifact (ancestors direction only).
	Witness bool `json:"witness,omitempty"`
}

// WhyEdge is one edge of a why-provenance witness.
type WhyEdge struct {
	Relation string `json:"relation"` // "used" | "wasGeneratedBy"
	Process  string `json:"process"`  // invocation ID
	Artifact string `json:"artifact"`
}

// Answer is the response to one lineage query. Tasks and Artifacts are
// restricted to what actually happened in the queried run (tasks with an
// invocation, artifacts the run recorded); an artifact that was an
// external input answers with empty sets. For the view and audited
// levels ViewSound carries the view's incrementally maintained
// soundness; the audited level adds the per-query delta — Sound is true
// iff this specific answer has no spurious or missing composites.
type Answer struct {
	Workflow string `json:"workflow"`
	Run      string `json:"run"`
	Artifact string `json:"artifact"`
	// Producer is the task whose invocation generated the artifact;
	// empty for external inputs.
	Producer  string `json:"producer,omitempty"`
	Level     string `json:"level"`
	Direction string `json:"direction"`
	// Version is the workflow version the answer was computed against.
	Version uint64 `json:"version"`
	// Tasks are the lineage (or impact) tasks invoked in this run,
	// ascending by task index; Artifacts are this run's artifacts those
	// tasks generated.
	Tasks     []string `json:"tasks"`
	Artifacts []string `json:"artifacts"`
	// View levels only:
	View       string   `json:"view,omitempty"`
	ViewSound  *bool    `json:"view_sound,omitempty"`
	Composites []string `json:"composites,omitempty"`
	// Audited level only:
	Sound *bool `json:"sound,omitempty"`
	// Spurious lists composites the view wrongly includes in this
	// answer (no real member-level path); Missing is the dual and stays
	// empty for quotient views. SpuriousTasks are the invoked member
	// tasks of the spurious composites — the concrete false positives a
	// view user would be misled by.
	Spurious      []string `json:"spurious_composites,omitempty"`
	Missing       []string `json:"missing_composites,omitempty"`
	SpuriousTasks []string `json:"spurious_tasks,omitempty"`
	// Witness (when requested) is the why-provenance: the used /
	// wasGeneratedBy edges of this run that support the answer.
	Witness []WhyEdge `json:"witness,omitempty"`
}

// Lineage answers one query against an ingested run.
func (s *Store) Lineage(workflowID string, q Query) (*Answer, error) {
	level := q.Level
	if level == "" {
		level = LevelExact
	}
	dir := q.Direction
	if dir == "" {
		dir = DirAncestors
	}
	switch level {
	case LevelExact, LevelView, LevelAudited:
	default:
		return nil, errf(engine.ErrBadInput, "lineage",
			"unknown level %q (want exact|view|audited)", q.Level)
	}
	switch dir {
	case DirAncestors, DirDescendants:
	default:
		return nil, errf(engine.ErrBadInput, "lineage",
			"unknown direction %q (want ancestors|descendants)", q.Direction)
	}
	if level != LevelExact && q.View == "" {
		return nil, errf(engine.ErrBadInput, "lineage", "level %q requires a view", level)
	}
	if q.Witness && dir != DirAncestors {
		return nil, errf(engine.ErrBadInput, "lineage", "witness requires direction ancestors")
	}
	if q.Artifact == "" {
		return nil, errf(engine.ErrBadInput, "lineage", "missing artifact")
	}

	lw, run, err := s.lookup(workflowID, q.Run)
	if err != nil {
		return nil, err
	}
	ai, ok := run.artIdx[q.Artifact]
	if !ok {
		return nil, errf(engine.ErrUnknownArtifact, "lineage",
			"run %q has no artifact %q", q.Run, q.Artifact)
	}
	s.queries.Add(1)

	ans := &Answer{
		Workflow:  workflowID,
		Run:       q.Run,
		Artifact:  q.Artifact,
		Level:     level,
		Direction: dir,
		Tasks:     []string{},
		Artifacts: []string{},
	}
	qerr := lw.Query(func(ps *engine.ProvSession) error {
		ans.Version = ps.Version()
		gen := run.artGen[ai]
		if gen < 0 {
			// External input: it has no producing invocation, so its
			// closure-level lineage is empty at every level; the witness
			// is empty too. View fields still report the view's health.
			if level != LevelExact {
				_, _, rep, verr := ps.View(q.View)
				if verr != nil {
					return verr
				}
				ans.View = q.View
				sound := rep.Sound
				ans.ViewSound = &sound
				if level == LevelAudited {
					t := true
					ans.Sound = &t
				}
			}
			return nil
		}
		t := int(run.procTask[gen])
		ans.Producer = ps.Workflow().Task(t).ID

		switch level {
		case LevelExact:
			s.answerExact(ans, ps, run, t, dir)
		default:
			if verr := s.answerView(ans, ps, run, t, q.View, dir, level == LevelAudited); verr != nil {
				return verr
			}
		}
		if q.Witness {
			ans.Witness = run.witness(ai)
		}
		return nil
	})
	if qerr != nil {
		return nil, wrapErr("lineage", qerr)
	}
	return ans, nil
}

// inRun reports whether task u (an index of the possibly-grown live
// workflow) had an invocation in the run; tasks added after ingestion
// are outside the run by construction.
func (r *Run) inRun(u int) bool { return u < r.n && r.invoked.Test(u) }

// fillTasks writes the invoked tasks of want (excluding home) into the
// answer, plus this run's artifacts they generated.
func (r *Run) fillTasks(ans *Answer, ps *engine.ProvSession, want *bitset.Set, home int) {
	wf := ps.Workflow()
	want.ForEach(func(u int) bool {
		if u != home && r.inRun(u) {
			ans.Tasks = append(ans.Tasks, wf.Task(u).ID)
		}
		return true
	})
	for i, g := range r.artGen {
		if g < 0 {
			continue
		}
		if u := int(r.procTask[g]); u != home && want.Test(u) {
			ans.Artifacts = append(ans.Artifacts, r.artID[i])
		}
	}
}

// answerExact serves the task-closure level from the registry's
// incrementally maintained rows: zero closure builds per query.
func (s *Store) answerExact(ans *Answer, ps *engine.ProvSession, run *Run, t int, dir string) {
	// Both directions read the shared closure rows directly (stable under
	// the session's read lock); fillTasks excludes the home task itself.
	prov := ps.Lineage()
	var want *bitset.Set
	if dir == DirAncestors {
		want = prov.LineageSet(t)
	} else {
		want = prov.DescendantSet(t)
	}
	run.fillTasks(ans, ps, want, t)
}

// answerView serves the composite-closure level (and, when audited is
// set, attaches the cached provenance-audit delta for the home
// composite).
func (s *Store) answerView(ans *Answer, ps *engine.ProvSession, run *Run, t int, vid, dir string, audited bool) error {
	v, ve, rep, err := ps.View(vid)
	if err != nil {
		return err
	}
	ans.View = vid
	sound := rep.Sound
	ans.ViewSound = &sound

	home := v.CompOf(t)
	var comps []int
	var taskList []int
	if dir == DirAncestors {
		comps = ve.CompositeLineage(home)
		taskList = ve.TaskLineage(t)
	} else {
		comps = ve.CompositeDescendants(home)
		taskList = ve.TaskDescendants(t)
	}
	for _, ci := range comps {
		ans.Composites = append(ans.Composites, v.Composite(ci).ID)
	}
	want := bitset.New(ps.Workflow().N())
	for _, u := range taskList {
		want.Set(u)
	}
	run.fillTasks(ans, ps, want, t)

	if !audited {
		return nil
	}
	audit, err := ps.Audit(vid)
	if err != nil {
		return err
	}
	var spur, miss []int
	if dir == DirAncestors {
		spur, miss = audit.SpuriousUpstream[home], audit.MissingUpstream[home]
	} else {
		spur, miss = audit.SpuriousDownstream[home], audit.MissingDownstream[home]
	}
	wf := ps.Workflow()
	for _, ci := range spur {
		ans.Spurious = append(ans.Spurious, v.Composite(ci).ID)
		for _, m := range v.Composite(ci).Members() {
			if run.inRun(m) {
				ans.SpuriousTasks = append(ans.SpuriousTasks, wf.Task(m).ID)
			}
		}
	}
	for _, ci := range miss {
		ans.Missing = append(ans.Missing, v.Composite(ci).ID)
	}
	ok := len(spur) == 0 && len(miss) == 0
	ans.Sound = &ok
	return nil
}

// witness computes the why-provenance of artifact ai: a breadth-first
// backward walk over this run's wasGeneratedBy/used edges, O(edges).
func (r *Run) witness(ai int32) []WhyEdge {
	out := []WhyEdge{}
	seenArt := make([]bool, len(r.artID))
	seenProc := make([]bool, len(r.procID))
	queue := []int32{ai}
	seenArt[ai] = true
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		g := r.artGen[a]
		if g < 0 {
			continue
		}
		out = append(out, WhyEdge{Relation: "wasGeneratedBy", Process: r.procID[g], Artifact: r.artID[a]})
		if seenProc[g] {
			continue
		}
		seenProc[g] = true
		for _, ua := range r.usedArt[r.usedStart[g]:r.usedStart[g+1]] {
			out = append(out, WhyEdge{Relation: "used", Process: r.procID[g], Artifact: r.artID[ua]})
			if !seenArt[ua] {
				seenArt[ua] = true
				queue = append(queue, ua)
			}
		}
	}
	return out
}

// BatchResult is the per-query outcome of LineageBatch; exactly one of
// Answer and Err is set.
type BatchResult struct {
	Answer *Answer       `json:"answer,omitempty"`
	Err    *engine.Error `json:"error,omitempty"`
}

// LineageBatch answers every query over the worker pool (the engine's
// batch fan-out machinery) and returns per-query results in input
// order. An unknown workflow fails the whole batch; everything else —
// unknown run, unknown artifact, bad level — fails only its own query.
// A canceled ctx marks the unclaimed remainder ErrCanceled.
func (s *Store) LineageBatch(ctx context.Context, workflowID string, qs []Query, workers int) ([]BatchResult, error) {
	if len(qs) == 0 {
		return nil, errf(engine.ErrBadInput, "lineage", "no queries")
	}
	if _, err := s.reg.Get(workflowID); err != nil {
		return nil, wrapErr("lineage", err)
	}
	if workers <= 0 {
		workers = s.workers
	}
	results := make([]BatchResult, len(qs))
	engine.FanOut(ctx, workers, len(qs),
		func(i int) {
			a, err := s.Lineage(workflowID, qs[i])
			if err != nil {
				results[i] = BatchResult{Err: wrapErr("lineage", err)}
				return
			}
			results[i] = BatchResult{Answer: a}
		},
		func(i int) {
			results[i] = BatchResult{Err: &engine.Error{
				Code: engine.ErrCanceled, Op: "lineage", Message: ctx.Err().Error(), Err: ctx.Err()}}
		})
	return results, nil
}
