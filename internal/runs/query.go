package runs

import (
	"context"
	"sync"
	"time"

	"wolves/internal/bitset"
	"wolves/internal/dag"
	"wolves/internal/engine"
	"wolves/internal/obs"
	"wolves/internal/provenance"
	"wolves/internal/view"
)

// Query levels and directions.
const (
	LevelExact   = "exact"   // task closure from the registry's incremental rows
	LevelView    = "view"    // composite (quotient) closure of an attached view
	LevelAudited = "audited" // view level + provenance-audit delta

	DirAncestors   = "ancestors"   // lineage: what produced this artifact
	DirDescendants = "descendants" // impact: what consumed it downstream
)

// Query is one lineage question against an ingested run.
type Query struct {
	Run      string `json:"run"`
	Artifact string `json:"artifact"`
	// Level selects the answer granularity: exact (default), view or
	// audited. The view levels require View.
	Level string `json:"level,omitempty"`
	// View names the attached view for the view/audited levels.
	View string `json:"view,omitempty"`
	// Direction is ancestors (default) or descendants.
	Direction string `json:"direction,omitempty"`
	// Witness additionally returns the why-provenance of the answer: the
	// run's used/wasGeneratedBy edges reachable backward from the
	// artifact (ancestors direction only).
	Witness bool `json:"witness,omitempty"`
}

// WhyEdge is one edge of a why-provenance witness.
type WhyEdge struct {
	Relation string `json:"relation"` // "used" | "wasGeneratedBy"
	Process  string `json:"process"`  // invocation ID
	Artifact string `json:"artifact"`
}

// Answer is the response to one lineage query. Tasks and Artifacts are
// restricted to what actually happened in the queried run (tasks with an
// invocation, artifacts the run recorded); an artifact that was an
// external input answers with empty sets. For the view and audited
// levels ViewSound carries the view's incrementally maintained
// soundness; the audited level adds the per-query delta — Sound is true
// iff this specific answer has no spurious or missing composites.
//
// Answers are pool-backed: the store hands them out from a sync.Pool
// and Release returns one (with its slice capacity) for reuse. Callers
// that are done with an answer — after encoding it, typically — should
// Release it and not touch it afterwards; callers that retain answers
// (tests, long-lived aggregation) simply skip Release.
type Answer struct {
	Workflow string `json:"workflow"`
	Run      string `json:"run"`
	Artifact string `json:"artifact"`
	// Producer is the task whose invocation generated the artifact;
	// empty for external inputs.
	Producer  string `json:"producer,omitempty"`
	Level     string `json:"level"`
	Direction string `json:"direction"`
	// Version is the workflow version the answer was computed against.
	Version uint64 `json:"version"`
	// Tasks are the lineage (or impact) tasks invoked in this run,
	// ascending by task index; Artifacts are this run's artifacts those
	// tasks generated.
	Tasks     []string `json:"tasks"`
	Artifacts []string `json:"artifacts"`
	// View levels only:
	View       string   `json:"view,omitempty"`
	ViewSound  *bool    `json:"view_sound,omitempty"`
	Composites []string `json:"composites,omitempty"`
	// Audited level only:
	Sound *bool `json:"sound,omitempty"`
	// Spurious lists composites the view wrongly includes in this
	// answer (no real member-level path); Missing is the dual and stays
	// empty for quotient views. SpuriousTasks are the invoked member
	// tasks of the spurious composites — the concrete false positives a
	// view user would be misled by.
	Spurious      []string `json:"spurious_composites,omitempty"`
	Missing       []string `json:"missing_composites,omitempty"`
	SpuriousTasks []string `json:"spurious_tasks,omitempty"`
	// Witness (when requested) is the why-provenance: the used /
	// wasGeneratedBy edges of this run that support the answer.
	Witness []WhyEdge `json:"witness,omitempty"`

	// viewSoundVal/soundVal back the ViewSound/Sound pointers so a
	// pooled answer never allocates a bool cell per query.
	viewSoundVal bool
	soundVal     bool
}

var answerPool = sync.Pool{New: func() any { return new(Answer) }}

// newAnswer returns a reset pool-backed answer. Tasks/Artifacts are
// non-nil empty slices — the wire contract emits [] for them even when
// empty, never null.
func newAnswer() *Answer {
	a := answerPool.Get().(*Answer) //lint:allow poolret ownership transfers to the caller; Answer.Release is the Put
	if a.Tasks == nil {
		a.Tasks = []string{}
	}
	if a.Artifacts == nil {
		a.Artifacts = []string{}
	}
	return a
}

// Release resets the answer and returns it to the pool. The answer (and
// every slice it exposed) must not be used afterwards; release at most
// once.
func (a *Answer) Release() {
	if a == nil {
		return
	}
	*a = Answer{
		Tasks:         a.Tasks[:0],
		Artifacts:     a.Artifacts[:0],
		Composites:    a.Composites[:0],
		Spurious:      a.Spurious[:0],
		Missing:       a.Missing[:0],
		SpuriousTasks: a.SpuriousTasks[:0],
		Witness:       a.Witness[:0],
	}
	answerPool.Put(a)
}

// Lineage answers one query against an ingested run.
//
// The serve path is label-indexed and lock-free: the answer is
// assembled from the workflow's published ReadEpoch — interval
// reachability labels for membership, the run's invoked-task list for
// enumeration — without taking the workflow lock. When no epoch is
// available (label budget exceeded, or the epoch moved mid-assembly on
// the audited level) it falls back to the closure-row path under the
// read lock; the two produce byte-identical answers (see
// TestLabelAnswersMatchClosureRows).
func (s *Store) Lineage(workflowID string, q Query) (*Answer, error) {
	return s.LineageCtx(context.Background(), workflowID, q) //lint:allow ctxpass compat wrapper anchors its own root
}

// LineageCtx is Lineage with the request context: ctx carries the
// request's trace span so the serve shows up in the trace tail. The
// instrumentation is allocation-free — two clock reads, a pooled span
// when sampled, atomic counter/histogram updates — so the warm serve
// path stays 0 allocs/op (TestLineageAllocationCeiling guards it).
func (s *Store) LineageCtx(ctx context.Context, workflowID string, q Query) (*Answer, error) {
	level := q.Level
	if level == "" {
		level = LevelExact
	}
	dir := q.Direction
	if dir == "" {
		dir = DirAncestors
	}
	switch level {
	case LevelExact, LevelView, LevelAudited:
	default:
		return nil, errf(engine.ErrBadInput, "lineage",
			"unknown level %q (want exact|view|audited)", q.Level)
	}
	switch dir {
	case DirAncestors, DirDescendants:
	default:
		return nil, errf(engine.ErrBadInput, "lineage",
			"unknown direction %q (want ancestors|descendants)", q.Direction)
	}
	if level != LevelExact && q.View == "" {
		return nil, errf(engine.ErrBadInput, "lineage", "level %q requires a view", level)
	}
	if q.Witness && dir != DirAncestors {
		return nil, errf(engine.ErrBadInput, "lineage", "witness requires direction ancestors")
	}
	if q.Artifact == "" {
		return nil, errf(engine.ErrBadInput, "lineage", "missing artifact")
	}

	lw, run, err := s.lookup(workflowID, q.Run)
	if err != nil {
		return nil, err
	}
	ai, ok := run.artIdx[q.Artifact]
	if !ok {
		return nil, errf(engine.ErrUnknownArtifact, "lineage",
			"run %q has no artifact %q", q.Run, q.Artifact)
	}
	s.queries.Add(1)
	start := time.Now()
	_, span := obs.StartSpan(ctx, "runs", "lineage")
	span.SetAttr("workflow", workflowID)
	span.SetAttr("level", level)

	// Two label attempts: the second absorbs an epoch that moved between
	// the load and the audited-delta pin. Anything rarer than that — or
	// a workflow with no label index at all — serves from closure rows.
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			obs.MLineageDriftRetries.Inc()
		}
		if ans, qerr, served := s.lineageLabels(lw, run, q, ai, level, dir); served {
			span.End()
			if qerr != nil {
				return nil, qerr
			}
			finishLineage(level, start)
			return ans, nil
		}
	}
	obs.MLineageFallbacks.Inc()
	ans, err := s.lineageRows(lw, run, q, ai, level, dir)
	span.End()
	if err == nil {
		finishLineage(level, start)
	}
	return ans, err
}

// finishLineage records the per-level serve counters and latency for
// one answered query. Kept out of line (and off a defer closure) so the
// hot path pays exactly two atomic bumps and a histogram observe.
func finishLineage(level string, start time.Time) {
	obs.MLineageQueries.With(level).Inc()
	obs.MLineageLatency.With(level).Observe(time.Since(start).Seconds())
}

// lineageLabels serves one query entirely from the published read
// epoch. served is false when the epoch path cannot answer (no epoch,
// view without labels, audited delta unpinnable) — the caller retries
// or falls back to closure rows.
func (s *Store) lineageLabels(lw *engine.LiveWorkflow, run *Run, q Query, ai int32, level, dir string) (*Answer, *engine.Error, bool) {
	ep := lw.Epoch()
	if ep == nil || run.n > ep.Tasks() {
		// No epoch, or the epoch briefly lags a task-growing mutation the
		// run was already validated against.
		return nil, nil, false
	}
	anc := dir == DirAncestors

	// Resolve the view and pin the audited delta before assembling
	// anything, so version drift costs a retry, not a torn answer.
	var ev *engine.EpochView
	var audit *provenance.ViewAudit
	if level != LevelExact {
		if ev = ep.View(q.View); ev == nil {
			return nil, errf(engine.ErrUnknownView, "query",
				"no view %q on workflow %q", q.View, lw.ID()), true
		}
		if ev.Labels() == nil {
			return nil, nil, false
		}
		if level == LevelAudited {
			a, ok := lw.EpochAudit(ep, q.View)
			if !ok {
				return nil, nil, false
			}
			audit = a
		}
	}

	ans := newAnswer()
	ans.Workflow = lw.ID()
	ans.Run = q.Run
	ans.Artifact = q.Artifact
	ans.Level = level
	ans.Direction = dir
	ans.Version = ep.Version()

	gen := run.artGen[ai]
	if gen < 0 {
		// External input: no producing invocation, so its lineage is
		// empty at every level (witness included); view fields still
		// report the view's health.
		if level != LevelExact {
			ans.View = q.View
			ans.viewSoundVal = ev.Sound()
			ans.ViewSound = &ans.viewSoundVal
			if level == LevelAudited {
				ans.soundVal = true
				ans.Sound = &ans.soundVal
			}
		}
		return ans, nil, true
	}
	t := int(run.procTask[gen])
	ans.Producer = ep.TaskID(t)

	switch level {
	case LevelExact:
		run.fillExactLabels(ans, ep, t, anc)
	default:
		// Direction picks the index: forward quotient labels mark home's
		// descendants, reverse quotient labels mark its ancestors.
		v, vl := ev.View(), ev.Labels()
		if anc {
			vl = ev.RevLabels()
		}
		home := v.CompOf(t)
		ans.View = q.View
		ans.viewSoundVal = ev.Sound()
		ans.ViewSound = &ans.viewSoundVal

		// Mark home's interval cover once, then every membership test is
		// one bit probe. Composite enumeration scans ascending, home
		// excluded — the same order the closure-row path emits.
		mp := scratchMark(vl)
		mark := *mp
		vl.MarkRow(mark, home)
		for ci, k := 0, v.N(); ci < k; ci++ {
			if ci != home && vl.Marked(mark, ci) {
				ans.Composites = append(ans.Composites, v.Composite(ci).ID)
			}
		}
		run.fillViewLabels(ans, ep, v, vl, mark, home)
		releaseMark(mp)

		if level == LevelAudited {
			var spur, miss []int
			if anc {
				spur, miss = audit.SpuriousUpstream[home], audit.MissingUpstream[home]
			} else {
				spur, miss = audit.SpuriousDownstream[home], audit.MissingDownstream[home]
			}
			for _, ci := range spur {
				ans.Spurious = append(ans.Spurious, v.Composite(ci).ID)
				for _, m := range v.Composite(ci).Members() {
					if run.inRun(m) {
						ans.SpuriousTasks = append(ans.SpuriousTasks, ep.TaskID(m))
					}
				}
			}
			for _, ci := range miss {
				ans.Missing = append(ans.Missing, v.Composite(ci).ID)
			}
			ans.soundVal = len(spur) == 0 && len(miss) == 0
			ans.Sound = &ans.soundVal
		}
	}
	if q.Witness {
		ans.Witness = run.appendWitness(ans.Witness[:0], ai)
	}
	return ans, nil, true
}

// fillExactLabels writes the exact-level tasks and artifacts: the run's
// invoked tasks (home excluded) whose mark bit places them in the
// answer, ascending, then this run's artifacts those tasks generated in
// artifact order — the same set and order as the closure-row path.
// Direction picks the index (forward labels mark descendants of home,
// reverse labels mark its ancestors); after the one MarkRow pass each
// candidate costs a single bit probe instead of an interval search.
func (r *Run) fillExactLabels(ans *Answer, ep *engine.ReadEpoch, home int, anc bool) {
	l := ep.Labels()
	if anc {
		l = ep.RevLabels()
	}
	mp := scratchMark(l)
	mark := *mp
	l.MarkRow(mark, home)
	for _, u32 := range r.invokedList {
		if u := int(u32); u != home && l.Marked(mark, u) {
			ans.Tasks = append(ans.Tasks, ep.TaskID(u))
		}
	}
	for i, g := range r.artGen {
		if g < 0 {
			continue
		}
		if u := int(r.procTask[g]); u != home && l.Marked(mark, u) {
			ans.Artifacts = append(ans.Artifacts, r.artID[i])
		}
	}
	releaseMark(mp)
}

// fillViewLabels is fillExactLabels at the composite level, reusing the
// caller's already-marked scratch: a task is in the answer iff its
// composite's mark bit is set and it is not a member of the home
// composite itself, exactly like the ViewEngine task sets.
func (r *Run) fillViewLabels(ans *Answer, ep *engine.ReadEpoch, v *view.View, vl *dag.Labels, mark []uint64, home int) {
	for _, u32 := range r.invokedList {
		u := int(u32)
		if cu := v.CompOf(u); cu != home && vl.Marked(mark, cu) {
			ans.Tasks = append(ans.Tasks, ep.TaskID(u))
		}
	}
	for i, g := range r.artGen {
		if g < 0 {
			continue
		}
		if cu := v.CompOf(int(r.procTask[g])); cu != home && vl.Marked(mark, cu) {
			ans.Artifacts = append(ans.Artifacts, r.artID[i])
		}
	}
}

// markPool holds position-mark scratch for the label serve path.
var markPool = sync.Pool{New: func() any { return new([]uint64) }}

// scratchMark returns a zeroed mark sized for l's position space.
func scratchMark(l *dag.Labels) *[]uint64 {
	p := markPool.Get().(*[]uint64) //lint:allow poolret ownership transfers to the caller; releaseMark is the Put
	if w := dag.MarkWords(l.N()); cap(*p) < w {
		*p = make([]uint64, w)
	} else {
		*p = (*p)[:w]
		clear(*p)
	}
	return p
}

func releaseMark(p *[]uint64) { markPool.Put(p) }

// lineageRows is the closure-row serve path: the original locked
// ProvSession implementation, kept as the fallback for workflows
// without a label index and as the independent oracle the equivalence
// property test checks the label path against.
func (s *Store) lineageRows(lw *engine.LiveWorkflow, run *Run, q Query, ai int32, level, dir string) (*Answer, error) {
	ans := newAnswer()
	ans.Workflow = lw.ID()
	ans.Run = q.Run
	ans.Artifact = q.Artifact
	ans.Level = level
	ans.Direction = dir
	qerr := lw.Query(func(ps *engine.ProvSession) error {
		ans.Version = ps.Version()
		gen := run.artGen[ai]
		if gen < 0 {
			// External input: it has no producing invocation, so its
			// closure-level lineage is empty at every level; the witness
			// is empty too. View fields still report the view's health.
			if level != LevelExact {
				_, _, rep, verr := ps.View(q.View)
				if verr != nil {
					return verr
				}
				ans.View = q.View
				ans.viewSoundVal = rep.Sound
				ans.ViewSound = &ans.viewSoundVal
				if level == LevelAudited {
					ans.soundVal = true
					ans.Sound = &ans.soundVal
				}
			}
			return nil
		}
		t := int(run.procTask[gen])
		ans.Producer = ps.Workflow().Task(t).ID

		switch level {
		case LevelExact:
			s.answerExact(ans, ps, run, t, dir)
		default:
			if verr := s.answerView(ans, ps, run, t, q.View, dir, level == LevelAudited); verr != nil {
				return verr
			}
		}
		if q.Witness {
			ans.Witness = run.appendWitness(ans.Witness[:0], ai)
		}
		return nil
	})
	if qerr != nil {
		ans.Release()
		return nil, wrapErr("lineage", qerr)
	}
	return ans, nil
}

// inRun reports whether task u (an index of the possibly-grown live
// workflow) had an invocation in the run; tasks added after ingestion
// are outside the run by construction.
func (r *Run) inRun(u int) bool { return u < r.n && r.invoked.Test(u) }

// fillTasks writes the invoked tasks of want (excluding home) into the
// answer, plus this run's artifacts they generated.
func (r *Run) fillTasks(ans *Answer, ps *engine.ProvSession, want *bitset.Set, home int) {
	wf := ps.Workflow()
	want.ForEach(func(u int) bool {
		if u != home && r.inRun(u) {
			ans.Tasks = append(ans.Tasks, wf.Task(u).ID)
		}
		return true
	})
	for i, g := range r.artGen {
		if g < 0 {
			continue
		}
		if u := int(r.procTask[g]); u != home && want.Test(u) {
			ans.Artifacts = append(ans.Artifacts, r.artID[i])
		}
	}
}

// answerExact serves the task-closure level from the registry's
// incrementally maintained rows: zero closure builds per query.
func (s *Store) answerExact(ans *Answer, ps *engine.ProvSession, run *Run, t int, dir string) {
	// Both directions read the shared closure rows directly (stable under
	// the session's read lock); fillTasks excludes the home task itself.
	prov := ps.Lineage()
	var want *bitset.Set
	if dir == DirAncestors {
		want = prov.LineageSet(t)
	} else {
		want = prov.DescendantSet(t)
	}
	run.fillTasks(ans, ps, want, t)
}

// answerView serves the composite-closure level (and, when audited is
// set, attaches the cached provenance-audit delta for the home
// composite).
func (s *Store) answerView(ans *Answer, ps *engine.ProvSession, run *Run, t int, vid, dir string, audited bool) error {
	v, ve, rep, err := ps.View(vid)
	if err != nil {
		return err
	}
	ans.View = vid
	ans.viewSoundVal = rep.Sound
	ans.ViewSound = &ans.viewSoundVal

	home := v.CompOf(t)
	var comps []int
	var taskList []int
	if dir == DirAncestors {
		comps = ve.CompositeLineage(home)
		taskList = ve.TaskLineage(t)
	} else {
		comps = ve.CompositeDescendants(home)
		taskList = ve.TaskDescendants(t)
	}
	for _, ci := range comps {
		ans.Composites = append(ans.Composites, v.Composite(ci).ID)
	}
	want := bitset.New(ps.Workflow().N())
	for _, u := range taskList {
		want.Set(u)
	}
	run.fillTasks(ans, ps, want, t)

	if !audited {
		return nil
	}
	audit, err := ps.Audit(vid)
	if err != nil {
		return err
	}
	var spur, miss []int
	if dir == DirAncestors {
		spur, miss = audit.SpuriousUpstream[home], audit.MissingUpstream[home]
	} else {
		spur, miss = audit.SpuriousDownstream[home], audit.MissingDownstream[home]
	}
	wf := ps.Workflow()
	for _, ci := range spur {
		ans.Spurious = append(ans.Spurious, v.Composite(ci).ID)
		for _, m := range v.Composite(ci).Members() {
			if run.inRun(m) {
				ans.SpuriousTasks = append(ans.SpuriousTasks, wf.Task(m).ID)
			}
		}
	}
	for _, ci := range miss {
		ans.Missing = append(ans.Missing, v.Composite(ci).ID)
	}
	ans.soundVal = len(spur) == 0 && len(miss) == 0
	ans.Sound = &ans.soundVal
	return nil
}

// witnessScratch holds the per-walk marking state of appendWitness.
type witnessScratch struct {
	seenArt  []bool
	seenProc []bool
	queue    []int32
}

var witnessPool = sync.Pool{New: func() any { return new(witnessScratch) }}

// appendWitness appends the why-provenance of artifact ai to dst: a
// breadth-first backward walk over this run's wasGeneratedBy/used
// edges, O(edges), with pooled marking scratch.
func (r *Run) appendWitness(dst []WhyEdge, ai int32) []WhyEdge {
	ws := witnessPool.Get().(*witnessScratch) //lint:allow poolret Put follows at the end of this function; the early returns are impossible
	if cap(ws.seenArt) < len(r.artID) {
		ws.seenArt = make([]bool, len(r.artID))
	}
	if cap(ws.seenProc) < len(r.procID) {
		ws.seenProc = make([]bool, len(r.procID))
	}
	seenArt := ws.seenArt[:len(r.artID)]
	seenProc := ws.seenProc[:len(r.procID)]
	clear(seenArt)
	clear(seenProc)
	queue := append(ws.queue[:0], ai)
	seenArt[ai] = true
	for head := 0; head < len(queue); head++ {
		a := queue[head]
		g := r.artGen[a]
		if g < 0 {
			continue
		}
		dst = append(dst, WhyEdge{Relation: "wasGeneratedBy", Process: r.procID[g], Artifact: r.artID[a]})
		if seenProc[g] {
			continue
		}
		seenProc[g] = true
		for _, ua := range r.usedArt[r.usedStart[g]:r.usedStart[g+1]] {
			dst = append(dst, WhyEdge{Relation: "used", Process: r.procID[g], Artifact: r.artID[ua]})
			if !seenArt[ua] {
				seenArt[ua] = true
				queue = append(queue, ua)
			}
		}
	}
	ws.queue = queue
	witnessPool.Put(ws)
	return dst
}

// BatchResult is the per-query outcome of LineageBatch; exactly one of
// Answer and Err is set.
type BatchResult struct {
	Answer *Answer       `json:"answer,omitempty"`
	Err    *engine.Error `json:"error,omitempty"`
}

// LineageBatch answers every query over the worker pool (the engine's
// batch fan-out machinery) and returns per-query results in input
// order. An unknown workflow fails the whole batch; everything else —
// unknown run, unknown artifact, bad level — fails only its own query.
// A canceled ctx marks the unclaimed remainder ErrCanceled.
func (s *Store) LineageBatch(ctx context.Context, workflowID string, qs []Query, workers int) ([]BatchResult, error) {
	if len(qs) == 0 {
		return nil, errf(engine.ErrBadInput, "lineage", "no queries")
	}
	if _, err := s.reg.Get(workflowID); err != nil {
		return nil, wrapErr("lineage", err)
	}
	if workers <= 0 {
		workers = s.workers
	}
	results := make([]BatchResult, len(qs))
	engine.FanOut(ctx, workers, len(qs),
		func(i int) {
			a, err := s.LineageCtx(ctx, workflowID, qs[i])
			if err != nil {
				results[i] = BatchResult{Err: wrapErr("lineage", err)}
				return
			}
			results[i] = BatchResult{Answer: a}
		},
		func(i int) {
			results[i] = BatchResult{Err: &engine.Error{
				Code: engine.ErrCanceled, Op: "lineage", Message: ctx.Err().Error(), Err: ctx.Err()}}
		})
	return results, nil
}

// ReleaseResults releases every answer of a batch back to the pool;
// callers use it after encoding a batch response.
func ReleaseResults(results []BatchResult) {
	for _, res := range results {
		res.Answer.Release()
	}
}
