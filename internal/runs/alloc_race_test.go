//go:build race

package runs

import (
	"bytes"
	"testing"
)

// TestLineageAllocationCeiling under -race: the AllocsPerRun ceiling
// cannot hold (the race runtime allocates on its own barriers), so
// this build runs the same warm fixture behaviorally — repeated pooled
// serves of every level must keep producing byte-identical answers.
// That is the property the allocation discipline exists to protect: a
// recycled answer that leaks state across queries shows up here as a
// diverging encoding.
func TestLineageAllocationCeiling(t *testing.T) {
	s, cases := lineageAllocStore(t)
	var first, encBuf []byte
	for _, tc := range cases {
		q := tc.q
		first = first[:0]
		for i := 0; i < 32; i++ {
			ans, qerr := s.Lineage("wf", q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			encBuf = ans.AppendJSON(encBuf[:0])
			ans.Release()
			if i == 0 {
				first = append(first, encBuf...)
				if len(first) == 0 {
					t.Fatalf("%s: empty answer encoding", tc.name)
				}
				continue
			}
			if !bytes.Equal(first, encBuf) {
				t.Fatalf("%s: pooled serve diverged on iteration %d:\nfirst %s\n  got %s",
					tc.name, i, first, encBuf)
			}
		}
	}
}
