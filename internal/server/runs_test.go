package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/repo"
	"wolves/internal/runs"
)

// bootRunServer starts an httptest server with the Figure 1 workflow
// and fig1b view registered.
func bootRunServer(t *testing.T) (*httptest.Server, *http.Client) {
	t.Helper()
	srv := New(engine.New())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	wf, v := repo.Figure1()
	wfRaw, err := json.Marshal(wf)
	if err != nil {
		t.Fatal(err)
	}
	vRaw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"workflow": json.RawMessage(wfRaw),
		"views":    []map[string]any{{"id": "fig1b", "view": json.RawMessage(vRaw)}},
	})
	status, resp := do(t, ts, http.MethodPut, "/v1/workflows/phylo", string(body), "")
	if status != http.StatusOK {
		t.Fatalf("register: %d %s", status, resp)
	}
	return ts, ts.Client()
}

// do issues a request and returns status and body.
func do(t *testing.T, ts *httptest.Server, method, path, body, contentType string) (int, string) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// figure1HTTPRun is the Figure 1 execution trace in implicit-invocation
// form: one artifact a<i> per task, used edges along the workflow edges.
func figure1HTTPRun(runID string) string {
	wf, _ := repo.Figure1()
	doc := map[string]any{"run": runID}
	var arts, used []map[string]string
	for i := 0; i < wf.N(); i++ {
		arts = append(arts, map[string]string{"id": "a" + wf.Task(i).ID, "generated_by": wf.Task(i).ID})
	}
	for _, e := range wf.Edges() {
		used = append(used, map[string]string{"process": e[1], "artifact": "a" + e[0]})
	}
	doc["artifacts"], doc["used"] = arts, used
	raw, _ := json.Marshal(doc)
	return string(raw)
}

// TestRunLineageLevelsHTTP is the PR's acceptance criterion at the HTTP
// level: level=audited on the Figure 1(b) unsound view reports
// sound:false and lists composite 14 as spurious provenance of
// composite 18's output (artifact a8), while level=exact omits task 3
// entirely.
func TestRunLineageLevelsHTTP(t *testing.T) {
	ts, _ := bootRunServer(t)

	status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", figure1HTTPRun("r1"), "")
	if status != http.StatusOK || !strings.Contains(body, `"run":"r1"`) {
		t.Fatalf("ingest: %d %s", status, body)
	}

	// level=exact: the provenance of a8 is a1,a2,a6,a7 — no task 3.
	status, body = do(t, ts, http.MethodGet,
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=exact", "", "")
	if status != http.StatusOK {
		t.Fatalf("exact lineage: %d %s", status, body)
	}
	var exact runs.Answer
	if err := json.Unmarshal([]byte(body), &exact); err != nil {
		t.Fatal(err)
	}
	for _, task := range exact.Tasks {
		if task == "3" {
			t.Fatalf("exact lineage must omit task 3: %s", body)
		}
	}
	if len(exact.Tasks) != 4 || exact.Sound != nil || len(exact.Spurious) != 0 {
		t.Fatalf("exact lineage = %s", body)
	}

	// level=audited: sound:false, composite 14 spurious.
	status, body = do(t, ts, http.MethodGet,
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=audited&view=fig1b", "", "")
	if status != http.StatusOK {
		t.Fatalf("audited lineage: %d %s", status, body)
	}
	if !strings.Contains(body, `"sound":false`) {
		t.Fatalf("audited lineage must report sound:false: %s", body)
	}
	if !strings.Contains(body, `"spurious_composites":["14"]`) {
		t.Fatalf("audited lineage must list composite 14 as spurious: %s", body)
	}
	if !strings.Contains(body, `"view_sound":false`) || !strings.Contains(body, `"spurious_tasks":["3"]`) {
		t.Fatalf("audited flags: %s", body)
	}

	// level=view carries the view answer (with the false positive) and
	// the view_sound flag, but no per-query delta.
	status, body = do(t, ts, http.MethodGet,
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=view&view=fig1b", "", "")
	if status != http.StatusOK || !strings.Contains(body, `"a3"`) ||
		strings.Contains(body, "spurious_composites") {
		t.Fatalf("view lineage: %d %s", status, body)
	}

	// Witness (why-provenance) over the run's own edges.
	status, body = do(t, ts, http.MethodGet,
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&witness=1", "", "")
	if status != http.StatusOK || !strings.Contains(body, `"wasGeneratedBy"`) {
		t.Fatalf("witness lineage: %d %s", status, body)
	}
}

func TestRunEndpointsHTTP(t *testing.T) {
	ts, _ := bootRunServer(t)
	if status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", figure1HTTPRun("r1"), ""); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}

	// NDJSON ingestion by content type.
	nd := "{\"run\":\"nd\"}\n{\"artifact\":{\"id\":\"x\",\"generated_by\":\"1\"}}\n"
	status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", nd, "application/x-ndjson")
	if status != http.StatusOK || !strings.Contains(body, `"run":"nd"`) {
		t.Fatalf("ndjson ingest: %d %s", status, body)
	}

	// List and get.
	status, body = do(t, ts, http.MethodGet, "/v1/workflows/phylo/runs", "", "")
	if status != http.StatusOK || !strings.Contains(body, `"count":2`) {
		t.Fatalf("list: %d %s", status, body)
	}
	status, body = do(t, ts, http.MethodGet, "/v1/workflows/phylo/runs/nd", "", "")
	if status != http.StatusOK || !strings.Contains(body, `"artifacts":1`) {
		t.Fatalf("get: %d %s", status, body)
	}

	// Batch query endpoint.
	q := `{"queries":[
		{"run":"r1","artifact":"a8","level":"exact"},
		{"run":"r1","artifact":"a8","level":"audited","view":"fig1b"},
		{"run":"r1","artifact":"ghost"}]}`
	status, body = do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs/query", q, "")
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var batch RunQueryResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 || batch.Results[0].Answer == nil ||
		batch.Results[1].Answer == nil || batch.Results[1].Answer.Sound == nil ||
		batch.Results[2].Err == nil || batch.Results[2].Err.Code != engine.ErrUnknownArtifact {
		t.Fatalf("batch results: %s", body)
	}

	// Stats endpoint: cache, registry and run-store counters.
	status, body = do(t, ts, http.MethodGet, "/v1/stats", "", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Registry.Workflows != 1 || stats.Registry.Versions["phylo"] != 1 ||
		stats.Registry.Views != 1 || stats.Runs.Runs != 2 || stats.Runs.Ingested != 2 ||
		stats.Cache.Capacity == 0 {
		t.Fatalf("stats: %s", body)
	}
}

// TestRunErrorStatusesHTTP pins the wire mapping: ingestion edge cases
// are 422 invalid_trace, missing resources are 404, bad params 400.
func TestRunErrorStatusesHTTP(t *testing.T) {
	ts, _ := bootRunServer(t)
	if status, _ := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", figure1HTTPRun("r1"), ""); status != http.StatusOK {
		t.Fatal("seed ingest failed")
	}
	cases := []struct {
		name, method, path, body, ct string
		wantStatus                   int
		wantCode                     string
	}{
		{"unknown task", "POST", "/v1/workflows/phylo/runs",
			`{"run":"r","artifacts":[{"id":"a","generated_by":"ghost"}]}`, "",
			http.StatusUnprocessableEntity, "invalid_trace"},
		{"duplicate artifact", "POST", "/v1/workflows/phylo/runs",
			`{"run":"r","artifacts":[{"id":"a","generated_by":"1"},{"id":"a","generated_by":"2"}]}`, "",
			http.StatusUnprocessableEntity, "invalid_trace"},
		{"dangling used edge", "POST", "/v1/workflows/phylo/runs",
			`{"run":"r","artifacts":[{"id":"a","generated_by":"1"}],"used":[{"process":"2","artifact":"ghost"}]}`, "",
			http.StatusUnprocessableEntity, "invalid_trace"},
		{"empty run", "POST", "/v1/workflows/phylo/runs", `{"run":"r"}`, "",
			http.StatusUnprocessableEntity, "invalid_trace"},
		{"torn ndjson", "POST", "/v1/workflows/phylo/runs",
			"{\"run\":\"r\"}\n{\"artifact\":{\"id\":\"a\",\"gen", "application/x-ndjson",
			http.StatusUnprocessableEntity, "invalid_trace"},
		{"unknown workflow", "POST", "/v1/workflows/ghost/runs", `{"run":"r"}`, "",
			http.StatusNotFound, "unknown_workflow"},
		{"unknown run", "GET", "/v1/workflows/phylo/runs/ghost/lineage?artifact=a8", "", "",
			http.StatusNotFound, "unknown_run"},
		{"unknown artifact", "GET", "/v1/workflows/phylo/runs/r1/lineage?artifact=ghost", "", "",
			http.StatusNotFound, "unknown_artifact"},
		{"unknown view", "GET", "/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=view&view=ghost", "", "",
			http.StatusNotFound, "unknown_view"},
		{"bad level", "GET", "/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=big", "", "",
			http.StatusBadRequest, "bad_input"},
		{"missing artifact", "GET", "/v1/workflows/phylo/runs/r1/lineage", "", "",
			http.StatusBadRequest, "bad_input"},
		{"empty batch", "POST", "/v1/workflows/phylo/runs/query", `{"queries":[]}`, "",
			http.StatusBadRequest, "bad_input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, ts, tc.method, tc.path, tc.body, tc.ct)
			if status != tc.wantStatus || !strings.Contains(body, tc.wantCode) {
				t.Fatalf("%s %s = %d %s (want %d %s)", tc.method, tc.path, status, body, tc.wantStatus, tc.wantCode)
			}
		})
	}
}

// TestLineageStreamingBytes pins the streaming serve path to the exact
// bytes writeJSON's reflection encoder would have produced: decoding
// the body and re-encoding it through encoding/json must reproduce the
// wire bytes, trailing newline included — for the single endpoint and
// for the batch endpoint.
func TestLineageStreamingBytes(t *testing.T) {
	ts, _ := bootRunServer(t)
	if status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", figure1HTTPRun("r1"), ""); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	for _, path := range []string{
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8",
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=view&view=fig1b",
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&level=audited&view=fig1b&witness=1",
		"/v1/workflows/phylo/runs/r1/lineage?artifact=a8&direction=descendants",
	} {
		status, body := do(t, ts, http.MethodGet, path, "", "")
		if status != http.StatusOK {
			t.Fatalf("%s: %d %s", path, status, body)
		}
		if !strings.HasSuffix(body, "\n") {
			t.Fatalf("%s: body must end with newline (json.Encoder parity)", path)
		}
		var ans runs.Answer
		if err := json.Unmarshal([]byte(body), &ans); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		want, err := json.Marshal(&ans)
		if err != nil {
			t.Fatal(err)
		}
		if body != string(want)+"\n" {
			t.Fatalf("%s: streamed bytes diverge from encoding/json\n got: %q\nwant: %q", path, body, want)
		}
	}

	// Batch: one good query, one per-query error.
	req := `{"queries":[{"run":"r1","artifact":"a8"},{"run":"r1","artifact":"nope"}]}`
	status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs/query", req, "application/json")
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var qr RunQueryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 2 || qr.Results[0].Answer == nil || qr.Results[1].Err == nil {
		t.Fatalf("batch results = %s", body)
	}
	want, err := json.Marshal(&qr)
	if err != nil {
		t.Fatal(err)
	}
	if body != string(want)+"\n" {
		t.Fatalf("batch: streamed bytes diverge\n got: %q\nwant: %q", body, want)
	}
}

// TestStatsLabelCounters checks /v1/stats exposes the label-index
// section: the registered workflow serves from a label index, the
// attached view got its quotient labels built, and the footprint
// counters are live.
func TestStatsLabelCounters(t *testing.T) {
	ts, _ := bootRunServer(t)
	status, body := do(t, ts, http.MethodGet, "/v1/stats", "", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Labels.Workflows != 1 || st.Labels.Disabled != 0 {
		t.Fatalf("label workflows = %+v", st.Labels)
	}
	if st.Labels.Builds < 1 || st.Labels.ViewBuilds < 1 {
		t.Fatalf("label builds = %+v", st.Labels)
	}
	if st.Labels.Intervals <= 0 || st.Labels.MemoryBytes <= 0 {
		t.Fatalf("label footprint = %+v", st.Labels)
	}
	if st.Labels.Patches != 0 || st.Labels.Rebuilds != 0 {
		t.Fatalf("fresh registry must have no patches/rebuilds: %+v", st.Labels)
	}
}

// TestIngestNDJSONLineCapHTTP pins the over-long-line contract at the
// HTTP layer: a single NDJSON line longer than the ingest line cap is a
// typed bad_input, status 400. The default body cap equals the line cap
// (the compile-time tie in runs.go), so the body cap is raised here to
// let the line reach the ingest layer.
func TestIngestNDJSONLineCapHTTP(t *testing.T) {
	srv := New(engine.New(), WithMaxBodyBytes(4*runs.MaxNDJSONLineBytes))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	wf, _ := repo.Figure1()
	wfRaw, _ := json.Marshal(wf)
	body, _ := json.Marshal(map[string]any{"workflow": json.RawMessage(wfRaw)})
	if status, resp := do(t, ts, http.MethodPut, "/v1/workflows/phylo", string(body), ""); status != http.StatusOK {
		t.Fatalf("register: %d %s", status, resp)
	}

	line := strings.Repeat("a", runs.MaxNDJSONLineBytes+2)
	status, resp := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", line, "application/x-ndjson")
	if status != http.StatusBadRequest || !strings.Contains(resp, "bad_input") ||
		!strings.Contains(resp, "line cap") {
		t.Fatalf("over-long NDJSON line: %d %.200s", status, resp)
	}
	if status, resp := do(t, ts, http.MethodGet, "/v1/workflows/phylo/runs", "", ""); status != http.StatusOK ||
		!strings.Contains(resp, `"count":0`) {
		t.Fatalf("rejected stream must leave no runs: %d %s", status, resp)
	}
}

// TestIngestBatchHTTP covers the JSON-array batch ingest: one POST, all
// documents validated and journaled as a burst, RunListResponse back;
// a malformed array is a 422 with nothing ingested.
func TestIngestBatchHTTP(t *testing.T) {
	ts, _ := bootRunServer(t)

	batch := "[" + figure1HTTPRun("b1") + "," + figure1HTTPRun("b2") + "," + figure1HTTPRun("b3") + "]"
	status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", batch, "application/json")
	if status != http.StatusOK {
		t.Fatalf("batch ingest: %d %s", status, body)
	}
	var lr RunListResponse
	if err := json.Unmarshal([]byte(body), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Workflow != "phylo" || lr.Count != 3 || len(lr.Runs) != 3 || lr.Runs[1].Run != "b2" {
		t.Fatalf("batch response = %s", body)
	}

	// All-or-nothing: a batch with one bad document ingests none.
	bad := "[" + figure1HTTPRun("b4") + `,{"run":"b5"}]`
	if status, resp := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs", bad, "application/json"); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad batch: %d %s", status, resp)
	}
	if status, resp := do(t, ts, http.MethodGet, "/v1/workflows/phylo/runs", "", ""); status != http.StatusOK ||
		!strings.Contains(resp, `"count":3`) {
		t.Fatalf("failed batch must ingest nothing: %d %s", status, resp)
	}

	// A lineage query over a batch-ingested run answers normally.
	if status, resp := do(t, ts, http.MethodGet, "/v1/workflows/phylo/runs/b3/lineage?artifact=a8", "", ""); status != http.StatusOK {
		t.Fatalf("lineage over batch run: %d %s", status, resp)
	}
}
