package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"wolves/internal/core"
	"wolves/internal/engine"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// This file implements the live workflow resources: clients PUT a
// workflow (plus views) once, then POST cheap mutation batches instead
// of re-uploading the world. The registry keeps every attached view's
// soundness report permanently current via incremental closure
// maintenance and dirty-set revalidation, so the validate endpoint is a
// lookup, the mutate endpoint reports exactly which composites flipped,
// and the lineage endpoint contrasts view-level provenance with the
// exact task-level answer.

// --- wire types ---------------------------------------------------------------

// RegisterRequest is the body of PUT /v1/workflows/{id}.
type RegisterRequest struct {
	Workflow json.RawMessage `json:"workflow"`
	Views    []RegisterView  `json:"views,omitempty"`
}

// RegisterView names one view to attach at registration. ID defaults to
// the view document's own name.
type RegisterView struct {
	ID   string          `json:"id,omitempty"`
	View json.RawMessage `json:"view"`
}

// RegisterResponse is the body of a successful registration: the initial
// full report of every attached view (maintained incrementally from here
// on).
type RegisterResponse struct {
	ID      string                       `json:"id"`
	Version uint64                       `json:"version"`
	Reports map[string]*soundness.Report `json:"reports,omitempty"`
}

// WorkflowResource is the body of GET /v1/workflows/{id}.
type WorkflowResource struct {
	engine.WorkflowInfo
	Workflow json.RawMessage `json:"workflow"`
}

// WorkflowListResponse is the body of GET /v1/workflows: the metadata of
// every registered workflow, sorted by ID (documents stay behind the
// per-workflow GET).
type WorkflowListResponse struct {
	Count     int                   `json:"count"`
	Workflows []engine.WorkflowInfo `json:"workflows"`
}

// MutateRequest is the body of POST /v1/workflows/{id}/mutate.
type MutateRequest struct {
	Tasks     []MutateTask `json:"tasks,omitempty"`
	Edges     [][2]string  `json:"edges,omitempty"`
	IfVersion uint64       `json:"if_version,omitempty"`
}

// MutateTask is one task addition on the wire.
type MutateTask struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

// LiveReportResponse is the body of the view validate (and attach)
// endpoints: the maintained report plus the workflow version it
// reflects.
type LiveReportResponse struct {
	Version uint64            `json:"version"`
	Report  *soundness.Report `json:"report"`
}

// LiveCorrectRequest is the body of the live correct endpoint; an empty
// body means criterion "strong".
type LiveCorrectRequest struct {
	Criterion string `json:"criterion,omitempty"`
}

// LiveCorrectResponse pairs the correction with the workflow version it
// was computed against. The live view is not replaced; PUT the corrected
// view back to apply it.
type LiveCorrectResponse struct {
	Version uint64           `json:"version"`
	Correct *CorrectResponse `json:"correct"`
}

// LineageRequest is the body of the lineage endpoint.
type LineageRequest struct {
	Task string `json:"task"`
}

// --- handlers -----------------------------------------------------------------

// attachDecoded attaches a raw view document to lw, resolving the view
// ID (explicit, else the document's name). The returned version is the
// one the report was validated under.
func attachDecoded(ctx context.Context, lw *engine.LiveWorkflow, vid string, raw json.RawMessage) (*soundness.Report, uint64, error) {
	if len(raw) == 0 {
		return nil, 0, &engine.Error{Code: engine.ErrBadInput, Op: "attach", Message: "missing view"}
	}
	if vid == "" {
		var peek struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(raw, &peek); err != nil {
			return nil, 0, &engine.Error{Code: engine.ErrBadInput, Op: "attach", Message: err.Error(), Err: err}
		}
		vid = peek.Name
	}
	return lw.AttachViewCtx(ctx, vid, func(wf *workflow.Workflow) (*view.View, error) {
		return view.DecodeJSON(wf, bytes.NewReader(raw))
	})
}

func (s *Server) handleWorkflowPut(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Workflow) == 0 {
		writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "register", Message: "missing workflow"})
		return
	}
	wf, err := workflow.DecodeJSON(bytes.NewReader(req.Workflow))
	if err != nil {
		writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "register", Message: err.Error(), Err: err})
		return
	}
	// Decode every view against wf before registering, so a malformed
	// view rejects the whole request instead of leaving a half-attached
	// workflow. Register takes ownership of wf, and the prebuilt views
	// share its pointer, so the attach closures below hand them back
	// untouched.
	type pending struct {
		vid string
		v   *view.View
	}
	var attach []pending
	for i := range req.Views {
		rv := req.Views[i]
		if len(rv.View) == 0 {
			writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "register", Message: "views[] entry missing view"})
			return
		}
		v, err := view.DecodeJSON(wf, bytes.NewReader(rv.View))
		if err != nil {
			writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "register", Message: err.Error(), Err: err})
			return
		}
		vid := rv.ID
		if vid == "" {
			vid = v.Name()
		}
		if vid == "" {
			writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "register", Message: "view has neither id nor name"})
			return
		}
		attach = append(attach, pending{vid: vid, v: v})
	}
	lw, err := s.reg.RegisterCtx(r.Context(), r.PathValue("id"), wf)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := RegisterResponse{ID: lw.ID(), Version: lw.Version()}
	for _, p := range attach {
		pv := p.v
		rep, version, err := lw.AttachViewCtx(r.Context(), p.vid, func(*workflow.Workflow) (*view.View, error) { return pv, nil })
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Version = version
		if resp.Reports == nil {
			resp.Reports = make(map[string]*soundness.Report, len(attach))
		}
		resp.Reports[p.vid] = rep
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkflowList(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	infos := s.reg.Infos()
	if infos == nil {
		infos = []engine.WorkflowInfo{} // an empty registry lists as [], not null
	}
	writeJSON(w, http.StatusOK, WorkflowListResponse{Count: len(infos), Workflows: infos})
}

func (s *Server) handleWorkflowGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	info, snap, err := lw.Resource()
	if err != nil {
		writeError(w, err)
		return
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, WorkflowResource{WorkflowInfo: info, Workflow: raw})
}

func (s *Server) handleWorkflowDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if err := s.reg.DeleteCtx(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkflowMutate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req MutateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	m := engine.Mutation{Edges: req.Edges, IfVersion: req.IfVersion}
	for _, t := range req.Tasks {
		m.Tasks = append(m.Tasks, workflow.Task{ID: t.ID, Name: t.Name, Kind: t.Kind})
	}
	res, err := lw.MutateCtx(r.Context(), m)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleViewPut(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "attach", Message: err.Error(), Err: err})
		return
	}
	rep, version, err := attachDecoded(r.Context(), lw, r.PathValue("vid"), raw)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LiveReportResponse{Version: version, Report: rep})
}

func (s *Server) handleViewDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if err := lw.DetachViewCtx(r.Context(), r.PathValue("vid")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleViewValidate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	rep, version, err := lw.Report(r.PathValue("vid"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LiveReportResponse{Version: version, Report: rep})
}

func (s *Server) handleViewCorrect(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req LiveCorrectRequest
	if err := decodeLenientBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Criterion == "" {
		req.Criterion = "strong"
	}
	crit, err := core.ParseCriterion(req.Criterion)
	if err != nil {
		writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "correct", Message: err.Error(), Err: err})
		return
	}
	vc, rep, version, err := lw.Correct(r.Context(), r.PathValue("vid"), crit, nil)
	if err != nil {
		writeError(w, err)
		return
	}
	body, err := correctResponseBody(vc, rep)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LiveCorrectResponse{Version: version, Correct: body})
}

func (s *Server) handleViewLineage(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	lw, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req LineageRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	res, err := lw.Lineage(r.PathValue("vid"), req.Task)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// decodeLenientBody is decodeBody tolerating an empty body (endpoints
// whose request fields are all optional).
func decodeLenientBody(w http.ResponseWriter, r *http.Request, dst any) error {
	err := decodeBody(w, r, dst)
	if err != nil && errors.Is(err, io.EOF) {
		return nil
	}
	return err
}
