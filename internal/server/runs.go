package server

import (
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"wolves/internal/engine"
	"wolves/internal/runs"
)

// This file implements the provenance service endpoints: ingest real
// execution traces against registered workflows and query lineage over
// them at three levels (exact / view / audited), plus the daemon's
// observability endpoint.
//
//	POST /v1/workflows/{id}/runs                   ingest a run (JSON or NDJSON)
//	GET  /v1/workflows/{id}/runs                   list ingested runs
//	GET  /v1/workflows/{id}/runs/{rid}             run metadata
//	GET  /v1/workflows/{id}/runs/{rid}/lineage     ?artifact=…&level=exact|view|audited
//	                                               [&view=vid][&direction=ancestors|descendants][&witness=1]
//	POST /v1/workflows/{id}/runs/query             {"queries": [{…}, …]} (worker-pool batch)
//	GET  /v1/stats                                 cache / registry / run-store counters

// RunListResponse is the body of GET /v1/workflows/{id}/runs, and of a
// batch ingest (POST with a JSON array of run documents).
type RunListResponse struct {
	Workflow string         `json:"workflow"`
	Count    int            `json:"count"`
	Runs     []runs.RunInfo `json:"runs"`
}

// The NDJSON line cap and the request body cap are one limit: no line a
// client can legally upload is ever rejected by the cap alone, and no
// request can spill more than a body's worth into the line buffer. The
// zero-length array pair asserts the equality at compile time.
var (
	_ [runs.MaxNDJSONLineBytes - MaxBodyBytes]struct{}
	_ [MaxBodyBytes - runs.MaxNDJSONLineBytes]struct{}
)

// RunQueryRequest is the body of POST /v1/workflows/{id}/runs/query.
type RunQueryRequest struct {
	Queries []runs.Query `json:"queries"`
}

// RunQueryResponse carries per-query results in input order.
type RunQueryResponse struct {
	Results []runs.BatchResult `json:"results"`
}

// RegistryStats summarizes the live workflow registry for /v1/stats.
type RegistryStats struct {
	Workflows int               `json:"workflows"`
	Capacity  int               `json:"capacity"`
	Views     int               `json:"views"`
	Versions  map[string]uint64 `json:"versions"`
}

// RecoveryInfo is the boot-time recovery summary wolvesd hands the
// server (WithRecoveryInfo): what the store rebuilt, how, and how long
// it took. Surfaced under "recovery" in /v1/stats so operators can read
// it after the boot log has scrolled away; absent when the daemon runs
// without a data dir.
type RecoveryInfo struct {
	Workflows        int   `json:"workflows"`
	Views            int   `json:"views"`
	Snapshots        int   `json:"snapshots"`
	SnapshotsDropped int   `json:"snapshots_dropped"`
	Segments         int   `json:"segments"`
	RecordsReplayed  int64 `json:"records_replayed"`
	RecordsSkipped   int64 `json:"records_skipped"`
	Runs             int64 `json:"runs"`
	TornBytes        int64 `json:"torn_bytes"`
	Workers          int   `json:"workers"`
	WallMillis       int64 `json:"wall_millis"`
}

// BuildStats identifies the running binary and its runtime state for
// /v1/stats: the module version and VCS commit from the embedded build
// info, the Go toolchain, and the live goroutine count.
type BuildStats struct {
	Version    string `json:"version"`
	Commit     string `json:"commit"`
	GoVersion  string `json:"go_version"`
	Goroutines int    `json:"goroutines"`
}

// StatsResponse is the body of GET /v1/stats: the oracle cache's
// hit/miss/eviction/invalidation counters, the registry population with
// per-workflow versions, the run store's resident and lifetime counters
// (runs, artifacts, bytes journaled), the reachability label index's
// build/patch/memory counters, the build identity, and the boot-time
// recovery summary.
//
// Deprecation note: /v1/stats is a point-in-time JSON snapshot kept for
// humans and existing tooling. Time-series monitoring should scrape
// GET /metrics (Prometheus text exposition) instead; MetricsNote says
// so on the wire.
type StatsResponse struct {
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      int64             `json:"requests"`
	Workers       int               `json:"workers"`
	Cache         engine.CacheStats `json:"cache"`
	Health        engine.HealthInfo `json:"health"`
	Registry      RegistryStats     `json:"registry"`
	Runs          runs.Stats        `json:"runs"`
	Labels        engine.LabelStats `json:"labels"`
	Recovery      *RecoveryInfo     `json:"recovery,omitempty"`
	Build         BuildStats        `json:"build"`
	MetricsNote   string            `json:"metrics_note"`
}

// isNDJSON reports whether the request body is an NDJSON stream.
func isNDJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/x-ndjson" || mt == "application/ndjson" ||
		strings.HasSuffix(mt, "+ndjson")
}

func (s *Server) handleRunIngest(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	// Admission control: ingests journal and index whole traces, so they
	// are the expensive writes. Shed immediately when the configured
	// concurrency is saturated — a bounded 503 beats an unbounded queue
	// that takes the daemon down with it.
	select {
	case s.ingestSem <- struct{}{}:
		defer func() { <-s.ingestSem }()
	default:
		writeError(w, &engine.Error{Code: engine.ErrOverloaded, Op: "ingest",
			Message: "too many concurrent ingests; retry later"})
		return
	}
	var info *runs.RunInfo
	var err error
	if isNDJSON(r) {
		info, err = s.runs.IngestNDJSONCtx(r.Context(), id, r.Body)
	} else {
		var raw []byte
		raw, err = io.ReadAll(r.Body)
		if err != nil {
			writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "ingest", Message: err.Error(), Err: err})
			return
		}
		// A JSON array is a batch of run documents: validated
		// all-or-nothing and journaled as one group-commit burst.
		if body := bytes.TrimLeft(raw, " \t\r\n"); len(body) > 0 && body[0] == '[' {
			var docs []json.RawMessage
			if jerr := json.Unmarshal(body, &docs); jerr != nil {
				writeError(w, &engine.Error{Code: engine.ErrInvalidTrace, Op: "ingest",
					Message: "malformed run document batch: " + jerr.Error(), Err: jerr})
				return
			}
			batch := make([][]byte, len(docs))
			for i, d := range docs {
				batch[i] = d
			}
			infos, berr := s.runs.IngestBatchCtx(r.Context(), id, batch)
			if berr != nil {
				writeError(w, berr)
				return
			}
			writeJSON(w, http.StatusOK, RunListResponse{Workflow: id, Count: len(infos), Runs: infos})
			return
		}
		info, err = s.runs.IngestCtx(r.Context(), id, raw)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	infos, err := s.runs.Runs(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RunListResponse{Workflow: id, Count: len(infos), Runs: infos})
}

func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	info, err := s.runs.Info(r.PathValue("id"), r.PathValue("rid"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRunLineage(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	qs := r.URL.Query()
	q := runs.Query{
		Run:       r.PathValue("rid"),
		Artifact:  qs.Get("artifact"),
		Level:     qs.Get("level"),
		View:      qs.Get("view"),
		Direction: qs.Get("direction"),
	}
	switch qs.Get("witness") {
	case "", "0", "false":
	default:
		q.Witness = true
	}
	ans, err := s.runs.LineageCtx(r.Context(), r.PathValue("id"), q)
	if err != nil {
		writeError(w, err)
		return
	}
	// Stream the answer straight to the wire through the reusable
	// encoder: no reflection, no intermediate []byte per response. The
	// bytes (trailing newline included) are identical to what
	// writeJSON's json.Encoder would have produced.
	buf := encodeBufPool.Get().(*[]byte) //lint:allow poolret Put follows after the write below
	b := ans.AppendJSON((*buf)[:0])
	ans.Release()
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) // the status line is already out; nothing to salvage
	*buf = b
	encodeBufPool.Put(buf)
}

// encodeBufPool recycles response buffers for the streaming handlers.
var encodeBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func (s *Server) handleRunQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req RunQueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	// Width 0 defers to the run store's configured WithWorkers default
	// (seeded from the engine's width at construction).
	results, err := s.runs.LineageBatch(r.Context(), r.PathValue("id"), req.Queries, 0)
	if err != nil {
		writeError(w, err)
		return
	}
	// Stream the batch: answers go through the reusable encoder, the
	// rare error results through reflection (their shape is tiny).
	buf := encodeBufPool.Get().(*[]byte) //lint:allow poolret Put follows after the write below
	b := append((*buf)[:0], `{"results":[`...)
	for i := range results {
		if i > 0 {
			b = append(b, ',')
		}
		if a := results[i].Answer; a != nil {
			b = append(b, `{"answer":`...)
			b = a.AppendJSON(b)
			b = append(b, '}')
		} else {
			eb, merr := json.Marshal(results[i])
			if merr != nil {
				runs.ReleaseResults(results)
				encodeBufPool.Put(buf)
				writeError(w, merr)
				return
			}
			b = append(b, eb...)
		}
	}
	b = append(b, ']', '}', '\n')
	runs.ReleaseResults(results)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) // the status line is already out; nothing to salvage
	*buf = b
	encodeBufPool.Put(buf)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	infos := s.reg.Infos()
	rs := RegistryStats{
		Workflows: len(infos),
		Capacity:  s.reg.Capacity(),
		Versions:  make(map[string]uint64, len(infos)),
	}
	for _, info := range infos {
		rs.Versions[info.ID] = info.Version
		rs.Views += len(info.Views)
	}
	version, commit := buildInfo()
	writeJSON(w, http.StatusOK, StatsResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Workers:       s.eng.Workers(),
		Cache:         s.eng.CacheStats(),
		Health:        s.reg.Health(),
		Registry:      rs,
		Runs:          s.runs.Stats(),
		Labels:        s.reg.LabelStats(),
		Recovery:      s.recovery,
		Build: BuildStats{
			Version:    version,
			Commit:     commit,
			GoVersion:  runtime.Version(),
			Goroutines: runtime.NumGoroutine(),
		},
		MetricsNote: "point-in-time snapshot; scrape GET /metrics for time series",
	})
}
