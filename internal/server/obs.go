package server

// This file is the server's observability seam: the per-route
// middleware (trace root span, latency histogram, request counters by
// route × status class, slow-query log), the /metrics and /debug/traces
// endpoints, and the scrape-time collectors that read live subsystem
// stats (oracle cache, label index, run store, registry health) without
// those subsystems ever pushing.
//
// The middleware is allocation-conscious: with tracing sampled out a
// request pays two clock reads, a pooled status recorder and a handful
// of atomic bumps — nothing on the heap.

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"wolves/internal/obs"
)

// serverLog narrates cold-path server events (slow queries); the
// request hot path never logs.
var serverLog = obs.NewLogger("server")

// classNames are the status classes of wolves_http_requests_total.
var classNames = [4]string{"2xx", "3xx", "4xx", "5xx"}

// codeClass buckets an HTTP status into classNames.
func codeClass(status int) int {
	switch {
	case status < 300:
		return 0
	case status < 400:
		return 1
	case status < 500:
		return 2
	default:
		return 3
	}
}

// routeMetrics holds one route's pre-resolved counters. Series are
// minted once per process at mux construction; the hot path indexes a
// fixed array, it never renders or looks up a label.
type routeMetrics struct {
	classes [4]*obs.Counter
}

var (
	routeMu  sync.Mutex
	routeTab = map[string]*routeMetrics{}
)

// metricsForRoute mints (once per process) the route's counters. Two
// servers in one process share them — metrics are process-global.
func metricsForRoute(route string) *routeMetrics {
	routeMu.Lock()
	defer routeMu.Unlock()
	rm := routeTab[route]
	if rm == nil {
		rm = &routeMetrics{}
		for i, class := range classNames {
			rm.classes[i] = obs.Default.Counter("wolves_http_requests_total",
				"HTTP requests served, by route and status class.",
				obs.Label{Name: "route", Value: route},
				obs.Label{Name: "code", Value: class})
		}
		routeTab[route] = rm
	}
	return rm
}

// statusRecorder captures the response status for the route counters.
// Pooled: the wrapper must not cost the warm serve path an allocation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes so wrapping never disables them.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// instrument wraps one route's handler with the observability
// middleware: a root trace span when sampled, the request latency
// histogram, the per-route×class counter, and the slow-query log over
// the obs.SlowQueryThreshold. The duration is measured here — not on
// the span — so slow requests are caught whether or not they were
// sampled.
func instrument(route string, h http.Handler) http.Handler {
	rm := metricsForRoute(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, span := obs.StartSpan(r.Context(), "http", route)
		if span != nil {
			r = r.WithContext(ctx)
		}
		sr := recorderPool.Get().(*statusRecorder) //lint:allow poolret Put follows below; handlers never retain the wrapper
		sr.ResponseWriter, sr.status = w, http.StatusOK
		h.ServeHTTP(sr, r)
		status := sr.status
		sr.ResponseWriter = nil
		recorderPool.Put(sr)

		dur := time.Since(start)
		class := codeClass(status)
		span.SetAttr("class", classNames[class])
		span.End()
		rm.classes[class].Inc()
		obs.MHTTPLatency.Observe(dur.Seconds())
		if th := obs.SlowQueryThreshold(); th > 0 && dur >= th {
			obs.MSlowQueries.Inc()
			serverLog.Warn("slow request",
				"route", route, "status", status, "millis", dur.Milliseconds())
		}
	})
}

// buildInfo resolves the binary's version and VCS commit from the
// embedded build info; "unknown" when built without module or VCS
// stamps (go test binaries, bare go build in a dirty tree).
func buildInfo() (version, commit string) {
	version, commit = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			commit = kv.Value
		}
	}
	return
}

// bindCollectors registers the scrape-time series that read live
// subsystem stats. Collector rebinding replaces the previous function
// for the same series, so every Server constructed in a process (tests
// build many) re-points the series to itself — the one actually
// serving /metrics answers with its own state.
func (s *Server) bindCollectors() {
	d := obs.Default
	d.GaugeFunc("wolves_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	d.GaugeFunc("wolves_goroutines", "Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	version, commit := buildInfo()
	d.GaugeFunc("wolves_build_info", "Build metadata carried in labels; the value is always 1.",
		func() float64 { return 1 },
		obs.Label{Name: "version", Value: version},
		obs.Label{Name: "commit", Value: commit})

	// Oracle / audit cache: the engine keeps the counters, /metrics reads
	// them at scrape time.
	d.CounterFunc("wolves_oracle_cache_hits_total", "Oracle cache hits.",
		func() uint64 { return uint64(s.eng.CacheStats().Hits) })
	d.CounterFunc("wolves_oracle_cache_misses_total", "Oracle cache misses.",
		func() uint64 { return uint64(s.eng.CacheStats().Misses) })
	d.CounterFunc("wolves_oracle_cache_builds_total", "Oracle builds (cache fills).",
		func() uint64 { return uint64(s.eng.CacheStats().Builds) })
	d.CounterFunc("wolves_oracle_cache_evictions_total", "Oracle cache evictions.",
		func() uint64 { return uint64(s.eng.CacheStats().Evictions) })
	d.GaugeFunc("wolves_oracle_cache_entries", "Resident oracle cache entries.",
		func() float64 { return float64(s.eng.CacheStats().Size) })

	// Reachability label index, summed over resident workflows.
	d.CounterFunc("wolves_label_index_builds_total", "Task-level label index full builds.",
		func() uint64 { return uint64(s.reg.LabelStats().Builds) })
	d.CounterFunc("wolves_label_index_rebuilds_total", "Label rebuilds forced past the patch damage threshold.",
		func() uint64 { return uint64(s.reg.LabelStats().Rebuilds) })
	d.CounterFunc("wolves_label_index_patches_total", "Incremental label edge patches.",
		func() uint64 { return uint64(s.reg.LabelStats().Patches) })
	d.CounterFunc("wolves_label_index_view_builds_total", "View-level (quotient) label builds.",
		func() uint64 { return uint64(s.reg.LabelStats().ViewBuilds) })
	d.GaugeFunc("wolves_label_index_memory_bytes", "Resident label index footprint, task and view level.",
		func() float64 { return float64(s.reg.LabelStats().MemoryBytes) })
	d.GaugeFunc("wolves_label_index_workflows", "Workflows serving lock-free from a label index.",
		func() float64 { return float64(s.reg.LabelStats().Workflows) })

	// Registry population and degraded-mode health.
	d.GaugeFunc("wolves_live_workflows", "Workflows resident in the live registry.",
		func() float64 { return float64(s.reg.Len()) })
	d.GaugeFunc("wolves_degraded", "1 while the registry is in degraded read-only mode.",
		func() float64 {
			if s.reg.Degraded() {
				return 1
			}
			return 0
		})
	d.GaugeFunc("wolves_degraded_seconds", "Seconds the current degradation has lasted; 0 when healthy.",
		func() float64 { return s.reg.Health().DegradedSeconds })
	d.CounterFunc("wolves_journal_probes_total", "Journal reopen probes while degraded.",
		func() uint64 { return uint64(s.reg.Health().Probes) })

	// Run store residency (lifetime ingest counters live in obs.MIngest*).
	d.GaugeFunc("wolves_runs_resident", "Run documents resident across all workflows.",
		func() float64 { return float64(s.runs.Stats().Runs) })
	d.GaugeFunc("wolves_run_doc_bytes", "Canonical run document bytes resident.",
		func() float64 { return float64(s.runs.Stats().DocBytes) })
}
