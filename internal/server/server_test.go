package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"wolves/internal/core"
	"wolves/internal/engine"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

func newTestServer(t *testing.T) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng := engine.New()
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

// rawPair marshals a workflow and view into request-ready raw JSON.
func rawPair(t *testing.T, wf *workflow.Workflow, v *view.View) (json.RawMessage, json.RawMessage) {
	t.Helper()
	wfj, err := json.Marshal(wf)
	if err != nil {
		t.Fatal(err)
	}
	vj, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return wfj, vj
}

func postJSON(t *testing.T, url string, body any, dst any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// TestValidateRoundTripFigure1 pins the acceptance criterion: wolvesd
// round-trips the Figure 1 repository entry over HTTP with the same
// Report as the in-process path.
func TestValidateRoundTripFigure1(t *testing.T) {
	eng, ts := newTestServer(t)
	wf, v := repo.Figure1()

	want, err := eng.Validate(context.Background(), wf, v)
	if err != nil {
		t.Fatal(err)
	}

	wfj, vj := rawPair(t, wf, v)
	var got ValidateResponse
	resp := postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Workflow: wfj, View: vj}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !reflect.DeepEqual(got.Report, want) {
		t.Fatalf("HTTP report differs from in-process report:\nhttp: %+v\nproc: %+v", got.Report, want)
	}
	if got.Report.Sound {
		t.Fatal("figure 1 view must be unsound")
	}
}

// TestCorrectOverHTTP repairs Figure 1 over the wire and cross-checks
// against the in-process correction.
func TestCorrectOverHTTP(t *testing.T) {
	eng, ts := newTestServer(t)
	wf, v := repo.Figure1()
	wfj, vj := rawPair(t, wf, v)

	var got CorrectResponse
	resp := postJSON(t, ts.URL+"/v1/correct",
		CorrectRequest{Workflow: wfj, View: vj, Criterion: "strong"}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !got.Report.Sound {
		t.Fatalf("corrected view must be sound: %+v", got.Report)
	}
	if got.CompositesAfter <= got.CompositesBefore {
		t.Fatalf("correction must split: %d → %d", got.CompositesBefore, got.CompositesAfter)
	}
	// The corrected view decodes against the workflow and matches the
	// in-process correction composite-for-composite.
	corrected, err := view.DecodeJSON(wf, bytes.NewReader(got.CorrectedView))
	if err != nil {
		t.Fatal(err)
	}
	vc, err := eng.Correct(context.Background(), wf, v, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if corrected.N() != vc.Corrected.N() {
		t.Fatalf("HTTP correction has %d composites, in-process %d", corrected.N(), vc.Corrected.N())
	}
	rep := soundness.ValidateView(eng.Oracle(wf), corrected)
	if !rep.Sound {
		t.Fatal("decoded corrected view must validate sound")
	}
}

// TestBatchEndpoint mixes validate and correct jobs, including a broken
// one, and checks per-job isolation plus oracle-cache reuse.
func TestBatchEndpoint(t *testing.T) {
	eng, ts := newTestServer(t)
	wf, v := repo.Figure1()
	wfj, vj := rawPair(t, wf, v)

	req := BatchRequest{Jobs: []BatchJob{
		{Op: "validate", Workflow: wfj, View: vj},
		{Op: "correct", Workflow: wfj, View: vj, Criterion: "weak"},
		{Op: "nonsense", Workflow: wfj, View: vj},
		{Op: "validate", Workflow: wfj, View: vj},
	}}
	var got BatchResponse
	resp := postJSON(t, ts.URL+"/v1/batch", req, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got.Results) != 4 {
		t.Fatalf("got %d results", len(got.Results))
	}
	if got.Results[0].Report == nil || got.Results[0].Report.Sound {
		t.Fatalf("job 0: %+v", got.Results[0])
	}
	if got.Results[1].Correct == nil || !got.Results[1].Correct.Report.Sound {
		t.Fatalf("job 1: %+v", got.Results[1])
	}
	if got.Results[2].Error == nil || got.Results[2].Error.Code != engine.ErrBadInput {
		t.Fatalf("job 2: %+v", got.Results[2])
	}
	if got.Results[3].Report == nil {
		t.Fatalf("job 3: %+v", got.Results[3])
	}
	// All four jobs target one workflow: exactly one closure build.
	if s := eng.CacheStats(); s.Builds != 1 {
		t.Fatalf("batch over one workflow must build once: %+v", s)
	}
}

// TestHTTPErrors exercises status mapping and malformed input.
func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t)
	wf, v := repo.Figure1()
	wfj, vj := rawPair(t, wf, v)

	// Malformed body.
	resp, err := http.Post(ts.URL+"/v1/validate", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d", resp.StatusCode)
	}

	// Missing view.
	var er struct {
		Error *engine.Error `json:"error"`
	}
	resp = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Workflow: wfj}, &er)
	if resp.StatusCode != http.StatusBadRequest || er.Error == nil || er.Error.Code != engine.ErrBadInput {
		t.Fatalf("missing view: status=%d body=%+v", resp.StatusCode, er)
	}

	// Unknown criterion.
	resp = postJSON(t, ts.URL+"/v1/correct",
		CorrectRequest{Workflow: wfj, View: vj, Criterion: "fastest"}, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad criterion: status = %d", resp.StatusCode)
	}

	// Method not allowed on the POST-only routes.
	getResp, err := http.Get(ts.URL + "/v1/validate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/validate: status = %d", getResp.StatusCode)
	}
}

// TestHealthz checks the daemon's liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers < 1 || h.Cache.Capacity < 1 {
		t.Fatalf("health = %+v", h)
	}
}
