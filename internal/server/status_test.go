package server

import (
	"net/http"
	"testing"

	"wolves/internal/engine"
)

// TestStatusForCoversEveryCode iterates every declared engine.Code and
// asserts it maps to an intentional HTTP status: only ErrInternal may
// surface as 500. Together with the errcode analyzer (which fails the
// build if the statusFor switch misses a declared code) this pins the
// code↔status table: a new engine code cannot ship as an accidental
// internal error.
func TestStatusForCoversEveryCode(t *testing.T) {
	want := map[engine.Code]int{
		engine.ErrBadInput:         http.StatusBadRequest,
		engine.ErrUnknownTask:      http.StatusBadRequest,
		engine.ErrUnknownComposite: http.StatusBadRequest,
		engine.ErrWorkflowMismatch: http.StatusBadRequest,
		engine.ErrUnknownWorkflow:  http.StatusNotFound,
		engine.ErrUnknownView:      http.StatusNotFound,
		engine.ErrUnknownRun:       http.StatusNotFound,
		engine.ErrUnknownArtifact:  http.StatusNotFound,
		engine.ErrVersionConflict:  http.StatusConflict,
		engine.ErrOptimalLimit:     http.StatusUnprocessableEntity,
		engine.ErrCycleRejected:    http.StatusUnprocessableEntity,
		engine.ErrInvalidTrace:     http.StatusUnprocessableEntity,
		engine.ErrCanceled:         http.StatusGatewayTimeout,
		engine.ErrDegraded:         http.StatusServiceUnavailable,
		engine.ErrOverloaded:       http.StatusServiceUnavailable,
		engine.ErrInternal:         http.StatusInternalServerError,
	}

	codes := engine.Codes()
	if len(codes) != len(want) {
		t.Fatalf("engine declares %d codes, test table has %d; update the table", len(codes), len(want))
	}
	for _, code := range codes {
		expect, ok := want[code]
		if !ok {
			t.Errorf("code %q has no expected status in the test table", code)
			continue
		}
		got := statusFor(&engine.Error{Code: code, Message: "x"})
		if got != expect {
			t.Errorf("statusFor(%q) = %d, want %d", code, got, expect)
		}
		if code != engine.ErrInternal && got == http.StatusInternalServerError {
			t.Errorf("code %q surfaces as 500; every non-internal code needs an intentional status", code)
		}
	}

	// Codes from the future (or corrupted errors) are server faults.
	if got := statusFor(&engine.Error{Code: "no_such_code", Message: "x"}); got != http.StatusInternalServerError {
		t.Errorf("statusFor(unknown) = %d, want 500", got)
	}
}
