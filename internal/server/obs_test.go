package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wolves/internal/obs"
)

// setSampleN flips the process-global trace sampling for one test and
// returns the restore.
func setSampleN(t *testing.T, n int64) func() {
	t.Helper()
	prev := obs.DefaultTracer.SampleN()
	obs.DefaultTracer.SetSampleN(n)
	return func() { obs.DefaultTracer.SetSampleN(prev) }
}

// TestStatsBuildInfo pins the PR 10 additions to /v1/stats: the build
// section (version/commit from the embedded build info, the toolchain,
// a live goroutine count) and the deprecation note pointing time-series
// consumers at /metrics — without disturbing the existing fields.
func TestStatsBuildInfo(t *testing.T) {
	ts, _ := bootRunServer(t)
	status, body := do(t, ts, http.MethodGet, "/v1/stats", "", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	// Test binaries carry no module version or VCS stamp; the fields
	// must still be present and non-empty ("unknown" fallbacks).
	if st.Build.Version == "" || st.Build.Commit == "" {
		t.Fatalf("build identity missing: %+v", st.Build)
	}
	if !strings.HasPrefix(st.Build.GoVersion, "go") {
		t.Fatalf("go_version = %q", st.Build.GoVersion)
	}
	if st.Build.Goroutines < 1 {
		t.Fatalf("goroutines = %d", st.Build.Goroutines)
	}
	if !strings.Contains(st.MetricsNote, "/metrics") {
		t.Fatalf("metrics_note must point at /metrics: %q", st.MetricsNote)
	}
	// Byte-level compat: the raw body still carries every pre-PR-10 key.
	for _, key := range []string{`"status"`, `"uptime_seconds"`, `"requests"`, `"workers"`,
		`"cache"`, `"health"`, `"registry"`, `"runs"`, `"labels"`, `"build"`, `"metrics_note"`} {
		if !strings.Contains(body, key) {
			t.Fatalf("stats body lost %s: %s", key, body)
		}
	}
}

// TestMetricsEndpoint drives a real request through the instrumented
// mux and asserts /metrics serves Prometheus text exposition with the
// route counters, the latency histogram and the scrape-time collectors
// live.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := bootRunServer(t)
	if status, body := do(t, ts, http.MethodGet, "/v1/stats", "", ""); status != http.StatusOK {
		t.Fatalf("warm request: %d %s", status, body)
	}
	status, body := do(t, ts, http.MethodGet, "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d %s", status, body)
	}
	for _, want := range []string{
		"# TYPE wolves_http_requests_total counter",
		`wolves_http_requests_total{code="2xx",route="GET /v1/stats"}`,
		"# TYPE wolves_http_request_seconds histogram",
		`wolves_http_request_seconds_bucket{le="+Inf"}`,
		"wolves_http_request_seconds_count",
		`wolves_lineage_queries_total{level="audited"}`,
		"wolves_live_workflows 1",
		"wolves_goroutines",
		"wolves_build_info{",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestTraceTailEndpoint turns sampling on, serves one request and reads
// it back from /debug/traces.
func TestTraceTailEndpoint(t *testing.T) {
	ts, _ := bootRunServer(t)
	restore := setSampleN(t, 1)
	defer restore()
	if status, _ := do(t, ts, http.MethodGet, "/v1/workflows", "", ""); status != http.StatusOK {
		t.Fatal("traced request failed")
	}
	status, body := do(t, ts, http.MethodGet, "/debug/traces?n=16", "", "")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces: %d %s", status, body)
	}
	var tail struct {
		SampleN int64 `json:"sample_n"`
		Spans   []struct {
			Component string `json:"component"`
			Name      string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &tail); err != nil {
		t.Fatalf("trace tail is not JSON: %v\n%s", err, body)
	}
	if tail.SampleN != 1 {
		t.Fatalf("sample_n = %d", tail.SampleN)
	}
	found := false
	for _, sp := range tail.Spans {
		if sp.Component == "http" && sp.Name == "GET /v1/workflows" {
			found = true
		}
	}
	if !found {
		t.Fatalf("traced request not in tail: %s", body)
	}
}
