package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wolves/internal/engine"
	"wolves/internal/runs"
	"wolves/internal/storage"
	"wolves/internal/storage/vfs"
)

// bootDurableServer starts an httptest server whose registry journals to
// a Store running over a FaultFS, so tests can break the disk underneath
// the daemon and watch it degrade, shed writes, keep serving queries,
// and auto-recover — the wire-level face of the robustness tentpole.
func bootDurableServer(t *testing.T) (*httptest.Server, *Server, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFault(vfs.OS())
	eng := engine.New()
	reg := engine.NewRegistry(eng,
		engine.WithProbeBackoff(2*time.Millisecond, 20*time.Millisecond))
	runStore := runs.New(reg, runs.WithWorkers(eng.Workers()))
	// SnapshotEvery 1 routes every commit through the snapshot tmp+rename
	// path, the site the tests fault.
	store, err := storage.Open(t.TempDir(), storage.Options{
		FS: ffs, Fsync: storage.FsyncNone, SnapshotEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	store.SetRunProvider(runStore)
	reg.SetJournal(store)
	runStore.SetJournal(store)

	srv := New(eng, WithRegistry(reg), WithRunStore(runStore))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	wf, v := preFigure1(t)
	wfj, vj := rawPair(t, wf, v)
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/workflows/phylo", RegisterRequest{
		Workflow: wfj,
		Views:    []RegisterView{{View: vj}},
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	return ts, srv, ffs
}

// TestDegradedModeOverHTTP drives the full outage arc over the wire:
// healthy /readyz → snapshot rename faults → mutation comes back 503
// degraded with Retry-After → queries serve byte-identical reports and
// ingests are rejected atomically → faults clear → /readyz flips back
// healthy and writes flow, with the transition counted in /v1/stats.
func TestDegradedModeOverHTTP(t *testing.T) {
	ts, _, ffs := bootDurableServer(t)
	base := ts.URL + "/v1/workflows/phylo"

	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while healthy: %d", resp.StatusCode)
	}

	// Break every rename: the snapshot tmp file can be written but never
	// published, which (after the store's capped retries) fails the store.
	ffs.Deny(vfs.OpRename, vfs.Fault{})
	var errBody errorResponse
	resp := doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Edges: [][2]string{{"3", "4"}}}, &errBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate on broken disk: %d, want 503", resp.StatusCode)
	}
	if errBody.Error == nil || errBody.Error.Code != engine.ErrDegraded {
		t.Fatalf("mutate error body: %+v", errBody.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 degraded response missing Retry-After")
	}

	// /readyz flips to 503 degraded (load balancers stop routing) while
	// /healthz stays 200 (the process is alive and serving reads).
	var ready ReadyResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &ready)
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Status != engine.HealthDegraded {
		t.Fatalf("readyz while degraded: %d %+v", resp.StatusCode, ready)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded readyz missing Retry-After")
	}
	if resp = doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while degraded: %d", resp.StatusCode)
	}

	// Queries keep serving from memory, byte-identical across reads: the
	// degraded registry never serves wrong (or flapping) lineage.
	readReport := func() string {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/views/fig1b/validate", nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		raw, err := io.ReadAll(r.Body)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("validate while degraded: %d %v", r.StatusCode, err)
		}
		return string(raw)
	}
	first := readReport()
	for i := 0; i < 3; i++ {
		if got := readReport(); got != first {
			t.Fatalf("degraded reads diverge:\n%s\nvs\n%s", first, got)
		}
	}

	// Writes are gated before touching state: mutation, ingest, delete all
	// come back typed degraded, and no partial run is recorded.
	resp = doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Edges: [][2]string{{"4", "5"}}}, &errBody)
	if resp.StatusCode != http.StatusServiceUnavailable || errBody.Error.Code != engine.ErrDegraded {
		t.Fatalf("gated mutate: %d %+v", resp.StatusCode, errBody.Error)
	}
	status, body := do(t, ts, http.MethodPost, base[len(ts.URL):]+"/runs",
		`{"run":"r1","artifacts":[{"id":"a1","generated_by":"1"}]}`, "")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("ingest while degraded: %d %s", status, body)
	}
	status, body = do(t, ts, http.MethodGet, base[len(ts.URL):]+"/runs", "", "")
	if status != http.StatusOK || !strings.Contains(body, `"count":0`) {
		t.Fatalf("degraded ingest left a partial run: %d %s", status, body)
	}

	// Heal the disk: the probe loop reopens the journal, resyncs, and the
	// daemon advertises ready again — no restart, no operator.
	ffs.Allow(vfs.OpRename)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &ready)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never recovered: %d %+v", resp.StatusCode, ready)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Writes flow again and the outage is visible in /v1/stats.
	resp = doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Edges: [][2]string{{"4", "5"}}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate after recovery: %d", resp.StatusCode)
	}
	status, body = do(t, ts, http.MethodPost, base[len(ts.URL):]+"/runs",
		`{"run":"r1","artifacts":[{"id":"a1","generated_by":"1"}]}`, "")
	if status != http.StatusOK {
		t.Fatalf("ingest after recovery: %d %s", status, body)
	}
	var stats StatsResponse
	if resp = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if stats.Health.Status != engine.HealthHealthy || stats.Health.Degradations != 1 ||
		stats.Health.Recoveries != 1 || stats.Health.Probes == 0 || stats.Health.LastError == "" {
		t.Fatalf("stats health after the outage: %+v", stats.Health)
	}
}

// TestReadyzDraining pins the shutdown signal: StartDraining flips
// /readyz to 503 "draining" while request handlers keep working.
func TestReadyzDraining(t *testing.T) {
	srv := New(engine.New())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	srv.StartDraining()
	var ready ReadyResponse
	resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &ready)
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Status != "draining" {
		t.Fatalf("readyz while draining: %d %+v", resp.StatusCode, ready)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz missing Retry-After")
	}
	if resp = doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
}

// TestIngestAdmissionControl saturates the ingest semaphore and expects
// the next ingest to be shed with 503 overloaded + Retry-After instead
// of queueing.
func TestIngestAdmissionControl(t *testing.T) {
	srv := New(engine.New(), WithIngestConcurrency(1))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	wf, v := preFigure1(t)
	wfj, vj := rawPair(t, wf, v)
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/workflows/phylo", RegisterRequest{
		Workflow: wfj, Views: []RegisterView{{View: vj}},
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d", resp.StatusCode)
	}

	// Hold the only slot, as a stuck in-flight ingest would.
	srv.ingestSem <- struct{}{}
	status, body := do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs",
		`{"run":"r1","artifacts":[{"id":"a1","generated_by":"1"}]}`, "")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "overloaded") {
		t.Fatalf("saturated ingest: %d %s", status, body)
	}
	<-srv.ingestSem
	status, body = do(t, ts, http.MethodPost, "/v1/workflows/phylo/runs",
		`{"run":"r1","artifacts":[{"id":"a1","generated_by":"1"}]}`, "")
	if status != http.StatusOK {
		t.Fatalf("ingest after slot freed: %d %s", status, body)
	}
}

// errAfterReader yields its prefix, then fails with a transport error —
// a client that died mid-upload.
type errAfterReader struct {
	data []byte
	off  int
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("connection reset mid-stream")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestNDJSONMidStreamReadError injects a read failure halfway through an
// NDJSON upload and requires atomic ingest-or-nothing: a 4xx reply and
// zero runs recorded.
func TestNDJSONMidStreamReadError(t *testing.T) {
	srv := New(engine.New())
	handler := srv.Handler()
	wf, v := preFigure1(t)
	wfj, vj := rawPair(t, wf, v)
	regBody, err := json.Marshal(RegisterRequest{Workflow: wfj, Views: []RegisterView{{View: vj}}})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/v1/workflows/phylo",
		strings.NewReader(string(regBody))))
	if rec.Code != http.StatusOK {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}

	// Two complete lines arrive, then the stream dies.
	nd := "{\"run\":\"r1\"}\n{\"artifact\":{\"id\":\"a1\",\"generated_by\":\"1\"}}\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/workflows/phylo/runs",
		io.NopCloser(&errAfterReader{data: []byte(nd)}))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "bad_input") {
		t.Fatalf("mid-stream read error: %d %s", rec.Code, rec.Body.String())
	}

	// Nothing was ingested: the accumulate-then-commit ingest leaves no
	// partial run behind a failed stream.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workflows/phylo/runs", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"count":0`) {
		t.Fatalf("partial run after failed stream: %d %s", rec.Code, rec.Body.String())
	}

	// The same ingest with an intact stream succeeds — the trace itself
	// was never the problem.
	req = httptest.NewRequest(http.MethodPost, "/v1/workflows/phylo/runs", strings.NewReader(nd))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("intact re-ingest: %d %s", rec.Code, rec.Body.String())
	}
}
