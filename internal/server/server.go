// Package server exposes a wolves Engine over HTTP: the wolvesd wire
// protocol. Requests carry the workflow and view inline as the same JSON
// documents the CLI reads from disk; responses carry the exact Report /
// correction structures of the in-process API, so an HTTP round-trip and
// a direct Engine call are interchangeable. The Engine's oracle cache
// makes the serving story scale: the first request for a workflow builds
// its reachability closure, every later request (same fingerprint) only
// pays the per-view validation.
//
// Stateless endpoints (workflow and view travel in every request):
//
//	POST /v1/validate  {"workflow": …, "view": …}
//	POST /v1/correct   {"workflow": …, "view": …, "criterion": "strong"}
//	POST /v1/batch     {"jobs": [{"op": "validate"|"correct", …}, …]}
//	GET  /healthz
//
// Live workflow resources (upload once, pay only deltas; see registry.go):
//
//	GET    /v1/workflows                           enumerate registered workflows
//	PUT    /v1/workflows/{id}                      {"workflow": …, "views": [{"id": …, "view": …}]}
//	GET    /v1/workflows/{id}
//	DELETE /v1/workflows/{id}
//	POST   /v1/workflows/{id}/mutate               {"tasks": […], "edges": [["a","b"], …], "if_version": n}
//	PUT    /v1/workflows/{id}/views/{vid}          <view JSON document>
//	DELETE /v1/workflows/{id}/views/{vid}
//	POST   /v1/workflows/{id}/views/{vid}/validate
//	POST   /v1/workflows/{id}/views/{vid}/correct  {"criterion": "strong"}
//	POST   /v1/workflows/{id}/views/{vid}/lineage  {"task": "8"}
//
// Provenance runs (see runs.go: ingest execution traces, query lineage):
//
//	POST /v1/workflows/{id}/runs                   ingest (JSON or NDJSON)
//	GET  /v1/workflows/{id}/runs                   list runs
//	GET  /v1/workflows/{id}/runs/{rid}             run metadata
//	GET  /v1/workflows/{id}/runs/{rid}/lineage     ?artifact=…&level=exact|view|audited
//	POST /v1/workflows/{id}/runs/query             batch lineage queries
//	GET  /v1/stats                                 observability counters
//
// Observability (see internal/obs and obs.go):
//
//	GET  /metrics                                  Prometheus text exposition
//	GET  /debug/traces                             recent trace spans (JSON tail)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wolves/internal/core"
	"wolves/internal/engine"
	"wolves/internal/obs"
	"wolves/internal/runs"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// MaxBodyBytes caps request bodies; a million-user service does not read
// unbounded uploads into memory.
const MaxBodyBytes = 8 << 20

// DefaultRequestTimeout bounds how long any single request may run
// before its context is canceled; see WithRequestTimeout.
const DefaultRequestTimeout = 30 * time.Second

// retryAfterSeconds is the Retry-After hint attached to 503 responses
// (degraded registry, shed load, draining). Clients with backoff of
// their own can ignore it; dumb retry loops get a sane floor.
const retryAfterSeconds = "1"

// Server wires an Engine, a live workflow Registry and a run store to
// the HTTP endpoints.
type Server struct {
	eng      *engine.Engine
	reg      *engine.Registry
	runs     *runs.Store
	start    time.Time
	requests atomic.Int64

	// Load-shedding knobs (see the With* options) and the draining flag
	// flipped by StartDraining during graceful shutdown.
	maxBody    int64
	reqTimeout time.Duration
	ingestSem  chan struct{}
	draining   atomic.Bool

	// recovery is the boot-time recovery summary (WithRecoveryInfo);
	// nil when the daemon runs without a data dir.
	recovery *RecoveryInfo
}

// Option configures a Server at construction time.
type Option func(*Server)

// WithRegistry supplies a pre-built live workflow registry (wolvesd uses
// it to apply the -live-workflows capacity flag). The default is a
// registry with engine.DefaultRegistryCapacity.
func WithRegistry(reg *engine.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithRunStore supplies a pre-built run store (wolvesd uses it to wire
// the durable journal). The default is an in-memory store over the
// server's registry.
func WithRunStore(rs *runs.Store) Option {
	return func(s *Server) { s.runs = rs }
}

// WithRequestTimeout bounds every request's context: handlers observe
// the deadline through r.Context() and return 504 when it expires. Zero
// or negative disables the bound (tests use this); the default is
// DefaultRequestTimeout.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithMaxBodyBytes overrides the request body cap (default MaxBodyBytes).
// Non-positive values keep the default.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithRecoveryInfo surfaces the boot-time recovery summary under
// "recovery" in /v1/stats. wolvesd passes the stats of the RecoverWithRuns
// call it booted from; nil (the default) omits the field.
func WithRecoveryInfo(info *RecoveryInfo) Option {
	return func(s *Server) { s.recovery = info }
}

// WithIngestConcurrency caps how many run-ingest requests may be in
// flight at once; excess requests are shed with a typed overloaded
// error (503 + Retry-After) instead of queueing unboundedly behind the
// journal. Non-positive values keep the default of max(2, engine
// workers).
func WithIngestConcurrency(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.ingestSem = make(chan struct{}, n)
		}
	}
}

// New wraps eng in a Server.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, start: time.Now(),
		maxBody: MaxBodyBytes, reqTimeout: DefaultRequestTimeout}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = engine.NewRegistry(eng)
	}
	if s.runs == nil {
		s.runs = runs.New(s.reg, runs.WithWorkers(eng.Workers()))
	}
	if s.ingestSem == nil {
		n := eng.Workers()
		if n < 2 {
			n = 2
		}
		s.ingestSem = make(chan struct{}, n)
	}
	s.bindCollectors()
	return s
}

// StartDraining flips /readyz to 503 so load balancers stop routing new
// traffic here while in-flight requests finish. wolvesd calls it on
// SIGTERM before closing the listener. Query and mutation handlers keep
// working during the drain; only the readiness signal changes.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Handler returns the wolvesd route table wrapped in the server's
// middleware: every route carries the observability wrapper (trace
// span, latency histogram, request counters, slow-query log — see
// obs.go), and every request gets a context deadline
// (WithRequestTimeout) and a body size cap (WithMaxBodyBytes) before a
// handler sees it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, instrument(pattern, h))
	}
	handle("POST /v1/validate", s.handleValidate)
	handle("POST /v1/correct", s.handleCorrect)
	handle("POST /v1/batch", s.handleBatch)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /readyz", s.handleReadyz)
	handle("GET /v1/workflows", s.handleWorkflowList)
	handle("PUT /v1/workflows/{id}", s.handleWorkflowPut)
	handle("GET /v1/workflows/{id}", s.handleWorkflowGet)
	handle("DELETE /v1/workflows/{id}", s.handleWorkflowDelete)
	handle("POST /v1/workflows/{id}/mutate", s.handleWorkflowMutate)
	handle("PUT /v1/workflows/{id}/views/{vid}", s.handleViewPut)
	handle("DELETE /v1/workflows/{id}/views/{vid}", s.handleViewDelete)
	handle("POST /v1/workflows/{id}/views/{vid}/validate", s.handleViewValidate)
	handle("POST /v1/workflows/{id}/views/{vid}/correct", s.handleViewCorrect)
	handle("POST /v1/workflows/{id}/views/{vid}/lineage", s.handleViewLineage)
	handle("POST /v1/workflows/{id}/runs", s.handleRunIngest)
	handle("GET /v1/workflows/{id}/runs", s.handleRunList)
	handle("GET /v1/workflows/{id}/runs/{rid}", s.handleRunGet)
	handle("GET /v1/workflows/{id}/runs/{rid}/lineage", s.handleRunLineage)
	handle("POST /v1/workflows/{id}/runs/query", s.handleRunQuery)
	handle("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", instrument("GET /metrics", obs.Default.Handler()))
	mux.Handle("GET /debug/traces", instrument("GET /debug/traces", obs.DefaultTracer.Handler()))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		if s.reqTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		mux.ServeHTTP(w, r)
	})
}

// --- wire types ---------------------------------------------------------------

// ValidateRequest is the body of POST /v1/validate.
type ValidateRequest struct {
	Workflow json.RawMessage `json:"workflow"`
	View     json.RawMessage `json:"view"`
}

// ValidateResponse carries the in-process Report verbatim.
type ValidateResponse struct {
	Report *soundness.Report `json:"report"`
}

// CorrectRequest is the body of POST /v1/correct.
type CorrectRequest struct {
	Workflow  json.RawMessage `json:"workflow"`
	View      json.RawMessage `json:"view"`
	Criterion string          `json:"criterion,omitempty"` // default "strong"
}

// TaskSummary summarizes one composite repair on the wire.
type TaskSummary struct {
	CompositeID string `json:"composite_id"`
	Before      int    `json:"before"`
	After       int    `json:"after"`
	SoundChecks int    `json:"sound_checks"`
	Merges      int    `json:"merges"`
}

// CorrectResponse is the body of a successful correction.
type CorrectResponse struct {
	Criterion        string          `json:"criterion"`
	CompositesBefore int             `json:"composites_before"`
	CompositesAfter  int             `json:"composites_after"`
	Tasks            []TaskSummary   `json:"tasks,omitempty"`
	CorrectedView    json.RawMessage `json:"corrected_view"`
	// Report re-validates the corrected view (always sound; included so
	// clients need no second round-trip to show the diagnosis).
	Report *soundness.Report `json:"report"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Jobs []BatchJob `json:"jobs"`
}

// BatchJob is one unit of batch work.
type BatchJob struct {
	Op        string          `json:"op"` // "validate" | "correct"
	Workflow  json.RawMessage `json:"workflow"`
	View      json.RawMessage `json:"view"`
	Criterion string          `json:"criterion,omitempty"`
}

// BatchResult is the per-job outcome; exactly one of Error, Report, or
// Correct is set.
type BatchResult struct {
	Error   *engine.Error     `json:"error,omitempty"`
	Report  *soundness.Report `json:"report,omitempty"`
	Correct *CorrectResponse  `json:"correct,omitempty"`
}

// BatchResponse is the body of POST /v1/batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      int64             `json:"requests"`
	Workers       int               `json:"workers"`
	Cache         engine.CacheStats `json:"cache"`
	LiveWorkflows int               `json:"live_workflows"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error *engine.Error `json:"error"`
}

// --- handlers -----------------------------------------------------------------

// statusFor maps engine error codes onto HTTP statuses. The switch is
// machine-checked: wolveslint's errcode analyzer fails the build if a
// declared engine.Code is missing a case, so a code added to the engine
// cannot silently fall through to 500.
func statusFor(e *engine.Error) int {
	//lint:exhaustive errcode
	switch e.Code {
	case engine.ErrBadInput, engine.ErrUnknownTask,
		engine.ErrUnknownComposite, engine.ErrWorkflowMismatch:
		return http.StatusBadRequest
	case engine.ErrUnknownWorkflow, engine.ErrUnknownView,
		engine.ErrUnknownRun, engine.ErrUnknownArtifact:
		return http.StatusNotFound
	case engine.ErrVersionConflict:
		return http.StatusConflict
	case engine.ErrOptimalLimit, engine.ErrCycleRejected, engine.ErrInvalidTrace:
		return http.StatusUnprocessableEntity
	case engine.ErrCanceled:
		return http.StatusGatewayTimeout
	case engine.ErrDegraded, engine.ErrOverloaded:
		return http.StatusServiceUnavailable
	case engine.ErrInternal:
		return http.StatusInternalServerError
	default:
		// Unknown codes (future engines, corrupted errors) are server
		// faults, not client ones.
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body) // the status line is already out; nothing to salvage
}

func writeError(w http.ResponseWriter, err error) {
	var ee *engine.Error
	if !errors.As(err, &ee) {
		ee = &engine.Error{Code: engine.ErrInternal, Message: err.Error()}
	}
	status := statusFor(ee)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, errorResponse{Error: ee})
}

// decodeBody reads a JSON body. The size cap is applied once, by the
// Handler middleware; an oversized body surfaces here as a decode error
// (net/http's MaxBytesReader has already replied 413 on the wire).
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		return &engine.Error{Code: engine.ErrBadInput, Op: "decode", Message: err.Error(), Err: err}
	}
	return nil
}

// decodePair turns raw workflow/view JSON into validated model objects.
func decodePair(wfRaw, vRaw json.RawMessage) (*workflow.Workflow, *view.View, error) {
	if len(wfRaw) == 0 {
		return nil, nil, &engine.Error{Code: engine.ErrBadInput, Op: "decode", Message: "missing workflow"}
	}
	if len(vRaw) == 0 {
		return nil, nil, &engine.Error{Code: engine.ErrBadInput, Op: "decode", Message: "missing view"}
	}
	wf, err := workflow.DecodeJSON(bytes.NewReader(wfRaw))
	if err != nil {
		return nil, nil, &engine.Error{Code: engine.ErrBadInput, Op: "decode", Message: err.Error(), Err: err}
	}
	v, err := view.DecodeJSON(wf, bytes.NewReader(vRaw))
	if err != nil {
		return nil, nil, &engine.Error{Code: engine.ErrBadInput, Op: "decode", Message: err.Error(), Err: err}
	}
	return wf, v, nil
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req ValidateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	wf, v, err := decodePair(req.Workflow, req.View)
	if err != nil {
		writeError(w, err)
		return
	}
	rep, err := s.eng.Validate(r.Context(), wf, v)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ValidateResponse{Report: rep})
}

// correctResponse runs one correction and shapes the wire response.
func (s *Server) correctResponse(r *http.Request, wfRaw, vRaw json.RawMessage, criterion string) (*CorrectResponse, error) {
	wf, v, err := decodePair(wfRaw, vRaw)
	if err != nil {
		return nil, err
	}
	if criterion == "" {
		criterion = "strong"
	}
	crit, err := core.ParseCriterion(criterion)
	if err != nil {
		return nil, &engine.Error{Code: engine.ErrBadInput, Op: "correct", Message: err.Error(), Err: err}
	}
	vc, err := s.eng.Correct(r.Context(), wf, v, crit)
	if err != nil {
		return nil, err
	}
	return s.shapeCorrection(r, engine.CorrectJob{Workflow: wf, View: v, Criterion: crit}, vc)
}

func (s *Server) handleCorrect(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req CorrectRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.correctResponse(r, req.Workflow, req.View, req.Criterion)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, &engine.Error{Code: engine.ErrBadInput, Op: "batch", Message: "no jobs"})
		return
	}
	results := make([]BatchResult, len(req.Jobs))

	// Decode and partition by op; the engine batch entry points fan the
	// decoded jobs over the worker pool.
	var vjobs []engine.ValidateJob
	var vIdx []int
	var cjobs []engine.CorrectJob
	var cIdx []int
	for i, j := range req.Jobs {
		switch j.Op {
		case "validate":
			wf, v, err := decodePair(j.Workflow, j.View)
			if err != nil {
				results[i] = BatchResult{Error: asEngineError(err)}
				continue
			}
			vjobs = append(vjobs, engine.ValidateJob{Workflow: wf, View: v})
			vIdx = append(vIdx, i)
		case "correct":
			wf, v, err := decodePair(j.Workflow, j.View)
			if err != nil {
				results[i] = BatchResult{Error: asEngineError(err)}
				continue
			}
			criterion := j.Criterion
			if criterion == "" {
				criterion = "strong"
			}
			crit, err := core.ParseCriterion(criterion)
			if err != nil {
				results[i] = BatchResult{Error: &engine.Error{
					Code: engine.ErrBadInput, Op: "batch", Message: err.Error(), Err: err}}
				continue
			}
			cjobs = append(cjobs, engine.CorrectJob{Workflow: wf, View: v, Criterion: crit})
			cIdx = append(cIdx, i)
		default:
			results[i] = BatchResult{Error: &engine.Error{
				Code: engine.ErrBadInput, Op: "batch",
				Message: fmt.Sprintf("unknown op %q (want validate|correct)", j.Op)}}
		}
	}

	// The two op groups are independent: run them concurrently so a slow
	// correction does not serialize behind (or ahead of) the validations.
	// The engine's fan-out cap is split between the groups (wV + wC =
	// Workers()) so one /v1/batch never exceeds the configured width; a
	// single-worker engine, or a single-op batch, runs the groups in
	// sequence at full width instead.
	drainValidate := func(workers int) {
		for k, res := range s.eng.ValidateBatchN(r.Context(), vjobs, workers) {
			i := vIdx[k]
			if res.Err != nil {
				results[i] = BatchResult{Error: res.Err}
				continue
			}
			results[i] = BatchResult{Report: res.Report}
		}
	}
	drainCorrect := func(workers int) {
		for k, res := range s.eng.CorrectBatchN(r.Context(), cjobs, workers) {
			i := cIdx[k]
			if res.Err != nil {
				results[i] = BatchResult{Error: res.Err}
				continue
			}
			cr, err := s.shapeCorrection(r, cjobs[k], res.Correction)
			if err != nil {
				results[i] = BatchResult{Error: asEngineError(err)}
				continue
			}
			results[i] = BatchResult{Correct: cr}
		}
	}
	width := s.eng.Workers()
	if len(vjobs) == 0 || len(cjobs) == 0 || width < 2 {
		drainValidate(0)
		drainCorrect(0)
	} else {
		wV := width * len(vjobs) / (len(vjobs) + len(cjobs))
		if wV < 1 {
			wV = 1
		}
		if wV > width-1 {
			wV = width - 1
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); drainValidate(wV) }()
		go func() { defer wg.Done(); drainCorrect(width - wV) }()
		wg.Wait()
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// shapeCorrection converts an in-process correction to the wire shape.
func (s *Server) shapeCorrection(r *http.Request, job engine.CorrectJob, vc *core.ViewCorrection) (*CorrectResponse, error) {
	rep, err := s.eng.Validate(r.Context(), job.Workflow, vc.Corrected)
	if err != nil {
		return nil, err
	}
	return correctResponseBody(vc, rep)
}

// correctResponseBody shapes a correction plus its re-validation report;
// shared by the stateless and live-workflow correct handlers.
func correctResponseBody(vc *core.ViewCorrection, rep *soundness.Report) (*CorrectResponse, error) {
	corrected, err := json.Marshal(vc.Corrected)
	if err != nil {
		return nil, err
	}
	resp := &CorrectResponse{
		Criterion:        vc.Criterion.String(),
		CompositesBefore: vc.CompositesBefore,
		CompositesAfter:  vc.CompositesAfter,
		CorrectedView:    corrected,
		Report:           rep,
	}
	for _, tc := range vc.Tasks {
		resp.Tasks = append(resp.Tasks, TaskSummary{
			CompositeID: tc.CompositeID,
			Before:      tc.Before,
			After:       tc.After,
			SoundChecks: tc.Result.Stats.SoundChecks,
			Merges:      tc.Result.Stats.Merges,
		})
	}
	return resp, nil
}

func asEngineError(err error) *engine.Error {
	var ee *engine.Error
	if errors.As(err, &ee) {
		return ee
	}
	return &engine.Error{Code: engine.ErrInternal, Message: err.Error(), Err: err}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Workers:       s.eng.Workers(),
		Cache:         s.eng.CacheStats(),
		LiveWorkflows: s.reg.Len(),
	})
}

// ReadyResponse is the body of GET /readyz. Status is "healthy" (200),
// "degraded" or "draining" (503 + Retry-After); Health carries the
// registry's degraded-mode counters either way.
type ReadyResponse struct {
	Status string            `json:"status"`
	Health engine.HealthInfo `json:"health"`
}

// handleReadyz is the load-balancer readiness probe. /healthz answers
// "is the process alive" and always says 200; /readyz answers "should
// you send traffic here" and flips to 503 while the registry is in
// degraded read-only mode or the daemon is draining for shutdown. A
// degraded daemon still serves queries — routing reads elsewhere is a
// policy choice the balancer makes, not one we force.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Status: engine.HealthHealthy, Health: s.reg.Health()}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case resp.Health.Status != engine.HealthHealthy:
		resp.Status = resp.Health.Status
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, resp)
}
