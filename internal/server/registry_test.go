package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"

	"wolves/internal/engine"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// doJSON issues a request with an arbitrary method, decoding the reply
// into dst when non-nil.
func doJSON(t *testing.T, method, url string, body, dst any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp
}

// preFigure1 builds the walkthrough workflow: Figure 1 without the 3→4
// and 4→5 edges, so composite 16 starts sound.
func preFigure1(t *testing.T) (*workflow.Workflow, *view.View) {
	t.Helper()
	b := workflow.NewBuilder("phylogenomics")
	for i := 1; i <= 12; i++ {
		b.AddTask(fmt.Sprintf("%d", i))
	}
	b.AddEdge("1", "2").AddEdge("2", "3").AddEdge("2", "6").
		AddEdge("6", "7").AddEdge("7", "8").AddEdge("8", "11").
		AddEdge("5", "11").AddEdge("9", "10").AddEdge("10", "11").
		AddEdge("11", "12")
	wf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.NewBuilder(wf, "fig1b").
		Assign("13", "1", "2").
		Assign("14", "3").
		Assign("15", "6").
		Assign("16", "4", "7").
		Assign("17", "5").
		Assign("18", "8").
		Assign("19", "9", "10", "11", "12").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf, v
}

func TestLiveWorkflowLifecycleOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	wf, v := preFigure1(t)
	wfj, vj := rawPair(t, wf, v)
	base := ts.URL + "/v1/workflows/phylo"

	// Register: workflow + view in one PUT; the initial report is sound.
	var regResp RegisterResponse
	resp := doJSON(t, http.MethodPut, base, RegisterRequest{
		Workflow: wfj,
		Views:    []RegisterView{{View: vj}},
	}, &regResp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	if regResp.Version != 1 || !regResp.Reports["fig1b"].Sound {
		t.Fatalf("register response %+v", regResp)
	}

	// Validate is now a lookup of the maintained report.
	var vr LiveReportResponse
	doJSON(t, http.MethodPost, base+"/views/fig1b/validate", nil, &vr)
	if !vr.Report.Sound || vr.Version != 1 {
		t.Fatalf("pre-mutation validate %+v", vr)
	}

	// Mutate: the edge 3→4 makes composite 16 unsound.
	var mr engine.MutationResult
	resp = doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{
		Edges: [][2]string{{"3", "4"}},
	}, &mr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	if mr.Version != 2 || len(mr.Views) != 1 || mr.Views[0].Sound ||
		!reflect.DeepEqual(mr.Views[0].Flipped, []string{"16"}) {
		t.Fatalf("mutation result %+v", mr)
	}

	// Complete Figure 1; the maintained report must equal the canonical
	// in-process diagnosis.
	doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{Edges: [][2]string{{"4", "5"}}}, nil)
	doJSON(t, http.MethodPost, base+"/views/fig1b/validate", nil, &vr)
	wfRef, vRef := repo.Figure1()
	want := soundness.ValidateView(soundness.NewOracle(wfRef), vRef)
	if !reflect.DeepEqual(vr.Report, want) {
		t.Fatalf("live report diverges from canonical Figure 1:\ngot:  %+v\nwant: %+v", vr.Report, want)
	}

	// Lineage through the now-unsound view: tasks 3 and 4 are false
	// provenance of task 8 (the paper's running example).
	var lr engine.LineageResult
	doJSON(t, http.MethodPost, base+"/views/fig1b/lineage", LineageRequest{Task: "8"}, &lr)
	if lr.ViewSound || !reflect.DeepEqual(lr.FalsePositives, []string{"3", "4"}) {
		t.Fatalf("lineage result %+v", lr)
	}

	// Correct proposes a sound split without touching the live view.
	var cr LiveCorrectResponse
	resp = doJSON(t, http.MethodPost, base+"/views/fig1b/correct", nil, &cr)
	if resp.StatusCode != http.StatusOK || !cr.Correct.Report.Sound {
		t.Fatalf("correct status %d, %+v", resp.StatusCode, cr)
	}
	// Applying the proposal: PUT the corrected view back, then validate.
	req, err := http.NewRequest(http.MethodPut, base+"/views/fig1b", bytes.NewReader(cr.Correct.CorrectedView))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("view PUT status %d", putResp.StatusCode)
	}
	doJSON(t, http.MethodPost, base+"/views/fig1b/validate", nil, &vr)
	if !vr.Report.Sound {
		t.Fatal("re-attached corrected view must validate sound")
	}

	// GET returns metadata plus the full workflow document.
	var res WorkflowResource
	resp = doJSON(t, http.MethodGet, base, nil, &res)
	if resp.StatusCode != http.StatusOK || res.Version != 3 || res.Tasks != 12 || res.Edges != 12 {
		t.Fatalf("GET resource %+v (status %d)", res.WorkflowInfo, resp.StatusCode)
	}
	snap, err := workflow.DecodeJSON(bytes.NewReader(res.Workflow))
	if err != nil {
		t.Fatal(err)
	}
	if !workflow.Same(snap, wfRef) {
		t.Fatal("GET workflow document does not round-trip to canonical Figure 1")
	}

	// DELETE, then everything 404s.
	resp = doJSON(t, http.MethodDelete, base, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp = doJSON(t, http.MethodPost, base+"/views/fig1b/validate", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("validate after delete: status %d, want 404", resp.StatusCode)
	}
}

func TestLiveWorkflowHTTPStatusMapping(t *testing.T) {
	_, ts := newTestServer(t)
	wf, v := preFigure1(t)
	wfj, vj := rawPair(t, wf, v)
	base := ts.URL + "/v1/workflows/phylo"

	// Unknown workflow → 404 with the typed code.
	var errBody struct {
		Error *engine.Error `json:"error"`
	}
	resp := doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{Edges: [][2]string{{"1", "2"}}}, &errBody)
	if resp.StatusCode != http.StatusNotFound || errBody.Error.Code != engine.ErrUnknownWorkflow {
		t.Fatalf("unknown workflow: status %d code %s", resp.StatusCode, errBody.Error.Code)
	}

	doJSON(t, http.MethodPut, base, RegisterRequest{Workflow: wfj, Views: []RegisterView{{View: vj}}}, nil)

	// Unknown view → 404.
	resp = doJSON(t, http.MethodPost, base+"/views/nope/validate", nil, &errBody)
	if resp.StatusCode != http.StatusNotFound || errBody.Error.Code != engine.ErrUnknownView {
		t.Fatalf("unknown view: status %d code %s", resp.StatusCode, errBody.Error.Code)
	}

	// Malformed and invalid view documents on PUT → 400, never 500.
	for _, body := range []string{
		`{not json`,
		`{"name":"p","composites":[{"id":"x","members":["1"]}]}`, // not a partition
	} {
		req, err := http.NewRequest(http.MethodPut, base+"/views/bad", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		putResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		putResp.Body.Close()
		if putResp.StatusCode != http.StatusBadRequest {
			t.Fatalf("view PUT %q: status %d, want 400", body, putResp.StatusCode)
		}
	}

	// Stale if_version → 409.
	resp = doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{
		Edges: [][2]string{{"3", "4"}}, IfVersion: 99,
	}, &errBody)
	if resp.StatusCode != http.StatusConflict || errBody.Error.Code != engine.ErrVersionConflict {
		t.Fatalf("version conflict: status %d code %s", resp.StatusCode, errBody.Error.Code)
	}

	// Cycle → 422, batch rolled back (the later valid mutate still sees
	// version 1).
	resp = doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{
		Edges: [][2]string{{"3", "4"}, {"11", "1"}},
	}, &errBody)
	if resp.StatusCode != http.StatusUnprocessableEntity || errBody.Error.Code != engine.ErrCycleRejected {
		t.Fatalf("cycle: status %d code %s", resp.StatusCode, errBody.Error.Code)
	}
	var mr engine.MutationResult
	resp = doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{
		Edges: [][2]string{{"3", "4"}}, IfVersion: 1,
	}, &mr)
	if resp.StatusCode != http.StatusOK || mr.Version != 2 {
		t.Fatalf("post-rollback mutate: status %d %+v", resp.StatusCode, mr)
	}

	// Unknown task in a mutation edge → 400.
	resp = doJSON(t, http.MethodPost, base+"/mutate", MutateRequest{
		Edges: [][2]string{{"1", "nope"}},
	}, &errBody)
	if resp.StatusCode != http.StatusBadRequest || errBody.Error.Code != engine.ErrUnknownTask {
		t.Fatalf("unknown task: status %d code %s", resp.StatusCode, errBody.Error.Code)
	}
}

// TestLiveEndpointsMatchStateless pins the interchangeability claim: the
// live validate endpoint serves byte-identical reports to the stateless
// /v1/validate for the same workflow and view.
func TestLiveEndpointsMatchStateless(t *testing.T) {
	_, ts := newTestServer(t)
	wf, v := repo.Figure1()
	wfj, vj := rawPair(t, wf, v)

	var stateless ValidateResponse
	postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Workflow: wfj, View: vj}, &stateless)

	doJSON(t, http.MethodPut, ts.URL+"/v1/workflows/fig1", RegisterRequest{
		Workflow: wfj, Views: []RegisterView{{ID: "v", View: vj}},
	}, nil)
	var live LiveReportResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workflows/fig1/views/v/validate", nil, &live)

	if !reflect.DeepEqual(stateless.Report, live.Report) {
		t.Fatalf("live and stateless reports diverge:\nlive:      %+v\nstateless: %+v",
			live.Report, stateless.Report)
	}
}

// TestWorkflowListEndpoint covers GET /v1/workflows: empty registry,
// population, sorted order, and shrinkage after DELETE.
func TestWorkflowListEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/workflows"

	var list WorkflowListResponse
	resp := doJSON(t, http.MethodGet, url, nil, &list)
	if resp.StatusCode != http.StatusOK || list.Count != 0 || list.Workflows == nil {
		t.Fatalf("empty list: status %d %+v", resp.StatusCode, list)
	}

	wf, v := preFigure1(t)
	wfj, vj := rawPair(t, wf, v)
	doJSON(t, http.MethodPut, ts.URL+"/v1/workflows/zeta", RegisterRequest{Workflow: wfj}, nil)
	doJSON(t, http.MethodPut, ts.URL+"/v1/workflows/alpha", RegisterRequest{
		Workflow: wfj, Views: []RegisterView{{ID: "fig1b", View: vj}},
	}, nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/workflows/alpha/mutate", MutateRequest{
		Edges: [][2]string{{"3", "4"}},
	}, nil)

	resp = doJSON(t, http.MethodGet, url, nil, &list)
	if resp.StatusCode != http.StatusOK || list.Count != 2 {
		t.Fatalf("list: status %d %+v", resp.StatusCode, list)
	}
	if list.Workflows[0].ID != "alpha" || list.Workflows[1].ID != "zeta" {
		t.Fatalf("list not sorted by ID: %+v", list.Workflows)
	}
	alpha := list.Workflows[0]
	if alpha.Version != 2 || alpha.Tasks != 12 || len(alpha.Views) != 1 || alpha.Views[0] != "fig1b" {
		t.Fatalf("alpha info %+v, want version 2, 12 tasks, view fig1b", alpha)
	}
	if list.Workflows[1].Version != 1 || len(list.Workflows[1].Views) != 0 {
		t.Fatalf("zeta info %+v", list.Workflows[1])
	}

	doJSON(t, http.MethodDelete, ts.URL+"/v1/workflows/zeta", nil, nil)
	doJSON(t, http.MethodGet, url, nil, &list)
	if list.Count != 1 || list.Workflows[0].ID != "alpha" {
		t.Fatalf("list after delete: %+v", list)
	}
}

// TestRegisterRejectsBadViewAtomically pins that a malformed view in the
// PUT body rejects the whole registration.
func TestRegisterRejectsBadViewAtomically(t *testing.T) {
	_, ts := newTestServer(t)
	wf, _ := preFigure1(t)
	wfj, err := json.Marshal(wf)
	if err != nil {
		t.Fatal(err)
	}
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/workflows/phylo", RegisterRequest{
		Workflow: wfj,
		Views:    []RegisterView{{ID: "bad", View: json.RawMessage(`{"name":"bad","composites":[{"id":"x","members":["nope"]}]}`)}},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad view register: status %d, want 400", resp.StatusCode)
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/workflows/phylo", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("failed registration left the workflow behind: GET status %d", resp.StatusCode)
	}
}
