package workflow

import "testing"

func mustBuild(t *testing.T, b *Builder) *Workflow {
	t.Helper()
	wf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

// TestFingerprintEdgeOrderInvariant: the same edges declared in a
// different order (a pure serialization artifact) must fingerprint
// identically, or the oracle cache splits on producers' JSON ordering.
func TestFingerprintEdgeOrderInvariant(t *testing.T) {
	a := mustBuild(t, NewBuilder("w").
		AddTask("x").AddTask("y").AddTask("z").
		AddEdge("x", "y").AddEdge("x", "z").AddEdge("y", "z"))
	b := mustBuild(t, NewBuilder("w").
		AddTask("x").AddTask("y").AddTask("z").
		AddEdge("y", "z").AddEdge("x", "z").AddEdge("x", "y"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("edge declaration order changed the fingerprint")
	}
	if !Same(a, b) {
		t.Fatal("Same must accept edge-order twins")
	}
}

// TestFingerprintDistinguishes: task order (the index space), task set,
// and edge set must each change the fingerprint.
func TestFingerprintDistinguishes(t *testing.T) {
	base := mustBuild(t, NewBuilder("w").
		AddTask("x").AddTask("y").AddTask("z").
		AddEdge("x", "y"))
	reordered := mustBuild(t, NewBuilder("w").
		AddTask("y").AddTask("x").AddTask("z").
		AddEdge("x", "y"))
	if base.Fingerprint() == reordered.Fingerprint() {
		t.Fatal("task index order must affect the fingerprint (indices differ)")
	}
	extraEdge := mustBuild(t, NewBuilder("w").
		AddTask("x").AddTask("y").AddTask("z").
		AddEdge("x", "y").AddEdge("y", "z"))
	if base.Fingerprint() == extraEdge.Fingerprint() {
		t.Fatal("edge set must affect the fingerprint")
	}
	// Name differences do NOT: structural identity only.
	renamed := mustBuild(t, NewBuilder("other-name").
		AddTask("x").AddTask("y").AddTask("z").
		AddEdge("x", "y"))
	if !Same(base, renamed) {
		t.Fatal("workflow name must not affect structural identity")
	}
}

// TestFingerprintNulSafeIDs: task IDs are arbitrary strings (JSON allows
// "\u0000"), so the ID encoding must be unambiguous — a separator-based
// scheme would collide "a\x00b" (one task) with "a","b" (two tasks) and
// let the oracle cache serve a wrongly-sized closure.
func TestFingerprintNulSafeIDs(t *testing.T) {
	one := mustBuild(t, NewBuilder("x").AddTask("a\x00b"))
	two := mustBuild(t, NewBuilder("x").AddTask("a").AddTask("b"))
	if one.Fingerprint() == two.Fingerprint() {
		t.Fatal("NUL-containing ID collided with a two-task workflow")
	}
	if Same(one, two) {
		t.Fatal("Same must reject workflows of different task counts")
	}
}
