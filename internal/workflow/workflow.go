// Package workflow models workflow specifications: directed acyclic
// graphs of named atomic tasks connected by data-dependency edges, as in
// Figure 1(a) of the WOLVES paper. A Workflow is immutable once built;
// use Builder to construct one with full validation (duplicate IDs,
// dangling edge endpoints, self-loops, cycles).
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"wolves/internal/dag"
)

// Task is an atomic task of a workflow specification.
type Task struct {
	// ID is the unique identifier used by edges, views and MOML files.
	ID string
	// Name is a human-readable label; defaults to ID.
	Name string
	// Kind optionally classifies the task (e.g. "source", "align").
	Kind string
}

// Workflow is a workflow specification. Ordinary values are immutable
// once built; the engine's live workflow registry may additionally grow
// one in place through the sanctioned mutators (ExtendTasks, plus edge
// insertion routed through its incremental closure, followed by
// StructureChanged), under the registry's own write lock.
type Workflow struct {
	name  string
	tasks []Task
	index map[string]int
	g     *dag.Graph

	fpMu  sync.Mutex // guards fp, fpGen, gen
	fp    string     // cached fingerprint (see Fingerprint)
	fpGen uint64     // generation fp was computed at
	gen   uint64     // structural generation, bumped by StructureChanged
}

// Errors reported by Builder.Build and the accessors.
var (
	ErrDuplicateTask = errors.New("workflow: duplicate task id")
	ErrUnknownTask   = errors.New("workflow: unknown task id")
	ErrEmpty         = errors.New("workflow: no tasks")
)

// Builder accumulates tasks and edges and validates on Build.
type Builder struct {
	name  string
	tasks []Task
	edges [][2]string
	errs  []error
	seen  map[string]bool
}

// NewBuilder returns a Builder for a workflow with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, seen: map[string]bool{}}
}

// AddTask registers an atomic task. Returns the builder for chaining.
func (b *Builder) AddTask(id string, opts ...TaskOption) *Builder {
	t := Task{ID: id, Name: id}
	for _, o := range opts {
		o(&t)
	}
	if id == "" {
		b.errs = append(b.errs, errors.New("workflow: empty task id"))
		return b
	}
	if b.seen[id] {
		b.errs = append(b.errs, fmt.Errorf("%w: %q", ErrDuplicateTask, id))
		return b
	}
	b.seen[id] = true
	b.tasks = append(b.tasks, t)
	return b
}

// TaskOption customizes a task at AddTask time.
type TaskOption func(*Task)

// WithName sets the human-readable task name.
func WithName(name string) TaskOption { return func(t *Task) { t.Name = name } }

// WithKind sets the task kind.
func WithKind(kind string) TaskOption { return func(t *Task) { t.Kind = kind } }

// AddEdge registers the data dependency from → to.
func (b *Builder) AddEdge(from, to string) *Builder {
	b.edges = append(b.edges, [2]string{from, to})
	return b
}

// Chain adds edges id1→id2→…→idN.
func (b *Builder) Chain(ids ...string) *Builder {
	for i := 0; i+1 < len(ids); i++ {
		b.AddEdge(ids[i], ids[i+1])
	}
	return b
}

// Build validates and freezes the workflow.
func (b *Builder) Build() (*Workflow, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.tasks) == 0 {
		return nil, ErrEmpty
	}
	w := &Workflow{
		name:  b.name,
		tasks: append([]Task(nil), b.tasks...),
		index: make(map[string]int, len(b.tasks)),
	}
	for i, t := range w.tasks {
		w.index[t.ID] = i
	}
	g := dag.New(len(w.tasks))
	for _, e := range b.edges {
		u, ok := w.index[e[0]]
		if !ok {
			return nil, fmt.Errorf("%w: edge source %q", ErrUnknownTask, e[0])
		}
		v, ok := w.index[e[1]]
		if !ok {
			return nil, fmt.Errorf("%w: edge target %q", ErrUnknownTask, e[1])
		}
		if _, err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("workflow: edge %q→%q: self-dependency", e[0], e[1])
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, fmt.Errorf("workflow %q: %w (cycle: %s)", b.name, err, describeCycle(g, w))
	}
	w.g = g
	return w, nil
}

// describeCycle names the tasks of the first non-trivial SCC.
func describeCycle(g *dag.Graph, w *Workflow) string {
	for _, comp := range g.SCC() {
		if len(comp) > 1 {
			ids := make([]string, len(comp))
			for i, u := range comp {
				ids[i] = w.tasks[u].ID
			}
			return strings.Join(ids, "→")
		}
	}
	return "unknown"
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// N returns the number of tasks.
func (w *Workflow) N() int { return len(w.tasks) }

// M returns the number of edges.
func (w *Workflow) M() int { return w.g.M() }

// Task returns the task at index i.
func (w *Workflow) Task(i int) Task { return w.tasks[i] }

// Index returns the dense index of a task ID.
func (w *Workflow) Index(id string) (int, bool) {
	i, ok := w.index[id]
	return i, ok
}

// MustIndex is Index for callers holding validated IDs.
func (w *Workflow) MustIndex(id string) int {
	i, ok := w.index[id]
	if !ok {
		panic(fmt.Sprintf("workflow: unknown task %q", id))
	}
	return i
}

// IDs returns all task IDs in index order.
func (w *Workflow) IDs() []string {
	out := make([]string, len(w.tasks))
	for i, t := range w.tasks {
		out[i] = t.ID
	}
	return out
}

// Graph returns the underlying dependency DAG. Shared; do not mutate.
func (w *Workflow) Graph() *dag.Graph { return w.g }

// Edges returns the edge list as ID pairs, ordered deterministically.
func (w *Workflow) Edges() [][2]string {
	var out [][2]string
	w.g.Edges(func(u, v int) {
		out = append(out, [2]string{w.tasks[u].ID, w.tasks[v].ID})
	})
	return out
}

// Sources returns IDs of tasks with no predecessors.
func (w *Workflow) Sources() []string { return w.names(w.g.Sources()) }

// Sinks returns IDs of tasks with no successors.
func (w *Workflow) Sinks() []string { return w.names(w.g.Sinks()) }

func (w *Workflow) names(idx []int) []string {
	out := make([]string, len(idx))
	for i, u := range idx {
		out[i] = w.tasks[u].ID
	}
	return out
}

// TopoIDs returns task IDs in a deterministic topological order.
func (w *Workflow) TopoIDs() []string {
	order, err := w.g.TopoOrder()
	if err != nil {
		panic("workflow: built workflow must be acyclic")
	}
	return w.names(order)
}

// Stats summarizes the structure of a workflow; the estimator groups
// workflows by these features.
type Stats struct {
	Tasks   int
	Edges   int
	Sources int
	Sinks   int
	MaxDeg  int
	Depth   int     // longest path length in edges
	Density float64 // edges / tasks
	AvgDeg  float64
}

// Stats computes structural statistics.
func (w *Workflow) Stats() Stats {
	s := Stats{Tasks: w.N(), Edges: w.M(), Sources: len(w.g.Sources()), Sinks: len(w.g.Sinks())}
	for u := 0; u < w.N(); u++ {
		d := w.g.OutDeg(u) + w.g.InDeg(u)
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
	}
	order, _ := w.g.TopoOrder()
	depth := make([]int, w.N())
	for _, u := range order {
		for _, v := range w.g.Succs(u) {
			if depth[u]+1 > depth[v] {
				depth[v] = depth[u] + 1
			}
		}
	}
	for _, d := range depth {
		if d > s.Depth {
			s.Depth = d
		}
	}
	if w.N() > 0 {
		s.Density = float64(w.M()) / float64(w.N())
		s.AvgDeg = 2 * float64(w.M()) / float64(w.N())
	}
	return s
}

// String renders a compact summary.
func (w *Workflow) String() string {
	return fmt.Sprintf("workflow %q (%d tasks, %d edges)", w.name, w.N(), w.M())
}

// Clone returns a deep, independent copy of w: its own task slice, ID
// index and dependency graph. The engine registry hands out clones as
// snapshots of live workflows, so later mutations never reach published
// state.
func (w *Workflow) Clone() *Workflow {
	c := &Workflow{
		name:  w.name,
		tasks: append([]Task(nil), w.tasks...),
		index: make(map[string]int, len(w.index)),
		g:     w.g.Clone(),
	}
	for id, i := range w.index {
		c.index[id] = i
	}
	return c
}

// ExtendTasks appends new atomic tasks to a live workflow and returns
// the dense index of the first. IDs must be non-empty and new (both
// against the workflow and within the batch); on any error nothing is
// applied. The dependency graph must be grown in step by the caller —
// the registry routes node growth through its incremental closure.
// Ordinary Workflow values are immutable; only the engine registry calls
// this, under its write lock.
func (w *Workflow) ExtendTasks(ts []Task) (int, error) {
	seen := make(map[string]bool, len(ts))
	for _, t := range ts {
		if t.ID == "" {
			return 0, errors.New("workflow: empty task id")
		}
		if _, dup := w.index[t.ID]; dup || seen[t.ID] {
			return 0, fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
		}
		seen[t.ID] = true
	}
	first := len(w.tasks)
	for _, t := range ts {
		if t.Name == "" {
			t.Name = t.ID
		}
		w.index[t.ID] = len(w.tasks)
		w.tasks = append(w.tasks, t)
	}
	w.StructureChanged()
	return first, nil
}

// TruncateTasks rolls the task list back to n entries — the rollback
// counterpart of ExtendTasks for a failed mutation batch. The dependency
// graph must already have been shrunk in step.
func (w *Workflow) TruncateTasks(n int) {
	for _, t := range w.tasks[n:] {
		delete(w.index, t.ID)
	}
	w.tasks = w.tasks[:n]
	w.StructureChanged()
}

// SortedIDs returns task IDs sorted lexicographically (for stable output).
func (w *Workflow) SortedIDs() []string {
	ids := w.IDs()
	sort.Strings(ids)
	return ids
}
