package workflow

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func buildLinear(t *testing.T, ids ...string) *Workflow {
	t.Helper()
	b := NewBuilder("linear")
	for _, id := range ids {
		b.AddTask(id)
	}
	b.Chain(ids...)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuilderHappyPath(t *testing.T) {
	w, err := NewBuilder("wf").
		AddTask("a", WithName("Select"), WithKind("source")).
		AddTask("b").
		AddTask("c").
		AddEdge("a", "b").
		AddEdge("b", "c").
		AddEdge("a", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 3 || w.M() != 3 {
		t.Fatalf("N=%d M=%d", w.N(), w.M())
	}
	if w.Task(0).Name != "Select" || w.Task(0).Kind != "source" {
		t.Fatalf("task options lost: %+v", w.Task(0))
	}
	if w.Task(1).Name != "b" {
		t.Fatal("name should default to id")
	}
	if i, ok := w.Index("c"); !ok || i != 2 {
		t.Fatalf("Index(c) = %d, %v", i, ok)
	}
	if _, ok := w.Index("zzz"); ok {
		t.Fatal("unknown index lookup must fail")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Build(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty build err = %v", err)
	}
	_, err := NewBuilder("x").AddTask("a").AddTask("a").Build()
	if !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("dup err = %v", err)
	}
	_, err = NewBuilder("x").AddTask("a").AddEdge("a", "ghost").Build()
	if !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown edge target err = %v", err)
	}
	_, err = NewBuilder("x").AddTask("").Build()
	if err == nil {
		t.Fatal("empty id must error")
	}
	_, err = NewBuilder("x").AddTask("a").AddEdge("a", "a").Build()
	if err == nil {
		t.Fatal("self edge must error")
	}
}

func TestBuilderCycleDiagnostic(t *testing.T) {
	_, err := NewBuilder("cyc").
		AddTask("a").AddTask("b").AddTask("c").
		Chain("a", "b", "c").AddEdge("c", "a").
		Build()
	if err == nil {
		t.Fatal("cycle must error")
	}
	if !strings.Contains(err.Error(), "a→b→c") {
		t.Fatalf("cycle diagnostic missing from %q", err)
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	w, err := NewBuilder("d").AddTask("a").AddTask("b").
		AddEdge("a", "b").AddEdge("a", "b").Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.M() != 1 {
		t.Fatalf("M = %d, want 1", w.M())
	}
}

func TestAccessors(t *testing.T) {
	w := buildLinear(t, "s", "m", "t")
	if got := w.Sources(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("Sources = %v", got)
	}
	if got := w.Sinks(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Sinks = %v", got)
	}
	if got := w.TopoIDs(); got[0] != "s" || got[2] != "t" {
		t.Fatalf("TopoIDs = %v", got)
	}
	if got := w.Edges(); len(got) != 2 || got[0] != [2]string{"s", "m"} {
		t.Fatalf("Edges = %v", got)
	}
	if w.MustIndex("m") != 1 {
		t.Fatal("MustIndex wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustIndex must panic on unknown id")
			}
		}()
		w.MustIndex("ghost")
	}()
	if got := w.SortedIDs(); got[0] != "m" {
		t.Fatalf("SortedIDs = %v", got)
	}
	if s := w.String(); !strings.Contains(s, "3 tasks") {
		t.Fatalf("String = %q", s)
	}
}

func TestStats(t *testing.T) {
	w, err := NewBuilder("st").
		AddTask("a").AddTask("b").AddTask("c").AddTask("d").
		AddEdge("a", "b").AddEdge("a", "c").AddEdge("b", "d").AddEdge("c", "d").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Tasks != 4 || s.Edges != 4 || s.Sources != 1 || s.Sinks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Depth != 2 {
		t.Fatalf("Depth = %d, want 2", s.Depth)
	}
	if s.MaxDeg != 2 {
		t.Fatalf("MaxDeg = %d, want 2", s.MaxDeg)
	}
	if s.Density != 1.0 {
		t.Fatalf("Density = %f", s.Density)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w, err := NewBuilder("rt").
		AddTask("a", WithName("Alpha"), WithKind("source")).
		AddTask("b").
		AddEdge("a", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Name() != "rt" || w2.N() != 2 || w2.M() != 1 {
		t.Fatalf("round trip lost data: %v", w2)
	}
	if w2.Task(0).Name != "Alpha" || w2.Task(0).Kind != "source" {
		t.Fatalf("task metadata lost: %+v", w2.Task(0))
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","tasks":[],"edges":[]}`, // empty
		`{"name":"x","tasks":[{"id":"a"}],"edges":[["a","b"]]}`,                      // dangling
		`{"name":"x","tasks":[{"id":"a"},{"id":"a"}],"edges":[]}`,                    // dup
		`{"name":"x","unknown":1,"tasks":[{"id":"a"}],"edges":[]}`,                   // unknown field
		`{"name":"x","tasks":[{"id":"a"},{"id":"b"}],"edges":[["a","b"],["b","a"]]}`, // cycle
	}
	for i, c := range cases {
		if _, err := DecodeJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
