package workflow

import (
	"errors"
	"testing"
)

func buildABC(t *testing.T) *Workflow {
	t.Helper()
	wf, err := NewBuilder("live").
		AddTask("a").AddTask("b").AddTask("c").
		Chain("a", "b", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func TestExtendTasksAndFingerprintInvalidation(t *testing.T) {
	wf := buildABC(t)
	fp0 := wf.Fingerprint()
	if fp0 != wf.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}

	first, err := wf.ExtendTasks([]Task{{ID: "d"}, {ID: "e", Name: "East", Kind: "sink"}})
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || wf.N() != 5 {
		t.Fatalf("ExtendTasks: first=%d n=%d, want 3, 5", first, wf.N())
	}
	if i, ok := wf.Index("e"); !ok || i != 4 {
		t.Fatalf("index of e = %d, %v", i, ok)
	}
	if wf.Task(3).Name != "d" {
		t.Fatalf("default name not applied: %q", wf.Task(3).Name)
	}
	if wf.Task(4).Name != "East" || wf.Task(4).Kind != "sink" {
		t.Fatalf("task options lost: %+v", wf.Task(4))
	}
	fp1 := wf.Fingerprint()
	if fp1 == fp0 {
		t.Fatal("fingerprint unchanged after task extension")
	}

	// Rollback restores the original structure and fingerprint.
	wf.TruncateTasks(3)
	if wf.N() != 3 {
		t.Fatalf("TruncateTasks left %d tasks", wf.N())
	}
	if _, ok := wf.Index("d"); ok {
		t.Fatal("truncated task still indexed")
	}
	if wf.Fingerprint() != fp0 {
		t.Fatal("fingerprint not restored after rollback")
	}
}

func TestExtendTasksValidation(t *testing.T) {
	wf := buildABC(t)
	if _, err := wf.ExtendTasks([]Task{{ID: "b"}}); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("existing-ID duplicate accepted: %v", err)
	}
	if _, err := wf.ExtendTasks([]Task{{ID: "x"}, {ID: "x"}}); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("in-batch duplicate accepted: %v", err)
	}
	if _, err := wf.ExtendTasks([]Task{{ID: ""}}); err == nil {
		t.Fatal("empty ID accepted")
	}
	// A failed batch applies nothing.
	if wf.N() != 3 {
		t.Fatalf("failed batches mutated the workflow: n=%d", wf.N())
	}
}

func TestStructureChangedInvalidatesEdgeFingerprint(t *testing.T) {
	wf := buildABC(t)
	fp0 := wf.Fingerprint()
	// The registry mutates the graph through its incremental closure and
	// then calls StructureChanged; simulate the edge half directly.
	if _, err := wf.Graph().AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	wf.StructureChanged()
	if wf.Fingerprint() == fp0 {
		t.Fatal("fingerprint unchanged after edge mutation + StructureChanged")
	}
}

func TestCloneIsDeep(t *testing.T) {
	wf := buildABC(t)
	cl := wf.Clone()
	if !Same(wf, cl) {
		t.Fatal("clone not structurally identical")
	}
	// Mutating the original must not reach the clone.
	if _, err := wf.ExtendTasks([]Task{{ID: "z"}}); err != nil {
		t.Fatal(err)
	}
	wf.Graph().AddNodes(1)
	if _, err := wf.Graph().AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	wf.StructureChanged()
	if cl.N() != 3 || cl.M() != 2 {
		t.Fatalf("clone mutated along with original: n=%d m=%d", cl.N(), cl.M())
	}
	if _, ok := cl.Index("z"); ok {
		t.Fatal("clone index shares storage with original")
	}
	if Same(wf, cl) {
		t.Fatal("diverged workflows still report Same")
	}
}
