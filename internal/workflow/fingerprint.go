package workflow

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sort"
)

// Fingerprint returns a stable content hash of the workflow's structure:
// the task IDs in index order followed by the canonical edge list. Two
// workflows with equal fingerprints have identical task-index spaces and
// dependency graphs, so every index-based artifact computed for one
// (reachability closures, soundness oracles, validation reports) is valid
// for the other. Names and kinds are deliberately excluded: they do not
// affect soundness.
//
// The hash is cached per structural generation: ordinary workflows are
// immutable and hash exactly once, while a live workflow mutated under
// the engine registry (see StructureChanged) recomputes lazily on the
// first Fingerprint call after each mutation batch.
func (w *Workflow) Fingerprint() string {
	w.fpMu.Lock()
	defer w.fpMu.Unlock()
	if w.fp != "" && w.fpGen == w.gen {
		return w.fp
	}
	h := sha256.New()
	var buf8 [8]byte
	// Task count plus length-prefixed IDs: an unambiguous encoding.
	// (A bare separator byte would let IDs containing that byte make
	// structurally different workflows collide.)
	binary.LittleEndian.PutUint64(buf8[:], uint64(len(w.tasks)))
	h.Write(buf8[:])
	for _, t := range w.tasks {
		binary.LittleEndian.PutUint64(buf8[:], uint64(len(t.ID)))
		h.Write(buf8[:])
		io.WriteString(h, t.ID)
	}
	// Graph.Edges yields successors in insertion order, which is a
	// serialization artifact (two JSON files listing the same edges in
	// different orders must fingerprint identically), so sort the edge
	// list into canonical (u, v) order before hashing.
	edges := make([][2]int, 0, w.g.M())
	w.g.Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	for _, e := range edges {
		binary.LittleEndian.PutUint32(buf8[:4], uint32(e[0]))
		binary.LittleEndian.PutUint32(buf8[4:], uint32(e[1]))
		h.Write(buf8[:])
	}
	w.fp = hex.EncodeToString(h.Sum(nil))
	w.fpGen = w.gen
	return w.fp
}

// StructureChanged invalidates cached structural derivatives (the
// fingerprint) after an in-place mutation of the task list or dependency
// graph. Ordinary Workflow values are immutable and never need this; it
// is the hook for the engine registry, which owns live workflows and
// mutates them under its own write lock. Callers must guarantee that no
// structural readers run concurrently with the mutation itself.
func (w *Workflow) StructureChanged() {
	w.fpMu.Lock()
	w.gen++
	w.fpMu.Unlock()
}

// Same reports whether a and b are interchangeable for index-based
// computations: the same object, or structurally identical workflows
// (equal fingerprints). Packages that precompute per-workflow state
// (soundness oracles, lineage engines) use Same instead of pointer
// equality so cached state can serve structurally identical workflows
// decoded from separate requests.
func Same(a, b *Workflow) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Fingerprint() == b.Fingerprint()
}
