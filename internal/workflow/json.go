package workflow

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonWorkflow is the on-disk JSON shape of a workflow specification.
type jsonWorkflow struct {
	Name  string      `json:"name"`
	Tasks []jsonTask  `json:"tasks"`
	Edges [][2]string `json:"edges"`
}

type jsonTask struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

// MarshalJSON encodes the workflow in a stable, human-editable format.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	jw := jsonWorkflow{Name: w.name, Edges: w.Edges()}
	for _, t := range w.tasks {
		jt := jsonTask{ID: t.ID, Kind: t.Kind}
		if t.Name != t.ID {
			jt.Name = t.Name
		}
		jw.Tasks = append(jw.Tasks, jt)
	}
	return json.Marshal(jw)
}

// DecodeJSON reads and validates a workflow from r.
func DecodeJSON(r io.Reader) (*Workflow, error) {
	var jw jsonWorkflow
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jw); err != nil {
		return nil, fmt.Errorf("workflow: decode: %w", err)
	}
	b := NewBuilder(jw.Name)
	for _, t := range jw.Tasks {
		opts := []TaskOption{}
		if t.Name != "" {
			opts = append(opts, WithName(t.Name))
		}
		if t.Kind != "" {
			opts = append(opts, WithKind(t.Kind))
		}
		b.AddTask(t.ID, opts...)
	}
	for _, e := range jw.Edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// EncodeJSON writes the workflow as indented JSON.
func (w *Workflow) EncodeJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}
