// Package binwire holds the tiny primitives shared by the binary wire
// encodings of PR 9: uvarint-length-prefixed strings and byte blobs,
// plus a bounds-checked sequential reader. Both the storage package
// (binary WAL record bodies) and the runs package (binary canonical run
// documents) build their formats from these, so the two codecs cannot
// drift on the primitive level.
//
// Every format built on binwire is version-tagged by its first byte and
// decoded defensively: a Reader never panics on truncated or corrupt
// input, it accumulates a sticky error the caller checks once at the
// end (the same shape as bufio.Scanner). Claimed lengths are bounded by
// the bytes actually present before any allocation, so a flipped length
// byte cannot balloon memory.
package binwire

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt reports a truncated or malformed binary payload.
var ErrCorrupt = errors.New("binwire: truncated or corrupt payload")

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendString appends a uvarint length prefix followed by the bytes
// of s.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length prefix followed by b.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Reader decodes a binwire payload sequentially. The zero value over a
// byte slice is ready to use; check Err (or Close) once after the last
// read — intermediate reads after a failure return zero values and
// never advance.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b. The Reader aliases b; callers that
// retain decoded byte slices retain b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Len reads a uvarint and validates it as a length of items still to
// come: each item occupies at least itemBytes bytes, so a claimed count
// the remaining payload cannot hold is corruption, reported before any
// allocation sized by it.
func (r *Reader) Len(itemBytes int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if itemBytes < 1 {
		itemBytes = 1
	}
	if v > uint64(len(r.b)/itemBytes) {
		r.fail()
		return 0
	}
	return int(v)
}

// String reads one length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// Bytes reads one length-prefixed byte blob. The returned slice aliases
// the Reader's input; copy it if the input buffer is reused.
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	if r.err != nil {
		return nil
	}
	b := r.b[:n:n]
	r.b = r.b[n:]
	return b
}

// Close returns the sticky error, or ErrCorrupt when decoding stopped
// short of the payload's end — a well-formed payload is consumed
// exactly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrCorrupt
	}
	return nil
}
