package binwire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestRoundTrip writes a payload with every Append primitive and reads
// it back exactly.
func TestRoundTrip(t *testing.T) {
	long := strings.Repeat("x", 300) // length prefix spans two varint bytes
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40+7)
	b = AppendString(b, "")
	b = AppendString(b, "wolves")
	b = AppendString(b, long)
	b = AppendBytes(b, nil)
	b = AppendBytes(b, []byte{0xD1, 0x00, 0x7B})

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint 0 = %d", v)
	}
	if v := r.Uvarint(); v != 1<<40+7 {
		t.Fatalf("uvarint big = %d", v)
	}
	if s := r.String(); s != "" {
		t.Fatalf("empty string = %q", s)
	}
	if s := r.String(); s != "wolves" {
		t.Fatalf("string = %q", s)
	}
	if s := r.String(); s != long {
		t.Fatalf("long string: %d bytes", len(s))
	}
	if bs := r.Bytes(); len(bs) != 0 {
		t.Fatalf("empty bytes = %v", bs)
	}
	if bs := r.Bytes(); !bytes.Equal(bs, []byte{0xD1, 0x00, 0x7B}) {
		t.Fatalf("bytes = %v", bs)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestReaderCorruption pins the defensive contract: truncation, bogus
// lengths and leftover bytes all surface as ErrCorrupt, never a panic,
// and a failed Reader stays failed (sticky error, zero values).
func TestReaderCorruption(t *testing.T) {
	whole := AppendString(AppendUvarint(nil, 42), "payload")

	// Every strict prefix of a valid payload must fail Close — either a
	// read fails or bytes are left over — and never panic.
	for cut := 0; cut < len(whole); cut++ {
		r := NewReader(whole[:cut])
		r.Uvarint()
		_ = r.String()
		if err := r.Close(); err == nil {
			t.Fatalf("prefix of %d bytes closed clean", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: %v", cut, err)
		}
	}

	// A claimed length larger than the remaining payload is rejected
	// before any allocation sized by it.
	huge := AppendUvarint(nil, 1<<50)
	r := NewReader(append(huge, "tiny"...))
	if n := r.Len(1); n != 0 || r.Err() == nil {
		t.Fatalf("oversized length admitted: n=%d err=%v", n, r.Err())
	}

	// Sticky error: reads after a failure return zero values.
	if s := r.String(); s != "" {
		t.Fatalf("read after failure returned %q", s)
	}
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("read after failure returned %d", v)
	}
	if !errors.Is(r.Close(), ErrCorrupt) {
		t.Fatalf("close after failure: %v", r.Close())
	}

	// Leftover bytes after a clean decode are corruption too — a
	// well-formed payload is consumed exactly.
	r = NewReader(append(AppendString(nil, "ok"), 0x00))
	if s := r.String(); s != "ok" {
		t.Fatalf("string = %q", s)
	}
	if !errors.Is(r.Close(), ErrCorrupt) {
		t.Fatal("leftover byte must fail Close")
	}

	// A non-canonical varint that never terminates fails cleanly.
	r = NewReader(bytes.Repeat([]byte{0x80}, 12))
	if v := r.Uvarint(); v != 0 || r.Err() == nil {
		t.Fatalf("unterminated varint: v=%d err=%v", v, r.Err())
	}
}

// TestBytesAliasing documents that Bytes aliases the input with a
// clipped capacity: appending to the result cannot scribble over the
// bytes that follow it in the payload.
func TestBytesAliasing(t *testing.T) {
	payload := AppendBytes(AppendBytes(nil, []byte("first")), []byte("second"))
	r := NewReader(payload)
	first := r.Bytes()
	_ = append(first, '!') // must reallocate, not overwrite "second"'s prefix
	if second := r.Bytes(); string(second) != "second" {
		t.Fatalf("append through alias corrupted the next field: %q", second)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
