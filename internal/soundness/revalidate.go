package soundness

import (
	"fmt"

	"wolves/internal/bitset"
	"wolves/internal/view"
)

// This file implements dirty-set revalidation, the soundness half of the
// live workflow registry. A composite's report depends on exactly two
// inputs: the adjacency lists of its members (which determine T.in and
// T.out per Definition 2.2) and the reachability rows of its members
// (which decide Definition 2.3). A mutation batch therefore invalidates
// precisely the composites containing a node whose adjacency or
// reachability row changed — the dirty set the IncrementalClosure
// reports — and every other composite's report is reusable verbatim.
// Merging the recomputed reports into the previous full report yields a
// result identical to a from-scratch ValidateView, which the equivalence
// tests pin byte-for-byte.

// Delta is a partial revalidation of a view: fresh reports for the dirty
// composites only. Merge folds it into the previous full report.
type Delta struct {
	View string
	// Composites holds the recomputed reports, in the order the dirty
	// indices were given (ascending when produced by DirtyComposites).
	Composites []CompositeReport
}

// Revalidate recomputes the soundness reports of exactly the composites
// listed in dirty (composite indices into v). The caller derives dirty
// from the mutation's changed-node set — DirtyComposites does this
// mapping — and must include every composite whose members' adjacency or
// reachability changed, plus any composite index new since the previous
// report; composites outside the set are assumed unchanged.
func Revalidate(o *Oracle, v *view.View, dirty []int) *Delta {
	o.checkSameWorkflow(v)
	n := o.g.N()
	sc := &validatorScratch{members: bitset.New(n), outMask: bitset.New(n)}
	d := &Delta{View: v.Name(), Composites: make([]CompositeReport, 0, len(dirty))}
	for _, ci := range dirty {
		d.Composites = append(d.Composites, validateComposite(o, v, ci, sc))
	}
	return d
}

// Merge folds a delta into the previous full report of v, returning a
// new report (prev is never mutated; holders of it keep a consistent
// snapshot). When v gained composites since prev — tasks appended to a
// live workflow become singleton composites — every new index must be
// covered by the delta; Merge panics otherwise, because the resulting
// report would silently contain zero-valued composites.
func Merge(prev *Report, d *Delta, v *view.View) *Report {
	k := v.N()
	composites := make([]CompositeReport, k)
	covered := copy(composites, prev.Composites)
	for i := range d.Composites {
		ci := d.Composites[i].Index
		if ci < 0 || ci >= k {
			panic(fmt.Sprintf("soundness: merge: delta composite index %d out of range [0,%d)", ci, k))
		}
		composites[ci] = d.Composites[i]
	}
	for ci := covered; ci < k; ci++ {
		if composites[ci].ID == "" {
			panic(fmt.Sprintf("soundness: merge: new composite %d not covered by delta", ci))
		}
	}
	return assembleReport(v, composites)
}

// DirtyComposites maps a dirty node set (workflow task indices whose
// adjacency or reachability row changed) to the ascending list of
// composite indices of v that must be revalidated. Composite indices of
// v at or beyond minNew (the composite count before the mutation; pass
// v.N() when no composites were added) are always included: they have no
// previous report to reuse.
func DirtyComposites(v *view.View, dirtyNodes *bitset.Set, minNew int) []int {
	k := v.N()
	marks := bitset.New(k)
	dirtyNodes.ForEach(func(t int) bool {
		marks.Set(v.CompOf(t))
		return true
	})
	for ci := minNew; ci < k; ci++ {
		marks.Set(ci)
	}
	return marks.Members()
}
