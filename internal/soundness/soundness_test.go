package soundness

import (
	"math/rand"
	"strings"
	"testing"

	"wolves/internal/bitset"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// chainPair: x→a→b→y plus a side edge z→b.
func chainPair(t *testing.T) *workflow.Workflow {
	t.Helper()
	wf, err := workflow.NewBuilder("cp").
		AddTask("x").AddTask("a").AddTask("b").AddTask("y").AddTask("z").
		Chain("x", "a", "b", "y").
		AddEdge("z", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func setOf(wf *workflow.Workflow, ids ...string) *bitset.Set {
	s := bitset.New(wf.N())
	for _, id := range ids {
		s.Set(wf.MustIndex(id))
	}
	return s
}

func TestInOutDefinition(t *testing.T) {
	wf := chainPair(t)
	o := NewOracle(wf)
	in, out := o.InOut(setOf(wf, "a", "b"))
	// a has external pred x; b has external pred z; b has external succ y.
	if len(in) != 2 {
		t.Fatalf("in = %v", in)
	}
	if len(out) != 1 || wf.Task(out[0]).ID != "b" {
		t.Fatalf("out = %v", out)
	}
	// Sources have no preds: not in T.in.
	in, out = o.InOut(setOf(wf, "x"))
	if len(in) != 0 || len(out) != 1 {
		t.Fatalf("source in/out = %v/%v", in, out)
	}
}

func TestSetSoundBasics(t *testing.T) {
	wf := chainPair(t)
	o := NewOracle(wf)
	// Singletons are always sound (reflexive reachability).
	for _, id := range []string{"x", "a", "b", "y", "z"} {
		if ok, _ := o.SetSound(setOf(wf, id)); !ok {
			t.Fatalf("singleton %q must be sound", id)
		}
	}
	// {a,b}: in = {a,b}, out = {b}; a→b and b→b both hold: sound.
	if ok, _ := o.SetSound(setOf(wf, "a", "b")); !ok {
		t.Fatal("{a,b} must be sound")
	}
	// {x,z}: both are sources, so in = ∅ and the set is trivially sound.
	if ok, _ := o.SetSound(setOf(wf, "x", "z")); !ok {
		t.Fatal("{x,z} must be sound: its in-set is empty")
	}
	// {a,z}: a is externally fed (by x) but cannot reach the out-node z.
	ok, viol := o.SetSound(setOf(wf, "a", "z"))
	if ok {
		t.Fatal("{a,z} must be unsound")
	}
	if viol == nil || wf.Task(viol.From).ID != "a" || wf.Task(viol.To).ID != "z" {
		t.Fatalf("violation = %v, want a→z", viol)
	}
	// Whole workflow: in = ∅, trivially sound.
	all := bitset.New(wf.N())
	all.Fill()
	if ok, _ := o.SetSound(all); !ok {
		t.Fatal("whole workflow must be sound")
	}
	if o.Checks() == 0 {
		t.Fatal("check counter must advance")
	}
	o.ResetChecks()
	if o.Checks() != 0 {
		t.Fatal("ResetChecks failed")
	}
}

func TestValidateViewWitnesses(t *testing.T) {
	wf := chainPair(t)
	o := NewOracle(wf)
	v, err := view.FromAssignments(wf, "v", map[string][]string{
		"entry": {"x", "z"}, // unsound: x ∈ in? no preds... z likewise.
		"mid":   {"a", "b"},
		"sink":  {"y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// {x,z}: neither has preds, so in = ∅ → sound! The view is sound.
	rep := ValidateView(o, v)
	if !rep.Sound {
		t.Fatalf("report = %+v", rep)
	}

	// Now make the entries externally fed so the same grouping is unsound.
	wf2, err := workflow.NewBuilder("cp2").
		AddTask("s1").AddTask("s2").AddTask("x").AddTask("z").AddTask("b").
		AddEdge("s1", "x").AddEdge("s2", "z").
		AddEdge("x", "b").AddEdge("z", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	o2 := NewOracle(wf2)
	v2, err := view.FromAssignments(wf2, "v2", map[string][]string{
		"s1": {"s1"}, "s2": {"s2"}, "mid": {"x", "z"}, "b": {"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := ValidateView(o2, v2)
	if rep2.Sound || len(rep2.Unsound) != 1 {
		t.Fatalf("report = %+v", rep2)
	}
	cr := rep2.Composites[rep2.Unsound[0]]
	if cr.ID != "mid" || len(cr.Violations) == 0 {
		t.Fatalf("composite report = %+v", cr)
	}
	d := DescribeViolation(wf2, cr.Violations[0])
	if !strings.Contains(d, "cannot reach") {
		t.Fatalf("describe = %q", d)
	}
}

func TestValidateViewMismatchPanics(t *testing.T) {
	wf := chainPair(t)
	// A structurally identical workflow (equal fingerprint) is
	// interchangeable: oracle caches rely on this to serve views decoded
	// from separate requests.
	twin := chainPair(t)
	o := NewOracle(wf)
	if rep := ValidateView(o, view.Atomic(twin)); !rep.Sound {
		t.Fatalf("atomic view on structural twin: %+v", rep)
	}
	// A structurally different workflow must still panic.
	other, err := workflow.NewBuilder("cp").
		AddTask("x").AddTask("a").AddTask("b").AddTask("y").AddTask("z").
		Chain("x", "a", "b", "y").
		AddEdge("b", "z"). // reversed edge: different structure
		Build()
	if err != nil {
		t.Fatal(err)
	}
	v := view.Atomic(other)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on foreign view")
		}
	}()
	ValidateView(o, v)
}

// TestPropositionConverseCornerCase pins the asymmetry discussed in
// DESIGN.md: a composite can violate Definition 2.3 while the view still
// preserves path existence (Definition 2.1), because the spurious
// through-path is witnessed by an unrelated real path.
func TestPropositionConverseCornerCase(t *testing.T) {
	wf, err := workflow.NewBuilder("corner").
		AddTask("s").AddTask("a").AddTask("b").AddTask("u").
		AddEdge("s", "a").
		AddEdge("b", "u").
		AddEdge("s", "u"). // direct path that masks the false one
		Build()
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(wf)
	v, err := view.FromAssignments(wf, "v", map[string][]string{
		"S": {"s"}, "T": {"a", "b"}, "U": {"u"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := ValidateView(o, v)
	if rep.Sound {
		t.Fatal("task-level validation must flag T = {a,b}")
	}
	prep := ValidateViewPaths(o, v)
	if !prep.Sound {
		t.Fatalf("path-level validation must pass here: %+v", prep)
	}
}

func TestValidateViewPathsFalsePath(t *testing.T) {
	// Figure-1-style false path: two parallel chains bundled.
	wf, err := workflow.NewBuilder("par").
		AddTask("s1").AddTask("s2").AddTask("m1").AddTask("m2").AddTask("t1").AddTask("t2").
		Chain("s1", "m1", "t1").
		Chain("s2", "m2", "t2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(wf)
	v, err := view.FromAssignments(wf, "v", map[string][]string{
		"A": {"s1"}, "B": {"s2"}, "M": {"m1", "m2"}, "C": {"t1"}, "D": {"t2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	prep := ValidateViewPaths(o, v)
	if prep.Sound {
		t.Fatal("bundled parallel chains must create false paths")
	}
	if len(prep.MissingPaths) != 0 {
		t.Fatalf("quotient views can never miss paths, got %v", prep.MissingPaths)
	}
	// A→D and B→C are the false paths (via M).
	if len(prep.FalsePaths) != 2 {
		t.Fatalf("false paths = %v", prep.FalsePaths)
	}
	// Task-level validation agrees.
	if rep := ValidateView(o, v); rep.Sound {
		t.Fatal("task-level must agree the view is unsound")
	}
}

func TestSoundViewHasNoFalsePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for c := 0; c < 60; c++ {
		wf := randomWorkflow(rng, 3+rng.Intn(20))
		v := randomView(rng, wf)
		o := NewOracle(wf)
		rep := ValidateView(o, v)
		prep := ValidateViewPaths(o, v)
		// Proposition 2.1 (sufficient direction): all composites sound
		// ⇒ path-preservation holds.
		if rep.Sound && !prep.Sound {
			t.Fatalf("case %d: task-level sound but path-level unsound", c)
		}
		// Quotients never miss paths, sound or not.
		if len(prep.MissingPaths) != 0 {
			t.Fatalf("case %d: missing paths %v", c, prep.MissingPaths)
		}
	}
}

func TestNaiveValidatorAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	totalSteps := 0
	for c := 0; c < 40; c++ {
		wf := randomWorkflow(rng, 3+rng.Intn(12))
		v := randomView(rng, wf)
		o := NewOracle(wf)
		fast := ValidateView(o, v)
		nv := NewNaiveValidator(o, 0)
		slow, err := nv.ValidateView(v)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Sound != slow.Sound {
			t.Fatalf("case %d: fast=%v slow=%v", c, fast.Sound, slow.Sound)
		}
		if len(fast.Unsound) != len(slow.Unsound) {
			t.Fatalf("case %d: unsound lists differ: %v vs %v", c, fast.Unsound, slow.Unsound)
		}
		totalSteps += nv.Steps()
	}
	if totalSteps == 0 {
		t.Fatal("naive validator never consumed steps across 40 cases")
	}
}

func TestNaiveValidatorBudget(t *testing.T) {
	// A dense workflow where the in/out pair has no connecting path, so
	// the naive validator must enumerate everything and trip the budget.
	b := workflow.NewBuilder("dense")
	n := 18
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('a' + i))
		b.AddTask(ids[i])
	}
	for i := 0; i < n-2; i++ {
		for j := i + 1; j < n-2; j++ {
			b.AddEdge(ids[i], ids[j])
		}
	}
	// isolated := ids[n-2]; feeder feeds only the unsound composite.
	b.AddEdge(ids[n-2], ids[0])   // external pred for composite head
	b.AddEdge(ids[n-3], ids[n-1]) // external succ via last dense node
	wf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(wf)
	v, err := view.FromAssignments(wf, "v", map[string][]string{
		"big":  ids[:n-2],
		"pred": {ids[n-2]},
		"succ": {ids[n-1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	nv := NewNaiveValidator(o, 1000)
	if _, err := nv.ValidateView(v); err == nil {
		// Budget may or may not trip depending on reachability; force a
		// case that must trip by checking steps grew significantly.
		if nv.Steps() < 10 {
			t.Fatal("naive validator did no work")
		}
	}
}

// --- helpers ---------------------------------------------------------------

func randomWorkflow(rng *rand.Rand, n int) *workflow.Workflow {
	b := workflow.NewBuilder("rnd")
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "t" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		b.AddTask(ids[i])
	}
	perm := rng.Perm(n)
	p := 0.1 + rng.Float64()*0.3
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(ids[perm[i]], ids[perm[j]])
			}
		}
	}
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}

func randomView(rng *rand.Rand, wf *workflow.Workflow) *view.View {
	k := 1 + rng.Intn(wf.N())
	part := make([]int, wf.N())
	// Ensure every block is used at least once.
	for i := 0; i < k; i++ {
		part[i] = i
	}
	for i := k; i < wf.N(); i++ {
		part[i] = rng.Intn(k)
	}
	rng.Shuffle(len(part), func(i, j int) { part[i], part[j] = part[j], part[i] })
	v, err := view.FromPartition(wf, "rv", part)
	if err != nil {
		panic(err)
	}
	return v
}
