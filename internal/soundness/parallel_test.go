package soundness

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"wolves/internal/gen"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// mustJSON renders a report for byte-level comparison: the acceptance
// bar is byte-identical reports, not merely semantically equal ones.
func mustJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func requireSameReport(t *testing.T, name string, seq, par *Report) {
	t.Helper()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("%s: parallel report diverges from sequential\nseq: %+v\npar: %+v", name, seq, par)
	}
	sb, pb := mustJSON(t, seq), mustJSON(t, par)
	if string(sb) != string(pb) {
		t.Fatalf("%s: reports not byte-identical\nseq: %s\npar: %s", name, sb, pb)
	}
}

// TestValidateViewParallelEquivalence is the table-driven pin of
// ValidateViewParallel to ValidateView across fixture and generated
// workloads, at several worker counts including ones that force the
// worker-pool path.
func TestValidateViewParallelEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	type caseSpec struct {
		name string
		wf   *workflow.Workflow
		v    *view.View
	}
	var cases []caseSpec

	// Fixture: the chainPair workflow under its atomic and a coarse view.
	cp := chainPair(t)
	coarse, err := view.FromAssignments(cp, "coarse", map[string][]string{
		"left": {"x", "a"}, "mid": {"b", "z"}, "right": {"y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		caseSpec{"chainPair/atomic", cp, view.Atomic(cp)},
		caseSpec{"chainPair/coarse", cp, coarse},
	)

	// Generated: layered workflows under interval, random and unsound-
	// injected views (mixed sound/unsound composites, k ≥ threshold).
	for _, seed := range []int64{1, 2, 3} {
		wf := gen.Layered(gen.LayeredConfig{
			Name: "lay", Tasks: 96, Layers: 8, EdgeProb: 0.35, SkipProb: 0.08, Seed: seed,
		})
		iv := gen.IntervalView(wf, 12, "bands")
		cases = append(cases,
			caseSpec{"layered/interval", wf, iv},
			caseSpec{"layered/random", wf, gen.RandomView(wf, 10, seed, "rand")},
			caseSpec{"layered/injected", wf, gen.InjectUnsound(iv, 3, seed)},
		)
	}

	for _, c := range cases {
		o := NewOracle(c.wf)
		seq := ValidateView(o, c.v)
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			par := ValidateViewParallel(o, c.v, workers)
			requireSameReport(t, c.name, seq, par)
		}
	}
}

// TestValidateViewEmptyInterfaceShape pins the report shape for
// composites with empty interface sets: In/Out must stay nil (not empty
// non-nil slices), matching the historical output and NaiveValidator.
func TestValidateViewEmptyInterfaceShape(t *testing.T) {
	wf := chainPair(t)
	whole, err := view.FromAssignments(wf, "whole", map[string][]string{
		"all": {"x", "a", "b", "y", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(wf)
	rep := ValidateView(o, whole)
	if !rep.Sound {
		t.Fatal("the whole-workflow composite is trivially sound")
	}
	cr := rep.Composites[0]
	if cr.In != nil || cr.Out != nil {
		t.Fatalf("empty interface sets must be nil, got In=%#v Out=%#v", cr.In, cr.Out)
	}
	nrep, err := NewNaiveValidator(o, 1_000_000).ValidateView(whole)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, nrep) {
		t.Fatalf("ValidateView and NaiveValidator reports diverge:\nfast:  %+v\nnaive: %+v", rep, nrep)
	}
}

// TestValidateViewParallelConcurrentOracle hammers one oracle from many
// goroutines (the documented concurrent-reader guarantee now extends to
// the pooled scratch state).
func TestValidateViewParallelConcurrentOracle(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	wf := gen.Layered(gen.LayeredConfig{
		Name: "lay", Tasks: 64, Layers: 8, EdgeProb: 0.4, SkipProb: 0.1, Seed: 9,
	})
	o := NewOracle(wf)
	v := gen.IntervalView(wf, 16, "bands")
	seq := ValidateView(o, v)
	done := make(chan *Report, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- ValidateViewParallel(o, v, 4) }()
	}
	for i := 0; i < 8; i++ {
		requireSameReport(t, "concurrent", seq, <-done)
	}
}
