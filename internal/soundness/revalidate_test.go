package soundness

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wolves/internal/bitset"
	"wolves/internal/dag"
	"wolves/internal/gen"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// TestRevalidateMutationEquivalence drives a live workflow through
// random edge insertions and task additions, maintaining its report via
// DirtyComposites + Revalidate + Merge, and asserts after every batch
// that the maintained report is identical to a from-scratch
// ValidateView over a freshly computed closure.
func TestRevalidateMutationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 6; round++ {
		n := 16 + rng.Intn(80)
		wf := gen.Layered(gen.LayeredConfig{
			Name: fmt.Sprintf("live-%d", round), Tasks: n, Layers: 4,
			EdgeProb: 0.3, SkipProb: 0.1, Seed: int64(round),
		})
		v := gen.RandomView(wf, 2+n/6, int64(round), "v")
		ic, err := dag.NewIncrementalClosure(wf.Graph())
		if err != nil {
			t.Fatal(err)
		}
		oracle := NewOracleWithClosure(wf, ic.Graph(), ic.Fwd())
		rep := ValidateView(oracle, v)

		for step := 0; step < 60; step++ {
			oldK := v.N()
			if rng.Intn(12) == 0 {
				// Task addition: grow the workflow, the closure, and the
				// view (new singleton composites), then repoint the oracle
				// at the replaced closure.
				id := fmt.Sprintf("new-%d-%d", round, step)
				if _, err := wf.ExtendTasks([]workflow.Task{{ID: id}}); err != nil {
					t.Fatal(err)
				}
				ic.Grow(1)
				oracle = NewOracleWithClosure(wf, ic.Graph(), ic.Fwd())
				nv, err := v.ExtendSingletons()
				if err != nil {
					t.Fatal(err)
				}
				v = nv
			}
			nn := wf.N()
			dirty := bitset.New(nn)
			u, w := rng.Intn(nn), rng.Intn(nn)
			if u != w {
				if _, err := ic.AddEdge(u, w, dirty); err != nil {
					dirty.Reset() // cycle rejected: nothing changed
				} else {
					wf.StructureChanged()
				}
			}
			dirtyComps := DirtyComposites(v, dirty, oldK)
			rep = Merge(rep, Revalidate(oracle, v, dirtyComps), v)

			full := ValidateView(NewOracle(wf), v)
			if !reflect.DeepEqual(rep, full) {
				t.Fatalf("round %d step %d: merged report diverged from from-scratch validation\nmerged: %+v\nfull:   %+v",
					round, step, rep, full)
			}
		}
	}
}

// TestRevalidateSubsetMatchesFull pins the Merge mechanics directly:
// revalidating any superset of the (empty) dirty set over an unchanged
// workflow reproduces the full report exactly.
func TestRevalidateSubsetMatchesFull(t *testing.T) {
	wf := gen.Layered(gen.LayeredConfig{Name: "static", Tasks: 40, Layers: 4, EdgeProb: 0.35, Seed: 5})
	v := gen.RandomView(wf, 8, 5, "v")
	o := NewOracle(wf)
	full := ValidateView(o, v)

	for _, dirty := range [][]int{{}, {0}, {1, 3}, {0, 1, 2, 3, 4, 5, 6, 7}} {
		got := Merge(full, Revalidate(o, v, dirty), v)
		if !reflect.DeepEqual(got, full) {
			t.Fatalf("dirty=%v: merged report diverged", dirty)
		}
		// Merge must not alias the previous report's slice.
		if &got.Composites[0] == &full.Composites[0] {
			t.Fatal("Merge aliases the previous report's composite slice")
		}
	}
}

// TestDirtyComposites pins the node→composite mapping and the always-
// dirty window for new composites.
func TestDirtyComposites(t *testing.T) {
	wf, err := workflow.NewBuilder("w").
		AddTask("a").AddTask("b").AddTask("c").AddTask("d").
		Chain("a", "b", "c", "d").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.FromAssignments(wf, "v", map[string][]string{
		"AB": {"a", "b"}, "C": {"c"}, "D": {"d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dirty := bitset.FromInts(4, 1, 2) // tasks b, c
	got := DirtyComposites(v, dirty, v.N())
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("DirtyComposites = %v, want [0 1]", got)
	}
	// minNew forces the tail composites dirty even with no dirty nodes.
	got = DirtyComposites(v, bitset.New(4), 1)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("DirtyComposites with minNew=1 = %v, want [1 2]", got)
	}
}
