package soundness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wolves/internal/bitset"
)

// naiveInOut recomputes Definition 2.2 with plain maps, independent of
// the bitset implementation.
func naiveInOut(o *Oracle, members map[int]bool) (in, out map[int]bool) {
	in, out = map[int]bool{}, map[int]bool{}
	g := o.Workflow().Graph()
	for t := range members {
		for _, p := range g.Preds(t) {
			if !members[int(p)] {
				in[t] = true
			}
		}
		for _, s := range g.Succs(t) {
			if !members[int(s)] {
				out[t] = true
			}
		}
	}
	return in, out
}

// naiveSound applies Definition 2.3 with per-pair DFS reachability.
func naiveSound(o *Oracle, members map[int]bool) bool {
	in, out := naiveInOut(o, members)
	g := o.Workflow().Graph()
	reaches := func(u, v int) bool {
		seen := map[int]bool{u: true}
		stack := []int{u}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == v {
				return true
			}
			for _, s := range g.Succs(x) {
				if !seen[int(s)] {
					seen[int(s)] = true
					stack = append(stack, int(s))
				}
			}
		}
		return false
	}
	for u := range in {
		for v := range out {
			if !reaches(u, v) {
				return false
			}
		}
	}
	return true
}

// Property: the bitset oracle agrees with an independent naive
// implementation of Definitions 2.2 and 2.3 on random sets.
func TestQuickOracleAgreesWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := randomWorkflow(rng, 3+rng.Intn(18))
		o := NewOracle(wf)
		for trial := 0; trial < 5; trial++ {
			members := map[int]bool{}
			set := bitset.New(wf.N())
			for i := 0; i < wf.N(); i++ {
				if rng.Intn(2) == 0 {
					members[i] = true
					set.Set(i)
				}
			}
			if len(members) == 0 {
				continue
			}
			in, out := o.InOut(set)
			nIn, nOut := naiveInOut(o, members)
			if len(in) != len(nIn) || len(out) != len(nOut) {
				return false
			}
			for _, x := range in {
				if !nIn[x] {
					return false
				}
			}
			for _, x := range out {
				if !nOut[x] {
					return false
				}
			}
			gotSound, _ := o.SetSound(set)
			if gotSound != naiveSound(o, members) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: soundness violations are genuine witnesses — the violation
// pair really is (in-node, out-node) with no connecting path.
func TestQuickViolationWitnesses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := randomWorkflow(rng, 3+rng.Intn(18))
		o := NewOracle(wf)
		set := bitset.New(wf.N())
		for i := 0; i < wf.N(); i++ {
			if rng.Intn(2) == 0 {
				set.Set(i)
			}
		}
		if set.None() {
			return true
		}
		ok, viol := o.SetSound(set)
		if ok {
			return viol == nil
		}
		if viol == nil {
			return false
		}
		in, out := o.InOut(set)
		inSet, outSet := map[int]bool{}, map[int]bool{}
		for _, x := range in {
			inSet[x] = true
		}
		for _, x := range out {
			outSet[x] = true
		}
		return inSet[viol.From] && outSet[viol.To] && !o.Reach().Reaches(viol.From, viol.To)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: singletons and the full task set are always sound; adding
// every task to any set can only ever end sound (in = ∅ at the top).
func TestQuickBoundarySets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := randomWorkflow(rng, 2+rng.Intn(15))
		o := NewOracle(wf)
		for i := 0; i < wf.N(); i++ {
			s := bitset.New(wf.N())
			s.Set(i)
			if ok, _ := o.SetSound(s); !ok {
				return false
			}
		}
		all := bitset.New(wf.N())
		all.Fill()
		ok, _ := o.SetSound(all)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
