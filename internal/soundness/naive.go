package soundness

import (
	"errors"

	"wolves/internal/view"
)

// The paper (§2.1): "checking whether a view is sound can take
// exponential time, if Definition 2.1 is directly applied by checking all
// possible paths in a graph." This file implements that strawman for the
// E6 experiment: workflow-level path existence is decided by enumerating
// simple paths with plain backtracking (no visited-set memoization across
// branches), so its cost grows with the number of paths, not the number
// of edges.

// ErrBudget is returned when the naive validator exceeds its step budget.
var ErrBudget = errors.New("soundness: naive validator exceeded step budget")

// NaiveValidator validates views by brute-force path enumeration.
type NaiveValidator struct {
	o *Oracle
	// Budget bounds the total number of DFS steps; 0 means no bound.
	Budget int
	steps  int
}

// NewNaiveValidator wraps an oracle's workflow. The oracle's closure is
// deliberately not consulted.
func NewNaiveValidator(o *Oracle, budget int) *NaiveValidator {
	return &NaiveValidator{o: o, Budget: budget}
}

// Steps returns the number of DFS steps consumed so far.
func (nv *NaiveValidator) Steps() int { return nv.steps }

// pathExists enumerates simple paths from u until it hits v.
func (nv *NaiveValidator) pathExists(u, v int, onPath []bool) (bool, error) {
	nv.steps++
	if nv.Budget > 0 && nv.steps > nv.Budget {
		return false, ErrBudget
	}
	if u == v {
		return true, nil
	}
	onPath[u] = true
	for _, s := range nv.o.g.Succs(u) {
		if onPath[s] {
			continue
		}
		found, err := nv.pathExists(int(s), v, onPath)
		if err != nil {
			onPath[u] = false
			return false, err
		}
		if found {
			onPath[u] = false
			return true, nil
		}
	}
	onPath[u] = false
	return false, nil
}

// ValidateView applies Definition 2.3 per composite, but decides each
// in→out reachability question by simple-path enumeration. Results match
// ValidateView exactly (tested); only the cost model differs.
func (nv *NaiveValidator) ValidateView(v *view.View) (*Report, error) {
	rep := &Report{View: v.Name(), Sound: true}
	onPath := make([]bool, nv.o.g.N())
	for ci := 0; ci < v.N(); ci++ {
		cr := CompositeReport{ID: v.Composite(ci).ID, Index: ci, Sound: true}
		members := MemberSet(v, ci)
		cr.In, cr.Out = nv.o.InOut(members)
	scan:
		for _, u := range cr.In {
			for _, w := range cr.Out {
				found, err := nv.pathExists(u, w, onPath)
				if err != nil {
					return nil, err
				}
				if !found {
					cr.Sound = false
					cr.Violations = append(cr.Violations, Violation{From: u, To: w})
					if len(cr.Violations) >= MaxViolations {
						break scan
					}
				}
			}
		}
		if !cr.Sound {
			rep.Sound = false
			rep.Unsound = append(rep.Unsound, ci)
		}
		rep.Composites = append(rep.Composites, cr)
	}
	return rep, nil
}
