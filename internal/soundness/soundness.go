// Package soundness implements the Workflow View Validator of WOLVES.
//
// It provides the set-soundness oracle used by every corrector
// (Definition 2.3: a composite task is sound iff every member receiving
// external input reaches every member producing external output), the
// task-level view validator justified by Proposition 2.1 (sequential and
// parallel), a direct Definition-2.1 path-preservation check, and the
// exponential path-enumeration strawman the paper contrasts against.
package soundness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wolves/internal/bitset"
	"wolves/internal/dag"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Violation is a witness of unsoundness: an in-node of a composite that
// cannot reach one of its out-nodes in the workflow (Definition 2.3).
type Violation struct {
	From int // workflow task index in T.in
	To   int // workflow task index in T.out
}

// Oracle answers set-soundness queries against one workflow, reusing a
// precomputed reachability closure. It is safe for concurrent readers:
// per-call scratch state lives in a sync.Pool, and the instrumentation
// counter is atomic.
type Oracle struct {
	wf    *workflow.Workflow
	g     *dag.Graph
	reach *dag.Closure
	// checks counts SetSound invocations (experiment instrumentation).
	checks atomic.Int64
	// scratch pools the per-call buffers of SetSound/InOut so the steady
	// state allocates nothing per query.
	scratch sync.Pool
}

// oracleScratch is the reusable per-call state of a soundness query.
type oracleScratch struct {
	in, out []int
	outMask *bitset.Set
}

// NewOracle builds an oracle for wf, computing the reachability closure.
func NewOracle(wf *workflow.Workflow) *Oracle {
	return NewOracleWithClosure(wf, wf.Graph(), wf.Graph().Reachability())
}

// NewOracleWithClosure builds an oracle over a caller-supplied graph and
// reachability closure, skipping the closure computation of NewOracle.
// The engine registry points a long-lived oracle at an incrementally
// maintained closure this way: the closure's matrix is updated in place
// as mutations arrive, so the oracle answers against current state
// without ever rebuilding. The caller guarantees that g is wf's
// dependency graph, that reach is (and stays) its reflexive-transitive
// closure, and that mutations are serialized against oracle readers.
func NewOracleWithClosure(wf *workflow.Workflow, g *dag.Graph, reach *dag.Closure) *Oracle {
	o := &Oracle{wf: wf, g: g, reach: reach}
	n := g.N()
	o.scratch.New = func() any {
		return &oracleScratch{outMask: bitset.New(n)}
	}
	return o
}

// Workflow returns the underlying workflow.
func (o *Oracle) Workflow() *workflow.Workflow { return o.wf }

// Reach returns the workflow reachability closure.
func (o *Oracle) Reach() *dag.Closure { return o.reach }

// Checks returns the number of SetSound calls served so far.
func (o *Oracle) Checks() int { return int(o.checks.Load()) }

// ResetChecks zeroes the SetSound counter.
func (o *Oracle) ResetChecks() { o.checks.Store(0) }

// InOut computes U.in and U.out per Definition 2.2 for an arbitrary task
// set U (not necessarily a composite of any view): members with at least
// one predecessor (resp. successor) outside U.
func (o *Oracle) InOut(members *bitset.Set) (in, out []int) {
	return o.InOutAppend(members, nil, nil)
}

// InOutAppend is InOut appending into caller-owned buffers (pass
// buf[:0] to reuse capacity across calls on hot paths).
func (o *Oracle) InOutAppend(members *bitset.Set, in, out []int) ([]int, []int) {
	members.ForEach(func(t int) bool {
		for _, p := range o.g.Preds(t) {
			if !members.Test(int(p)) {
				in = append(in, t)
				break
			}
		}
		for _, s := range o.g.Succs(t) {
			if !members.Test(int(s)) {
				out = append(out, t)
				break
			}
		}
		return true
	})
	return in, out
}

// SetSound reports whether the task set U is sound (Definition 2.3) and,
// when it is not, returns the first violation in ascending (from, to)
// order. Reachability is reflexive, so singletons are always sound. The
// sound path performs zero allocations.
func (o *Oracle) SetSound(members *bitset.Set) (bool, *Violation) {
	if from, to := o.setSound(members); from != -1 {
		return false, &Violation{From: from, To: to}
	}
	return true, nil
}

// SetSoundQuick is SetSound without the witness: correctors probing
// block unions discard the violation, so this variant stays
// allocation-free on both outcomes.
func (o *Oracle) SetSoundQuick(members *bitset.Set) bool {
	from, _ := o.setSound(members)
	return from == -1
}

// setSound returns the first violation as (from, to), or (-1, -1).
func (o *Oracle) setSound(members *bitset.Set) (int, int) {
	o.checks.Add(1)
	sc := o.scratch.Get().(*oracleScratch)
	defer o.scratch.Put(sc)
	sc.in, sc.out = o.InOutAppend(members, sc.in[:0], sc.out[:0])
	if len(sc.in) == 0 || len(sc.out) == 0 {
		return -1, -1
	}
	outMask := sc.outMask
	outMask.Reset()
	for _, t := range sc.out {
		outMask.Set(t)
	}
	for _, u := range sc.in {
		if missing := outMask.FirstNotIn(o.reach.Row(u)); missing != -1 {
			return u, missing
		}
	}
	return -1, -1
}

// SoundSlice is SetSound over a task-index slice.
func (o *Oracle) SoundSlice(members []int) (bool, *Violation) {
	s := bitset.New(o.g.N())
	for _, t := range members {
		s.Set(t)
	}
	return o.SetSound(s)
}

// MemberSet converts a composite of v into a bitset over workflow tasks.
func MemberSet(v *view.View, ci int) *bitset.Set {
	s := bitset.New(v.Workflow().N())
	for _, t := range v.Composite(ci).Members() {
		s.Set(t)
	}
	return s
}

// memberSetInto fills dst with the members of composite ci.
func memberSetInto(dst *bitset.Set, v *view.View, ci int) {
	dst.Reset()
	for _, t := range v.Composite(ci).Members() {
		dst.Set(t)
	}
}

// CompositeReport is the validation result for a single composite task.
type CompositeReport struct {
	ID         string
	Index      int
	Sound      bool
	In, Out    []int       // Definition 2.2 interface sets (task indices)
	Violations []Violation // capped at MaxViolations witnesses
}

// MaxViolations bounds the witnesses gathered per composite so that
// reports on pathological views stay readable.
const MaxViolations = 16

// Report is the result of validating a view.
type Report struct {
	View       string
	Sound      bool
	Composites []CompositeReport
	// Unsound lists indices of unsound composites, ascending.
	Unsound []int
}

// validatorScratch is the reusable per-worker state of view validation.
type validatorScratch struct {
	members *bitset.Set
	outMask *bitset.Set
}

// validateComposite builds the report for composite ci using sc for all
// intermediate sets. Only the report payload (In, Out, Violations) is
// allocated.
func validateComposite(o *Oracle, v *view.View, ci int, sc *validatorScratch) CompositeReport {
	comp := v.Composite(ci)
	cr := CompositeReport{ID: comp.ID, Index: ci, Sound: true}
	memberSetInto(sc.members, v, ci)
	// One exact-fit allocation each: |In|, |Out| ≤ composite size. Empty
	// interface sets stay nil so reports keep matching the historical
	// shape (and NaiveValidator's, which still appends from nil).
	size := comp.Size()
	cr.In, cr.Out = o.InOutAppend(sc.members, make([]int, 0, size), make([]int, 0, size))
	if len(cr.In) == 0 {
		cr.In = nil
	}
	if len(cr.Out) == 0 {
		cr.Out = nil
	}
	outMask := sc.outMask
	outMask.Reset()
	for _, t := range cr.Out {
		outMask.Set(t)
	}
	for _, u := range cr.In {
		full := false
		outMask.ForEachNotIn(o.reach.Row(u), func(to int) bool {
			cr.Sound = false
			if cr.Violations == nil {
				cr.Violations = make([]Violation, 0, MaxViolations)
			}
			cr.Violations = append(cr.Violations, Violation{From: u, To: to})
			full = len(cr.Violations) >= MaxViolations
			return !full
		})
		if full {
			break
		}
	}
	return cr
}

// assembleReport folds per-composite results into the view report.
func assembleReport(v *view.View, composites []CompositeReport) *Report {
	rep := &Report{View: v.Name(), Sound: true, Composites: composites}
	for ci := range composites {
		if !composites[ci].Sound {
			rep.Sound = false
			rep.Unsound = append(rep.Unsound, ci)
		}
	}
	return rep
}

// checkSameWorkflow panics unless v's workflow is interchangeable with
// the oracle's: the same object or a structurally identical one (equal
// fingerprints). Structural identity is what lets a long-lived oracle
// cache serve workflows decoded independently per request.
func (o *Oracle) checkSameWorkflow(v *view.View) {
	if !workflow.Same(v.Workflow(), o.wf) {
		panic("soundness: view belongs to a different workflow")
	}
}

// ValidateView checks every composite of v (Proposition 2.1) and returns
// a full diagnosis with witnesses.
func ValidateView(o *Oracle, v *view.View) *Report {
	o.checkSameWorkflow(v)
	n := o.g.N()
	sc := &validatorScratch{members: bitset.New(n), outMask: bitset.New(n)}
	composites := make([]CompositeReport, v.N())
	for ci := 0; ci < v.N(); ci++ {
		composites[ci] = validateComposite(o, v, ci, sc)
	}
	return assembleReport(v, composites)
}

// ValidateViewCtx is ValidateView with cooperative cancellation: ctx is
// polled between composites, and a canceled context aborts the scan with
// ctx's error.
func ValidateViewCtx(ctx context.Context, o *Oracle, v *view.View) (*Report, error) {
	o.checkSameWorkflow(v)
	n := o.g.N()
	sc := &validatorScratch{members: bitset.New(n), outMask: bitset.New(n)}
	composites := make([]CompositeReport, v.N())
	for ci := 0; ci < v.N(); ci++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		composites[ci] = validateComposite(o, v, ci, sc)
	}
	return assembleReport(v, composites), nil
}

// parallelValidateThreshold is the composite count below which
// ValidateViewParallel stays sequential: worker fan-out costs more than
// it saves on small views.
const parallelValidateThreshold = 8

// ValidateViewParallel is ValidateView with composites fanned out over a
// pool of workers (runtime.GOMAXPROCS when workers <= 0). The report is
// identical to the sequential one: composites are validated
// independently and reassembled in index order.
//
// Deprecated: use ValidateViewParallelCtx so callers can cancel.
func ValidateViewParallel(o *Oracle, v *view.View, workers int) *Report {
	rep, err := ValidateViewParallelCtx(context.Background(), o, v, workers) //lint:allow ctxpass compat wrapper anchors its own root
	if err != nil {
		// Unreachable: the background context never cancels.
		panic("soundness: background validation canceled: " + err.Error())
	}
	return rep
}

// ValidateViewParallelCtx is ValidateViewParallel with cooperative
// cancellation: every worker polls ctx before claiming the next
// composite, so a canceled context drains the pool early and the call
// returns ctx's error instead of a partial report.
func ValidateViewParallelCtx(ctx context.Context, o *Oracle, v *view.View, workers int) (*Report, error) {
	o.checkSameWorkflow(v)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	k := v.N()
	if workers > k {
		workers = k
	}
	if workers < 2 || k < parallelValidateThreshold {
		return ValidateViewCtx(ctx, o, v)
	}
	n := o.g.N()
	composites := make([]CompositeReport, k)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &validatorScratch{members: bitset.New(n), outMask: bitset.New(n)}
			for ctx.Err() == nil {
				ci := int(next.Add(1)) - 1
				if ci >= k {
					return
				}
				composites[ci] = validateComposite(o, v, ci, sc)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return assembleReport(v, composites), nil
}

// FalsePath is a Definition-2.1 witness at the view level: composites
// From → To are connected in the view graph although no member of From
// reaches any member of To in the workflow.
type FalsePath struct {
	From, To int // composite indices
}

// PathReport is the direct Definition-2.1 diagnosis of a view.
type PathReport struct {
	Sound      bool
	FalsePaths []FalsePath
	// MissingPaths would witness workflow paths absent from the view;
	// quotient views can never miss paths, so this is always empty and
	// retained only to document the asymmetry.
	MissingPaths []FalsePath
}

// ValidateViewPaths applies Definition 2.1 literally (but polynomially,
// via closures): the view has a path between two composites iff some pair
// of their members is connected in the workflow. Unsound views only ever
// add paths; the test suite pins the corner case where this view-level
// check passes although a composite violates Definition 2.3.
func ValidateViewPaths(o *Oracle, v *view.View) *PathReport {
	rep := &PathReport{Sound: true}
	q := v.Graph()
	qReach := q.Reachability()
	k := v.N()
	// blockRow[c] = union of workflow reach rows of members of c.
	blockRow := make([]*bitset.Set, k)
	memberMask := make([]*bitset.Set, k)
	for c := 0; c < k; c++ {
		row := bitset.New(o.g.N())
		for _, t := range v.Composite(c).Members() {
			row.Or(o.reach.Row(t))
		}
		blockRow[c] = row
		memberMask[c] = MemberSet(v, c)
	}
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			viewPath := qReach.Reaches(a, b)
			wfPath := blockRow[a].Intersects(memberMask[b])
			if viewPath && !wfPath {
				rep.Sound = false
				rep.FalsePaths = append(rep.FalsePaths, FalsePath{From: a, To: b})
			}
			if wfPath && !viewPath {
				rep.Sound = false
				rep.MissingPaths = append(rep.MissingPaths, FalsePath{From: a, To: b})
			}
		}
	}
	return rep
}

// DescribeViolation renders a violation with task IDs.
func DescribeViolation(wf *workflow.Workflow, viol Violation) string {
	return fmt.Sprintf("%s ∈ T.in cannot reach %s ∈ T.out",
		wf.Task(viol.From).ID, wf.Task(viol.To).ID)
}
