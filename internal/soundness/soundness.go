// Package soundness implements the Workflow View Validator of WOLVES.
//
// It provides the set-soundness oracle used by every corrector
// (Definition 2.3: a composite task is sound iff every member receiving
// external input reaches every member producing external output), the
// task-level view validator justified by Proposition 2.1, a direct
// Definition-2.1 path-preservation check, and the exponential
// path-enumeration strawman the paper contrasts against.
package soundness

import (
	"fmt"

	"wolves/internal/bitset"
	"wolves/internal/dag"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Violation is a witness of unsoundness: an in-node of a composite that
// cannot reach one of its out-nodes in the workflow (Definition 2.3).
type Violation struct {
	From int // workflow task index in T.in
	To   int // workflow task index in T.out
}

// Oracle answers set-soundness queries against one workflow, reusing a
// precomputed reachability closure. It is safe for concurrent readers.
type Oracle struct {
	wf    *workflow.Workflow
	g     *dag.Graph
	reach *dag.Closure
	// checks counts SetSound invocations (experiment instrumentation).
	checks int
}

// NewOracle builds an oracle for wf, computing the reachability closure.
func NewOracle(wf *workflow.Workflow) *Oracle {
	return &Oracle{wf: wf, g: wf.Graph(), reach: wf.Graph().Reachability()}
}

// Workflow returns the underlying workflow.
func (o *Oracle) Workflow() *workflow.Workflow { return o.wf }

// Reach returns the workflow reachability closure.
func (o *Oracle) Reach() *dag.Closure { return o.reach }

// Checks returns the number of SetSound calls served so far.
func (o *Oracle) Checks() int { return o.checks }

// ResetChecks zeroes the SetSound counter.
func (o *Oracle) ResetChecks() { o.checks = 0 }

// InOut computes U.in and U.out per Definition 2.2 for an arbitrary task
// set U (not necessarily a composite of any view): members with at least
// one predecessor (resp. successor) outside U.
func (o *Oracle) InOut(members *bitset.Set) (in, out []int) {
	members.ForEach(func(t int) bool {
		for _, p := range o.g.Preds(t) {
			if !members.Test(int(p)) {
				in = append(in, t)
				break
			}
		}
		for _, s := range o.g.Succs(t) {
			if !members.Test(int(s)) {
				out = append(out, t)
				break
			}
		}
		return true
	})
	return in, out
}

// SetSound reports whether the task set U is sound (Definition 2.3) and,
// when it is not, returns the first violation in ascending (from, to)
// order. Reachability is reflexive, so singletons are always sound.
func (o *Oracle) SetSound(members *bitset.Set) (bool, *Violation) {
	o.checks++
	in, out := o.InOut(members)
	if len(in) == 0 || len(out) == 0 {
		return true, nil
	}
	outMask := bitset.New(o.g.N())
	for _, t := range out {
		outMask.Set(t)
	}
	for _, u := range in {
		if missing := outMask.FirstNotIn(o.reach.Row(u)); missing != -1 {
			return false, &Violation{From: u, To: missing}
		}
	}
	return true, nil
}

// SoundSlice is SetSound over a task-index slice.
func (o *Oracle) SoundSlice(members []int) (bool, *Violation) {
	s := bitset.New(o.g.N())
	for _, t := range members {
		s.Set(t)
	}
	return o.SetSound(s)
}

// MemberSet converts a composite of v into a bitset over workflow tasks.
func MemberSet(v *view.View, ci int) *bitset.Set {
	s := bitset.New(v.Workflow().N())
	for _, t := range v.Composite(ci).Members() {
		s.Set(t)
	}
	return s
}

// CompositeReport is the validation result for a single composite task.
type CompositeReport struct {
	ID         string
	Index      int
	Sound      bool
	In, Out    []int       // Definition 2.2 interface sets (task indices)
	Violations []Violation // capped at MaxViolations witnesses
}

// MaxViolations bounds the witnesses gathered per composite so that
// reports on pathological views stay readable.
const MaxViolations = 16

// Report is the result of validating a view.
type Report struct {
	View       string
	Sound      bool
	Composites []CompositeReport
	// Unsound lists indices of unsound composites, ascending.
	Unsound []int
}

// ValidateView checks every composite of v (Proposition 2.1) and returns
// a full diagnosis with witnesses.
func ValidateView(o *Oracle, v *view.View) *Report {
	if v.Workflow() != o.wf {
		panic("soundness: view belongs to a different workflow")
	}
	rep := &Report{View: v.Name(), Sound: true}
	for ci := 0; ci < v.N(); ci++ {
		cr := CompositeReport{ID: v.Composite(ci).ID, Index: ci, Sound: true}
		members := MemberSet(v, ci)
		cr.In, cr.Out = o.InOut(members)
		outMask := bitset.New(o.g.N())
		for _, t := range cr.Out {
			outMask.Set(t)
		}
	scan:
		for _, u := range cr.In {
			miss := outMask.Clone()
			miss.AndNot(o.reach.Row(u))
			for to := miss.NextSet(0); to != -1; to = miss.NextSet(to + 1) {
				cr.Sound = false
				cr.Violations = append(cr.Violations, Violation{From: u, To: to})
				if len(cr.Violations) >= MaxViolations {
					break scan
				}
			}
		}
		if !cr.Sound {
			rep.Sound = false
			rep.Unsound = append(rep.Unsound, ci)
		}
		rep.Composites = append(rep.Composites, cr)
	}
	return rep
}

// FalsePath is a Definition-2.1 witness at the view level: composites
// From → To are connected in the view graph although no member of From
// reaches any member of To in the workflow.
type FalsePath struct {
	From, To int // composite indices
}

// PathReport is the direct Definition-2.1 diagnosis of a view.
type PathReport struct {
	Sound      bool
	FalsePaths []FalsePath
	// MissingPaths would witness workflow paths absent from the view;
	// quotient views can never miss paths, so this is always empty and
	// retained only to document the asymmetry.
	MissingPaths []FalsePath
}

// ValidateViewPaths applies Definition 2.1 literally (but polynomially,
// via closures): the view has a path between two composites iff some pair
// of their members is connected in the workflow. Unsound views only ever
// add paths; the test suite pins the corner case where this view-level
// check passes although a composite violates Definition 2.3.
func ValidateViewPaths(o *Oracle, v *view.View) *PathReport {
	rep := &PathReport{Sound: true}
	q := v.Graph()
	qReach := q.Reachability()
	k := v.N()
	// blockRow[c] = union of workflow reach rows of members of c.
	blockRow := make([]*bitset.Set, k)
	memberMask := make([]*bitset.Set, k)
	for c := 0; c < k; c++ {
		row := bitset.New(o.g.N())
		for _, t := range v.Composite(c).Members() {
			row.Or(o.reach.Row(t))
		}
		blockRow[c] = row
		memberMask[c] = MemberSet(v, c)
	}
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			viewPath := qReach.Reaches(a, b)
			wfPath := blockRow[a].Intersects(memberMask[b])
			if viewPath && !wfPath {
				rep.Sound = false
				rep.FalsePaths = append(rep.FalsePaths, FalsePath{From: a, To: b})
			}
			if wfPath && !viewPath {
				rep.Sound = false
				rep.MissingPaths = append(rep.MissingPaths, FalsePath{From: a, To: b})
			}
		}
	}
	return rep
}

// DescribeViolation renders a violation with task IDs.
func DescribeViolation(wf *workflow.Workflow, viol Violation) string {
	return fmt.Sprintf("%s ∈ T.in cannot reach %s ∈ T.out",
		wf.Task(viol.From).ID, wf.Task(viol.To).ID)
}
