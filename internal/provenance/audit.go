package provenance

import (
	"wolves/internal/bitset"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// ViewAudit quantifies the provenance error a view induces, at composite
// granularity (the granularity at which view users read answers).
//
// Ground truth for a pair (A, B): some member of A reaches some member
// of B in the workflow. The view reports (A, B) when the view graph has
// a path A→…→B. Quotient views never under-report (every workflow path
// contracts to a view walk), so errors are always false positives — the
// paper's "output of task (14) is not part of the provenance of the
// output of task (18)" scenario.
type ViewAudit struct {
	Composites int
	// TruePairs counts ordered composite pairs (A,B), A≠B, with a real
	// member-level path; ReportedPairs counts pairs the view claims.
	TruePairs     int
	ReportedPairs int
	// FalsePairs = reported but not real; MissingPairs must be zero.
	FalsePairs   int
	MissingPairs int
	// WrongQueries counts composites whose lineage answer contains at
	// least one false composite.
	WrongQueries int
	// Precision = TruePairs / ReportedPairs (1.0 when nothing reported).
	Precision float64

	// SpuriousUpstream[b] lists the composites the view reports upstream
	// of b without a real member-level path (ascending); the run store's
	// audited lineage answers attach exactly this delta per query.
	// SpuriousDownstream is the transposed relation (a → falsely reported
	// descendants of a); MissingUpstream/MissingDownstream are the duals
	// for under-reporting and stay empty for quotient views. All four are
	// internal detail, not part of the audit's JSON shape.
	SpuriousUpstream   [][]int `json:"-"`
	SpuriousDownstream [][]int `json:"-"`
	MissingUpstream    [][]int `json:"-"`
	MissingDownstream  [][]int `json:"-"`
}

// AuditView compares view-level lineage answers with workflow ground
// truth for every composite.
func AuditView(e *Engine, v *view.View) *ViewAudit {
	if !workflow.Same(v.Workflow(), e.wf) {
		panic("provenance: view belongs to a different workflow")
	}
	return AuditViewUsing(e, NewViewEngine(v))
}

// AuditViewUsing is AuditView against a caller-held view engine,
// skipping the quotient-closure build — the registry path, where the
// cached ViewEngine of the live view is already in hand.
func AuditViewUsing(e *Engine, ve *ViewEngine) *ViewAudit {
	v := ve.View()
	if !workflow.Same(v.Workflow(), e.wf) {
		panic("provenance: view belongs to a different workflow")
	}
	k := v.N()
	a := &ViewAudit{
		Composites:         k,
		SpuriousUpstream:   make([][]int, k),
		SpuriousDownstream: make([][]int, k),
		MissingUpstream:    make([][]int, k),
		MissingDownstream:  make([][]int, k),
	}

	// trueReach[A] = set of composites containing a task reachable from
	// some member of A.
	n := e.wf.N()
	trueReach := make([]*bitset.Set, k)
	for c := 0; c < k; c++ {
		row := bitset.New(n)
		for _, t := range v.Composite(c).Members() {
			row.Or(e.fwd.Row(t))
		}
		cs := bitset.New(k)
		row.ForEach(func(t int) bool {
			cs.Set(v.CompOf(t))
			return true
		})
		trueReach[c] = cs
	}
	for b := 0; b < k; b++ {
		reported := ve.anc[b]
		wrong := false
		for a2 := 0; a2 < k; a2++ {
			if a2 == b {
				continue
			}
			real := trueReach[a2].Test(b)
			rep := reported.Test(a2)
			if real {
				a.TruePairs++
			}
			if rep {
				a.ReportedPairs++
			}
			switch {
			case rep && !real:
				a.FalsePairs++
				wrong = true
				a.SpuriousUpstream[b] = append(a.SpuriousUpstream[b], a2)
				a.SpuriousDownstream[a2] = append(a.SpuriousDownstream[a2], b)
			case real && !rep:
				a.MissingPairs++
				a.MissingUpstream[b] = append(a.MissingUpstream[b], a2)
				a.MissingDownstream[a2] = append(a.MissingDownstream[a2], b)
			}
		}
		if wrong {
			a.WrongQueries++
		}
	}
	if a.ReportedPairs == 0 {
		a.Precision = 1.0
	} else {
		a.Precision = float64(a.ReportedPairs-a.FalsePairs) / float64(a.ReportedPairs)
	}
	return a
}
