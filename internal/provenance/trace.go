package provenance

import (
	"encoding/json"
	"fmt"
	"io"

	"wolves/internal/workflow"
)

// This file models concrete workflow executions as provenance graphs in
// the Open Provenance Model style the paper cites [6]: processes (task
// invocations) and artifacts (data items) connected by used /
// wasGeneratedBy edges. The simulator produces one invocation per task
// and one artifact per task output — the simplification the paper itself
// makes ("the data items flowing between tasks have been omitted").

// Artifact is a data item produced during an execution.
type Artifact struct {
	ID       string `json:"id"`
	Producer string `json:"producer"` // task ID
}

// UsedEdge records that a task invocation consumed an artifact.
type UsedEdge struct {
	Process  string `json:"process"`  // task ID
	Artifact string `json:"artifact"` // artifact ID
}

// Trace is one simulated execution of a workflow.
type Trace struct {
	RunID     string
	wf        *workflow.Workflow
	artifacts []Artifact // artifacts[i] is the output of task i
	used      []UsedEdge
}

// Execute simulates a run of wf: every task fires once, consuming the
// outputs of its predecessors.
func Execute(wf *workflow.Workflow, runID string) *Trace {
	tr := &Trace{RunID: runID, wf: wf}
	for i := 0; i < wf.N(); i++ {
		tr.artifacts = append(tr.artifacts, Artifact{
			ID:       fmt.Sprintf("%s/%s/out", runID, wf.Task(i).ID),
			Producer: wf.Task(i).ID,
		})
	}
	wf.Graph().Edges(func(u, v int) {
		tr.used = append(tr.used, UsedEdge{
			Process:  wf.Task(v).ID,
			Artifact: tr.artifacts[u].ID,
		})
	})
	return tr
}

// Workflow returns the executed workflow.
func (tr *Trace) Workflow() *workflow.Workflow { return tr.wf }

// Artifacts returns all artifacts, in task-index order.
func (tr *Trace) Artifacts() []Artifact { return append([]Artifact(nil), tr.artifacts...) }

// Used returns all consumption edges.
func (tr *Trace) Used() []UsedEdge { return append([]UsedEdge(nil), tr.used...) }

// ArtifactOf returns the output artifact of the given task ID.
func (tr *Trace) ArtifactOf(taskID string) (Artifact, error) {
	i, ok := tr.wf.Index(taskID)
	if !ok {
		return Artifact{}, fmt.Errorf("provenance: %w: %q", workflow.ErrUnknownTask, taskID)
	}
	return tr.artifacts[i], nil
}

// ArtifactLineage returns the artifacts that (transitively) contributed
// to the output of taskID, using engine e for reachability.
func (tr *Trace) ArtifactLineage(e *Engine, taskID string) ([]Artifact, error) {
	i, ok := tr.wf.Index(taskID)
	if !ok {
		return nil, fmt.Errorf("provenance: %w: %q", workflow.ErrUnknownTask, taskID)
	}
	var out []Artifact
	for _, t := range e.Lineage(i) {
		out = append(out, tr.artifacts[t])
	}
	return out, nil
}

// opmDocument is the JSON export shape.
type opmDocument struct {
	Run       string     `json:"run"`
	Processes []string   `json:"processes"`
	Artifacts []Artifact `json:"artifacts"`
	Used      []UsedEdge `json:"used"`
	Generated []UsedEdge `json:"wasGeneratedBy"`
}

// WriteOPM exports the trace as an OPM-style JSON document.
func (tr *Trace) WriteOPM(w io.Writer) error {
	doc := opmDocument{Run: tr.RunID, Artifacts: tr.artifacts, Used: tr.used}
	for i := 0; i < tr.wf.N(); i++ {
		doc.Processes = append(doc.Processes, tr.wf.Task(i).ID)
		doc.Generated = append(doc.Generated, UsedEdge{
			Process:  tr.wf.Task(i).ID,
			Artifact: tr.artifacts[i].ID,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
